#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order that fails fastest.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test --workspace --release --offline -q

echo "==> all checks passed"
