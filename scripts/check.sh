#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order that fails fastest.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> no tracked build artifacts"
if [ -n "$(git ls-files 'target/*')" ]; then
    echo "error: build artifacts are tracked under target/ — run: git rm -r --cached target/" >&2
    git ls-files 'target/*' | head -5 >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test --workspace --release --offline -q

echo "==> cargo doc (rustdoc rot gate)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline -q

echo "==> throughput digest smoke (--jobs 2, committed digests)"
# Runs the full fixed workloads on a 2-worker pool and asserts the
# committed stats digests — catches both host-parallelism regressions
# (sweep jobs leaking state into each other) and engine changes that
# silently alter simulated behaviour.
cargo run --release --offline -p bench-suite --bin throughput -q -- \
    --check --jobs 2 --out "$(mktemp -t fastbar_check_throughput.XXXXXX.json)"

echo "==> throughput digest smoke (decoded-superblock cache disabled)"
# Same committed digests with the decoded-superblock execution layer off:
# the decode cache is a host-side fast path, so a digest difference between
# this run and the previous one means the cache changed simulated behaviour.
FASTBAR_DECODE_CACHE=0 \
cargo run --release --offline -p bench-suite --bin throughput -q -- \
    --check --jobs 2 --out "$(mktemp -t fastbar_check_throughput_nodecode.XXXXXX.json)"

echo "==> throughput digest smoke (sharded event lanes enabled)"
# Same committed digests with the opt-in sharded per-core event lanes on
# process-wide: queue implementation is a host-side choice, so a digest
# difference here means the sharded queue reordered simulated events.
FASTBAR_EVENT_SHARDS=1 \
cargo run --release --offline -p bench-suite --bin throughput -q -- \
    --check --jobs 2 --out "$(mktemp -t fastbar_check_throughput_shards.XXXXXX.json)"

echo "==> throughput digest smoke (fused memory disabled)"
# Same committed digests with the memory-op-fused decoded executor off:
# the fused path is a host-side shortcut over the exact cache model, so a
# digest difference here means fusion changed simulated behaviour.
FASTBAR_FUSED_MEMORY=0 \
cargo run --release --offline -p bench-suite --bin throughput -q -- \
    --check --jobs 2 --out "$(mktemp -t fastbar_check_throughput_nofuse.XXXXXX.json)"

echo "==> chaos recovery smoke (fixed seed, quick grid)"
# Quick fault-injection sweep at a pinned seed: every point must produce
# validated kernel output, quiescent filter tables and a bit-identical
# replay (the sweep itself runs each faulted point twice and asserts it),
# so a barrier-recovery regression fails here before it lands.
cargo run --release --offline -p bench-suite --bin chaos -q -- \
    --quick --jobs 2 --seed 0x5eedba441e4a0001 \
    --out "$(mktemp -t fastbar_check_chaos.XXXXXX.json)"

echo "==> program verifier + race detector + model checker smoke (quick kernel grid)"
# Every parallel kernel under every barrier mechanism (including the
# 64-core clustered topology points), race detector attached, assembled
# program statically verified, plus the bounded model checker over every
# mechanism's emitted routine at 2-4 cores with and without an injected
# fault: any static Error, observed race, or property counterexample
# exits non-zero. --check also replays the two committed throughput
# samples and asserts their pinned stats digests. Quick sizes; verdicts
# are size-independent.
cargo run --release --offline -p bench-suite --bin verify -q -- \
    --quick --mc --check --jobs 2 \
    --out "$(mktemp -t fastbar_check_verify.XXXXXX.json)"

echo "==> scaling sweep smoke (quick grid + degenerate-topology digests)"
# Quick clustered grid (64 cores under sw-central and sw-hier) plus the
# degenerate-topology guard: --check re-runs the two committed 16-core
# workloads on the flat machine — now expressed as a 1-cluster topology
# routed through the interconnect layer — and asserts their pinned
# digests bit-for-bit.
cargo run --release --offline -p bench-suite --bin fig_scale -q -- \
    --quick --check --jobs 2 --out "$(mktemp -t fastbar_check_scale.XXXXXX.json)"

echo "==> fastbar-serve smoke (unix socket, quick suite, cached resubmit)"
# Daemon on a throwaway Unix socket: submit the quick fig4+viterbi suite
# twice. The first pass runs live, the second must be answered entirely
# from the on-disk cache with every table row byte-identical — then the
# daemon exits cleanly on the shutdown op (wait collects its status).
SERVE_SOCK="$(mktemp -u -t fastbar_check_serve.XXXXXX.sock)"
SERVE_CACHE="$(mktemp -d -t fastbar_check_serve_cache.XXXXXX)"
cargo run --release --offline -p bench-suite --bin fastbar_serve -q -- \
    serve --unix "$SERVE_SOCK" --cache "$SERVE_CACHE" --jobs 2 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 300); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || { echo "error: fastbar-serve never bound $SERVE_SOCK" >&2; exit 1; }
first="$(cargo run --release --offline -p bench-suite --bin fastbar_serve -q -- \
    submit --unix "$SERVE_SOCK" --quick)"
second="$(cargo run --release --offline -p bench-suite --bin fastbar_serve -q -- \
    submit --unix "$SERVE_SOCK" --quick)"
echo "$first"  | grep -q "8 items, 0 served from cache" \
    || { echo "error: first submit was not fully live" >&2; echo "$first" >&2; exit 1; }
echo "$second" | grep -q "8 items, 8 served from cache" \
    || { echo "error: resubmit was not fully cached" >&2; echo "$second" >&2; exit 1; }
# Cached rows must report the exact digests of the live ones (the
# client itself verifies byte identity of each result body against the
# server's body_fnv hash; serve_e2e.rs asserts it end to end).
diff <(echo "$first" | grep -o '0x[0-9a-f]*') \
     <(echo "$second" | grep -o '0x[0-9a-f]*') \
    || { echo "error: cached submit digests differ from live submit" >&2; exit 1; }
cargo run --release --offline -p bench-suite --bin fastbar_serve -q -- \
    shutdown --unix "$SERVE_SOCK"
wait "$SERVE_PID"
trap - EXIT
rm -rf "$SERVE_CACHE"

echo "==> all checks passed"
