//! Cross-crate integration tests: the whole stack (ISA → simulator →
//! barrier filter → kernels) assembled through the public `fastbar` facade,
//! asserting the paper's headline *shape* claims at test-sized inputs.

use fastbar::prelude::*;
use fastbar::{barrier_filter, cmp_sim, kernels};

use barrier_filter::BarrierMechanism;
use kernels::autocorr::Autocorr;
use kernels::livermore::{Loop1, Loop2, Loop3, Loop6};
use kernels::ocean::OceanProxy;
use kernels::viterbi::Viterbi;

#[test]
fn prelude_builds_a_machine() {
    let config = SimConfig::with_cores(2);
    let mut asm = Asm::new();
    asm.label("entry").unwrap();
    asm.halt();
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).unwrap();
    mb.add_thread(entry);
    mb.add_thread(entry);
    let mut m = mb.build().unwrap();
    let summary = m.run().unwrap();
    assert_eq!(summary.instructions, 2);
}

#[test]
fn paper_claim_filters_beat_software_on_every_kernel() {
    // Reduced-size version of the Table 1 ordering claim.
    let threads = 8;
    let checks: Vec<(&str, f64, f64)> = vec![
        {
            let k = Loop3::new(128);
            let seq = k.run_sequential().unwrap().cycles_per_rep;
            let sw = k
                .run_parallel(threads, BarrierMechanism::SwTree)
                .unwrap()
                .cycles_per_rep;
            let f = k
                .run_parallel(threads, BarrierMechanism::FilterI)
                .unwrap()
                .cycles_per_rep;
            ("loop3", seq / sw, seq / f)
        },
        {
            let k = Viterbi::new(48);
            let seq = k.run_sequential().unwrap().cycles_per_rep;
            let sw = k
                .run_parallel(threads, BarrierMechanism::SwTree)
                .unwrap()
                .cycles_per_rep;
            let f = k
                .run_parallel(threads, BarrierMechanism::FilterD)
                .unwrap()
                .cycles_per_rep;
            ("viterbi", seq / sw, seq / f)
        },
    ];
    for (name, sw_speedup, filter_speedup) in checks {
        assert!(
            filter_speedup > sw_speedup,
            "{name}: filter {filter_speedup:.2}x must beat software {sw_speedup:.2}x"
        );
    }
}

#[test]
fn paper_claim_viterbi_software_slowdown_filter_speedup() {
    // Table 1 / Figure 6: at 16 cores the software-barrier Viterbi is
    // slower than sequential while the filter version is faster.
    let k = Viterbi::new(96);
    let seq = k.run_sequential().unwrap().cycles_per_rep;
    let sw = k
        .run_parallel(16, BarrierMechanism::SwCentral)
        .unwrap()
        .cycles_per_rep;
    let filt = k
        .run_parallel(16, BarrierMechanism::FilterI)
        .unwrap()
        .cycles_per_rep;
    assert!(sw > seq, "software-barrier viterbi must be a slowdown");
    assert!(filt < seq, "filter-barrier viterbi must be a speedup");
}

#[test]
fn paper_claim_loop2_crossover_is_later_than_loop3() {
    // Figures 7 vs 8: loop 2's halving parallelism pushes its filter
    // crossover to larger vector lengths than loop 3's.
    let threads = 16;
    let crossover = |run: &dyn Fn(usize) -> (f64, f64)| -> usize {
        for n in [16usize, 32, 64, 128, 256, 512] {
            let (seq, par) = run(n);
            if par < seq {
                return n;
            }
        }
        usize::MAX
    };
    let loop3 = crossover(&|n| {
        let k = Loop3::new(n);
        (
            k.run_sequential().unwrap().cycles_per_rep,
            k.run_parallel(threads, BarrierMechanism::FilterI)
                .unwrap()
                .cycles_per_rep,
        )
    });
    let loop2 = crossover(&|n| {
        let k = Loop2::new(n);
        (
            k.run_sequential().unwrap().cycles_per_rep,
            k.run_parallel(threads, BarrierMechanism::FilterI)
                .unwrap()
                .cycles_per_rep,
        )
    });
    assert!(
        loop2 >= loop3,
        "loop2 crossover N={loop2} must not precede loop3's N={loop3}"
    );
    assert!(
        loop3 <= 256,
        "loop3 must cross over at modest vector lengths"
    );
}

#[test]
fn paper_claim_loop6_parallel_beats_sequential_by_3x_at_256() {
    // Figure 10: "more than a factor of 3 faster ... for vector lengths of
    // 256 elements." (Checked at 128 to keep the test fast; the full size
    // runs in the fig10_loop6 binary.)
    let k = Loop6::new(128);
    let seq = k.run_sequential().unwrap().cycles_per_rep;
    let filt = k
        .run_parallel(16, BarrierMechanism::FilterI)
        .unwrap()
        .cycles_per_rep;
    assert!(
        seq / filt > 3.0,
        "loop6 filter speedup {:.2} must exceed 3x",
        seq / filt
    );
}

#[test]
fn paper_claim_coarse_grained_barriers_barely_matter() {
    // §4.1: with hundreds of instructions per barrier, the mechanism choice
    // moves whole-program time by only a few percent.
    let k = OceanProxy::new(66, 6);
    let sw = k
        .run_parallel(16, BarrierMechanism::SwCentral)
        .unwrap()
        .cycles_per_rep;
    let filt = k
        .run_parallel(16, BarrierMechanism::FilterI)
        .unwrap()
        .cycles_per_rep;
    let improvement = (sw - filt) / sw;
    assert!(
        improvement < 0.25,
        "coarse-grained improvement {:.1}% should be small",
        improvement * 100.0
    );
    assert!(filt <= sw, "filters never lose");
}

#[test]
fn embarrassingly_parallel_loop1_needs_no_fast_barrier() {
    // Loop 1 scales regardless of mechanism: the barrier is per-repetition
    // only, so even sw-central parallelizes it.
    let k = Loop1::new(2048);
    let seq = k.run_sequential().unwrap().cycles_per_rep;
    let sw = k
        .run_parallel(16, BarrierMechanism::SwCentral)
        .unwrap()
        .cycles_per_rep;
    assert!(seq / sw > 4.0, "speedup {:.2} too small", seq / sw);
}

#[test]
fn autocorrelation_scales_with_filters() {
    let k = Autocorr::with_lags(512, 8);
    let seq = k.run_sequential().unwrap().cycles_per_rep;
    let filt = k
        .run_parallel(16, BarrierMechanism::FilterD)
        .unwrap()
        .cycles_per_rep;
    assert!(seq / filt > 2.0, "speedup {:.2} too small", seq / filt);
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let k = Loop6::new(24);
        k.run_parallel(4, BarrierMechanism::FilterDPingPong)
            .unwrap()
            .sim
            .cycles
    };
    assert_eq!(run(), run());
}

#[test]
fn sixty_four_core_machine_runs_a_kernel() {
    // The largest configuration the paper sweeps (Figure 4's right edge).
    let k = Loop3::new(1024);
    let out = k
        .run_parallel(64, BarrierMechanism::FilterIPingPong)
        .unwrap();
    assert!(out.sim.cycles > 0);
}

#[test]
fn layout_and_machine_agree_on_bank_homing() {
    // An arrival range allocated by the OS layer must be observed by the
    // single filter of its bank: cross-checked through the public APIs.
    let config = SimConfig::with_cores(4);
    let mut space = cmp_sim::AddressSpace::new(&config);
    for bank in 0..config.l2_banks {
        let base = space.alloc_bank_lines(bank, 4).unwrap();
        for t in 0..4u64 {
            assert_eq!(config.bank_of(base + 64 * t), bank);
        }
    }
}
