//! Property-style randomized tests over the core data structures and
//! invariants.
//!
//! These used to be `proptest` properties; they are now driven by the
//! repo's own seeded [`kernels::input::Prng`] so the whole workspace
//! builds and tests with no registry access. Each property runs a fixed
//! number of seeded cases — deterministic across runs, so a failure
//! message's `case` number is always reproducible.

use kernels::input::Prng;

use barrier_filter::{FilterTable, FilterTableConfig, TableFill, ThreadState};
use cmp_sim::{AddressSpace, Memory, ParkToken, SimConfig};
use sim_isa::{line_of, Asm, Reg, LINE_BYTES};

/// Per-case RNG: decorrelated from neighbouring cases by a fixed stream id.
fn case_rng(stream: u64, case: u64) -> Prng {
    Prng::seed_from_u64(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ case)
}

// ---------------------------------------------------------------------
// Memory: byte-accurate against a HashMap model
// ---------------------------------------------------------------------

#[test]
fn memory_matches_byte_model() {
    for case in 0..64 {
        let mut r = case_rng(1, case);
        let writes: Vec<(u64, usize, u64)> = (0..1 + r.below(59))
            .map(|_| (r.below(0x4000), 1 + r.below(8) as usize, r.next_u64()))
            .collect();
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::<u64, u8>::new();
        for &(addr, width, value) in &writes {
            mem.write_le(addr, width, value);
            for i in 0..width as u64 {
                model.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for &(addr, width, _) in &writes {
            let got = mem.read_le(addr, width);
            let mut want = 0u64;
            for i in 0..width as u64 {
                want |= (*model.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i);
            }
            assert_eq!(got, want, "case {case}: read_le({addr:#x}, {width})");
        }
    }
}

#[test]
fn line_of_is_idempotent_and_aligned() {
    let mut r = case_rng(2, 0);
    for case in 0..256 {
        let addr = r.next_u64();
        let l = line_of(addr);
        assert_eq!(l % LINE_BYTES, 0, "case {case}");
        assert_eq!(line_of(l), l, "case {case}");
        assert!(l <= addr && addr - l < LINE_BYTES, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Address space: bank homing and disjointness
// ---------------------------------------------------------------------

#[test]
fn bank_homed_allocations_are_homed_and_disjoint() {
    for case in 0..32 {
        let mut r = case_rng(3, case);
        let requests: Vec<(usize, u64)> = (0..1 + r.below(19))
            .map(|_| (r.below(4) as usize, 1 + r.below(63)))
            .collect();
        let config = SimConfig::default();
        let mut space = AddressSpace::new(&config);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &(bank, lines) in &requests {
            let base = space.alloc_bank_lines(bank, lines).unwrap();
            for i in 0..lines {
                assert_eq!(config.bank_of(base + i * LINE_BYTES), bank, "case {case}");
            }
            let end = base + lines * LINE_BYTES;
            for &(b, e) in &ranges {
                assert!(end <= b || base >= e, "case {case}: overlap");
            }
            ranges.push((base, end));
        }
    }
}

#[test]
fn data_allocations_never_collide() {
    for case in 0..32 {
        let mut r = case_rng(4, case);
        let requests: Vec<(u64, u32)> = (0..1 + r.below(29))
            .map(|_| (1 + r.below(511), r.below(4) as u32))
            .collect();
        let config = SimConfig::default();
        let mut space = AddressSpace::new(&config);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &(bytes, align_log2) in &requests {
            let align = 1u64 << (3 + align_log2);
            let base = space.alloc(bytes, align).unwrap();
            assert_eq!(base % align, 0, "case {case}");
            for &(b, e) in &ranges {
                assert!(base + bytes <= b || base >= e, "case {case}: overlap");
            }
            ranges.push((base, base + bytes));
        }
    }
}

// ---------------------------------------------------------------------
// Filter table: protocol-conforming event sequences never fault, and the
// barrier opens exactly when the last thread arrives.
// ---------------------------------------------------------------------

#[test]
fn filter_table_protocol_invariants() {
    for case in 0..64 {
        let mut r = case_rng(5, case);
        let threads = 1 + r.below(6) as usize;
        let schedule: Vec<usize> = (0..1 + r.below(199)).map(|_| r.below(8) as usize).collect();
        const A: u64 = 0x2000_0000;
        const E: u64 = 0x2000_4000;
        let mut table = FilterTable::new(FilterTableConfig::entry_exit(A, E, threads));
        // Per-thread protocol position: 0 = before arrival invalidate,
        // 1 = before fill, 2 = parked/waiting for release, 3 = past the
        // barrier (before exit invalidate).
        let mut pos = vec![0u8; threads];
        let mut episodes = 0u64;
        let mut token = 0u64;
        for &pick in &schedule {
            let t = pick % threads;
            let line_a = A + 64 * t as u64;
            let line_e = E + 64 * t as u64;
            match pos[t] {
                0 => {
                    let out = table.on_invalidate(line_a).unwrap();
                    pos[t] = 1;
                    if !out.released.is_empty() || table.thread_state(t) == ThreadState::Servicing {
                        // barrier opened: everyone blocked is now servicing
                        episodes += 1;
                        for (u, p) in pos.iter_mut().enumerate() {
                            if *p == 2 || (*p == 1 && u != t) {
                                *p = 3;
                            }
                        }
                        // the arriving thread itself is also past
                        pos[t] = 3;
                    }
                }
                1 => {
                    token += 1;
                    match table.on_fill(line_a, ParkToken(token), 0).unwrap() {
                        TableFill::Park => pos[t] = 2,
                        TableFill::Service => pos[t] = 3,
                        TableFill::NotMine => panic!("case {case}: arrival must match"),
                    }
                }
                2 => {
                    // parked: nothing to do until release (handled in 0-arm)
                }
                3 => {
                    table.on_invalidate(line_e).unwrap();
                    pos[t] = 0;
                }
                _ => unreachable!(),
            }
            assert!(table.arrived() < threads.max(1), "case {case}");
        }
        assert_eq!(table.stats().episodes, episodes, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Assembler / program round trips
// ---------------------------------------------------------------------

#[test]
fn assembled_programs_fetch_every_pc() {
    for case in 0..32 {
        let mut r = case_rng(6, case);
        let nops = 1 + r.below(99) as usize;
        let jumps = r.below(5) as usize;
        let mut a = Asm::new();
        a.label("entry").unwrap();
        for _ in 0..jumps {
            a.j("end");
        }
        for _ in 0..nops {
            a.nop();
        }
        a.label("end").unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), nops + jumps + 1, "case {case}");
        for (pc, _) in p.iter() {
            assert!(p.fetch(pc).is_some(), "case {case}: pc {pc:#x}");
        }
        assert!(p.fetch(p.code_end()).is_none(), "case {case}");
    }
}

// ---------------------------------------------------------------------
// Whole machine: a random integer reduction is exact for any thread count
// and mechanism, and deterministic.
// ---------------------------------------------------------------------

#[test]
fn parallel_sum_is_exact_for_any_gang() {
    use barrier_filter::{BarrierMechanism, BarrierSystem};
    use cmp_sim::MachineBuilder;

    for case in 0..12 {
        let mut r = case_rng(7, case);
        let threads = 1 + r.below(5) as usize;
        let values: Vec<u64> = (0..8 + r.below(56)).map(|_| r.below(1_000_000)).collect();
        let mechanism = BarrierMechanism::ALL[r.below(7) as usize];

        let n = values.len();
        let config = SimConfig::with_cores(threads);
        let mut space = AddressSpace::new(&config);
        let mut asm = Asm::new();
        let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
        let barrier = sys
            .create_barrier(&mut asm, &mut space, mechanism, threads)
            .unwrap();
        let data = space.alloc_u64(n as u64).unwrap();
        let partials = space.alloc_lines(threads as u64).unwrap();
        let out = space.alloc_u64(1).unwrap();
        let chunk = n.div_ceil(threads) as i64;

        asm.label("entry").unwrap();
        asm.li(Reg::T0, chunk);
        asm.mul(Reg::T1, Reg::TID, Reg::T0); // lo
        asm.add(Reg::T2, Reg::T1, Reg::T0);
        asm.li(Reg::T3, n as i64);
        asm.min(Reg::T2, Reg::T2, Reg::T3); // hi
        asm.li(Reg::T4, 0);
        asm.bge(Reg::T1, Reg::T2, "store");
        asm.slli(Reg::T5, Reg::T1, 3);
        asm.li(Reg::T0, data as i64);
        asm.add(Reg::T5, Reg::T5, Reg::T0);
        asm.sub(Reg::T3, Reg::T2, Reg::T1);
        asm.label("acc").unwrap();
        asm.ldd(Reg::T0, Reg::T5, 0);
        asm.add(Reg::T4, Reg::T4, Reg::T0);
        asm.addi(Reg::T5, Reg::T5, 8);
        asm.addi(Reg::T3, Reg::T3, -1);
        asm.bne(Reg::T3, Reg::ZERO, "acc");
        asm.label("store").unwrap();
        asm.slli(Reg::T5, Reg::TID, 6);
        asm.li(Reg::T0, partials as i64);
        asm.add(Reg::T0, Reg::T0, Reg::T5);
        asm.std(Reg::T4, Reg::T0, 0);
        barrier.emit_call(&mut asm);
        asm.bne(Reg::TID, Reg::ZERO, "done");
        asm.li(Reg::T0, partials as i64);
        asm.li(Reg::T1, 0);
        asm.li(Reg::T2, 0);
        asm.label("red").unwrap();
        asm.ldd(Reg::T3, Reg::T0, 0);
        asm.add(Reg::T2, Reg::T2, Reg::T3);
        asm.addi(Reg::T0, Reg::T0, 64);
        asm.addi(Reg::T1, Reg::T1, 1);
        asm.blt(Reg::T1, Reg::NTID, "red");
        asm.li(Reg::T4, out as i64);
        asm.std(Reg::T2, Reg::T4, 0);
        asm.label("done").unwrap();
        asm.halt();

        let program = asm.assemble().unwrap();
        let entry = program.require_symbol("entry").unwrap();
        let mut mb = MachineBuilder::new(config, program).unwrap();
        mb.write_u64_slice(data, &values);
        for _ in 0..threads {
            mb.add_thread(entry);
        }
        sys.install(&mut mb).unwrap();
        let mut machine = mb.build().unwrap();
        let summary = machine.run().unwrap();
        assert_eq!(
            machine.read_u64(out),
            values.iter().sum::<u64>(),
            "case {case}: {threads} threads, {mechanism:?}"
        );
        assert!(summary.cycles > 0, "case {case}");
    }
}
