    0x10000: jal zero, 0x10040
bar0_filter_d_checked:
    0x10004: sync
    0x10008: li k0, 131072
    0x1000c: slli k1, tid, 6
    0x10010: add k0, k0, k1
    0x10014: dcbi 0(k0)
    0x10018: isync
bar0_eretry:
    0x1001c: ldd k1, 0(k0)
    0x10020: li t9, -4985279381848933680
    0x10024: beq k1, t9, 0x1001c
    0x10028: sync
    0x1002c: li k0, 133120
    0x10030: slli k1, tid, 6
    0x10034: add k0, k0, k1
    0x10038: dcbi 0(k0)
    0x1003c: jalr zero, 0(ra)
