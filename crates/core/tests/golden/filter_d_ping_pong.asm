    0x10000: jal zero, 0x1003c
bar0_filter_d_pp:
    0x10004: sync
    0x10008: ldd t9, 0(tls)
    0x1000c: li k0, 131072
    0x10010: beq t9, zero, 0x10018
    0x10014: li k0, 133120
bar0_use0:
    0x10018: slli k1, tid, 6
    0x1001c: add k0, k0, k1
    0x10020: dcbi 0(k0)
    0x10024: isync
    0x10028: ldd k1, 0(k0)
    0x1002c: sync
    0x10030: xori t9, t9, 1
    0x10034: std t9, 0(tls)
    0x10038: jalr zero, 0(ra)
