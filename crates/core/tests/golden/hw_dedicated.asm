    0x10000: jal zero, 0x1000c
bar0_hw:
    0x10004: hwbar 7
    0x10008: jalr zero, 0(ra)
