    0x10000: jal zero, 0x100b4
bar0_sw_tree:
    0x10004: ldd t8, 0(tls)
    0x10008: xori t8, t8, 1
    0x1000c: std t8, 0(tls)
    0x10010: li t6, 0
bar0_ascend:
    0x10014: addi t7, t6, 1
    0x10018: srl t9, tid, t7
    0x1001c: slli k1, t9, 1
    0x10020: ori k1, k1, 1
    0x10024: sll k1, k1, t6
    0x10028: bge k1, ntid, 0x10070
    0x1002c: mul t7, t6, ntid
    0x10030: add t7, t7, t9
    0x10034: slli t7, t7, 6
    0x10038: li k0, 131072
    0x1003c: add k0, k0, t7
bar0_retry:
    0x10040: ll t9, 0(k0)
    0x10044: addi t9, t9, 1
    0x10048: sc k1, t9, 0(k0)
    0x1004c: beq k1, zero, 0x10040
    0x10050: li k1, 2
    0x10054: beq t9, k1, 0x1006c
    0x10058: li k0, 133120
    0x1005c: add k0, k0, t7
bar0_spin:
    0x10060: ldd t9, 0(k0)
    0x10064: bne t9, t8, 0x10060
    0x10068: jal zero, 0x10080
bar0_last:
    0x1006c: std zero, 0(k0)
bar0_up:
    0x10070: addi t6, t6, 1
    0x10074: li t9, 1
    0x10078: sll t9, t9, t6
    0x1007c: blt t9, ntid, 0x10014
bar0_descend:
    0x10080: addi t6, t6, -1
bar0_ddown:
    0x10084: blt t6, zero, 0x100b0
    0x10088: addi t7, t6, 1
    0x1008c: srl t9, tid, t7
    0x10090: mul t7, t6, ntid
    0x10094: add t7, t7, t9
    0x10098: slli t7, t7, 6
    0x1009c: li k0, 133120
    0x100a0: add k0, k0, t7
    0x100a4: std t8, 0(k0)
    0x100a8: addi t6, t6, -1
    0x100ac: jal zero, 0x10084
bar0_done:
    0x100b0: jalr zero, 0(ra)
