    0x10000: jal zero, 0x10048
bar0_sw_central:
    0x10004: ldd t8, 0(tls)
    0x10008: xori t8, t8, 1
    0x1000c: std t8, 0(tls)
    0x10010: li k0, 131072
bar0_retry:
    0x10014: ll t9, 0(k0)
    0x10018: addi t9, t9, 1
    0x1001c: sc k1, t9, 0(k0)
    0x10020: beq k1, zero, 0x10014
    0x10024: bne t9, ntid, 0x10038
    0x10028: std zero, 0(k0)
    0x1002c: li k0, 133120
    0x10030: std t8, 0(k0)
    0x10034: jalr zero, 0(ra)
bar0_wait:
    0x10038: li k0, 133120
bar0_spin:
    0x1003c: ldd k1, 0(k0)
    0x10040: bne k1, t8, 0x1003c
    0x10044: jalr zero, 0(ra)
