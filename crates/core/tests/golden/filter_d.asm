    0x10000: jal zero, 0x10038
bar0_filter_d:
    0x10004: sync
    0x10008: li k0, 131072
    0x1000c: slli k1, tid, 6
    0x10010: add k0, k0, k1
    0x10014: dcbi 0(k0)
    0x10018: isync
    0x1001c: ldd k1, 0(k0)
    0x10020: sync
    0x10024: li k0, 133120
    0x10028: slli k1, tid, 6
    0x1002c: add k0, k0, k1
    0x10030: dcbi 0(k0)
    0x10034: jalr zero, 0(ra)
