//! Golden-disassembly snapshots for every barrier runtime routine.
//!
//! Each test emits one mechanism at fixed addresses, disassembles the
//! whole image (labels included), and compares it byte-for-byte against
//! `tests/golden/<name>.asm`. A mismatch means the emitted runtime code
//! changed: inspect the diff, and if the change is intended refresh the
//! snapshots with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p barrier-filter --test emit_golden
//! ```
//!
//! The snapshots double as readable documentation of the seven §4
//! mechanisms, and pin exactly the sequences the static barrier-protocol
//! linter checks for (dcbi→fetch, isync placement, ping-pong
//! alternation).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use barrier_filter::emit;
use sim_isa::{Asm, AsmError, CODE_BASE, INSTR_BYTES};

/// Line-aligned data addresses well clear of the code region.
const BASE_A: u64 = 0x2_0000;
const BASE_B: u64 = 0x2_0800;
const THREADS: usize = 4;
const GRANULE: u64 = 4096;

fn disasm_image(asm: Asm) -> String {
    let program = asm.assemble().expect("routine must assemble");
    let mut by_pc: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (name, pc) in program.symbols() {
        by_pc.entry(pc).or_default().push(name);
    }
    let mut out = String::new();
    let mut pc = CODE_BASE;
    while pc < program.code_end() {
        for name in by_pc.get(&pc).into_iter().flatten() {
            let _ = writeln!(out, "{name}:");
        }
        let instr = program.fetch(pc).expect("pc inside the image");
        let _ = writeln!(out, "    {pc:#x}: {instr}");
        pc += INSTR_BYTES;
    }
    out
}

fn check(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.asm"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    assert_eq!(
        actual, want,
        "emitted code for `{name}` no longer matches its snapshot; \
         if the change is intended, refresh with UPDATE_GOLDEN=1"
    );
}

fn snapshot(name: &str, emit_body: impl FnOnce(&mut Asm) -> Result<String, AsmError>) {
    let mut asm = Asm::new();
    emit_body(&mut asm).expect("emitter succeeds");
    check(name, &disasm_image(asm));
}

#[test]
fn sw_central_matches_snapshot() {
    snapshot("sw_central", |a| emit::sw_central(a, 0, BASE_A, BASE_B, 0));
}

#[test]
fn sw_tree_matches_snapshot() {
    snapshot("sw_tree", |a| emit::sw_tree(a, 0, BASE_A, BASE_B, 0));
}

#[test]
fn filter_d_matches_snapshot() {
    snapshot("filter_d", |a| emit::filter_d(a, 0, BASE_A, BASE_B));
}

#[test]
fn filter_d_checked_matches_snapshot() {
    snapshot("filter_d_checked", |a| {
        emit::filter_d_checked(a, 0, BASE_A, BASE_B)
    });
}

#[test]
fn filter_d_ping_pong_matches_snapshot() {
    snapshot("filter_d_ping_pong", |a| {
        emit::filter_d_ping_pong(a, 0, BASE_A, BASE_B, 0)
    });
}

#[test]
fn filter_i_matches_snapshot() {
    snapshot("filter_i", |a| {
        let a_base = emit::arrival_stubs(a, THREADS, GRANULE);
        emit::filter_i(a, 0, a_base, BASE_B)
    });
}

#[test]
fn filter_i_ping_pong_matches_snapshot() {
    snapshot("filter_i_ping_pong", |a| {
        let (a0, a1) = emit::arrival_stub_pair(a, THREADS, GRANULE);
        emit::filter_i_ping_pong(a, 0, a0, a1, 0)
    });
}

#[test]
fn hw_dedicated_matches_snapshot() {
    snapshot("hw_dedicated", |a| emit::hw_dedicated(a, 0, 7));
}
