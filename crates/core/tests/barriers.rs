//! End-to-end barrier tests: every mechanism of §4 must actually
//! synchronize threads on the simulated CMP, the relative latency ordering
//! of Figure 4 must hold, and the §3.3 OS behaviours (fallback, protocol
//! violations, hardware timeout) must be observable.

use barrier_filter::{Barrier, BarrierMechanism, BarrierSystem, FilterCapacity};
use cmp_sim::{
    AddressSpace, Machine, MachineBuilder, SimConfig, SimError, TraceConfig, FILL_ERROR_SENTINEL,
};
use sim_isa::{Asm, Reg};

/// Emit a phase-consistency kernel: each thread publishes its phase number,
/// crosses the barrier, then checks that every other thread has published a
/// phase at least as large; a second barrier separates phases. Any
/// violation is recorded in a per-thread error slot.
fn emit_phase_kernel(a: &mut Asm, barrier: &Barrier, slots: u64, errs: u64, phases: u64) {
    a.label("entry").unwrap();
    a.li(Reg::S0, 0); // current phase
    a.li(Reg::S1, phases as i64);
    a.li(Reg::S2, slots as i64);
    a.li(Reg::S3, errs as i64);
    a.label("phase_loop").unwrap();
    a.addi(Reg::S0, Reg::S0, 1);
    // slots[tid] = phase
    a.slli(Reg::T0, Reg::TID, 6);
    a.add(Reg::T1, Reg::S2, Reg::T0);
    a.std(Reg::S0, Reg::T1, 0);
    barrier.emit_call(a);
    // for j in 0..NTID: slots[j] must be >= phase
    a.li(Reg::T2, 0);
    a.label("check").unwrap();
    a.slli(Reg::T3, Reg::T2, 6);
    a.add(Reg::T3, Reg::S2, Reg::T3);
    a.ldd(Reg::T4, Reg::T3, 0);
    a.bge(Reg::T4, Reg::S0, "slot_ok");
    // record the failing phase in errs[tid]
    a.slli(Reg::T5, Reg::TID, 6);
    a.add(Reg::T5, Reg::S3, Reg::T5);
    a.std(Reg::S0, Reg::T5, 0);
    a.label("slot_ok").unwrap();
    a.addi(Reg::T2, Reg::T2, 1);
    a.blt(Reg::T2, Reg::NTID, "check");
    // separate the read phase from the next write phase
    barrier.emit_call(a);
    a.blt(Reg::S0, Reg::S1, "phase_loop");
    a.halt();
}

fn run_phase_test(mechanism: BarrierMechanism, threads: usize, phases: u64) -> Machine {
    run_phase_test_on(SimConfig::with_cores(threads), mechanism, threads, phases)
}

fn run_phase_test_on(
    config: SimConfig,
    mechanism: BarrierMechanism,
    threads: usize,
    phases: u64,
) -> Machine {
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
    let barrier = sys
        .create_barrier(&mut asm, &mut space, mechanism, threads)
        .unwrap();
    assert!(!barrier.is_fallback());
    let slots = space.alloc_lines(threads as u64).unwrap();
    let errs = space.alloc_lines(threads as u64).unwrap();
    emit_phase_kernel(&mut asm, &barrier, slots, errs, phases);
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut cfg = config;
    cfg.cycle_limit = 50_000_000;
    let mut mb = MachineBuilder::new(cfg, program).unwrap();
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).unwrap();
    let mut m = mb.build().unwrap();
    m.run()
        .unwrap_or_else(|e| panic!("{mechanism} failed: {e}"));
    // no thread ever observed a stale phase
    for t in 0..threads {
        assert_eq!(
            m.read_u64(errs + 64 * t as u64),
            0,
            "{mechanism}: thread {t} observed a phase violation"
        );
        assert_eq!(m.read_u64(slots + 64 * t as u64), phases);
    }
    m
}

#[test]
fn sw_central_synchronizes_16_threads() {
    run_phase_test(BarrierMechanism::SwCentral, 16, 6);
}

#[test]
fn sw_tree_synchronizes_16_threads() {
    run_phase_test(BarrierMechanism::SwTree, 16, 6);
}

#[test]
fn filter_d_synchronizes_16_threads() {
    let m = run_phase_test(BarrierMechanism::FilterD, 16, 6);
    // 12 barrier episodes * 16 threads parked or serviced
    assert!(m.stats().fills_parked() > 0, "the filter must starve fills");
}

#[test]
fn filter_i_synchronizes_16_threads() {
    run_phase_test(BarrierMechanism::FilterI, 16, 6);
}

#[test]
fn filter_d_ping_pong_synchronizes_16_threads() {
    run_phase_test(BarrierMechanism::FilterDPingPong, 16, 6);
}

#[test]
fn filter_i_ping_pong_synchronizes_16_threads() {
    run_phase_test(BarrierMechanism::FilterIPingPong, 16, 6);
}

#[test]
fn hw_dedicated_synchronizes_16_threads() {
    run_phase_test(BarrierMechanism::HwDedicated, 16, 6);
}

#[test]
fn sw_hier_synchronizes_16_threads() {
    // Flat machine: the hierarchy degenerates to one 16-thread "cluster".
    run_phase_test(BarrierMechanism::SwHier, 16, 6);
}

#[test]
fn filter_d_hier_synchronizes_16_threads() {
    let m = run_phase_test(BarrierMechanism::FilterDHier, 16, 6);
    assert!(m.stats().fills_parked() > 0, "the filter must starve fills");
}

#[test]
fn hier_mechanisms_synchronize_on_a_clustered_64_core_machine() {
    let for_each = [BarrierMechanism::SwHier, BarrierMechanism::FilterDHier];
    for mechanism in for_each {
        run_phase_test_on(SimConfig::clustered(64, 4), mechanism, 64, 3);
    }
}

#[test]
fn all_mechanisms_work_on_odd_thread_counts() {
    // 5 threads exercises the unpaired-partner paths of the tree barrier
    // and non-power-of-two filter tables
    for m in BarrierMechanism::ALL {
        run_phase_test(m, 5, 3);
    }
}

#[test]
fn all_mechanisms_work_with_two_threads() {
    for m in BarrierMechanism::ALL {
        run_phase_test(m, 2, 4);
    }
}

/// Build a barrier-latency microbenchmark (§4.2 methodology): a loop of
/// `inner` consecutive barriers executed `outer` times with no work between
/// them, returning average cycles per barrier.
fn barrier_latency(mechanism: BarrierMechanism, threads: usize, inner: u64, outer: u64) -> f64 {
    let config = SimConfig::with_cores(threads);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
    let barrier = sys
        .create_barrier(&mut asm, &mut space, mechanism, threads)
        .unwrap();
    asm.label("entry").unwrap();
    asm.li(Reg::S0, outer as i64);
    asm.label("outer").unwrap();
    asm.li(Reg::S1, inner as i64);
    asm.label("inner").unwrap();
    barrier.emit_call(&mut asm);
    asm.addi(Reg::S1, Reg::S1, -1);
    asm.bne(Reg::S1, Reg::ZERO, "inner");
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bne(Reg::S0, Reg::ZERO, "outer");
    asm.halt();
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut cfg = config;
    cfg.cycle_limit = 500_000_000;
    let mut mb = MachineBuilder::new(cfg, program).unwrap();
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).unwrap();
    let mut m = mb.build().unwrap();
    let summary = m.run().unwrap();
    summary.cycles as f64 / (inner * outer) as f64
}

#[test]
fn latency_ordering_matches_figure_4() {
    // 16 cores, 256 barriers: enough contention for the tree to beat the
    // centralized counter, and enough repetitions to amortize cold misses.
    let threads = 16;
    let lat = |m| barrier_latency(m, threads, 32, 8);
    let sw_central = lat(BarrierMechanism::SwCentral);
    let sw_tree = lat(BarrierMechanism::SwTree);
    let filter_d = lat(BarrierMechanism::FilterD);
    let filter_i = lat(BarrierMechanism::FilterI);
    let filter_d_pp = lat(BarrierMechanism::FilterDPingPong);
    let filter_i_pp = lat(BarrierMechanism::FilterIPingPong);
    let hw = lat(BarrierMechanism::HwDedicated);

    // dedicated network is fastest; filters beat software; centralized
    // software is worst at scale (Figure 4 ordering)
    assert!(hw < filter_i_pp, "hw {hw} vs filter-i-pp {filter_i_pp}");
    assert!(
        filter_i_pp < sw_tree,
        "i-pp {filter_i_pp} vs tree {sw_tree}"
    );
    assert!(
        filter_d_pp < sw_tree,
        "d-pp {filter_d_pp} vs tree {sw_tree}"
    );
    assert!(filter_i < sw_tree, "i {filter_i} vs tree {sw_tree}");
    assert!(filter_d < sw_tree, "d {filter_d} vs tree {sw_tree}");
    assert!(
        sw_tree < sw_central,
        "tree {sw_tree} vs central {sw_central}"
    );
    // I-cache variants execute one memory fence per invocation where the
    // D-cache variants execute two: "slightly better performance" (§4.2)
    assert!(filter_i <= filter_d * 1.02, "i {filter_i} vs d {filter_d}");
    // ping-pong halves the invalidation traffic (§3.5): faster in steady
    // state
    assert!(filter_i_pp < filter_i, "i-pp {filter_i_pp} vs i {filter_i}");
    assert!(filter_d_pp < filter_d, "d-pp {filter_d_pp} vs d {filter_d}");
}

#[test]
fn software_fallback_still_synchronizes() {
    let threads = 4;
    let config = SimConfig::with_cores(threads);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let cap = FilterCapacity {
        tables_per_bank: 0,
        max_threads: 64,
    };
    let mut sys = BarrierSystem::with_capacity(&config, threads, &mut space, cap).unwrap();
    let barrier = sys
        .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterD, threads)
        .unwrap();
    assert!(barrier.is_fallback());
    let slots = space.alloc_lines(threads as u64).unwrap();
    let errs = space.alloc_lines(threads as u64).unwrap();
    emit_phase_kernel(&mut asm, &barrier, slots, errs, 3);
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).unwrap();
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).unwrap();
    let mut m = mb.build().unwrap();
    m.run().unwrap();
    for t in 0..threads {
        assert_eq!(m.read_u64(errs + 64 * t as u64), 0);
    }
}

#[test]
fn loading_an_arrival_address_without_invalidate_is_an_exception() {
    // §3.3.4: a fill for an arrival address whose thread is Waiting faults.
    let threads = 2;
    let config = SimConfig::with_cores(threads);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
    let barrier = sys
        .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterD, threads)
        .unwrap();
    let arrival_base = barrier.arrival_base().unwrap();
    asm.label("entry").unwrap();
    asm.li(Reg::T0, arrival_base as i64);
    asm.ldd(Reg::T1, Reg::T0, 0); // rogue load: no dcbi first
    barrier.emit_call(&mut asm);
    asm.halt();
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).unwrap();
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).unwrap();
    let mut m = mb.build().unwrap();
    match m.run() {
        Err(SimError::Hook { violation, .. }) => {
            assert!(violation.to_string().contains("Waiting"));
        }
        other => panic!("expected a hook violation, got {other:?}"),
    }
}

#[test]
fn hardware_timeout_embeds_error_code_in_reply() {
    // One thread of a two-thread filter barrier never shows up; the parked
    // fill is completed with an error code after the timeout (§3.3.4).
    let threads = 2;
    let config = SimConfig::with_cores(threads);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
    sys.set_timeout(Some(2_000));
    let barrier = sys
        .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterD, threads)
        .unwrap();
    let arrival_base = barrier.arrival_base().unwrap();
    let out = space.alloc_u64(1).unwrap();
    // Thread 0 performs the arrival sequence by hand and checks the loaded
    // value for the embedded error code; thread 1 just halts (never
    // arrives).
    asm.label("entry").unwrap();
    asm.bne(Reg::TID, Reg::ZERO, "absent");
    asm.li(Reg::T0, arrival_base as i64);
    asm.sync();
    asm.dcbi(Reg::T0, 0);
    asm.isync();
    asm.ldd(Reg::T1, Reg::T0, 0); // parked, then errored after 2000 cycles
    asm.li(Reg::T2, FILL_ERROR_SENTINEL as i64);
    asm.li(Reg::T3, 0);
    asm.bne(Reg::T1, Reg::T2, "store");
    asm.li(Reg::T3, 1);
    asm.label("store").unwrap();
    asm.li(Reg::T4, out as i64);
    asm.std(Reg::T3, Reg::T4, 0);
    asm.halt();
    asm.label("absent").unwrap();
    asm.halt();
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).unwrap();
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).unwrap();
    let mut m = mb.build().unwrap();
    let summary = m.run().unwrap();
    assert_eq!(m.read_u64(out), 1, "load must observe the error sentinel");
    assert!(
        summary.cycles >= 2_000,
        "the thread was starved until the timeout"
    );
}

#[test]
fn many_barriers_coexist_in_one_program() {
    // Two filter barriers plus a software barrier used in sequence.
    let threads = 4;
    let config = SimConfig::with_cores(threads);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
    let b1 = sys
        .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterD, threads)
        .unwrap();
    let b2 = sys
        .create_barrier(
            &mut asm,
            &mut space,
            BarrierMechanism::FilterIPingPong,
            threads,
        )
        .unwrap();
    let b3 = sys
        .create_barrier(&mut asm, &mut space, BarrierMechanism::SwTree, threads)
        .unwrap();
    let slots = space.alloc_lines(threads as u64).unwrap();
    asm.label("entry").unwrap();
    asm.li(Reg::S0, 3);
    asm.label("loop").unwrap();
    b1.emit_call(&mut asm);
    b2.emit_call(&mut asm);
    b3.emit_call(&mut asm);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bne(Reg::S0, Reg::ZERO, "loop");
    asm.slli(Reg::T0, Reg::TID, 6);
    asm.li(Reg::T1, slots as i64);
    asm.add(Reg::T1, Reg::T1, Reg::T0);
    asm.li(Reg::T2, 1);
    asm.std(Reg::T2, Reg::T1, 0);
    asm.halt();
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).unwrap();
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).unwrap();
    let mut m = mb.build().unwrap();
    m.run().unwrap();
    for t in 0..threads {
        assert_eq!(m.read_u64(slots + 64 * t as u64), 1);
    }
}

#[test]
fn filter_barriers_generate_no_coherence_upgrades() {
    // The paper: the filter mechanism "generates no spurious coherence
    // traffic", unlike software barriers that update shared state.
    let threads = 8;
    let run = |mechanism| {
        let config = {
            let mut c = SimConfig::with_cores(threads);
            c.trace = TraceConfig::ring();
            c
        };
        let mut space = AddressSpace::new(&config);
        let mut asm = Asm::new();
        let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
        let barrier = sys
            .create_barrier(&mut asm, &mut space, mechanism, threads)
            .unwrap();
        asm.label("entry").unwrap();
        asm.li(Reg::S0, 8);
        asm.label("loop").unwrap();
        barrier.emit_call(&mut asm);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bne(Reg::S0, Reg::ZERO, "loop");
        asm.halt();
        let program = asm.assemble().unwrap();
        let entry = program.require_symbol("entry").unwrap();
        let mut mb = MachineBuilder::new(config, program).unwrap();
        for _ in 0..threads {
            mb.add_thread(entry);
        }
        sys.install(&mut mb).unwrap();
        let mut m = mb.build().unwrap();
        m.run().unwrap();
        m.stats().directory.upgrade_invalidations
    };
    let filter_upgrades = run(BarrierMechanism::FilterD);
    let sw_upgrades = run(BarrierMechanism::SwCentral);
    assert_eq!(filter_upgrades, 0, "filter barriers never upgrade lines");
    assert!(sw_upgrades > 0, "software barriers ping-pong shared lines");
}

#[test]
fn checked_barrier_retries_through_hardware_timeouts() {
    // §3.3.4 retry path: thread 1 arrives very late, so thread 0's parked
    // fill is completed with an error code at least once; the checked
    // barrier re-issues the fill until the barrier genuinely opens, and
    // both threads proceed.
    let threads = 2;
    let config = SimConfig::with_cores(threads);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
    sys.set_timeout(Some(300));
    let barrier = sys
        .create_checked_filter_d(&mut asm, &mut space, threads)
        .unwrap();
    let out = space.alloc_lines(threads as u64).unwrap();
    asm.label("entry").unwrap();
    a_delay_then_barrier(&mut asm, &barrier, out);
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).unwrap();
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).unwrap();
    let mut m = mb.build().unwrap();
    let summary = m.run().unwrap();
    for t in 0..threads {
        assert_eq!(m.read_u64(out + 64 * t as u64), 1, "thread {t} completed");
    }
    assert!(
        summary.cycles > 2_000,
        "thread 0 must have waited through the straggler (cycles = {})",
        summary.cycles
    );
}

/// Thread 1 spins ~2000 iterations before entering the barrier; both store
/// a completion marker afterwards.
fn a_delay_then_barrier(asm: &mut Asm, barrier: &Barrier, out: u64) {
    asm.beq(Reg::TID, Reg::ZERO, "go");
    asm.li(Reg::T0, 2_000);
    asm.label("delay").unwrap();
    asm.addi(Reg::T0, Reg::T0, -1);
    asm.bne(Reg::T0, Reg::ZERO, "delay");
    asm.label("go").unwrap();
    barrier.emit_call(asm);
    asm.slli(Reg::T1, Reg::TID, 6);
    asm.li(Reg::T2, out as i64);
    asm.add(Reg::T2, Reg::T2, Reg::T1);
    asm.li(Reg::T3, 1);
    asm.std(Reg::T3, Reg::T2, 0);
    asm.halt();
}
