//! One barrier filter: the state table of Figure 2.
//!
//! A filter holds an arrival-address tag, an exit-address tag, a
//! `num-threads` field, an `arrived-counter`, a last-valid-entry pointer
//! used while registering threads, and `T` per-thread entries each carrying
//! a valid bit, a pending-fill bit (here: the parked token) and the two-bit
//! FSM state of Figure 3.
//!
//! The operating system allocates arrival/exit addresses so that the low
//! bits index the thread within the table and a single tag identifies the
//! whole range (§3.2): thread `t`'s arrival line is `arrival_tag + 64 * t`.

use cmp_sim::{HookViolation, ParkToken};
use sim_isa::LINE_BYTES;

use crate::fsm::{self, FsmAction, FsmEvent, FsmViolation, ThreadState};

/// Static configuration of one filter table, as the OS would program it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterTableConfig {
    /// Base line address of the arrival range (the arrival-address tag).
    pub arrival_base: u64,
    /// Base line address of the exit range (the exit-address tag), if this
    /// barrier uses explicit exit invalidations. Ping-pong pairs point this
    /// at the partner barrier's arrival range.
    pub exit_base: Option<u64>,
    /// Number of participating threads (`num-threads`).
    pub num_threads: usize,
    /// Initial per-thread state. Entry/exit barriers start `Waiting`; the
    /// second barrier of a ping-pong pair starts `Servicing` so that the
    /// first invocation's arrival invalidate (which doubles as this
    /// barrier's exit invalidate) is legal.
    pub initial_state: ThreadState,
    /// Reject the Figure 3 Blocking self-loop as §3.3.4 does.
    pub strict: bool,
    /// If set, a fill parked longer than this many cycles is completed with
    /// an error code embedded in the reply (§3.3.4 hardware timeout).
    pub timeout: Option<u64>,
}

impl FilterTableConfig {
    /// Entry/exit configuration with default (lenient, no timeout) policy.
    pub fn entry_exit(arrival_base: u64, exit_base: u64, num_threads: usize) -> Self {
        FilterTableConfig {
            arrival_base,
            exit_base: Some(exit_base),
            num_threads,
            initial_state: ThreadState::Waiting,
            strict: false,
            timeout: None,
        }
    }
}

/// One per-thread entry of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    valid: bool,
    state: ThreadState,
    /// The pending-fill bit, carrying the parked token and park time.
    pending: Option<(ParkToken, u64)>,
}

/// Counters for one filter table.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FilterTableStats {
    /// Arrival invalidations accepted.
    pub arrivals: u64,
    /// Exit invalidations accepted.
    pub exits: u64,
    /// Fills parked (starved).
    pub parked: u64,
    /// Fills serviced while open.
    pub serviced: u64,
    /// Barrier episodes completed (openings).
    pub episodes: u64,
    /// Fills completed with an embedded error code after a timeout.
    pub timeout_errors: u64,
}

/// Saved filter contents, produced by [`FilterTable::swap_out`] when the OS
/// reassigns the hardware to a different application (§3.3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedFilter {
    config: FilterTableConfig,
    entries: Vec<Entry>,
    arrived: usize,
    last_valid: usize,
}

/// What a table wants done with a fill request it owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableFill {
    /// Not an arrival address of this table.
    NotMine,
    /// Starve the request.
    Park,
    /// Service the request.
    Service,
}

/// Result of an invalidation the table owns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableInvalidate {
    /// Whether the address matched this table at all.
    pub matched: bool,
    /// Parked tokens to service because the barrier just opened.
    pub released: Vec<ParkToken>,
}

/// The barrier filter state table (Figure 2) plus its transition logic.
#[derive(Debug, Clone)]
pub struct FilterTable {
    config: FilterTableConfig,
    entries: Vec<Entry>,
    arrived: usize,
    /// Last-valid-entry pointer used when registering threads (§3.3.1).
    last_valid: usize,
    stats: FilterTableStats,
}

impl FilterTable {
    /// Build a table and register all `num_threads` threads immediately
    /// (the common case for a statically constructed machine).
    pub fn new(config: FilterTableConfig) -> FilterTable {
        let mut t = FilterTable::new_unregistered(config);
        while t.register_thread().is_some() {}
        t
    }

    /// Build a table with no threads registered yet; threads join one at a
    /// time via [`register_thread`](FilterTable::register_thread), modelling
    /// the OS interface of §3.3.1.
    pub fn new_unregistered(config: FilterTableConfig) -> FilterTable {
        let entries = vec![
            Entry {
                valid: false,
                state: config.initial_state,
                pending: None,
            };
            config.num_threads
        ];
        FilterTable {
            config,
            entries,
            arrived: 0,
            last_valid: 0,
            stats: FilterTableStats::default(),
        }
    }

    /// Register the next thread, returning its index within the barrier, or
    /// `None` if the barrier is fully populated.
    pub fn register_thread(&mut self) -> Option<usize> {
        if self.last_valid >= self.config.num_threads {
            return None;
        }
        let idx = self.last_valid;
        self.entries[idx].valid = true;
        self.last_valid += 1;
        Some(idx)
    }

    /// Whether every declared thread has registered.
    pub fn fully_registered(&self) -> bool {
        self.last_valid == self.config.num_threads
    }

    /// The table's configuration.
    pub fn config(&self) -> &FilterTableConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FilterTableStats {
        self.stats
    }

    /// Current state of thread `t` (tests/diagnostics).
    pub fn thread_state(&self, t: usize) -> ThreadState {
        self.entries[t].state
    }

    /// Value of the arrived counter (tests/diagnostics).
    pub fn arrived(&self) -> usize {
        self.arrived
    }

    fn index_in(&self, base: u64, line: u64) -> Option<usize> {
        let end = base + self.config.num_threads as u64 * LINE_BYTES;
        if (base..end).contains(&line) {
            Some(((line - base) / LINE_BYTES) as usize)
        } else {
            None
        }
    }

    /// Which thread's arrival line `line` is, if any.
    pub fn arrival_thread(&self, line: u64) -> Option<usize> {
        self.index_in(self.config.arrival_base, line)
    }

    /// Which thread's exit line `line` is, if any.
    pub fn exit_thread(&self, line: u64) -> Option<usize> {
        self.config
            .exit_base
            .and_then(|base| self.index_in(base, line))
    }

    /// An invalidation message for `line` reached the filter.
    ///
    /// # Errors
    ///
    /// Propagates FSM violations (§3.3.4 error cases) for addresses this
    /// table owns.
    pub fn on_invalidate(&mut self, line: u64) -> Result<TableInvalidate, FsmViolation> {
        let mut out = TableInvalidate::default();
        if let Some(t) = self.arrival_thread(line) {
            out.matched = true;
            let entry = self.entries[t];
            match fsm::step(entry.state, FsmEvent::ArrivalInvalidate, self.config.strict)? {
                FsmAction::Transition(next) => {
                    self.entries[t].state = next;
                    self.arrived += 1;
                    self.stats.arrivals += 1;
                    if self.arrived == self.config.num_threads {
                        self.open(&mut out.released);
                    }
                }
                FsmAction::Stay => {}
                _ => unreachable!("invalidate cannot produce a fill action"),
            }
        }
        if let Some(t) = self.exit_thread(line) {
            out.matched = true;
            match fsm::step(
                self.entries[t].state,
                FsmEvent::ExitInvalidate,
                self.config.strict,
            )? {
                FsmAction::Transition(next) => {
                    self.entries[t].state = next;
                    self.stats.exits += 1;
                }
                _ => unreachable!("exit invalidate can only transition"),
            }
        }
        Ok(out)
    }

    /// All threads have arrived: clear the counter, move everyone to
    /// Servicing and collect the pending fills for service (§3.2).
    fn open(&mut self, released: &mut Vec<ParkToken>) {
        self.arrived = 0;
        self.stats.episodes += 1;
        for e in &mut self.entries {
            e.state = ThreadState::Servicing;
            if let Some((token, _)) = e.pending.take() {
                released.push(token);
            }
        }
    }

    /// A fill request for `line` reached the filter at cycle `now`.
    ///
    /// # Errors
    ///
    /// Propagates FSM violations (a fill for a Waiting thread).
    pub fn on_fill(
        &mut self,
        line: u64,
        token: ParkToken,
        now: u64,
    ) -> Result<TableFill, FsmViolation> {
        let Some(t) = self.arrival_thread(line) else {
            // Exit-range fills are not owned: the content of an exit address
            // is never accessed by the barrier protocol, and in ping-pong
            // pairs the same line is the partner table's arrival address.
            return Ok(TableFill::NotMine);
        };
        match fsm::step(
            self.entries[t].state,
            FsmEvent::ArrivalFill,
            self.config.strict,
        )? {
            FsmAction::Park => {
                self.entries[t].pending = Some((token, now));
                self.stats.parked += 1;
                Ok(TableFill::Park)
            }
            FsmAction::Service => {
                self.stats.serviced += 1;
                Ok(TableFill::Service)
            }
            _ => unreachable!("fill can only park or service"),
        }
    }

    /// Forget a parked fill whose requester was context-switched out
    /// (§3.3.3). The thread stays Blocking; a re-issued fill parks again.
    pub fn cancel(&mut self, token: ParkToken) -> bool {
        for e in &mut self.entries {
            if e.pending.map(|(t, _)| t) == Some(token) {
                e.pending = None;
                return true;
            }
        }
        false
    }

    /// The earliest cycle at which a parked fill times out, if a timeout is
    /// configured.
    pub fn deadline(&self) -> Option<u64> {
        let timeout = self.config.timeout?;
        self.entries
            .iter()
            .filter_map(|e| e.pending.map(|(_, at)| at + timeout))
            .min()
    }

    /// Complete (with an embedded error code) every parked fill whose
    /// timeout expired at `now`. The affected threads stay Blocking: the
    /// barrier library retries or raises (§3.3.4).
    pub fn expire(&mut self, now: u64, errored: &mut Vec<ParkToken>) {
        let Some(timeout) = self.config.timeout else {
            return;
        };
        for e in &mut self.entries {
            if let Some((token, at)) = e.pending {
                if at + timeout <= now {
                    e.pending = None;
                    errored.push(token);
                    self.stats.timeout_errors += 1;
                }
            }
        }
    }

    /// Save the filter contents so the OS can reuse the hardware for a
    /// different application (§3.3.3). The table is reset to its initial,
    /// unregistered state.
    ///
    /// # Panics
    ///
    /// Panics if any fill is currently parked: the OS must not swap out a
    /// barrier whose threads are blocked in the hardware (it context
    /// switches them out first, which cancels their fills). Fault
    /// injectors that must survive misprogramming use
    /// [`try_swap_out`](FilterTable::try_swap_out) instead.
    pub fn swap_out(&mut self) -> SavedFilter {
        match self.try_swap_out() {
            Ok(saved) => saved,
            Err(_) => panic!("cannot swap out a filter with parked fills"),
        }
    }

    /// Fallible [`swap_out`](FilterTable::swap_out): the §3.3.4
    /// misprogramming case (an OS save while fills are parked) surfaces as
    /// a recoverable [`HookViolation`] with the table unchanged, instead
    /// of a panic.
    ///
    /// # Errors
    ///
    /// [`HookViolation`] if any fill is currently parked.
    pub fn try_swap_out(&mut self) -> Result<SavedFilter, HookViolation> {
        if self.entries.iter().any(|e| e.pending.is_some()) {
            return Err(HookViolation::new(
                "cannot swap out a filter with parked fills",
            ));
        }
        let saved = SavedFilter {
            config: self.config.clone(),
            entries: self.entries.clone(),
            arrived: self.arrived,
            last_valid: self.last_valid,
        };
        *self = FilterTable::new_unregistered(self.config.clone());
        Ok(saved)
    }

    /// Restore previously swapped-out contents.
    pub fn swap_in(&mut self, saved: SavedFilter) {
        self.config = saved.config;
        self.entries = saved.entries;
        self.arrived = saved.arrived;
        self.last_valid = saved.last_valid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u64 = 0x2000_0000;
    const E: u64 = 0x2000_1000;

    fn table(n: usize) -> FilterTable {
        FilterTable::new(FilterTableConfig::entry_exit(A, E, n))
    }

    fn line(base: u64, t: usize) -> u64 {
        base + t as u64 * 64
    }

    #[test]
    fn address_decode_uses_low_bits() {
        let t = table(4);
        assert_eq!(t.arrival_thread(line(A, 0)), Some(0));
        assert_eq!(t.arrival_thread(line(A, 3)), Some(3));
        assert_eq!(t.arrival_thread(line(A, 4)), None, "past the table");
        assert_eq!(t.exit_thread(line(E, 2)), Some(2));
        assert_eq!(t.exit_thread(A), None);
    }

    #[test]
    fn full_barrier_episode() {
        let mut t = table(3);
        // threads 0 and 1 arrive and park
        for th in 0..2 {
            assert!(t.on_invalidate(line(A, th)).unwrap().released.is_empty());
            assert_eq!(
                t.on_fill(line(A, th), ParkToken(th as u64), 10).unwrap(),
                TableFill::Park
            );
            assert_eq!(t.thread_state(th), ThreadState::Blocking);
        }
        assert_eq!(t.arrived(), 2);
        // thread 2's arrival opens the barrier and releases both fills
        let out = t.on_invalidate(line(A, 2)).unwrap();
        assert_eq!(out.released, vec![ParkToken(0), ParkToken(1)]);
        assert_eq!(t.arrived(), 0, "counter cleared on open");
        for th in 0..3 {
            assert_eq!(t.thread_state(th), ThreadState::Servicing);
        }
        // thread 2's own fill arrives after the opening: serviced
        assert_eq!(
            t.on_fill(line(A, 2), ParkToken(9), 20).unwrap(),
            TableFill::Service
        );
        // exits return everyone to Waiting
        for th in 0..3 {
            t.on_invalidate(line(E, th)).unwrap();
            assert_eq!(t.thread_state(th), ThreadState::Waiting);
        }
        assert_eq!(t.stats().episodes, 1);
        assert_eq!(t.stats().parked, 2);
        assert_eq!(t.stats().serviced, 1);
    }

    #[test]
    fn reusable_across_episodes() {
        let mut t = table(2);
        for _ in 0..5 {
            t.on_invalidate(line(A, 0)).unwrap();
            assert_eq!(
                t.on_fill(line(A, 0), ParkToken(1), 0).unwrap(),
                TableFill::Park
            );
            let out = t.on_invalidate(line(A, 1)).unwrap();
            assert_eq!(out.released.len(), 1);
            t.on_invalidate(line(E, 0)).unwrap();
            t.on_invalidate(line(E, 1)).unwrap();
        }
        assert_eq!(t.stats().episodes, 5);
    }

    #[test]
    fn fill_while_waiting_is_a_violation() {
        let mut t = table(2);
        let err = t.on_fill(line(A, 0), ParkToken(0), 0).unwrap_err();
        assert_eq!(err.state, ThreadState::Waiting);
    }

    #[test]
    fn exit_invalidate_while_blocking_is_a_violation() {
        let mut t = table(2);
        t.on_invalidate(line(A, 0)).unwrap();
        assert!(t.on_invalidate(line(E, 0)).is_err());
    }

    #[test]
    fn unrelated_lines_do_not_match() {
        let mut t = table(2);
        let out = t.on_invalidate(0x5000_0000).unwrap();
        assert!(!out.matched);
        assert_eq!(
            t.on_fill(0x5000_0000, ParkToken(0), 0).unwrap(),
            TableFill::NotMine
        );
    }

    #[test]
    fn lenient_blocking_self_loop_but_strict_rejects() {
        let mut t = table(2);
        t.on_invalidate(line(A, 0)).unwrap();
        // repeated arrival invalidate: Figure 3 self-loop
        assert!(t.on_invalidate(line(A, 0)).is_ok());
        assert_eq!(t.arrived(), 1, "self-loop must not double count");

        let mut cfg = FilterTableConfig::entry_exit(A, E, 2);
        cfg.strict = true;
        let mut t = FilterTable::new(cfg);
        t.on_invalidate(line(A, 0)).unwrap();
        assert!(t.on_invalidate(line(A, 0)).is_err());
    }

    #[test]
    fn registration_uses_last_valid_pointer() {
        let mut t = FilterTable::new_unregistered(FilterTableConfig::entry_exit(A, E, 2));
        assert!(!t.fully_registered());
        assert_eq!(t.register_thread(), Some(0));
        assert_eq!(t.register_thread(), Some(1));
        assert_eq!(t.register_thread(), None);
        assert!(t.fully_registered());
    }

    #[test]
    fn early_entry_before_full_registration_still_stalls() {
        // §3.3.1: "Threads entering the barrier before all threads have
        // registered will still stall, as the number of participating
        // threads was determined at the time of barrier creation."
        let mut t = FilterTable::new_unregistered(FilterTableConfig::entry_exit(A, E, 3));
        t.register_thread();
        t.on_invalidate(line(A, 0)).unwrap();
        assert_eq!(
            t.on_fill(line(A, 0), ParkToken(0), 0).unwrap(),
            TableFill::Park
        );
    }

    #[test]
    fn cancel_keeps_thread_blocking_and_reissue_parks_again() {
        let mut t = table(2);
        t.on_invalidate(line(A, 0)).unwrap();
        t.on_fill(line(A, 0), ParkToken(7), 0).unwrap();
        assert!(t.cancel(ParkToken(7)));
        assert!(!t.cancel(ParkToken(7)), "double cancel is refused");
        assert_eq!(t.thread_state(0), ThreadState::Blocking);
        assert_eq!(
            t.on_fill(line(A, 0), ParkToken(8), 5).unwrap(),
            TableFill::Park
        );
    }

    #[test]
    fn timeout_expires_parked_fills() {
        let mut cfg = FilterTableConfig::entry_exit(A, E, 2);
        cfg.timeout = Some(100);
        let mut t = FilterTable::new(cfg);
        t.on_invalidate(line(A, 0)).unwrap();
        t.on_fill(line(A, 0), ParkToken(3), 50).unwrap();
        assert_eq!(t.deadline(), Some(150));
        let mut errored = Vec::new();
        t.expire(149, &mut errored);
        assert!(errored.is_empty());
        t.expire(150, &mut errored);
        assert_eq!(errored, vec![ParkToken(3)]);
        assert_eq!(t.thread_state(0), ThreadState::Blocking, "stays blocked");
        assert_eq!(t.deadline(), None);
        assert_eq!(t.stats().timeout_errors, 1);
    }

    #[test]
    fn swap_out_and_in_round_trips() {
        let mut t = table(2);
        t.on_invalidate(line(A, 0)).unwrap();
        let before_state = t.thread_state(0);
        let saved = t.swap_out();
        // after swap-out the hardware is reusable for another barrier
        assert_eq!(t.thread_state(0), ThreadState::Waiting);
        assert!(!t.fully_registered());
        t.swap_in(saved);
        assert_eq!(t.thread_state(0), before_state);
        assert_eq!(t.arrived(), 1);
        assert!(t.fully_registered());
    }

    #[test]
    #[should_panic(expected = "parked fills")]
    fn swap_out_with_parked_fill_panics() {
        let mut t = table(2);
        t.on_invalidate(line(A, 0)).unwrap();
        t.on_fill(line(A, 0), ParkToken(0), 0).unwrap();
        let _ = t.swap_out();
    }

    #[test]
    fn ping_pong_initial_servicing_accepts_exit_first() {
        // Second barrier of a ping-pong pair: its exit range is the
        // partner's arrival range, and the very first invocation invalidates
        // that range, so its threads must start in Servicing.
        let mut cfg = FilterTableConfig::entry_exit(E, A, 2);
        cfg.initial_state = ThreadState::Servicing;
        let mut t = FilterTable::new(cfg);
        // invalidate of A (this table's exit) while Servicing: legal
        let out = t.on_invalidate(line(A, 0)).unwrap();
        assert!(out.matched);
        assert_eq!(t.thread_state(0), ThreadState::Waiting);
    }
}
