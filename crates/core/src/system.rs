//! The barrier "operating system" layer (§3.3) and high-level facade.
//!
//! [`BarrierSystem`] plays the role the paper assigns to the OS barrier
//! library:
//!
//! * it registers barriers — allocating arrival/exit cache-line ranges whose
//!   low bits index the thread and which all map to a single L2 bank/filter
//!   (§3.3.1, §3.3.2);
//! * it hands back a handle the program synchronizes through ([`Barrier`]);
//! * when no filter (or no filter capacity) is available it transparently
//!   falls back to a software barrier (§3.3.1: "a request for a new barrier
//!   will receive a handle to a filter barrier if one is available … if the
//!   request cannot be satisfied, the handle returned will be for the
//!   fall-back software barrier implementation");
//! * at machine-build time it programs the filter tables into the L2 bank
//!   controllers and initializes per-thread TLS (sense flags).

use std::fmt;

use cmp_sim::{AddressSpace, BuildError, LayoutError, MachineBuilder, SimConfig};
use sim_isa::{Asm, AsmError, Reg, LINE_BYTES};

use crate::bank::FilterBank;
use crate::emit;
use crate::fsm::ThreadState;
use crate::mechanism::BarrierMechanism;
use crate::protocol::{ProtocolSpec, RegionKind, SyncRegion};
use crate::table::{FilterTable, FilterTableConfig};

/// Hardware provisioning: how many filter tables each L2 bank controller
/// holds (`B` in §3.2) and the per-barrier thread limit (`T`, the number of
/// entries in a table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterCapacity {
    /// Filter tables per L2 bank.
    pub tables_per_bank: usize,
    /// Entries (threads) per table.
    pub max_threads: usize,
}

impl Default for FilterCapacity {
    fn default() -> FilterCapacity {
        FilterCapacity {
            tables_per_bank: 8,
            max_threads: 64,
        }
    }
}

/// Errors from barrier registration or installation.
#[derive(Debug, Clone, PartialEq)]
pub enum BarrierError {
    /// Address-space allocation failed.
    Layout(LayoutError),
    /// Label collision or other assembler failure.
    Asm(AsmError),
    /// More threads requested than a filter table holds entries.
    TooManyThreads {
        /// Threads requested.
        requested: usize,
        /// Table entry count.
        max: usize,
    },
    /// The per-thread TLS area ran out of sense slots.
    TlsExhausted,
    /// A hierarchical mechanism's topology requirements were not met:
    /// threads must fill whole power-of-two clusters, and the hierarchical
    /// filter additionally needs one bank granule per cluster slice.
    Hierarchy(String),
    /// Machine-build error while installing hooks.
    Build(BuildError),
    /// `install` found a different number of threads than the system was
    /// created for.
    ThreadCountMismatch {
        /// Threads the system was created for.
        expected: usize,
        /// Threads present in the builder.
        found: usize,
    },
}

impl fmt::Display for BarrierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierError::Layout(e) => write!(f, "address allocation failed: {e}"),
            BarrierError::Asm(e) => write!(f, "assembler error: {e}"),
            BarrierError::TooManyThreads { requested, max } => write!(
                f,
                "barrier requested for {requested} threads but filter tables hold {max} entries"
            ),
            BarrierError::TlsExhausted => f.write_str("per-thread TLS sense slots exhausted"),
            BarrierError::Hierarchy(why) => write!(f, "hierarchical barrier unavailable: {why}"),
            BarrierError::Build(e) => write!(f, "machine build failed: {e}"),
            BarrierError::ThreadCountMismatch { expected, found } => write!(
                f,
                "barrier system was created for {expected} threads but the builder has {found}"
            ),
        }
    }
}

impl std::error::Error for BarrierError {}

impl From<LayoutError> for BarrierError {
    fn from(e: LayoutError) -> BarrierError {
        BarrierError::Layout(e)
    }
}

impl From<AsmError> for BarrierError {
    fn from(e: AsmError) -> BarrierError {
        BarrierError::Asm(e)
    }
}

impl From<BuildError> for BarrierError {
    fn from(e: BuildError) -> BarrierError {
        BarrierError::Build(e)
    }
}

/// A registered barrier: the handle user code synchronizes through.
#[derive(Debug, Clone)]
pub struct Barrier {
    id: usize,
    mechanism: BarrierMechanism,
    requested: BarrierMechanism,
    label: String,
    threads: usize,
    arrival_base: Option<u64>,
    protocol: ProtocolSpec,
}

impl Barrier {
    /// Emit a call to this barrier at the current assembly position.
    /// The routine clobbers `ra`, `k0`, `k1` and `t6`–`t9` only.
    pub fn emit_call(&self, a: &mut Asm) {
        a.jal(Reg::RA, self.label.as_str());
    }

    /// The mechanism actually backing this barrier (after any fallback).
    pub fn mechanism(&self) -> BarrierMechanism {
        self.mechanism
    }

    /// The mechanism originally requested.
    pub fn requested(&self) -> BarrierMechanism {
        self.requested
    }

    /// Whether the OS fell back to a software barrier because the filter
    /// hardware was exhausted.
    pub fn is_fallback(&self) -> bool {
        self.mechanism != self.requested
    }

    /// Number of participating threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The routine's entry label (for direct jumps).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// This barrier's registration id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Base address of the (first) arrival-line range, for filter-backed
    /// barriers: thread `t` signals through line `base + 64 * t`. `None`
    /// for software and dedicated-network barriers.
    pub fn arrival_base(&self) -> Option<u64> {
        self.arrival_base
    }

    /// The machine-readable protocol description: which address ranges
    /// this barrier synchronizes through and what role each plays. Static
    /// linters and the dynamic race detector consume this.
    pub fn protocol(&self) -> &ProtocolSpec {
        &self.protocol
    }
}

/// Bytes of thread-local storage per thread (sense flags live here).
const TLS_BYTES_PER_THREAD: u64 = 4 * LINE_BYTES;

/// The barrier library + OS interface. See the module docs.
#[derive(Debug)]
pub struct BarrierSystem {
    config: SimConfig,
    nthreads: usize,
    capacity: FilterCapacity,
    strict: bool,
    timeout: Option<u64>,
    tls_base: u64,
    next_tls_off: i64,
    per_bank: Vec<Vec<FilterTableConfig>>,
    hw_groups: Vec<(u16, usize)>,
    next_id: usize,
}

impl BarrierSystem {
    /// Create the barrier system for a machine with `nthreads` threads,
    /// with default filter capacity. Allocates the per-thread TLS area.
    ///
    /// # Errors
    ///
    /// Allocation failure for the TLS area.
    pub fn new(
        config: &SimConfig,
        nthreads: usize,
        space: &mut AddressSpace,
    ) -> Result<BarrierSystem, BarrierError> {
        BarrierSystem::with_capacity(config, nthreads, space, FilterCapacity::default())
    }

    /// Create the system with explicit filter provisioning (used by the
    /// fallback and capacity tests).
    ///
    /// # Errors
    ///
    /// Allocation failure for the TLS area.
    pub fn with_capacity(
        config: &SimConfig,
        nthreads: usize,
        space: &mut AddressSpace,
        capacity: FilterCapacity,
    ) -> Result<BarrierSystem, BarrierError> {
        let tls_base = space.alloc(nthreads as u64 * TLS_BYTES_PER_THREAD, LINE_BYTES)?;
        Ok(BarrierSystem {
            config: config.clone(),
            nthreads,
            capacity,
            strict: false,
            timeout: None,
            tls_base,
            next_tls_off: 0,
            per_bank: vec![Vec::new(); config.l2_banks],
            hw_groups: Vec::new(),
            next_id: 0,
        })
    }

    /// Enable §3.3.4 strict FSM checking on subsequently created filters.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Configure the hardware timeout (in cycles) after which a starved
    /// fill is completed with an embedded error code, on subsequently
    /// created filters.
    pub fn set_timeout(&mut self, timeout: Option<u64>) {
        self.timeout = timeout;
    }

    /// TLS base address of thread `tid`.
    pub fn tls_addr(&self, tid: usize) -> u64 {
        self.tls_base + tid as u64 * TLS_BYTES_PER_THREAD
    }

    /// Free filter-table slots remaining in bank `bank`.
    pub fn free_tables(&self, bank: usize) -> usize {
        self.capacity.tables_per_bank - self.per_bank[bank].len()
    }

    fn alloc_tls_slot(&mut self) -> Result<i64, BarrierError> {
        if self.next_tls_off as u64 + 8 > TLS_BYTES_PER_THREAD {
            return Err(BarrierError::TlsExhausted);
        }
        let off = self.next_tls_off;
        self.next_tls_off += 8;
        Ok(off)
    }

    /// Cluster geometry a hierarchical barrier over `threads` threads
    /// combines through: `(cluster_threads, clusters, log2 cluster
    /// threads)`. On the flat one-cluster topology the whole thread set is
    /// one "cluster" and the barrier degenerates to a single level.
    ///
    /// # Errors
    ///
    /// [`BarrierError::Hierarchy`] unless `threads` fills whole clusters
    /// whose thread count is a power of two (the routines compute the
    /// cluster index as `tid >> log2(cluster_threads)`).
    fn hier_geometry(&self, threads: usize) -> Result<(usize, usize, u32), BarrierError> {
        let topo_clusters = self.config.topology.clusters.max(1);
        let cpc = if topo_clusters == 1 {
            threads
        } else {
            self.config.cores_per_cluster()
        };
        if threads == 0 || cpc == 0 || !cpc.is_power_of_two() {
            return Err(BarrierError::Hierarchy(format!(
                "cluster thread count {cpc} is not a positive power of two"
            )));
        }
        if !threads.is_multiple_of(cpc) {
            return Err(BarrierError::Hierarchy(format!(
                "{threads} threads do not fill whole clusters of {cpc}"
            )));
        }
        let spanned = threads / cpc;
        if spanned > topo_clusters {
            return Err(BarrierError::Hierarchy(format!(
                "{threads} threads span {spanned} clusters but the topology has {topo_clusters}"
            )));
        }
        Ok((cpc, spanned, cpc.ilog2()))
    }

    /// The bank with the most free table slots that has at least `need`.
    fn pick_bank(&self, need: usize) -> Option<usize> {
        (0..self.per_bank.len())
            .filter(|&b| self.free_tables(b) >= need)
            .max_by_key(|&b| self.free_tables(b))
    }

    fn table_config(
        &self,
        arrival_base: u64,
        exit_base: Option<u64>,
        threads: usize,
        initial_state: ThreadState,
    ) -> FilterTableConfig {
        FilterTableConfig {
            arrival_base,
            exit_base,
            num_threads: threads,
            initial_state,
            strict: self.strict,
            timeout: self.timeout,
        }
    }

    /// Register a new barrier over threads `0..threads` using `mechanism`,
    /// emitting its runtime routine (and, for I-cache variants, its arrival
    /// stub lines) into `asm`. Filter mechanisms fall back to the
    /// centralized software barrier when the filter hardware is exhausted;
    /// check [`Barrier::is_fallback`].
    ///
    /// Call this *before* emitting kernel code that uses the handle, and
    /// add all threads to the [`MachineBuilder`] before calling
    /// [`install`](BarrierSystem::install).
    ///
    /// # Errors
    ///
    /// Address-space exhaustion, assembler errors, or a thread count beyond
    /// the filter table size.
    pub fn create_barrier(
        &mut self,
        asm: &mut Asm,
        space: &mut AddressSpace,
        mechanism: BarrierMechanism,
        threads: usize,
    ) -> Result<Barrier, BarrierError> {
        self.create_inner(asm, space, mechanism, mechanism, threads)
    }

    fn create_inner(
        &mut self,
        asm: &mut Asm,
        space: &mut AddressSpace,
        actual: BarrierMechanism,
        requested: BarrierMechanism,
        threads: usize,
    ) -> Result<Barrier, BarrierError> {
        use BarrierMechanism::*;
        // The hierarchical filter shards threads across per-cluster tables,
        // so its per-table occupancy (checked in its arm) is the cluster
        // thread count, not the barrier-wide one.
        if actual.is_filter() && !actual.is_hierarchical() && threads > self.capacity.max_threads {
            return Err(BarrierError::TooManyThreads {
                requested: threads,
                max: self.capacity.max_threads,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let granule = self.config.bank_granule();
        let mut arrival_base = None;
        let mut regions = Vec::new();
        let mut tls_offset = None;
        let mut hw_group = None;
        let mut episode_counter = None;
        let mut wake_addrs = Vec::new();
        let label = match actual {
            SwCentral => {
                let counter = space.alloc_lines(1)?;
                let flag = space.alloc_lines(1)?;
                let tls = self.alloc_tls_slot()?;
                episode_counter = Some(counter);
                wake_addrs.push(flag);
                regions.push(SyncRegion {
                    kind: RegionKind::Counter,
                    base: counter,
                    bytes: LINE_BYTES,
                });
                regions.push(SyncRegion {
                    kind: RegionKind::Flag,
                    base: flag,
                    bytes: LINE_BYTES,
                });
                tls_offset = Some(tls);
                emit::sw_central(asm, id, counter, flag, tls)?
            }
            SwTree => {
                let levels = usize::BITS as usize - (threads.max(2) - 1).leading_zeros() as usize;
                let lines = levels as u64 * threads as u64;
                let counters = space.alloc_lines(lines)?;
                let flags = space.alloc_lines(lines)?;
                let tls = self.alloc_tls_slot()?;
                regions.push(SyncRegion {
                    kind: RegionKind::Counter,
                    base: counters,
                    bytes: lines * LINE_BYTES,
                });
                regions.push(SyncRegion {
                    kind: RegionKind::Flag,
                    base: flags,
                    bytes: lines * LINE_BYTES,
                });
                tls_offset = Some(tls);
                // The root node of the combining tree closes the episode.
                episode_counter =
                    Some(counters + (levels as u64 - 1) * threads as u64 * LINE_BYTES);
                wake_addrs.extend((0..lines).map(|i| flags + i * LINE_BYTES));
                emit::sw_tree(asm, id, counters, flags, tls)?
            }
            FilterD => {
                let Some(bank) = self.pick_bank(1) else {
                    return self.create_inner(asm, space, SwCentral, requested, threads);
                };
                let a_base = space.alloc_bank_lines(bank, threads as u64)?;
                let e_base = space.alloc_bank_lines(bank, threads as u64)?;
                arrival_base = Some(a_base);
                regions.push(ProtocolSpec::thread_lines(
                    RegionKind::Arrival,
                    a_base,
                    threads,
                ));
                regions.push(ProtocolSpec::thread_lines(
                    RegionKind::Exit,
                    e_base,
                    threads,
                ));
                let cfg = self.table_config(a_base, Some(e_base), threads, ThreadState::Waiting);
                self.per_bank[bank].push(cfg);
                emit::filter_d(asm, id, a_base, e_base)?
            }
            FilterDPingPong => {
                let Some(bank) = self.pick_bank(2) else {
                    return self.create_inner(asm, space, SwCentral, requested, threads);
                };
                let a0 = space.alloc_bank_lines(bank, threads as u64)?;
                let a1 = space.alloc_bank_lines(bank, threads as u64)?;
                arrival_base = Some(a0);
                let tls = self.alloc_tls_slot()?;
                regions.push(ProtocolSpec::thread_lines(RegionKind::Arrival, a0, threads));
                regions.push(ProtocolSpec::thread_lines(
                    RegionKind::ArrivalAlt,
                    a1,
                    threads,
                ));
                tls_offset = Some(tls);
                let cfg = self.table_config(a0, Some(a1), threads, ThreadState::Waiting);
                self.per_bank[bank].push(cfg);
                let cfg = self.table_config(a1, Some(a0), threads, ThreadState::Servicing);
                self.per_bank[bank].push(cfg);
                emit::filter_d_ping_pong(asm, id, a0, a1, tls)?
            }
            FilterI => {
                let a_base = emit::arrival_stubs(asm, threads, granule);
                let bank = self.config.bank_of(a_base);
                if self.free_tables(bank) < 1 {
                    return self.create_inner(asm, space, SwCentral, requested, threads);
                }
                let e_base = space.alloc_bank_lines(bank, threads as u64)?;
                arrival_base = Some(a_base);
                regions.push(ProtocolSpec::thread_lines(
                    RegionKind::Arrival,
                    a_base,
                    threads,
                ));
                regions.push(ProtocolSpec::thread_lines(
                    RegionKind::Exit,
                    e_base,
                    threads,
                ));
                let cfg = self.table_config(a_base, Some(e_base), threads, ThreadState::Waiting);
                self.per_bank[bank].push(cfg);
                emit::filter_i(asm, id, a_base, e_base)?
            }
            FilterIPingPong => {
                let (a0, a1) = emit::arrival_stub_pair(asm, threads, granule);
                let bank = self.config.bank_of(a0);
                debug_assert_eq!(bank, self.config.bank_of(a1));
                if self.free_tables(bank) < 2 {
                    return self.create_inner(asm, space, SwCentral, requested, threads);
                }
                arrival_base = Some(a0);
                let tls = self.alloc_tls_slot()?;
                regions.push(ProtocolSpec::thread_lines(RegionKind::Arrival, a0, threads));
                regions.push(ProtocolSpec::thread_lines(
                    RegionKind::ArrivalAlt,
                    a1,
                    threads,
                ));
                tls_offset = Some(tls);
                let cfg = self.table_config(a0, Some(a1), threads, ThreadState::Waiting);
                self.per_bank[bank].push(cfg);
                let cfg = self.table_config(a1, Some(a0), threads, ThreadState::Servicing);
                self.per_bank[bank].push(cfg);
                emit::filter_i_ping_pong(asm, id, a0, a1, tls)?
            }
            HwDedicated => {
                let hw_id = self.hw_groups.len() as u16;
                self.hw_groups.push((hw_id, threads));
                hw_group = Some(hw_id);
                emit::hw_dedicated(asm, id, hw_id)?
            }
            SwHier => {
                let (_, nclusters, cpc_log2) = self.hier_geometry(threads)?;
                let local_counters = space.alloc_lines(nclusters as u64)?;
                let local_flags = space.alloc_lines(nclusters as u64)?;
                let global_counter = space.alloc_lines(1)?;
                let global_flag = space.alloc_lines(1)?;
                let tls = self.alloc_tls_slot()?;
                regions.push(SyncRegion {
                    kind: RegionKind::Counter,
                    base: local_counters,
                    bytes: nclusters as u64 * LINE_BYTES,
                });
                regions.push(SyncRegion {
                    kind: RegionKind::Flag,
                    base: local_flags,
                    bytes: nclusters as u64 * LINE_BYTES,
                });
                regions.push(SyncRegion {
                    kind: RegionKind::Counter,
                    base: global_counter,
                    bytes: LINE_BYTES,
                });
                regions.push(SyncRegion {
                    kind: RegionKind::Flag,
                    base: global_flag,
                    bytes: LINE_BYTES,
                });
                tls_offset = Some(tls);
                episode_counter = Some(global_counter);
                wake_addrs.push(global_flag);
                wake_addrs.extend((0..nclusters as u64).map(|k| local_flags + k * LINE_BYTES));
                emit::sw_hier(
                    asm,
                    id,
                    local_counters,
                    local_flags,
                    global_counter,
                    global_flag,
                    cpc_log2,
                    nclusters as u64,
                    tls,
                )?
            }
            FilterDHier => {
                let (cpc, nclusters, cpc_log2) = self.hier_geometry(threads)?;
                if cpc.max(nclusters) > self.capacity.max_threads {
                    return Err(BarrierError::TooManyThreads {
                        requested: cpc.max(nclusters),
                        max: self.capacity.max_threads,
                    });
                }
                let (a1, e1, ga, ge, a2, e2) = if nclusters == 1 {
                    // Degenerate: one cluster, so all three chained filter
                    // phases share a single bank.
                    let Some(bank) = self.pick_bank(3) else {
                        return self.create_inner(asm, space, SwHier, requested, threads);
                    };
                    let a1 = space.alloc_bank_lines(bank, threads as u64)?;
                    let e1 = space.alloc_bank_lines(bank, threads as u64)?;
                    let ga = space.alloc_bank_lines(bank, 1)?;
                    let ge = space.alloc_bank_lines(bank, 1)?;
                    let a2 = space.alloc_bank_lines(bank, threads as u64)?;
                    let e2 = space.alloc_bank_lines(bank, threads as u64)?;
                    let cfg = self.table_config(a1, Some(e1), threads, ThreadState::Waiting);
                    self.per_bank[bank].push(cfg);
                    let cfg = self.table_config(ga, Some(ge), 1, ThreadState::Waiting);
                    self.per_bank[bank].push(cfg);
                    let cfg = self.table_config(a2, Some(e2), threads, ThreadState::Waiting);
                    self.per_bank[bank].push(cfg);
                    (a1, e1, ga, ge, a2, e2)
                } else {
                    // Each cluster's slice of an arrival run must cover
                    // exactly its threads' lines, so slice k of every run is
                    // homed in cluster k's bank k.
                    if granule != cpc as u64 * LINE_BYTES {
                        return Err(BarrierError::Hierarchy(format!(
                            "bank granule is {granule} bytes but a cluster slice needs {} \
                             (cluster threads x line size)",
                            cpc as u64 * LINE_BYTES
                        )));
                    }
                    if nclusters > cpc {
                        return Err(BarrierError::Hierarchy(format!(
                            "{nclusters} leader lines do not fit one bank granule of {cpc} lines"
                        )));
                    }
                    // Banks 0..nclusters each host the cluster's b1 and b2
                    // tables; bank 0 additionally hosts the leaders' global
                    // filter.
                    let fits =
                        (0..nclusters).all(|k| self.free_tables(k) >= 2 + usize::from(k == 0));
                    if !fits {
                        return self.create_inner(asm, space, SwHier, requested, threads);
                    }
                    let a1 = space.alloc_granule_run(nclusters as u64)?;
                    let e1 = space.alloc_granule_run(nclusters as u64)?;
                    let a2 = space.alloc_granule_run(nclusters as u64)?;
                    let e2 = space.alloc_granule_run(nclusters as u64)?;
                    let ga = space.alloc_bank_lines(0, nclusters as u64)?;
                    let ge = space.alloc_bank_lines(0, nclusters as u64)?;
                    for k in 0..nclusters {
                        let off = k as u64 * granule;
                        let cfg =
                            self.table_config(a1 + off, Some(e1 + off), cpc, ThreadState::Waiting);
                        self.per_bank[k].push(cfg);
                    }
                    let cfg = self.table_config(ga, Some(ge), nclusters, ThreadState::Waiting);
                    self.per_bank[0].push(cfg);
                    for k in 0..nclusters {
                        let off = k as u64 * granule;
                        let cfg =
                            self.table_config(a2 + off, Some(e2 + off), cpc, ThreadState::Waiting);
                        self.per_bank[k].push(cfg);
                    }
                    (a1, e1, ga, ge, a2, e2)
                };
                arrival_base = Some(a1);
                regions.push(ProtocolSpec::thread_lines(RegionKind::Arrival, a1, threads));
                regions.push(ProtocolSpec::thread_lines(RegionKind::Exit, e1, threads));
                regions.push(SyncRegion {
                    kind: RegionKind::Arrival,
                    base: ga,
                    bytes: nclusters as u64 * LINE_BYTES,
                });
                regions.push(SyncRegion {
                    kind: RegionKind::Exit,
                    base: ge,
                    bytes: nclusters as u64 * LINE_BYTES,
                });
                regions.push(ProtocolSpec::thread_lines(RegionKind::Arrival, a2, threads));
                regions.push(ProtocolSpec::thread_lines(RegionKind::Exit, e2, threads));
                emit::filter_d_hier(asm, id, a1, e1, ga, ge, a2, e2, cpc_log2)?
            }
        };
        let protocol = ProtocolSpec {
            mechanism: actual,
            entry: label.clone(),
            threads,
            regions,
            tls_offset,
            hw_id: hw_group,
            episode_counter,
            wake_addrs,
        };
        Ok(Barrier {
            id,
            mechanism: actual,
            requested,
            label,
            threads,
            arrival_base,
            protocol,
        })
    }

    /// Register a *checked* D-cache filter barrier: like
    /// [`BarrierMechanism::FilterD`] but its runtime re-issues the arrival
    /// fill when the filter replies with the hardware-timeout error code
    /// (§3.3.4). Use together with [`set_timeout`](Self::set_timeout).
    /// Unlike [`create_barrier`](Self::create_barrier), exhaustion is an
    /// error rather than a software fallback (the caller asked for filter
    /// semantics specifically).
    ///
    /// # Errors
    ///
    /// Capacity exhaustion, allocation or assembler failures.
    pub fn create_checked_filter_d(
        &mut self,
        asm: &mut Asm,
        space: &mut AddressSpace,
        threads: usize,
    ) -> Result<Barrier, BarrierError> {
        if threads > self.capacity.max_threads {
            return Err(BarrierError::TooManyThreads {
                requested: threads,
                max: self.capacity.max_threads,
            });
        }
        let bank = self.pick_bank(1).ok_or(BarrierError::TooManyThreads {
            requested: threads,
            max: 0,
        })?;
        let id = self.next_id;
        self.next_id += 1;
        let a_base = space.alloc_bank_lines(bank, threads as u64)?;
        let e_base = space.alloc_bank_lines(bank, threads as u64)?;
        let cfg = self.table_config(a_base, Some(e_base), threads, ThreadState::Waiting);
        self.per_bank[bank].push(cfg);
        let label = emit::filter_d_checked(asm, id, a_base, e_base)?;
        let protocol = ProtocolSpec {
            mechanism: BarrierMechanism::FilterD,
            entry: label.clone(),
            threads,
            regions: vec![
                ProtocolSpec::thread_lines(RegionKind::Arrival, a_base, threads),
                ProtocolSpec::thread_lines(RegionKind::Exit, e_base, threads),
            ],
            tls_offset: None,
            hw_id: None,
            episode_counter: None,
            wake_addrs: Vec::new(),
        };
        Ok(Barrier {
            id,
            mechanism: BarrierMechanism::FilterD,
            requested: BarrierMechanism::FilterD,
            label,
            threads,
            arrival_base: Some(a_base),
            protocol,
        })
    }

    /// Program the filter tables into the L2 bank controllers, configure
    /// the dedicated network groups, and point every thread's `tls`
    /// register at its TLS block. Call after all threads have been added to
    /// the builder.
    ///
    /// # Errors
    ///
    /// [`BarrierError::ThreadCountMismatch`] or hook-installation failures.
    pub fn install(self, mb: &mut MachineBuilder) -> Result<(), BarrierError> {
        if mb.num_threads() != self.nthreads {
            return Err(BarrierError::ThreadCountMismatch {
                expected: self.nthreads,
                found: mb.num_threads(),
            });
        }
        for (bank, configs) in self.per_bank.iter().enumerate() {
            if configs.is_empty() {
                continue;
            }
            let tables = configs.iter().cloned().map(FilterTable::new).collect();
            mb.install_hook(bank, Box::new(FilterBank::new(tables)))?;
        }
        for &(hw_id, threads) in &self.hw_groups {
            mb.configure_hw_barrier(hw_id, (0..threads).collect());
        }
        for t in 0..self.nthreads {
            mb.set_thread_reg(t, Reg::TLS, self.tls_addr(t));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimConfig, AddressSpace, Asm) {
        let config = SimConfig::with_cores(4);
        let space = AddressSpace::new(&config);
        (config, space, Asm::new())
    }

    #[test]
    fn creates_every_mechanism() {
        let (config, mut space, mut asm) = setup();
        let mut sys = BarrierSystem::new(&config, 4, &mut space).unwrap();
        for m in BarrierMechanism::ALL {
            let b = sys.create_barrier(&mut asm, &mut space, m, 4).unwrap();
            assert_eq!(b.mechanism(), m);
            assert!(!b.is_fallback());
        }
        asm.halt();
        asm.assemble().unwrap();
    }

    #[test]
    fn filter_exhaustion_falls_back_to_software() {
        let (config, mut space, mut asm) = setup();
        let cap = FilterCapacity {
            tables_per_bank: 1,
            max_threads: 64,
        };
        let mut sys = BarrierSystem::with_capacity(&config, 4, &mut space, cap).unwrap();
        // one entry/exit filter per bank fits …
        for _ in 0..config.l2_banks {
            let b = sys
                .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterD, 4)
                .unwrap();
            assert!(!b.is_fallback());
        }
        // … the next request falls back
        let b = sys
            .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterD, 4)
            .unwrap();
        assert!(b.is_fallback());
        assert_eq!(b.mechanism(), BarrierMechanism::SwCentral);
        assert_eq!(b.requested(), BarrierMechanism::FilterD);
    }

    #[test]
    fn ping_pong_needs_two_slots() {
        let (config, mut space, mut asm) = setup();
        let cap = FilterCapacity {
            tables_per_bank: 1,
            max_threads: 64,
        };
        let mut sys = BarrierSystem::with_capacity(&config, 4, &mut space, cap).unwrap();
        let b = sys
            .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterDPingPong, 4)
            .unwrap();
        assert!(b.is_fallback(), "one slot per bank cannot host a pair");
    }

    #[test]
    fn too_many_threads_is_an_error_not_a_fallback() {
        let (config, mut space, mut asm) = setup();
        let mut sys = BarrierSystem::new(&config, 4, &mut space).unwrap();
        let err = sys
            .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterD, 65)
            .unwrap_err();
        assert!(matches!(err, BarrierError::TooManyThreads { .. }));
    }

    #[test]
    fn tls_blocks_are_disjoint_per_thread() {
        let (config, mut space, _) = setup();
        let sys = BarrierSystem::new(&config, 4, &mut space).unwrap();
        let addrs: Vec<u64> = (0..4).map(|t| sys.tls_addr(t)).collect();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= TLS_BYTES_PER_THREAD);
        }
    }

    #[test]
    fn hier_mechanisms_on_a_clustered_machine() {
        let config = SimConfig::clustered(64, 4);
        let mut space = AddressSpace::new(&config);
        let mut asm = Asm::new();
        let mut sys = BarrierSystem::new(&config, 64, &mut space).unwrap();
        for m in [BarrierMechanism::SwHier, BarrierMechanism::FilterDHier] {
            let b = sys.create_barrier(&mut asm, &mut space, m, 64).unwrap();
            assert_eq!(b.mechanism(), m);
            assert!(!b.is_fallback());
            assert_eq!(b.threads(), 64);
        }
        asm.halt();
        asm.assemble().unwrap();
    }

    #[test]
    fn hier_filter_shards_tables_across_cluster_banks() {
        let config = SimConfig::clustered(64, 4);
        let mut space = AddressSpace::new(&config);
        let mut asm = Asm::new();
        let mut sys = BarrierSystem::new(&config, 64, &mut space).unwrap();
        let b = sys
            .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterDHier, 64)
            .unwrap();
        // b1 + b2 per cluster bank, plus the leaders' global table in bank 0.
        assert_eq!(sys.free_tables(0), sys.capacity.tables_per_bank - 3);
        for k in 1..4 {
            assert_eq!(sys.free_tables(k), sys.capacity.tables_per_bank - 2);
        }
        // Slice k of the arrival run is homed in cluster k's bank.
        let a1 = b.arrival_base().unwrap();
        for k in 0..4usize {
            let bank = config.bank_of(a1 + k as u64 * config.bank_granule());
            assert_eq!(config.cluster_of_bank(bank), k);
        }
    }

    #[test]
    fn hier_mechanisms_degenerate_on_the_flat_machine() {
        let (config, mut space, mut asm) = setup();
        let mut sys = BarrierSystem::new(&config, 4, &mut space).unwrap();
        for m in [BarrierMechanism::SwHier, BarrierMechanism::FilterDHier] {
            let b = sys.create_barrier(&mut asm, &mut space, m, 4).unwrap();
            assert_eq!(b.mechanism(), m);
            assert!(!b.is_fallback());
        }
        asm.halt();
        asm.assemble().unwrap();
    }

    #[test]
    fn hier_rejects_partial_clusters() {
        let config = SimConfig::clustered(64, 4);
        let mut space = AddressSpace::new(&config);
        let mut asm = Asm::new();
        let mut sys = BarrierSystem::new(&config, 64, &mut space).unwrap();
        for m in [BarrierMechanism::SwHier, BarrierMechanism::FilterDHier] {
            let err = sys.create_barrier(&mut asm, &mut space, m, 24).unwrap_err();
            assert!(matches!(err, BarrierError::Hierarchy(_)), "{err}");
            let msg = err.to_string();
            assert!(
                msg.contains("whole clusters"),
                "diagnostic names the rule: {msg}"
            );
        }
    }

    #[test]
    fn hier_filter_exhaustion_falls_back_to_sw_hier() {
        let config = SimConfig::clustered(64, 4);
        let mut space = AddressSpace::new(&config);
        let mut asm = Asm::new();
        let cap = FilterCapacity {
            tables_per_bank: 1,
            max_threads: 64,
        };
        let mut sys = BarrierSystem::with_capacity(&config, 64, &mut space, cap).unwrap();
        let b = sys
            .create_barrier(&mut asm, &mut space, BarrierMechanism::FilterDHier, 64)
            .unwrap();
        assert!(b.is_fallback());
        assert_eq!(b.mechanism(), BarrierMechanism::SwHier);
        assert_eq!(b.requested(), BarrierMechanism::FilterDHier);
    }

    #[test]
    fn install_requires_matching_thread_count() {
        let (config, mut space, mut asm) = setup();
        let mut sys = BarrierSystem::new(&config, 4, &mut space).unwrap();
        sys.create_barrier(&mut asm, &mut space, BarrierMechanism::SwCentral, 4)
            .unwrap();
        asm.label("entry").unwrap();
        asm.halt();
        let program = asm.assemble().unwrap();
        let entry = program.require_symbol("entry").unwrap();
        let mut mb = MachineBuilder::new(config, program).unwrap();
        mb.add_thread(entry); // only one of four
        assert!(matches!(
            sys.install(&mut mb),
            Err(BarrierError::ThreadCountMismatch {
                expected: 4,
                found: 1
            })
        ));
    }
}
