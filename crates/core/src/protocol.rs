//! Machine-readable description of a barrier's synchronization protocol.
//!
//! Every [`Barrier`](crate::Barrier) carries a [`ProtocolSpec`] recording
//! which memory ranges its runtime routine uses for synchronization and
//! what role each range plays. Static analyzers use it to check the
//! emitted routine against the mechanism's contract (e.g. "every `dcbi`
//! of an arrival line is followed by a fetch of that line"), and the
//! dynamic race detector uses it to tell synchronization traffic apart
//! from data traffic and to place happens-before edges at barrier
//! releases.
//!
//! The spec is purely descriptive: nothing in the simulator consults it.

use sim_isa::LINE_BYTES;

use crate::mechanism::BarrierMechanism;

/// The role a memory range plays in a barrier protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Software arrival counter line(s), updated with LL/SC.
    Counter,
    /// Software release flag line(s), spun on by waiting threads.
    Flag,
    /// Filter arrival lines: thread `t` signals through
    /// `base + LINE_BYTES * t`. For I-cache filters this range lies in
    /// the code region (the arrival stubs).
    Arrival,
    /// The alternate arrival range of a ping-pong pair; episodes
    /// alternate between [`Arrival`](RegionKind::Arrival) and this.
    ArrivalAlt,
    /// Filter exit lines, invalidated on the way out so the next
    /// episode starts clean.
    Exit,
}

impl RegionKind {
    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::Counter => "counter",
            RegionKind::Flag => "flag",
            RegionKind::Arrival => "arrival",
            RegionKind::ArrivalAlt => "arrival-alt",
            RegionKind::Exit => "exit",
        }
    }
}

/// One synchronization address range of a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncRegion {
    /// Role of the range.
    pub kind: RegionKind,
    /// First byte of the range (line-aligned).
    pub base: u64,
    /// Length in bytes (a multiple of [`LINE_BYTES`]).
    pub bytes: u64,
}

impl SyncRegion {
    /// Whether `addr` falls inside this range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.bytes
    }
}

/// Everything an analyzer needs to know about one registered barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// The mechanism actually backing the barrier (after any fallback).
    pub mechanism: BarrierMechanism,
    /// Entry label of the emitted routine.
    pub entry: String,
    /// Participating threads.
    pub threads: usize,
    /// Synchronization ranges, in protocol order (arrival before exit,
    /// primary before alternate).
    pub regions: Vec<SyncRegion>,
    /// TLS slot offset holding this barrier's sense flag, when the
    /// protocol is sense-reversing.
    pub tls_offset: Option<i64>,
    /// Dedicated-network barrier id, for [`BarrierMechanism::HwDedicated`].
    pub hw_id: Option<u16>,
    /// Address of the word that counts arrivals for a whole episode (the
    /// top-level counter of a software barrier). The model checker samples
    /// it when rendering counterexample schedules; filter and dedicated
    /// mechanisms track arrivals in hardware and leave this `None`.
    pub episode_counter: Option<u64>,
    /// Words whose writes can wake a spinning thread (software release
    /// flags, in protocol order). The model checker classifies a stuck
    /// state as a *lost wakeup* (rather than a structural deadlock) when a
    /// thread is still spinning on one of these and no enabled transition
    /// can ever write it again.
    pub wake_addrs: Vec<u64>,
}

impl ProtocolSpec {
    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: u64) -> Option<&SyncRegion> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Whether `addr` lies in any synchronization range.
    pub fn is_sync_addr(&self, addr: u64) -> bool {
        self.region_of(addr).is_some()
    }

    /// The regions with role `kind`.
    pub fn regions_of_kind(&self, kind: RegionKind) -> impl Iterator<Item = &SyncRegion> {
        self.regions.iter().filter(move |r| r.kind == kind)
    }

    /// Convenience constructor for a line-per-thread filter range.
    pub(crate) fn thread_lines(kind: RegionKind, base: u64, threads: usize) -> SyncRegion {
        SyncRegion {
            kind,
            base,
            bytes: threads as u64 * LINE_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_containment_is_half_open() {
        let r = SyncRegion {
            kind: RegionKind::Arrival,
            base: 0x1000,
            bytes: 2 * LINE_BYTES,
        };
        assert!(r.contains(0x1000));
        assert!(r.contains(0x1000 + 2 * LINE_BYTES - 1));
        assert!(!r.contains(0x1000 + 2 * LINE_BYTES));
        assert!(!r.contains(0xfff));
    }

    #[test]
    fn spec_lookup_finds_the_right_region() {
        let spec = ProtocolSpec {
            mechanism: BarrierMechanism::FilterD,
            entry: "bar0_filter_d".into(),
            threads: 4,
            regions: vec![
                ProtocolSpec::thread_lines(RegionKind::Arrival, 0x2000, 4),
                ProtocolSpec::thread_lines(RegionKind::Exit, 0x3000, 4),
            ],
            tls_offset: None,
            hw_id: None,
            episode_counter: None,
            wake_addrs: Vec::new(),
        };
        assert_eq!(spec.region_of(0x2040).unwrap().kind, RegionKind::Arrival);
        assert_eq!(spec.region_of(0x30ff).unwrap().kind, RegionKind::Exit);
        assert!(spec.region_of(0x4000).is_none());
        assert!(spec.is_sync_addr(0x2000));
        assert_eq!(spec.regions_of_kind(RegionKind::Exit).count(), 1);
    }
}
