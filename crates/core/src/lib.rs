//! `barrier-filter`: fast barrier synchronization for chip multiprocessors
//! by starving cache fill requests.
//!
//! This crate is the primary contribution of *"Exploiting Fine-Grained Data
//! Parallelism with Chip Multiprocessors and Fast Barriers"* (MICRO 2006):
//! the **barrier filter**, a state table placed in the shared L2 cache
//! controller that
//!
//! 1. observes `icbi`/`dcbi` invalidation messages for per-thread *arrival
//!    addresses* (the signal that a thread reached the barrier),
//! 2. **starves** the fill request each thread then issues for its arrival
//!    line — the thread stalls on an ordinary cache miss, with no busy
//!    waiting, no locks and no spurious coherence traffic — and
//! 3. services all the starved fills at once when the last thread arrives.
//!
//! The crate provides:
//!
//! * the per-thread FSM of Figure 3 ([`fsm`]), the filter state table of
//!   Figure 2 ([`FilterTable`]), and the per-bank replicated filter
//!   ([`FilterBank`]) that plugs into the simulator's L2 controllers via
//!   [`cmp_sim::BankHook`];
//! * the OS layer of §3.3 ([`BarrierSystem`]): barrier registration,
//!   bank-homed address allocation, software fallback, context-switch and
//!   swap-out support, and optional strict error checking / hardware
//!   timeouts (§3.3.4);
//! * runtime code ([`emit`]) for all seven mechanisms of §4: the I-cache
//!   and D-cache filter barriers (each in entry/exit and ping-pong form),
//!   the centralized and combining-tree software barriers, and the
//!   dedicated-network hardware baseline.
//!
//! # Example
//!
//! ```
//! use barrier_filter::{BarrierMechanism, BarrierSystem};
//! use cmp_sim::{AddressSpace, MachineBuilder, SimConfig};
//! use sim_isa::Asm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SimConfig::with_cores(4);
//! let mut space = AddressSpace::new(&config);
//! let mut asm = Asm::new();
//! let mut sys = BarrierSystem::new(&config, 4, &mut space)?;
//! let barrier = sys.create_barrier(&mut asm, &mut space, BarrierMechanism::FilterD, 4)?;
//!
//! // a kernel that crosses the barrier 8 times and halts
//! asm.label("entry")?;
//! asm.li(sim_isa::Reg::S0, 8);
//! asm.label("loop")?;
//! barrier.emit_call(&mut asm);
//! asm.addi(sim_isa::Reg::S0, sim_isa::Reg::S0, -1);
//! asm.bne(sim_isa::Reg::S0, sim_isa::Reg::ZERO, "loop");
//! asm.halt();
//!
//! let program = asm.assemble()?;
//! let entry = program.require_symbol("entry").unwrap();
//! let mut mb = MachineBuilder::new(config, program)?;
//! for _ in 0..4 {
//!     mb.add_thread(entry);
//! }
//! sys.install(&mut mb)?;
//! let mut machine = mb.build()?;
//! let summary = machine.run()?;
//! assert!(summary.cycles > 0);
//! # Ok(())
//! # }
//! ```

mod bank;
pub mod emit;
pub mod fsm;
mod mechanism;
mod protocol;
mod system;
mod table;

pub use bank::FilterBank;
pub use fsm::{FsmAction, FsmEvent, FsmViolation, ThreadState};
pub use mechanism::{BarrierMechanism, ParseMechanismError};
pub use protocol::{ProtocolSpec, RegionKind, SyncRegion};
pub use system::{Barrier, BarrierError, BarrierSystem, FilterCapacity};
pub use table::{
    FilterTable, FilterTableConfig, FilterTableStats, SavedFilter, TableFill, TableInvalidate,
};
