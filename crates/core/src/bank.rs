//! A replicated filter bank: the `B` filter tables attached to one L2 bank
//! controller (Figure 1), wired into the simulator through
//! [`cmp_sim::BankHook`].
//!
//! "When an address invalidate is seen, an associative lookup is performed
//! in each barrier filter to see if the address matches the arrival or exit
//! address for any of the filters" (§3.2). A single invalidation may match
//! several tables at once — in a ping-pong pair one barrier's arrival range
//! is the other's exit range — so every table observes every message.

use std::collections::HashMap;

use cmp_sim::{BankHook, FillDecision, HookOutcome, HookViolation, ParkToken};

use crate::table::{FilterTable, FilterTableStats, TableFill};

/// The filter hardware of one L2 bank.
#[derive(Debug)]
pub struct FilterBank {
    tables: Vec<FilterTable>,
    /// Which table parked each outstanding token (for cancellation).
    owners: HashMap<ParkToken, usize>,
}

impl FilterBank {
    /// Assemble a bank from its programmed tables.
    pub fn new(tables: Vec<FilterTable>) -> FilterBank {
        FilterBank {
            tables,
            owners: HashMap::new(),
        }
    }

    /// Number of tables programmed into this bank.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Stats of table `i`.
    pub fn table_stats(&self, i: usize) -> FilterTableStats {
        self.tables[i].stats()
    }

    /// Aggregate stats across the bank's tables.
    pub fn total_stats(&self) -> FilterTableStats {
        let mut agg = FilterTableStats::default();
        for t in &self.tables {
            let s = t.stats();
            agg.arrivals += s.arrivals;
            agg.exits += s.exits;
            agg.parked += s.parked;
            agg.serviced += s.serviced;
            agg.episodes += s.episodes;
            agg.timeout_errors += s.timeout_errors;
        }
        agg
    }

    /// Borrow a table (tests/diagnostics).
    pub fn table(&self, i: usize) -> &FilterTable {
        &self.tables[i]
    }
}

impl BankHook for FilterBank {
    fn on_invalidate(
        &mut self,
        line: u64,
        _now: u64,
        out: &mut HookOutcome,
    ) -> Result<(), HookViolation> {
        for (i, table) in self.tables.iter_mut().enumerate() {
            let r = table
                .on_invalidate(line)
                .map_err(|v| HookViolation::new(format!("filter table {i}: {v}")))?;
            for token in &r.released {
                self.owners.remove(token);
            }
            out.released.extend(r.released);
        }
        Ok(())
    }

    fn on_fill_request(
        &mut self,
        line: u64,
        token: ParkToken,
        now: u64,
        _out: &mut HookOutcome,
    ) -> Result<FillDecision, HookViolation> {
        for (i, table) in self.tables.iter_mut().enumerate() {
            match table
                .on_fill(line, token, now)
                .map_err(|v| HookViolation::new(format!("filter table {i}: {v}")))?
            {
                TableFill::NotMine => continue,
                TableFill::Park => {
                    self.owners.insert(token, i);
                    return Ok(FillDecision::Park);
                }
                TableFill::Service => return Ok(FillDecision::Service),
            }
        }
        Ok(FillDecision::NotMine)
    }

    fn on_cancel(&mut self, token: ParkToken) {
        if let Some(i) = self.owners.remove(&token) {
            self.tables[i].cancel(token);
        }
    }

    fn deadline(&self) -> Option<u64> {
        self.tables.iter().filter_map(FilterTable::deadline).min()
    }

    fn on_deadline(&mut self, now: u64, out: &mut HookOutcome) {
        for table in &mut self.tables {
            table.expire(now, &mut out.errored);
        }
        for token in &out.errored {
            self.owners.remove(token);
        }
    }

    /// §3.3.3 OS re-arm after a migration: save and restore every table
    /// through the swap path. A round trip is state-preserving, so a
    /// successful reprogram is observable only through this path's own
    /// refusal case — a table still holding parked fills, the §3.3.4
    /// misprogramming the fault harness counts as a recoverable violation.
    fn reprogram(&mut self) -> Result<(), HookViolation> {
        for (i, table) in self.tables.iter_mut().enumerate() {
            let saved = table
                .try_swap_out()
                .map_err(|v| HookViolation::new(format!("filter table {i}: {v}")))?;
            table.swap_in(saved);
        }
        Ok(())
    }

    fn pending_parks(&self) -> usize {
        self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::ThreadState;
    use crate::table::FilterTableConfig;

    const A0: u64 = 0x2000_0000;
    const A1: u64 = 0x2000_1000;

    fn ping_pong_bank(n: usize) -> FilterBank {
        let t0 = FilterTable::new(FilterTableConfig {
            arrival_base: A0,
            exit_base: Some(A1),
            num_threads: n,
            initial_state: ThreadState::Waiting,
            strict: false,
            timeout: None,
        });
        let t1 = FilterTable::new(FilterTableConfig {
            arrival_base: A1,
            exit_base: Some(A0),
            num_threads: n,
            initial_state: ThreadState::Servicing,
            strict: false,
            timeout: None,
        });
        FilterBank::new(vec![t0, t1])
    }

    #[test]
    fn ping_pong_invalidate_matches_both_tables() {
        let mut bank = ping_pong_bank(2);
        let mut out = HookOutcome::default();
        // thread 0 invalidates its A0 line: arrival for table 0, exit for
        // table 1 (whose threads start Servicing)
        bank.on_invalidate(A0, 0, &mut out).unwrap();
        assert_eq!(bank.table(0).thread_state(0), ThreadState::Blocking);
        assert_eq!(bank.table(1).thread_state(0), ThreadState::Waiting);
    }

    #[test]
    fn ping_pong_alternates_episodes() {
        let mut bank = ping_pong_bank(2);
        let mut token = 0u64;
        for round in 0..4 {
            let (arr, _exit) = if round % 2 == 0 { (A0, A1) } else { (A1, A0) };
            let mut out = HookOutcome::default();
            bank.on_invalidate(arr, 0, &mut out).unwrap();
            token += 1;
            assert_eq!(
                bank.on_fill_request(arr, ParkToken(token), 0, &mut out)
                    .unwrap(),
                FillDecision::Park
            );
            let mut out = HookOutcome::default();
            bank.on_invalidate(arr + 64, 0, &mut out).unwrap();
            assert_eq!(out.released.len(), 1, "round {round} releases the fill");
            // the second thread's own fill is serviced
            token += 1;
            assert_eq!(
                bank.on_fill_request(arr + 64, ParkToken(token), 0, &mut out)
                    .unwrap(),
                FillDecision::Service
            );
        }
        assert_eq!(bank.total_stats().episodes, 4);
    }

    #[test]
    fn unknown_lines_fall_through() {
        let mut bank = ping_pong_bank(2);
        let mut out = HookOutcome::default();
        assert_eq!(
            bank.on_fill_request(0x7777_0000, ParkToken(1), 0, &mut out)
                .unwrap(),
            FillDecision::NotMine
        );
        bank.on_invalidate(0x7777_0000, 0, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn cancel_routes_to_owning_table() {
        let mut bank = ping_pong_bank(2);
        let mut out = HookOutcome::default();
        bank.on_invalidate(A0, 0, &mut out).unwrap();
        bank.on_fill_request(A0, ParkToken(42), 0, &mut out)
            .unwrap();
        bank.on_cancel(ParkToken(42));
        // the re-issued fill parks again (thread still Blocking)
        assert_eq!(
            bank.on_fill_request(A0, ParkToken(43), 0, &mut out)
                .unwrap(),
            FillDecision::Park
        );
    }

    #[test]
    fn violation_names_the_table() {
        let mut bank = ping_pong_bank(2);
        let mut out = HookOutcome::default();
        let err = bank
            .on_fill_request(A0, ParkToken(1), 0, &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("filter table 0"));
    }

    #[test]
    fn deadline_aggregates_tables() {
        let mut cfg = FilterTableConfig::entry_exit(A0, A1, 1);
        cfg.timeout = Some(100);
        let mut bank = FilterBank::new(vec![FilterTable::new(cfg)]);
        assert_eq!(BankHook::deadline(&bank), None);
        let mut out = HookOutcome::default();
        bank.on_invalidate(A0, 5, &mut out).unwrap();
        // a one-thread barrier opens immediately; force a parked state via a
        // two-thread table instead
        let mut cfg = FilterTableConfig::entry_exit(A0, A1, 2);
        cfg.timeout = Some(100);
        let mut bank = FilterBank::new(vec![FilterTable::new(cfg)]);
        bank.on_invalidate(A0, 5, &mut out).unwrap();
        bank.on_fill_request(A0, ParkToken(1), 7, &mut out).unwrap();
        assert_eq!(BankHook::deadline(&bank), Some(107));
        let mut out = HookOutcome::default();
        bank.on_deadline(107, &mut out);
        assert_eq!(out.errored, vec![ParkToken(1)]);
    }
}
