//! The per-thread finite state automaton of Figure 3.
//!
//! A thread is represented in a barrier filter by a two-bit state:
//! *Waiting-on-arrival* → *Blocked-until-release* → *Service-until-exit* →
//! back to *Waiting*. Invalid transitions are the architectural error cases
//! of §3.3.4 and surface as [`FsmViolation`]s, which the filter converts to
//! exceptions.

use std::fmt;

/// The two-bit per-thread state of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// Waiting-on-arrival: the thread has not signalled this barrier yet.
    Waiting,
    /// Blocked-until-release: the thread invalidated its arrival address and
    /// (typically) has a starved fill request pending.
    Blocking,
    /// Service-until-exit: the barrier opened; fills for the arrival address
    /// are serviced until the thread invalidates its exit address.
    Servicing,
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThreadState::Waiting => "Waiting",
            ThreadState::Blocking => "Blocking",
            ThreadState::Servicing => "Servicing",
        })
    }
}

/// An input symbol to the FSM: what the filter observed for a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmEvent {
    /// An invalidation of the thread's arrival address.
    ArrivalInvalidate,
    /// A fill request for the thread's arrival address.
    ArrivalFill,
    /// An invalidation of the thread's exit address.
    ExitInvalidate,
}

/// What the filter should do in response to a (state, event) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmAction {
    /// Transition into the new state; for `Waiting + ArrivalInvalidate` the
    /// caller also increments the arrived counter.
    Transition(ThreadState),
    /// Stay in place (e.g. a repeated arrival invalidate while Blocking,
    /// which Figure 3 draws as a self-loop).
    Stay,
    /// Park the fill request (starve it until the barrier opens).
    Park,
    /// Service the fill request immediately (barrier already open).
    Service,
}

/// An invalid transition: the §3.3.4 error cases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmViolation {
    /// State the thread was in.
    pub state: ThreadState,
    /// Event that arrived.
    pub event: FsmEvent,
}

impl fmt::Display for FsmViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.event {
            FsmEvent::ArrivalInvalidate => "arrival-address invalidate",
            FsmEvent::ArrivalFill => "arrival-address fill request",
            FsmEvent::ExitInvalidate => "exit-address invalidate",
        };
        write!(
            f,
            "{what} while the thread is in the {} state (incorrect barrier \
             implementation or use, §3.3.4)",
            self.state
        )
    }
}

/// Evaluate the FSM of Figure 3.
///
/// `strict` additionally rejects a repeated arrival invalidate while
/// Blocking. Figure 3 draws that case as a self-loop ("the thread will stay
/// in the Blocking state") while the debugging discussion of §3.3.4 lists it
/// as an error; the default follows Figure 3 and `strict` follows §3.3.4.
///
/// # Errors
///
/// Returns the violation for any transition Figure 3 does not permit.
pub fn step(state: ThreadState, event: FsmEvent, strict: bool) -> Result<FsmAction, FsmViolation> {
    use FsmEvent::*;
    use ThreadState::*;
    match (state, event) {
        (Waiting, ArrivalInvalidate) => Ok(FsmAction::Transition(Blocking)),
        (Blocking, ArrivalInvalidate) if !strict => Ok(FsmAction::Stay),
        (Blocking, ArrivalFill) => Ok(FsmAction::Park),
        (Servicing, ArrivalFill) => Ok(FsmAction::Service),
        (Servicing, ExitInvalidate) => Ok(FsmAction::Transition(Waiting)),
        _ => Err(FsmViolation { state, event }),
    }
}

#[cfg(test)]
mod tests {
    use super::FsmAction::*;
    use super::FsmEvent::*;
    use super::ThreadState::*;
    use super::*;

    #[test]
    fn legal_cycle() {
        assert_eq!(
            step(Waiting, ArrivalInvalidate, false),
            Ok(Transition(Blocking))
        );
        assert_eq!(step(Blocking, ArrivalFill, false), Ok(Park));
        // (the table, not the FSM, performs the Blocking -> Servicing move
        // when the last thread arrives)
        assert_eq!(step(Servicing, ArrivalFill, false), Ok(Service));
        assert_eq!(
            step(Servicing, ExitInvalidate, false),
            Ok(Transition(Waiting))
        );
    }

    #[test]
    fn blocking_self_loop_is_lenient_by_default() {
        assert_eq!(step(Blocking, ArrivalInvalidate, false), Ok(Stay));
        assert!(step(Blocking, ArrivalInvalidate, true).is_err());
    }

    #[test]
    fn error_cases_of_3_3_4() {
        // fill while Waiting
        assert!(step(Waiting, ArrivalFill, false).is_err());
        // arrival invalidate while Servicing
        assert!(step(Servicing, ArrivalInvalidate, false).is_err());
        // exit invalidate while Waiting or Blocking
        assert!(step(Waiting, ExitInvalidate, false).is_err());
        assert!(step(Blocking, ExitInvalidate, false).is_err());
    }

    #[test]
    fn violation_messages_name_the_state() {
        let v = step(Waiting, ArrivalFill, false).unwrap_err();
        let msg = v.to_string();
        assert!(msg.contains("Waiting"));
        assert!(msg.contains("fill request"));
    }

    #[test]
    fn display_of_states() {
        assert_eq!(Waiting.to_string(), "Waiting");
        assert_eq!(Blocking.to_string(), "Blocking");
        assert_eq!(Servicing.to_string(), "Servicing");
    }
}
