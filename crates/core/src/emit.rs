//! Assembly emitters for the barrier runtime library.
//!
//! Each emitter appends one callable routine (`jal ra, <label>` … `ret`) to
//! the program and returns its label. Routines follow a fixed clobber
//! convention so kernels can keep state live across barrier calls:
//!
//! > **Barrier routines may clobber `ra`, `k0`, `k1`, `t6`–`t9` only.**
//!
//! Every routine is preceded by a jump over its own body, so falling off the
//! end of earlier code can never execute a barrier routine by accident.

use sim_isa::{Asm, AsmError, Reg, INSTRS_PER_LINE, INSTR_BYTES, LINE_BYTES};

/// Per-thread arrival (or exit) line for a range based at `base`:
/// `base + tid * 64`, computed into `k0` (clobbers `k1`).
fn per_thread_line(a: &mut Asm, base: u64) {
    a.li(Reg::K0, base as i64);
    a.slli(Reg::K1, Reg::TID, 6);
    a.add(Reg::K0, Reg::K0, Reg::K1);
}

/// Emit the centralized sense-reversal software barrier (§4's baseline):
/// one LL/SC fetch-and-increment on a counter line, the last thread resets
/// the counter and toggles a release flag line, everyone else spins locally
/// on the flag.
///
/// # Errors
///
/// Propagates assembler label errors.
pub fn sw_central(
    a: &mut Asm,
    id: usize,
    counter: u64,
    flag: u64,
    tls_off: i64,
) -> Result<String, AsmError> {
    let entry = format!("bar{id}_sw_central");
    let skip = format!("bar{id}_skip");
    a.j(skip.as_str());
    a.label(&entry)?;
    // sense ^= 1 (thread-local line: no coherence traffic)
    a.ldd(Reg::T8, Reg::TLS, tls_off);
    a.xori(Reg::T8, Reg::T8, 1);
    a.std(Reg::T8, Reg::TLS, tls_off);
    // fetch-and-increment the counter with ldq_l/stq_c
    a.li(Reg::K0, counter as i64);
    a.label(format!("bar{id}_retry").as_str())?;
    a.ll(Reg::T9, Reg::K0, 0);
    a.addi(Reg::T9, Reg::T9, 1);
    a.sc(Reg::K1, Reg::T9, Reg::K0, 0);
    a.beq(Reg::K1, Reg::ZERO, format!("bar{id}_retry").as_str());
    a.bne(Reg::T9, Reg::NTID, format!("bar{id}_wait").as_str());
    // last arrival: reset the counter, then toggle the release flag
    a.std(Reg::ZERO, Reg::K0, 0);
    a.li(Reg::K0, flag as i64);
    a.std(Reg::T8, Reg::K0, 0);
    a.ret();
    a.label(format!("bar{id}_wait").as_str())?;
    a.li(Reg::K0, flag as i64);
    a.label(format!("bar{id}_spin").as_str())?;
    a.ldd(Reg::K1, Reg::K0, 0);
    a.bne(Reg::K1, Reg::T8, format!("bar{id}_spin").as_str());
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

/// Emit the binary combining-tree software barrier: "a binary
/// combining-tree of such barriers" (§4) — each tree node is a two-thread
/// centralized sense-reversal barrier (LL/SC counter + release flag, every
/// one on its own cache line).
///
/// The last thread to increment a node's counter resets it and ascends;
/// the first spins on the node's flag. The thread that clears the root
/// (or a spinner once released) walks back down, toggling the flag of
/// every node it passed on the way up.
///
/// Node `(level, id)`'s counter lives at `counters + (level*T + id) * 64`
/// and its flag at the same offset from `flags`.
///
/// # Errors
///
/// Propagates assembler label errors.
pub fn sw_tree(
    a: &mut Asm,
    id: usize,
    counters: u64,
    flags: u64,
    tls_off: i64,
) -> Result<String, AsmError> {
    let entry = format!("bar{id}_sw_tree");
    let skip = format!("bar{id}_skip");
    let ascend = format!("bar{id}_ascend");
    let retry = format!("bar{id}_retry");
    let spin = format!("bar{id}_spin");
    let last = format!("bar{id}_last");
    let up = format!("bar{id}_up");
    let descend = format!("bar{id}_descend");
    let ddown = format!("bar{id}_ddown");
    let done = format!("bar{id}_done");

    a.j(skip.as_str());
    a.label(&entry)?;
    // sense ^= 1
    a.ldd(Reg::T8, Reg::TLS, tls_off);
    a.xori(Reg::T8, Reg::T8, 1);
    a.std(Reg::T8, Reg::TLS, tls_off);
    a.li(Reg::T6, 0); // level
    a.label(&ascend)?;
    // node = tid >> (level+1); partner subtree base = ((node<<1)|1) << level
    a.addi(Reg::T7, Reg::T6, 1);
    a.srl(Reg::T9, Reg::TID, Reg::T7);
    a.slli(Reg::K1, Reg::T9, 1);
    a.ori(Reg::K1, Reg::K1, 1);
    a.sll(Reg::K1, Reg::K1, Reg::T6);
    a.bge(Reg::K1, Reg::NTID, up.as_str()); // no partner: ascend directly
                                            // t7 = byte offset of node (level*T + node) * 64
    a.mul(Reg::T7, Reg::T6, Reg::NTID);
    a.add(Reg::T7, Reg::T7, Reg::T9);
    a.slli(Reg::T7, Reg::T7, 6);
    // fetch-and-increment the node counter with ldq_l/stq_c
    a.li(Reg::K0, counters as i64);
    a.add(Reg::K0, Reg::K0, Reg::T7);
    a.label(&retry)?;
    a.ll(Reg::T9, Reg::K0, 0);
    a.addi(Reg::T9, Reg::T9, 1);
    a.sc(Reg::K1, Reg::T9, Reg::K0, 0);
    a.beq(Reg::K1, Reg::ZERO, retry.as_str());
    a.li(Reg::K1, 2);
    a.beq(Reg::T9, Reg::K1, last.as_str());
    // first arriver: spin on this node's flag
    a.li(Reg::K0, flags as i64);
    a.add(Reg::K0, Reg::K0, Reg::T7);
    a.label(&spin)?;
    a.ldd(Reg::T9, Reg::K0, 0);
    a.bne(Reg::T9, Reg::T8, spin.as_str());
    a.j(descend.as_str());
    a.label(&last)?;
    // last arriver: reset the counter, ascend
    a.std(Reg::ZERO, Reg::K0, 0);
    a.label(&up)?;
    a.addi(Reg::T6, Reg::T6, 1);
    a.li(Reg::T9, 1);
    a.sll(Reg::T9, Reg::T9, Reg::T6);
    a.blt(Reg::T9, Reg::NTID, ascend.as_str());
    a.label(&descend)?;
    // release every node passed on the way up: levels (level-1) .. 0
    a.addi(Reg::T6, Reg::T6, -1);
    a.label(&ddown)?;
    a.blt(Reg::T6, Reg::ZERO, done.as_str());
    a.addi(Reg::T7, Reg::T6, 1);
    a.srl(Reg::T9, Reg::TID, Reg::T7);
    a.mul(Reg::T7, Reg::T6, Reg::NTID);
    a.add(Reg::T7, Reg::T7, Reg::T9);
    a.slli(Reg::T7, Reg::T7, 6);
    a.li(Reg::K0, flags as i64);
    a.add(Reg::K0, Reg::K0, Reg::T7);
    a.std(Reg::T8, Reg::K0, 0);
    a.addi(Reg::T6, Reg::T6, -1);
    a.j(ddown.as_str());
    a.label(&done)?;
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

/// Emit the hierarchical (cluster-combining) sense-reversal software
/// barrier: threads fetch-and-increment a *per-cluster* LL/SC counter at
/// `local_counters + cluster * 64` (cluster = `tid >> cpc_log2`), the last
/// arriver of each cluster resets it and ascends to the single global
/// counter, the last champion toggles the global flag, and every champion
/// then toggles its cluster's local flag where the non-champions spin.
/// Two tree levels mirror the two interconnect levels: the global counter
/// and flag see one access per *cluster*, not per thread.
///
/// Requires threads to fill whole clusters (thread `t` runs on core `t`,
/// so `tid >> cpc_log2` is the thread's physical cluster).
///
/// # Errors
///
/// Propagates assembler label errors.
#[allow(clippy::too_many_arguments)]
pub fn sw_hier(
    a: &mut Asm,
    id: usize,
    local_counters: u64,
    local_flags: u64,
    global_counter: u64,
    global_flag: u64,
    cpc_log2: u32,
    clusters: u64,
    tls_off: i64,
) -> Result<String, AsmError> {
    let entry = format!("bar{id}_sw_hier");
    let skip = format!("bar{id}_skip");
    let lretry = format!("bar{id}_lretry");
    let lspin = format!("bar{id}_lspin");
    let lchamp = format!("bar{id}_lchamp");
    let gretry = format!("bar{id}_gretry");
    let gspin = format!("bar{id}_gspin");
    let glast = format!("bar{id}_glast");
    let lrelease = format!("bar{id}_lrelease");
    let cpc = 1i64 << cpc_log2;

    a.j(skip.as_str());
    a.label(&entry)?;
    // sense ^= 1 (thread-local line: no coherence traffic)
    a.ldd(Reg::T8, Reg::TLS, tls_off);
    a.xori(Reg::T8, Reg::T8, 1);
    a.std(Reg::T8, Reg::TLS, tls_off);
    // t7 = cluster * 64, the line offset into every per-cluster array
    a.srli(Reg::T6, Reg::TID, cpc_log2 as u8);
    a.slli(Reg::T7, Reg::T6, 6);
    // fetch-and-increment the cluster's counter with ldq_l/stq_c
    a.li(Reg::K0, local_counters as i64);
    a.add(Reg::K0, Reg::K0, Reg::T7);
    a.label(&lretry)?;
    a.ll(Reg::T9, Reg::K0, 0);
    a.addi(Reg::T9, Reg::T9, 1);
    a.sc(Reg::K1, Reg::T9, Reg::K0, 0);
    a.beq(Reg::K1, Reg::ZERO, lretry.as_str());
    a.li(Reg::K1, cpc);
    a.beq(Reg::T9, Reg::K1, lchamp.as_str());
    // non-champion: spin on the cluster's flag
    a.li(Reg::K0, local_flags as i64);
    a.add(Reg::K0, Reg::K0, Reg::T7);
    a.label(&lspin)?;
    a.ldd(Reg::T9, Reg::K0, 0);
    a.bne(Reg::T9, Reg::T8, lspin.as_str());
    a.ret();
    a.label(&lchamp)?;
    // cluster champion: reset the local counter, ascend to the global one
    a.std(Reg::ZERO, Reg::K0, 0);
    a.li(Reg::K0, global_counter as i64);
    a.label(&gretry)?;
    a.ll(Reg::T9, Reg::K0, 0);
    a.addi(Reg::T9, Reg::T9, 1);
    a.sc(Reg::K1, Reg::T9, Reg::K0, 0);
    a.beq(Reg::K1, Reg::ZERO, gretry.as_str());
    a.li(Reg::K1, clusters as i64);
    a.beq(Reg::T9, Reg::K1, glast.as_str());
    // champion, not last: spin on the global flag
    a.li(Reg::K0, global_flag as i64);
    a.label(&gspin)?;
    a.ldd(Reg::T9, Reg::K0, 0);
    a.bne(Reg::T9, Reg::T8, gspin.as_str());
    a.j(lrelease.as_str());
    a.label(&glast)?;
    // last champion: reset the global counter, toggle the global flag
    a.std(Reg::ZERO, Reg::K0, 0);
    a.li(Reg::K0, global_flag as i64);
    a.std(Reg::T8, Reg::K0, 0);
    a.label(&lrelease)?;
    // every champion releases its own cluster
    a.li(Reg::K0, local_flags as i64);
    a.add(Reg::K0, Reg::K0, Reg::T7);
    a.std(Reg::T8, Reg::K0, 0);
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

/// Emit the D-cache filter barrier, entry/exit variant (§3.4.2):
///
/// ```text
/// sync                      ; order prior memory ops, flush pipeline
/// dcbi  A(tid)              ; signal arrival, purge stale copies
/// isync                     ; discard prefetched data
/// ldd   k1, 0(A(tid))       ; starved until the barrier opens
/// sync                      ; no later memory op may pass the load
/// dcbi  E(tid)              ; signal exit
/// ```
///
/// # Errors
///
/// Propagates assembler label errors.
pub fn filter_d(a: &mut Asm, id: usize, a_base: u64, e_base: u64) -> Result<String, AsmError> {
    let entry = format!("bar{id}_filter_d");
    let skip = format!("bar{id}_skip");
    a.j(skip.as_str());
    a.label(&entry)?;
    a.sync();
    per_thread_line(a, a_base);
    a.dcbi(Reg::K0, 0);
    a.isync();
    a.ldd(Reg::K1, Reg::K0, 0);
    a.sync();
    per_thread_line(a, e_base);
    a.dcbi(Reg::K0, 0);
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

/// Emit the *checked* D-cache filter barrier: identical to
/// [`filter_d`], but the loaded arrival value is compared against the
/// hardware-timeout error sentinel and the fill is re-issued on an error
/// reply — the "retry the barrier" option of §3.3.4 ("the filter may
/// generate a reply with an error code embedded in the response to the
/// fill request. Upon receipt of an error code, the error-checking code in
/// the barrier implementation could either retry the barrier or cause an
/// exception").
///
/// # Errors
///
/// Propagates assembler label errors.
pub fn filter_d_checked(
    a: &mut Asm,
    id: usize,
    a_base: u64,
    e_base: u64,
) -> Result<String, AsmError> {
    let entry = format!("bar{id}_filter_d_checked");
    let skip = format!("bar{id}_skip");
    let retry = format!("bar{id}_eretry");
    a.j(skip.as_str());
    a.label(&entry)?;
    a.sync();
    per_thread_line(a, a_base);
    a.dcbi(Reg::K0, 0);
    a.isync();
    a.label(&retry)?;
    a.ldd(Reg::K1, Reg::K0, 0);
    a.li(Reg::T9, cmp_sim::FILL_ERROR_SENTINEL as i64);
    a.beq(Reg::K1, Reg::T9, retry.as_str()); // error reply: re-issue
    a.sync();
    per_thread_line(a, e_base);
    a.dcbi(Reg::K0, 0);
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

/// Emit the hierarchical D-cache filter barrier: three chained §3.4.2
/// entry/exit filters.
///
/// 1. **Local barrier 1** — every thread runs the FilterD sequence over
///    `a1`/`e1`, whose cluster-`k` slice (`cpc` lines at `a1 + k *
///    cpc * 64`) is watched by a filter in a cluster-`k` bank. Releases
///    when the cluster's threads have all arrived.
/// 2. **Global phase** — each cluster's leader (`tid & (cpc-1) == 0`)
///    runs FilterD over the leader lines `ga + cluster * 64` / `ge +
///    cluster * 64`, all homed in one bank. Releases when every cluster
///    has arrived.
/// 3. **Local barrier 2** — everyone again, over `a2`/`e2`. Non-leaders
///    arrive immediately after phase 1 and starve until their leader —
///    the slice's last arriver — returns from the global phase, which is
///    what makes the whole construction a barrier.
///
/// `cpc` (= `1 << cpc_log2`) is the thread count per cluster; threads
/// must fill whole clusters so `tid >> cpc_log2` is the physical cluster.
///
/// # Errors
///
/// Propagates assembler label errors.
#[allow(clippy::too_many_arguments)]
pub fn filter_d_hier(
    a: &mut Asm,
    id: usize,
    a1_base: u64,
    e1_base: u64,
    ga_base: u64,
    ge_base: u64,
    a2_base: u64,
    e2_base: u64,
    cpc_log2: u32,
) -> Result<String, AsmError> {
    let entry = format!("bar{id}_filter_d_hier");
    let skip = format!("bar{id}_skip");
    let join = format!("bar{id}_join");
    let mask = (1i64 << cpc_log2) - 1;

    // One FilterD phase over `base + tid * 64`.
    let local_phase = |a: &mut Asm, a_base: u64, e_base: u64| {
        a.sync();
        per_thread_line(a, a_base);
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        per_thread_line(a, e_base);
        a.dcbi(Reg::K0, 0);
    };

    a.j(skip.as_str());
    a.label(&entry)?;
    local_phase(a, a1_base, e1_base);
    // leader (first thread of the cluster) ascends; the rest re-arrive
    a.andi(Reg::T9, Reg::TID, mask);
    a.bne(Reg::T9, Reg::ZERO, join.as_str());
    // global FilterD over one line per cluster: k0 = ga + cluster * 64
    a.srli(Reg::T6, Reg::TID, cpc_log2 as u8);
    a.slli(Reg::T7, Reg::T6, 6);
    a.sync();
    a.li(Reg::K0, ga_base as i64);
    a.add(Reg::K0, Reg::K0, Reg::T7);
    a.dcbi(Reg::K0, 0);
    a.isync();
    a.ldd(Reg::K1, Reg::K0, 0);
    a.sync();
    a.li(Reg::K0, ge_base as i64);
    a.add(Reg::K0, Reg::K0, Reg::T7);
    a.dcbi(Reg::K0, 0);
    a.label(&join)?;
    local_phase(a, a2_base, e2_base);
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

/// Emit the D-cache ping-pong filter barrier (§3.5): two arrival ranges,
/// the thread alternating between them under a TLS sense bit, one
/// invalidate per invocation.
///
/// # Errors
///
/// Propagates assembler label errors.
pub fn filter_d_ping_pong(
    a: &mut Asm,
    id: usize,
    a0_base: u64,
    a1_base: u64,
    tls_off: i64,
) -> Result<String, AsmError> {
    let entry = format!("bar{id}_filter_d_pp");
    let skip = format!("bar{id}_skip");
    let use0 = format!("bar{id}_use0");
    a.j(skip.as_str());
    a.label(&entry)?;
    a.sync();
    a.ldd(Reg::T9, Reg::TLS, tls_off); // sense
    a.li(Reg::K0, a0_base as i64);
    a.beq(Reg::T9, Reg::ZERO, use0.as_str());
    a.li(Reg::K0, a1_base as i64);
    a.label(&use0)?;
    a.slli(Reg::K1, Reg::TID, 6);
    a.add(Reg::K0, Reg::K0, Reg::K1);
    a.dcbi(Reg::K0, 0);
    a.isync();
    a.ldd(Reg::K1, Reg::K0, 0);
    a.sync();
    a.xori(Reg::T9, Reg::T9, 1);
    a.std(Reg::T9, Reg::TLS, tls_off);
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

/// Pad with `nop`s so the next `lines_needed` cache lines of code fall
/// within a single bank-interleave granule (all of a barrier's arrival
/// lines must map to one filter, §3.3.2), then align to a line boundary.
fn align_for_stubs(a: &mut Asm, granule: u64, lines_needed: u64) {
    a.align_line();
    let here = a.here();
    let within = here % granule;
    if within + lines_needed * LINE_BYTES > granule {
        let pad_bytes = granule - within;
        for _ in 0..(pad_bytes / INSTR_BYTES) {
            a.nop();
        }
    }
    debug_assert_eq!(a.here() % LINE_BYTES, 0);
}

/// Emit one line-aligned arrival stub per thread. Each stub is the target
/// of the barrier's `jalr k1` and simply returns through `k1`; the fetch of
/// its (just invalidated) line is what the filter starves.
fn emit_stub_lines(a: &mut Asm, threads: usize) -> u64 {
    let base = a.here();
    for _ in 0..threads {
        a.jalr(Reg::ZERO, Reg::K1, 0);
        for _ in 1..INSTRS_PER_LINE {
            a.nop();
        }
    }
    base
}

/// Emit one granule-contained range of per-thread arrival stub lines and
/// jump over it. Returns the base code address of the stubs; the caller
/// determines the range's L2 bank from that address and homes the exit
/// lines there.
pub fn arrival_stubs(a: &mut Asm, threads: usize, granule: u64) -> u64 {
    let over = format!("stubs_over_{:#x}", a.here());
    a.j(over.as_str());
    align_for_stubs(a, granule, threads as u64);
    let base = emit_stub_lines(a, threads);
    a.label(&over).expect("address-derived label is unique");
    base
}

/// Emit two granule-contained stub ranges (the ping-pong pair), jumped
/// over. Returns both base addresses, guaranteed to share an L2 bank.
pub fn arrival_stub_pair(a: &mut Asm, threads: usize, granule: u64) -> (u64, u64) {
    let over = format!("stubs_over_{:#x}", a.here());
    a.j(over.as_str());
    align_for_stubs(a, granule, 2 * threads as u64);
    let base0 = emit_stub_lines(a, threads);
    let base1 = emit_stub_lines(a, threads);
    a.label(&over).expect("address-derived label is unique");
    (base0, base1)
}

/// Emit the I-cache filter barrier routine, entry/exit variant (§3.4.1).
/// `a_base` is the stub range from [`arrival_stubs`]; `e_base` are data
/// lines homed in the same L2 bank ("the exit address could be an
/// instruction or data address — the content is never accessed").
///
/// # Errors
///
/// Propagates assembler label errors.
pub fn filter_i(a: &mut Asm, id: usize, a_base: u64, e_base: u64) -> Result<String, AsmError> {
    let entry = format!("bar{id}_filter_i");
    let skip = format!("bar{id}_skip");
    a.j(skip.as_str());
    a.label(&entry)?;
    a.sync();
    per_thread_line(a, a_base);
    a.icbi(Reg::K0, 0);
    a.isync();
    a.jalr(Reg::K1, Reg::K0, 0); // execute the arrival line; stalls here
    per_thread_line(a, e_base);
    a.icbi(Reg::K0, 0); // exit invalidate (instruction or data — unread)
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

/// Emit the I-cache ping-pong filter barrier routine (§3.5): two stub
/// ranges from [`arrival_stub_pair`], alternating under a TLS sense bit.
///
/// # Errors
///
/// Propagates assembler label errors.
pub fn filter_i_ping_pong(
    a: &mut Asm,
    id: usize,
    a0_base: u64,
    a1_base: u64,
    tls_off: i64,
) -> Result<String, AsmError> {
    let entry = format!("bar{id}_filter_i_pp");
    let skip = format!("bar{id}_skip");
    let use0 = format!("bar{id}_use0");
    a.j(skip.as_str());
    a.label(&entry)?;
    a.sync();
    a.ldd(Reg::T9, Reg::TLS, tls_off);
    a.li(Reg::K0, a0_base as i64);
    a.beq(Reg::T9, Reg::ZERO, use0.as_str());
    a.li(Reg::K0, a1_base as i64);
    a.label(&use0)?;
    a.slli(Reg::K1, Reg::TID, 6);
    a.add(Reg::K0, Reg::K0, Reg::K1);
    a.icbi(Reg::K0, 0);
    a.isync();
    a.jalr(Reg::K1, Reg::K0, 0);
    a.xori(Reg::T9, Reg::T9, 1);
    a.std(Reg::T9, Reg::TLS, tls_off);
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

/// Emit the dedicated-network barrier routine (baseline): a single `hwbar`.
///
/// # Errors
///
/// Propagates assembler label errors.
pub fn hw_dedicated(a: &mut Asm, id: usize, hw_id: u16) -> Result<String, AsmError> {
    let entry = format!("bar{id}_hw");
    let skip = format!("bar{id}_skip");
    a.j(skip.as_str());
    a.label(&entry)?;
    a.hwbar(hw_id);
    a.ret();
    a.label(&skip)?;
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_lines_are_line_aligned_and_within_one_granule() {
        let mut a = Asm::new();
        for _ in 0..200 {
            a.nop(); // arbitrary unaligned prefix
        }
        let granule = 1u64 << 14;
        let base = arrival_stubs(&mut a, 16, granule);
        assert_eq!(base % 64, 0);
        let first = base / granule;
        let last = (base + 16 * 64 - 1) / granule;
        assert_eq!(first, last, "stub range must not cross a granule");
        filter_i(&mut a, 0, base, 0x2000_0000).unwrap();
        a.assemble().unwrap();
    }

    #[test]
    fn ping_pong_stub_ranges_share_a_granule() {
        let mut a = Asm::new();
        for _ in 0..4000 {
            a.nop(); // force padding across the granule boundary
        }
        let granule = 1u64 << 14;
        let (b0, b1) = arrival_stub_pair(&mut a, 64, granule);
        assert_eq!(b0 / granule, (b1 + 64 * 64 - 1) / granule);
        filter_i_ping_pong(&mut a, 1, b0, b1, 0).unwrap();
        a.assemble().unwrap();
    }

    #[test]
    fn routines_are_jumped_over() {
        // the first emitted instruction must be a jump past the routine
        let mut a = Asm::new();
        let label = sw_central(&mut a, 7, 0x1000_0000, 0x1000_0040, 0).unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        assert!(p.symbol(&label).is_some());
        let first = p.fetch(sim_isa::CODE_BASE).unwrap();
        assert!(matches!(first, sim_isa::Instr::Jal(Reg::ZERO, _)));
    }

    #[test]
    fn all_emitters_assemble() {
        let mut a = Asm::new();
        sw_central(&mut a, 0, 0x1000_0000, 0x1000_0040, 0).unwrap();
        sw_tree(&mut a, 1, 0x1000_1000, 0x1000_0080, 8).unwrap();
        filter_d(&mut a, 2, 0x2000_0000, 0x2000_0400).unwrap();
        filter_d_ping_pong(&mut a, 3, 0x2000_0800, 0x2000_0c00, 16).unwrap();
        let base = arrival_stubs(&mut a, 8, 1 << 14);
        filter_i(&mut a, 4, base, 0x2000_1000).unwrap();
        let (b0, b1) = arrival_stub_pair(&mut a, 8, 1 << 14);
        filter_i_ping_pong(&mut a, 5, b0, b1, 24).unwrap();
        hw_dedicated(&mut a, 6, 0).unwrap();
        sw_hier(
            &mut a,
            7,
            0x1000_2000,
            0x1000_2400,
            0x1000_2800,
            0x1000_2840,
            2,
            4,
            32,
        )
        .unwrap();
        filter_d_hier(
            &mut a,
            8,
            0x2000_2000,
            0x2000_2400,
            0x2000_2800,
            0x2000_2900,
            0x2000_3000,
            0x2000_3400,
            2,
        )
        .unwrap();
        a.halt();
        a.assemble().unwrap();
    }
}
