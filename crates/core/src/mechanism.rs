//! The seven barrier mechanisms compared in §4 of the paper.

use std::fmt;
use std::str::FromStr;

/// A barrier implementation strategy.
///
/// The paper compares four variants of the barrier filter (I-cache and
/// D-cache, each with entry/exit and ping-pong signalling), two software
/// barriers, and an aggressive dedicated-network hardware barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BarrierMechanism {
    /// Pure software centralized sense-reversal barrier over LL/SC: a single
    /// counter and a single release flag, each on its own cache line.
    SwCentral,
    /// Binary combining tree of sense-reversal barriers, every counter/flag
    /// on its own cache line.
    SwTree,
    /// Barrier filter synchronizing through instruction-cache lines
    /// (§3.4.1): `sync; icbi A; isync;` execute the code at `A`, then
    /// invalidate the exit address.
    FilterI,
    /// Barrier filter synchronizing through data-cache lines (§3.4.2):
    /// `sync; dcbi A; isync; load A; sync`, then invalidate the exit
    /// address.
    FilterD,
    /// Ping-pong I-cache filter (§3.5): two paired barriers, one invalidate
    /// per invocation, sense kept in thread-local storage.
    FilterIPingPong,
    /// Ping-pong D-cache filter (§3.5).
    FilterDPingPong,
    /// Dedicated barrier network with core modifications (the aggressive
    /// Beckmann & Polychronopoulos baseline).
    HwDedicated,
    /// Hierarchical (cluster-combining) sense-reversal software barrier:
    /// threads combine on a per-cluster LL/SC counter, the last arriver of
    /// each cluster ascends to a single global counter, and release fans
    /// out through a global flag then per-cluster flags. Two levels of the
    /// tree mirror the two levels of the interconnect, so cross-cluster
    /// traffic is one champion per cluster instead of every thread.
    SwHier,
    /// Hierarchical D-cache barrier filter: each cluster's threads arrive
    /// at a *local* filter (one per cluster-homed bank slice), cluster
    /// leaders arrive at a global filter, and a second local filter phase
    /// releases the non-leaders — three chained §3.4.2 entry/exit filters.
    FilterDHier,
}

impl BarrierMechanism {
    /// The seven mechanisms of the paper's figures, in the order the
    /// figures list them.
    ///
    /// Deliberately excludes the post-paper hierarchical variants: digest
    /// chains (`fold_fig4`) and figure sweeps iterate this array, and its
    /// membership and order are pinned by the committed digests. Use
    /// [`EXTENDED`](BarrierMechanism::EXTENDED) for everything.
    pub const ALL: [BarrierMechanism; 7] = [
        BarrierMechanism::SwCentral,
        BarrierMechanism::SwTree,
        BarrierMechanism::FilterD,
        BarrierMechanism::FilterI,
        BarrierMechanism::FilterDPingPong,
        BarrierMechanism::FilterIPingPong,
        BarrierMechanism::HwDedicated,
    ];

    /// Every mechanism, including the hierarchical variants that target
    /// clustered topologies beyond the paper's 16-core machine.
    pub const EXTENDED: [BarrierMechanism; 9] = [
        BarrierMechanism::SwCentral,
        BarrierMechanism::SwTree,
        BarrierMechanism::FilterD,
        BarrierMechanism::FilterI,
        BarrierMechanism::FilterDPingPong,
        BarrierMechanism::FilterIPingPong,
        BarrierMechanism::HwDedicated,
        BarrierMechanism::SwHier,
        BarrierMechanism::FilterDHier,
    ];

    /// Short stable name used in harness output and `FromStr`.
    pub fn name(self) -> &'static str {
        match self {
            BarrierMechanism::SwCentral => "sw-central",
            BarrierMechanism::SwTree => "sw-tree",
            BarrierMechanism::FilterI => "filter-i",
            BarrierMechanism::FilterD => "filter-d",
            BarrierMechanism::FilterIPingPong => "filter-i-pp",
            BarrierMechanism::FilterDPingPong => "filter-d-pp",
            BarrierMechanism::HwDedicated => "hw-dedicated",
            BarrierMechanism::SwHier => "sw-hier",
            BarrierMechanism::FilterDHier => "filter-d-hier",
        }
    }

    /// Whether this mechanism uses the barrier filter hardware.
    pub fn is_filter(self) -> bool {
        matches!(
            self,
            BarrierMechanism::FilterI
                | BarrierMechanism::FilterD
                | BarrierMechanism::FilterIPingPong
                | BarrierMechanism::FilterDPingPong
                | BarrierMechanism::FilterDHier
        )
    }

    /// Whether this mechanism is software-only (no hardware support beyond
    /// LL/SC).
    pub fn is_software(self) -> bool {
        matches!(
            self,
            BarrierMechanism::SwCentral | BarrierMechanism::SwTree | BarrierMechanism::SwHier
        )
    }

    /// Whether this mechanism combines arrivals per cluster before a
    /// global phase (and therefore requires a clustered [`Topology`] with
    /// whole clusters of threads).
    ///
    /// [`Topology`]: cmp_sim::Topology
    pub fn is_hierarchical(self) -> bool {
        matches!(
            self,
            BarrierMechanism::SwHier | BarrierMechanism::FilterDHier
        )
    }

    /// Whether this mechanism synchronizes through instruction-cache lines.
    pub fn is_icache(self) -> bool {
        matches!(
            self,
            BarrierMechanism::FilterI | BarrierMechanism::FilterIPingPong
        )
    }

    /// Whether this is a ping-pong (single-invalidate) variant.
    pub fn is_ping_pong(self) -> bool {
        matches!(
            self,
            BarrierMechanism::FilterIPingPong | BarrierMechanism::FilterDPingPong
        )
    }
}

impl fmt::Display for BarrierMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a mechanism name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMechanismError(String);

impl fmt::Display for ParseMechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown barrier mechanism `{}` (expected one of: sw-central, sw-tree, filter-i, \
             filter-d, filter-i-pp, filter-d-pp, hw-dedicated, sw-hier, filter-d-hier)",
            self.0
        )
    }
}

impl std::error::Error for ParseMechanismError {}

impl FromStr for BarrierMechanism {
    type Err = ParseMechanismError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BarrierMechanism::EXTENDED
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| ParseMechanismError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in BarrierMechanism::EXTENDED {
            assert_eq!(m.name().parse::<BarrierMechanism>(), Ok(m));
            assert_eq!(m.to_string(), m.name());
        }
        assert!("bogus".parse::<BarrierMechanism>().is_err());
        let msg = "bogus".parse::<BarrierMechanism>().unwrap_err().to_string();
        for m in BarrierMechanism::EXTENDED {
            assert!(msg.contains(m.name()), "error message lists {}", m.name());
        }
    }

    #[test]
    fn classification() {
        use BarrierMechanism::*;
        assert!(FilterI.is_filter() && FilterI.is_icache() && !FilterI.is_ping_pong());
        assert!(FilterDPingPong.is_filter() && FilterDPingPong.is_ping_pong());
        assert!(!FilterDPingPong.is_icache());
        assert!(SwCentral.is_software() && !SwCentral.is_filter());
        assert!(!HwDedicated.is_software() && !HwDedicated.is_filter());
        assert!(SwHier.is_software() && SwHier.is_hierarchical() && !SwHier.is_filter());
        assert!(FilterDHier.is_filter() && FilterDHier.is_hierarchical());
        assert!(!FilterDHier.is_icache() && !FilterDHier.is_ping_pong());
        assert_eq!(BarrierMechanism::ALL.len(), 7, "digest chains pin ALL");
        assert_eq!(BarrierMechanism::EXTENDED.len(), 9);
        assert!(BarrierMechanism::EXTENDED.starts_with(&BarrierMechanism::ALL));
    }
}
