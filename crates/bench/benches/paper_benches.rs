//! Criterion micro-benchmarks wrapping reduced-size versions of every
//! paper experiment, so `cargo bench` exercises each table/figure pipeline
//! end-to-end. (The full-size sweeps live in the `bench-suite` binaries;
//! see EXPERIMENTS.md.)
//!
//! These measure *host* time to run each simulation, which doubles as a
//! performance regression guard for the simulator itself; the simulated
//! cycle counts the binaries print are the paper-relevant output.

use criterion::{criterion_group, criterion_main, Criterion};

use barrier_filter::BarrierMechanism;
use bench_suite::barrier_latency;
use kernels::autocorr::Autocorr;
use kernels::livermore::{Loop2, Loop3, Loop6};
use kernels::ocean::OceanProxy;
use kernels::viterbi::Viterbi;

fn bench_fig4_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_barrier_latency");
    g.sample_size(10);
    for mechanism in BarrierMechanism::ALL {
        g.bench_function(mechanism.name(), |b| {
            b.iter(|| barrier_latency(mechanism, 8, 8, 2).expect("latency"));
        });
    }
    g.finish();
}

fn bench_table1_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_kernels");
    g.sample_size(10);
    let l2 = Loop2::new(64);
    g.bench_function("loop2_seq", |b| b.iter(|| l2.run_sequential().expect("ok")));
    g.bench_function("loop2_filter", |b| {
        b.iter(|| l2.run_parallel(8, BarrierMechanism::FilterI).expect("ok"))
    });
    let l3 = Loop3::new(128);
    g.bench_function("loop3_filter", |b| {
        b.iter(|| l3.run_parallel(8, BarrierMechanism::FilterD).expect("ok"))
    });
    let l6 = Loop6::new(32);
    g.bench_function("loop6_filter", |b| {
        b.iter(|| {
            l6.run_parallel(8, BarrierMechanism::FilterDPingPong)
                .expect("ok")
        })
    });
    g.finish();
}

fn bench_eembc_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fig6_eembc");
    g.sample_size(10);
    let ac = Autocorr::with_lags(256, 8);
    g.bench_function("autocorr_filter", |b| {
        b.iter(|| ac.run_parallel(8, BarrierMechanism::FilterI).expect("ok"))
    });
    let vit = Viterbi::new(32);
    g.bench_function("viterbi_filter", |b| {
        b.iter(|| vit.run_parallel(8, BarrierMechanism::FilterD).expect("ok"))
    });
    g.finish();
}

fn bench_ocean_proxy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ocean_coarse");
    g.sample_size(10);
    let ocean = OceanProxy::new(18, 4);
    g.bench_function("ocean_filter", |b| {
        b.iter(|| ocean.run_parallel(8, BarrierMechanism::FilterD).expect("ok"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig4_latency,
    bench_table1_kernels,
    bench_eembc_kernels,
    bench_ocean_proxy
);
criterion_main!(benches);
