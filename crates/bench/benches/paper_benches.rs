//! Micro-benchmarks wrapping reduced-size versions of every paper
//! experiment, so `cargo bench` exercises each table/figure pipeline
//! end-to-end. (The full-size sweeps live in the `bench-suite` binaries;
//! see EXPERIMENTS.md.)
//!
//! These measure *host* time to run each simulation, which doubles as a
//! performance regression guard for the simulator itself; the simulated
//! cycle counts the binaries print are the paper-relevant output.
//!
//! The default harness is std-only (min/median over a fixed sample count)
//! so it runs with no registry access. The off-by-default `criterion`
//! feature is reserved for the Criterion statistical harness on machines
//! that can fetch crates; see `crates/bench/Cargo.toml`.

#[cfg(feature = "criterion")]
compile_error!(
    "the `criterion` feature requires re-adding `criterion = \"0.5\"` as a \
     dev-dependency of bench-suite (network access needed); the default \
     std-only harness covers the same workloads"
);

use std::time::Instant;

use barrier_filter::BarrierMechanism;
use bench_suite::barrier_latency;
use kernels::autocorr::Autocorr;
use kernels::livermore::{Loop2, Loop3, Loop6};
use kernels::ocean::OceanProxy;
use kernels::viterbi::Viterbi;

const SAMPLES: usize = 5;

/// Time `f` SAMPLES times and report min/median wall time.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    let mut times: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_micros()
        })
        .collect();
    times.sort_unstable();
    println!(
        "{group}/{name:<24} min {:>10.3} ms   median {:>10.3} ms",
        times[0] as f64 / 1e3,
        times[times.len() / 2] as f64 / 1e3,
    );
}

fn bench_fig4_latency() {
    for mechanism in BarrierMechanism::ALL {
        bench("fig4_barrier_latency", mechanism.name(), || {
            barrier_latency(mechanism, 8, 8, 2).expect("latency");
        });
    }
}

fn bench_table1_kernels() {
    let l2 = Loop2::new(64);
    bench("table1_kernels", "loop2_seq", || {
        l2.run_sequential().expect("ok");
    });
    bench("table1_kernels", "loop2_filter", || {
        l2.run_parallel(8, BarrierMechanism::FilterI).expect("ok");
    });
    let l3 = Loop3::new(128);
    bench("table1_kernels", "loop3_filter", || {
        l3.run_parallel(8, BarrierMechanism::FilterD).expect("ok");
    });
    let l6 = Loop6::new(32);
    bench("table1_kernels", "loop6_filter", || {
        l6.run_parallel(8, BarrierMechanism::FilterDPingPong)
            .expect("ok");
    });
}

fn bench_eembc_kernels() {
    let ac = Autocorr::with_lags(256, 8);
    bench("fig5_fig6_eembc", "autocorr_filter", || {
        ac.run_parallel(8, BarrierMechanism::FilterI).expect("ok");
    });
    let vit = Viterbi::new(32);
    bench("fig5_fig6_eembc", "viterbi_filter", || {
        vit.run_parallel(8, BarrierMechanism::FilterD).expect("ok");
    });
}

fn bench_ocean_proxy() {
    let ocean = OceanProxy::new(18, 4);
    bench("ocean_coarse", "ocean_filter", || {
        ocean
            .run_parallel(8, BarrierMechanism::FilterD)
            .expect("ok");
    });
}

fn main() {
    bench_fig4_latency();
    bench_table1_kernels();
    bench_eembc_kernels();
    bench_ocean_proxy();
}
