//! `bench-suite`: the experiment harness that regenerates every table and
//! figure of the paper's evaluation (§4).
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — best software-barrier speedups on 16 cores |
//! | `fig4_latency` | Figure 4 — average barrier latency vs core count |
//! | `fig5_autocorr` | Figure 5 — Autocorrelation speedup by mechanism |
//! | `fig6_viterbi` | Figure 6 — Viterbi speedup by mechanism |
//! | `fig7_loop2` | Figure 7 — Livermore Loop 2 time vs vector length |
//! | `fig8_loop3` | Figure 8 — Livermore Loop 3 time vs vector length |
//! | `fig10_loop6` | Figure 10 — Livermore Loop 6 time vs vector length |
//! | `fig_scale` | scaling sweep 16→1024 cores → `BENCH_scale.json` |
//! | `ocean_coarse` | §4.1 — coarse-grained (Ocean-like) barrier overhead |
//! | `ablations` | design ablations called out in DESIGN.md |
//! | `throughput` | host-side simulator throughput → `BENCH_throughput.json` |
//! | `hotpath` | engine per-stage cost profile → committed `results/hotpath.txt` |
//! | `verify` | static verifier + race detector grid → `BENCH_verify.json` |
//! | `fastbar_serve` | batch sweep daemon + client over the [`serve`] protocol |
//!
//! The library half hosts the shared runners so integration tests and
//! Criterion benches reuse exactly the code the binaries run.

pub mod chaos;
pub mod cli;
pub mod hotpath;
pub mod kernel_runs;
pub mod latency;
pub mod report;
pub mod scale;
pub mod serve;
pub mod sweep;
pub mod throughput;
pub mod verify;

pub use chaos::{run_chaos, ChaosDoc, ChaosPoint, ChaosWorkload};
pub use cli::{BenchArgs, Cli};
pub use hotpath::{profile, HotpathPoint, HotpathReport};
pub use kernel_runs::{measure, measure_on, speedup_table, sweep_grid, GridVariant, SpeedupRow};
pub use latency::{
    barrier_latency, build_latency_machine, fig4_machine, fig4_machine_with, run_latency,
    run_latency_with, LatencyPoint,
};
pub use scale::{
    run_scale, scale_clusters, scale_config, scale_grid, scale_mechanisms, scale_reps,
    to_scale_json, ScaleDoc, ScalePoint, SCALE_CORE_COUNTS,
};
pub use serve::{
    check_suite, result_json, run_cached, suite_specs, Client, Endpoint, ItemResult, Listener,
    ResultCache, Server, CACHE_SCHEMA, RESULT_SCHEMA, SERVE_SCHEMA,
};
pub use sweep::{JobPanic, SweepRunner};
pub use throughput::{
    fig4_sample, fig4_sample_with, fig4_specs, fold_fig4_digests, run_suite, to_json,
    viterbi_sample, viterbi_sample_traced, SuiteResult, ThroughputDoc, ThroughputSample,
    EXPECTED_FIG4_16CORE_DIGEST, EXPECTED_VITERBI_K5_16T_DIGEST,
};
pub use verify::{run_verify, verify_case, VerifyCase, VerifyDoc, VerifyKernel};
