//! `fastbar-serve`: batch sweep jobs over a line-delimited JSON wire
//! protocol, served from an on-disk content-addressed result cache.
//!
//! The daemon half of the [`RunSpec`] story: a spec is one serializable
//! value, so a remote client can submit the exact job an in-process call
//! would run, and the spec's [`digest`](RunSpec::digest) is a complete
//! cache key — two runs of the same spec are bit-identical, so a cached
//! result *is* the live result. Everything here is std-only: sockets
//! from `std::net`/`std::os::unix::net`, JSON via the tolerant
//! [`Json`] reader and the repo's hand-rolled writers, scheduling via
//! [`SweepRunner`].
//!
//! ## Wire protocol
//!
//! One JSON value per line in both directions, over a TCP or Unix-domain
//! stream. Requests carry an `"op"`:
//!
//! | request | response |
//! |---|---|
//! | `{"op":"ping"}` | `{"ok":true,"op":"ping","schema":"fastbar-serve/v1","jobs":N}` |
//! | `{"op":"run","spec":{…}}` | one result line (shape below, `"op":"run"`) |
//! | `{"op":"batch","specs":[{…},…]}` | one `"op":"item"` line per spec **in item order**, then `{"ok":true,"op":"batch","items":N,"failed":K}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"op":"shutdown"}`, then the daemon exits |
//!
//! A result line is
//! `{"ok":true,"op":…,"index":i,"cached":b,"body_fnv":"0x…","result":{…}}`
//! with the result body embedded verbatim as its last field, so a client
//! can recover the exact cached bytes and check them against `body_fnv`.
//! Failures are `{"ok":false,…,"error":"…"}`; a failed batch item keeps
//! its slot (and its `"index"`) while the other items still complete.
//!
//! ## Result cache
//!
//! [`ResultCache`] stores one entry per spec digest at
//! `<root>/<first 2 hex>/<16 hex>.json`: a `fastbar-cache/v1` header
//! line carrying the spec digest (`spec_fnv`) and the FNV-1a hash of the
//! body (`body_fnv`), then the result body line. [`ResultCache::load`]
//! re-hashes the body on every read — a corrupted or truncated entry
//! fails the digest check and is treated as a miss, so [`run_cached`]
//! silently recomputes and repairs it.

use std::fmt;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

use crate::sweep::SweepRunner;
use crate::throughput::{
    fig4_specs, fold_fig4_digests, EXPECTED_FIG4_16CORE_DIGEST, EXPECTED_VITERBI_K5_16T_DIGEST,
};
use barrier_filter::BarrierMechanism;
use cmp_sim::{fnv64, json_escape, Json};
use kernels::{run, EngineKnobs, KernelError, RunOutput, RunSpec, WorkloadSpec};

/// Wire schema tag of the serve protocol (returned by `ping`).
pub const SERVE_SCHEMA: &str = "fastbar-serve/v1";

/// Schema tag of a result body (the cached/streamed run record).
pub const RESULT_SCHEMA: &str = "fastbar-result/v1";

/// Schema tag of an on-disk cache entry header.
pub const CACHE_SCHEMA: &str = "fastbar-cache/v1";

/// Serialize a finished run as the canonical single-line result body:
/// fixed field order, `u64` digests as `0x` hex strings, the spec's own
/// [`canonical_json`](RunSpec::canonical_json) embedded for provenance.
/// Deterministic by construction — the same spec always yields the same
/// bytes, which is what makes cache hits bit-identical to live replay.
pub fn result_json(spec: &RunSpec, out: &RunOutput) -> String {
    let o = &out.outcome;
    let e = &o.sim.episodes;
    let f = &out.faults;
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"schema\":\"{RESULT_SCHEMA}\",\"spec_digest\":\"{:#018x}\",\"spec\":{}",
        spec.digest(),
        spec.canonical_json()
    );
    let _ = write!(
        s,
        ",\"cycles\":{},\"instructions\":{},\"stats_digest\":\"{:#018x}\"",
        o.sim.cycles, o.sim.instructions, o.sim.stats_digest
    );
    let _ = write!(
        s,
        ",\"cycles_per_rep\":{},\"bus_mean_wait\":{}",
        o.cycles_per_rep, o.bus_mean_wait
    );
    let _ = write!(
        s,
        ",\"episodes\":{{\"episodes\":{},\"parks\":{},\"releases\":{},\"serviced\":{}}}",
        e.episodes, e.parks, e.releases, e.serviced
    );
    let _ = write!(
        s,
        ",\"faults\":{{\"injected\":{},\"skipped\":{},\"violations\":{},\"resumed\":{}}}}}",
        f.injected, f.skipped, f.violations, f.resumed
    );
    s
}

/// The on-disk content-addressed result cache, keyed by
/// [`RunSpec::digest`]. See the module docs for the entry format.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `root` (created lazily on first store).
    pub fn new(root: impl Into<PathBuf>) -> ResultCache {
        ResultCache { root: root.into() }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where the entry for `digest` lives:
    /// `<root>/<first 2 hex>/<16 hex>.json` (the two-char fan-out keeps
    /// directories small under big sweeps).
    pub fn entry_path(&self, digest: u64) -> PathBuf {
        let hex = format!("{digest:016x}");
        self.root.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Load and verify the entry for `digest`. Returns the result body
    /// only if the header parses, its schema and `spec_fnv` match, and
    /// the body re-hashes to `body_fnv` — anything else (missing file,
    /// torn write, bit rot, schema bump) is a miss.
    pub fn load(&self, digest: u64) -> Option<String> {
        let text = std::fs::read_to_string(self.entry_path(digest)).ok()?;
        let (header, rest) = text.split_once('\n')?;
        let body = rest.strip_suffix('\n').unwrap_or(rest);
        let h = Json::parse(header).ok()?;
        if h.get("schema").and_then(Json::as_str) != Some(CACHE_SCHEMA) {
            return None;
        }
        if h.get("spec_fnv").and_then(Json::as_u64) != Some(digest) {
            return None;
        }
        if h.get("body_fnv").and_then(Json::as_u64) != Some(fnv64(body.as_bytes())) {
            return None;
        }
        Some(body.to_string())
    }

    /// Store `body` as the entry for `digest`, atomically (write to a
    /// temp file in the same directory, then rename over the entry).
    ///
    /// # Errors
    ///
    /// Filesystem errors creating, writing or renaming the entry.
    pub fn store(&self, digest: u64, body: &str) -> io::Result<PathBuf> {
        let path = self.entry_path(digest);
        let dir = path.parent().expect("entry path has a parent");
        std::fs::create_dir_all(dir)?;
        let entry = format!(
            "{{\"schema\":\"{CACHE_SCHEMA}\",\"spec_fnv\":\"{digest:#018x}\",\
             \"body_fnv\":\"{:#018x}\"}}\n{body}\n",
            fnv64(body.as_bytes())
        );
        let tmp = dir.join(format!(".{digest:016x}.tmp"));
        std::fs::write(&tmp, entry)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// Run `spec` through `cache`: a verified entry is returned as-is
/// (`true` = served from cache), otherwise the spec is executed live,
/// serialized with [`result_json`] and stored. A cache-store failure is
/// reported to stderr but never fails the run — the result is computed
/// either way.
///
/// # Errors
///
/// Spec validation or simulation failure ([`KernelError`]).
pub fn run_cached(cache: &ResultCache, spec: &RunSpec) -> Result<(String, bool), KernelError> {
    spec.validate()?;
    let digest = spec.digest();
    if let Some(body) = cache.load(digest) {
        return Ok((body, true));
    }
    let out = run(spec)?;
    let body = result_json(spec, &out);
    if let Err(e) = cache.store(digest, &body) {
        eprintln!("fastbar-serve: cache store {digest:#018x}: {e}");
    }
    Ok((body, false))
}

/// What the connection loop should do after a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep reading requests.
    Continue,
    /// `shutdown` was acknowledged; stop accepting connections.
    Shutdown,
}

/// The request handler: one result cache plus one sweep worker pool,
/// shared by every connection (the daemon serves one connection at a
/// time; host parallelism lives *inside* a batch, on the pool).
#[derive(Debug)]
pub struct Server {
    cache: ResultCache,
    runner: SweepRunner,
}

impl Server {
    /// A server answering from `cache`, scheduling batches on `runner`.
    pub fn new(cache: ResultCache, runner: SweepRunner) -> Server {
        Server { cache, runner }
    }

    /// The server's result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Handle one request line, writing response line(s) to `out`.
    /// Protocol-level problems (malformed JSON, unknown op, invalid
    /// spec) become `{"ok":false,…}` responses, not errors.
    ///
    /// # Errors
    ///
    /// Only I/O errors writing to `out`.
    pub fn handle(&self, line: &str, out: &mut impl Write) -> io::Result<Flow> {
        let req = match Json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                writeln!(out, "{}", error_line(&format!("bad request: {e}")))?;
                return Ok(Flow::Continue);
            }
        };
        match req.get("op").and_then(Json::as_str).unwrap_or("") {
            "ping" => {
                writeln!(
                    out,
                    "{{\"ok\":true,\"op\":\"ping\",\"schema\":\"{SERVE_SCHEMA}\",\"jobs\":{}}}",
                    self.runner.jobs()
                )?;
            }
            "run" => {
                let spec = req
                    .get("spec")
                    .ok_or_else(|| KernelError::Spec("spec missing".into()))
                    .and_then(RunSpec::from_json);
                match spec.and_then(|s| run_cached(&self.cache, &s)) {
                    Ok((body, cached)) => writeln!(out, "{}", item_line("run", 0, cached, &body))?,
                    Err(e) => writeln!(out, "{}", error_line(&e.to_string()))?,
                }
            }
            "batch" => self.handle_batch(&req, out)?,
            "shutdown" => {
                writeln!(out, "{{\"ok\":true,\"op\":\"shutdown\"}}")?;
                return Ok(Flow::Shutdown);
            }
            other => {
                writeln!(out, "{}", error_line(&format!("unknown op {other:?}")))?;
            }
        }
        Ok(Flow::Continue)
    }

    /// `batch`: decode and validate every spec up front (any bad spec
    /// rejects the whole batch before any work runs), schedule the jobs
    /// on the worker pool, and stream one line per item in item order.
    fn handle_batch(&self, req: &Json, out: &mut impl Write) -> io::Result<()> {
        let specs_json = req.get("specs").map(Json::items).unwrap_or(&[]);
        if specs_json.is_empty() {
            writeln!(out, "{}", error_line("batch needs a non-empty specs array"))?;
            return Ok(());
        }
        let mut specs = Vec::with_capacity(specs_json.len());
        for (i, sj) in specs_json.iter().enumerate() {
            match RunSpec::from_json(sj).and_then(|s| s.validate().map(|()| s)) {
                Ok(s) => specs.push(s),
                Err(e) => {
                    writeln!(out, "{}", error_line(&format!("specs[{i}]: {e}")))?;
                    return Ok(());
                }
            }
        }
        let results = self
            .runner
            .run(&specs, |_, spec| run_cached(&self.cache, spec));
        let mut failed = 0usize;
        for (i, r) in results.iter().enumerate() {
            let line = match r {
                Ok(Ok((body, cached))) => item_line("item", i, *cached, body),
                Ok(Err(e)) => {
                    failed += 1;
                    item_error_line(i, &e.to_string())
                }
                Err(panic) => {
                    failed += 1;
                    item_error_line(i, &panic.to_string())
                }
            };
            writeln!(out, "{line}")?;
        }
        writeln!(
            out,
            "{{\"ok\":true,\"op\":\"batch\",\"items\":{},\"failed\":{failed}}}",
            specs.len()
        )?;
        Ok(())
    }
}

/// A successful result line. `result` is the *last* field so a client
/// can slice the body out verbatim.
fn item_line(op: &str, index: usize, cached: bool, body: &str) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"{op}\",\"index\":{index},\"cached\":{cached},\
         \"body_fnv\":\"{:#018x}\",\"result\":{body}}}",
        fnv64(body.as_bytes())
    )
}

fn error_line(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(message))
}

fn item_error_line(index: usize, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"op\":\"item\",\"index\":{index},\"error\":\"{}\"}}",
        json_escape(message)
    )
}

/// Where a daemon listens (or a client connects): a Unix-domain socket
/// path or a TCP address like `127.0.0.1:7345`.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP socket at this `host:port` address.
    Tcp(String),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound listening socket, ready to [`serve`](Listener::serve).
#[derive(Debug)]
pub enum Listener {
    /// Bound Unix-domain listener (the path is unlinked on clean exit).
    Unix(UnixListener, PathBuf),
    /// Bound TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind `endpoint`. A stale Unix socket file at the path is removed
    /// first (a previous daemon that died without cleanup).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr.as_str())?)),
        }
    }

    /// The endpoint this listener actually bound — for TCP this resolves
    /// a requested port `0` to the kernel-assigned port, so a client can
    /// connect to a listener bound on an ephemeral port.
    ///
    /// # Errors
    ///
    /// Failure querying the local TCP address.
    pub fn endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
        }
    }

    /// Accept connections one at a time and answer requests until a
    /// client sends `shutdown`. A connection-level I/O error (client
    /// vanished mid-request) is logged and the daemon keeps accepting;
    /// only accept failures are fatal. On clean shutdown a Unix socket
    /// file is unlinked.
    ///
    /// # Errors
    ///
    /// Accept failures on the listening socket.
    pub fn serve(self, server: &Server) -> io::Result<()> {
        loop {
            let (reader, writer): (io::Result<Box<dyn Read>>, Box<dyn Write>) = match &self {
                Listener::Unix(l, _) => {
                    let (s, _) = l.accept()?;
                    (
                        s.try_clone().map(|c| Box::new(c) as Box<dyn Read>),
                        Box::new(s),
                    )
                }
                Listener::Tcp(l) => {
                    let (s, _) = l.accept()?;
                    (
                        s.try_clone().map(|c| Box::new(c) as Box<dyn Read>),
                        Box::new(s),
                    )
                }
            };
            let flow = match reader {
                Ok(reader) => {
                    serve_conn(server, BufReader::new(reader), writer).unwrap_or_else(|e| {
                        eprintln!("fastbar-serve: connection error: {e}");
                        Flow::Continue
                    })
                }
                Err(e) => {
                    eprintln!("fastbar-serve: splitting connection: {e}");
                    Flow::Continue
                }
            };
            if flow == Flow::Shutdown {
                break;
            }
        }
        if let Listener::Unix(_, path) = &self {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Answer one connection: a request line in, response line(s) out,
/// flushed per request, until the peer hangs up or asks for shutdown.
fn serve_conn(server: &Server, reader: impl BufRead, mut writer: impl Write) -> io::Result<Flow> {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let flow = server.handle(&line, &mut writer)?;
        writer.flush()?;
        if flow == Flow::Shutdown {
            return Ok(Flow::Shutdown);
        }
    }
    Ok(Flow::Continue)
}

/// One completed job as seen by a [`Client`]: the verbatim result bytes
/// plus the transport metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemResult {
    /// Position in the submitted batch (0 for single `run` requests).
    pub index: usize,
    /// Whether the server answered from its cache.
    pub cached: bool,
    /// FNV-1a hash of `body` as computed by the server (re-verified by
    /// the client on receipt).
    pub body_fnv: u64,
    /// The result body, byte-for-byte as the server stored/streamed it.
    pub body: String,
}

impl ItemResult {
    /// The result body parsed back to JSON.
    ///
    /// # Panics
    ///
    /// Panics if the body is not valid JSON — impossible for a body that
    /// passed the `body_fnv` check against a well-behaved server.
    pub fn json(&self) -> Json {
        Json::parse(&self.body).expect("verified result body parses")
    }

    /// The run's stats digest, from the result body.
    ///
    /// # Panics
    ///
    /// Panics if the body lacks a `stats_digest` field.
    pub fn stats_digest(&self) -> u64 {
        self.json()
            .get("stats_digest")
            .and_then(Json::as_u64)
            .expect("result body carries stats_digest")
    }
}

/// A blocking client for the serve protocol.
pub struct Client {
    reader: BufReader<Box<dyn Read>>,
    writer: Box<dyn Write>,
}

impl Client {
    /// Connect to a listening daemon.
    ///
    /// # Errors
    ///
    /// Socket connect failures.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let (reader, writer): (Box<dyn Read>, Box<dyn Write>) = match endpoint {
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                (Box::new(s.try_clone()?), Box::new(s))
            }
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                (Box::new(s.try_clone()?), Box::new(s))
            }
        };
        Ok(Client {
            reader: BufReader::new(reader),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Ok(line.trim_end_matches('\n').to_string()),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    fn expect_ok(line: &str) -> Result<Json, String> {
        let j = Json::parse(line).map_err(|e| format!("bad response: {e}"))?;
        if j.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(j)
        } else {
            Err(j
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server error")
                .to_string())
        }
    }

    /// `ping`: check liveness and protocol schema; returns the server's
    /// worker-pool size.
    ///
    /// # Errors
    ///
    /// Transport failures or a schema mismatch.
    pub fn ping(&mut self) -> Result<usize, String> {
        self.send("{\"op\":\"ping\"}")?;
        let j = Self::expect_ok(&self.recv()?)?;
        let schema = j.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SERVE_SCHEMA {
            return Err(format!("unexpected serve schema {schema:?}"));
        }
        j.get("jobs")
            .and_then(Json::as_usize)
            .ok_or_else(|| "ping response lacks jobs".into())
    }

    /// Submit one spec and wait for its result.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-reported run failure.
    pub fn run_spec(&mut self, spec: &RunSpec) -> Result<ItemResult, String> {
        self.send(&format!(
            "{{\"op\":\"run\",\"spec\":{}}}",
            spec.canonical_json()
        ))?;
        let line = self.recv()?;
        parse_item(&line, None)
    }

    /// Submit a batch and collect every item, verifying the stream comes
    /// back in item order. Item-level failures are collected and
    /// reported together after the whole stream (including the summary
    /// line) has been drained.
    ///
    /// # Errors
    ///
    /// Transport failures, a whole-batch rejection, out-of-order items,
    /// or any failed item.
    pub fn batch(&mut self, specs: &[RunSpec]) -> Result<Vec<ItemResult>, String> {
        let mut line = String::from("{\"op\":\"batch\",\"specs\":[");
        for (i, spec) in specs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&spec.canonical_json());
        }
        line.push_str("]}");
        self.send(&line)?;

        let mut items = Vec::with_capacity(specs.len());
        let mut failures = Vec::new();
        for i in 0..specs.len() {
            let resp = self.recv()?;
            // A whole-batch rejection is a single error line with no
            // item index; item-level failures keep their slot.
            let j = Json::parse(&resp).map_err(|e| format!("bad response: {e}"))?;
            if j.get("ok").and_then(Json::as_bool) != Some(true) && j.get("index").is_none() {
                return Err(j
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown server error")
                    .to_string());
            }
            match parse_item(&resp, Some(i)) {
                Ok(item) => items.push(item),
                Err(e) => failures.push(format!("item {i}: {e}")),
            }
        }
        let summary = Self::expect_ok(&self.recv()?)?;
        if summary.get("op").and_then(Json::as_str) != Some("batch") {
            return Err("missing batch summary line".into());
        }
        if failures.is_empty() {
            Ok(items)
        } else {
            Err(failures.join("; "))
        }
    }

    /// Ask the daemon to exit after acknowledging.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send("{\"op\":\"shutdown\"}")?;
        let j = Self::expect_ok(&self.recv()?)?;
        if j.get("op").and_then(Json::as_str) != Some("shutdown") {
            return Err("unexpected shutdown response".into());
        }
        Ok(())
    }
}

/// Decode a result line: metadata via the JSON reader, the body sliced
/// out *verbatim* (it is the line's last field) and re-hashed against
/// the server's `body_fnv` — so `body` is exactly the server's bytes.
fn parse_item(line: &str, expect_index: Option<usize>) -> Result<ItemResult, String> {
    let j = Json::parse(line).map_err(|e| format!("bad response: {e}"))?;
    if j.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(j
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown server error")
            .to_string());
    }
    let index = j.get("index").and_then(Json::as_usize).unwrap_or(0);
    if let Some(want) = expect_index {
        if index != want {
            return Err(format!("item out of order: expected {want}, got {index}"));
        }
    }
    let cached = j
        .get("cached")
        .and_then(Json::as_bool)
        .ok_or("response lacks cached flag")?;
    let body_fnv = j
        .get("body_fnv")
        .and_then(Json::as_u64)
        .ok_or("response lacks body_fnv")?;
    let body = line
        .split_once(",\"result\":")
        .and_then(|(_, rest)| rest.strip_suffix('}'))
        .ok_or("response lacks result")?
        .to_string();
    if fnv64(body.as_bytes()) != body_fnv {
        return Err("result bytes do not match body_fnv".into());
    }
    Ok(ItemResult {
        index,
        cached,
        body_fnv,
        body,
    })
}

/// The standard submit suite: the Figure 4 sweep (every mechanism at 16
/// cores) followed by the Viterbi workload — the same workloads the
/// `throughput` binary tracks, as one batch of [`RunSpec`]s. `quick`
/// shrinks rep counts for smoke runs (quick digests are *not* the
/// committed ones).
pub fn suite_specs(quick: bool) -> Vec<RunSpec> {
    let (inner, outer, vit_bits) = if quick { (8, 2, 24) } else { (64, 64, 96) };
    let mut specs = fig4_specs(16, inner, outer, EngineKnobs::default());
    specs.push(RunSpec::parallel(
        WorkloadSpec::Viterbi {
            constraint: 5,
            data_bits: vit_bits,
            noise_per_mille: 10,
        },
        16,
        BarrierMechanism::FilterD,
    ));
    specs
}

/// Check a full-size [`suite_specs`] result set against the committed
/// digests: the seven fig4 items fold to
/// [`EXPECTED_FIG4_16CORE_DIGEST`] and the Viterbi item matches
/// [`EXPECTED_VITERBI_K5_16T_DIGEST`].
///
/// # Errors
///
/// A wrong item count or a digest mismatch, described.
pub fn check_suite(items: &[ItemResult]) -> Result<(), String> {
    let mechanisms = BarrierMechanism::ALL.len();
    if items.len() != mechanisms + 1 {
        return Err(format!(
            "expected {} suite items, got {}",
            mechanisms + 1,
            items.len()
        ));
    }
    let fig4 = fold_fig4_digests(items[..mechanisms].iter().map(ItemResult::stats_digest));
    if fig4 != EXPECTED_FIG4_16CORE_DIGEST {
        return Err(format!(
            "fig4_16core digest {fig4:#018x} != committed {EXPECTED_FIG4_16CORE_DIGEST:#018x}"
        ));
    }
    let vit = items[mechanisms].stats_digest();
    if vit != EXPECTED_VITERBI_K5_16T_DIGEST {
        return Err(format!(
            "viterbi_k5_16t digest {vit:#018x} != committed {EXPECTED_VITERBI_K5_16T_DIGEST:#018x}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fastbar-serve-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn quick_spec() -> RunSpec {
        RunSpec::sequential(WorkloadSpec::Loop1 { n: 64 })
    }

    #[test]
    fn cache_round_trip_and_integrity() {
        let dir = tmp("cache");
        let cache = ResultCache::new(&dir);
        let digest = 0xdead_beef_0123_4567u64;
        assert!(cache.load(digest).is_none(), "empty cache misses");
        let body = "{\"schema\":\"fastbar-result/v1\",\"cycles\":42}";
        let path = cache.store(digest, body).expect("store");
        assert_eq!(path, cache.entry_path(digest));
        assert!(path.ends_with("de/deadbeef01234567.json"), "{path:?}");
        assert_eq!(cache.load(digest).as_deref(), Some(body));
        // A flipped byte in the body fails the body_fnv check.
        let text = std::fs::read_to_string(&path).expect("read entry");
        std::fs::write(&path, text.replace("42", "43")).expect("corrupt entry");
        assert!(cache.load(digest).is_none(), "corruption is a miss");
        // Restoring via store repairs the entry.
        cache.store(digest, body).expect("re-store");
        assert_eq!(cache.load(digest).as_deref(), Some(body));
        // A wrong key never matches another entry's header.
        assert!(cache.load(digest ^ 1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_cached_hits_are_byte_identical_and_repair_corruption() {
        let dir = tmp("run-cached");
        let cache = ResultCache::new(&dir);
        let spec = quick_spec();
        let (live, cached) = run_cached(&cache, &spec).expect("live run");
        assert!(!cached);
        let replay = result_json(&spec, &run(&spec).expect("replay"));
        assert_eq!(live, replay, "result_json is deterministic");
        let (hit, cached) = run_cached(&cache, &spec).expect("hit");
        assert!(cached);
        assert_eq!(hit, live, "cache hit returns the exact live bytes");
        // Truncate the entry: detected, recomputed, repaired.
        let path = cache.entry_path(spec.digest());
        std::fs::write(&path, "{\"schema\":\"fastbar-cache/v1\"}\n{}").expect("truncate");
        let (again, cached) = run_cached(&cache, &spec).expect("recompute");
        assert!(!cached, "corrupted entry must recompute");
        assert_eq!(again, live);
        assert_eq!(cache.load(spec.digest()).as_deref(), Some(live.as_str()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_json_is_compact_round_trip_json() {
        let spec = quick_spec();
        let body = result_json(&spec, &run(&spec).expect("run"));
        let j = Json::parse(&body).expect("valid JSON");
        assert_eq!(
            j.dump(),
            body,
            "compact writer round-trips through the reader"
        );
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(RESULT_SCHEMA));
        assert_eq!(
            j.get("spec_digest").and_then(Json::as_u64),
            Some(spec.digest())
        );
        assert!(j.get("stats_digest").and_then(Json::as_u64).is_some());
        assert_eq!(
            j.get("spec").map(Json::dump).as_deref(),
            Some(spec.canonical_json().as_str())
        );
    }

    fn respond(server: &Server, line: &str) -> (Flow, Vec<String>) {
        let mut out = Vec::new();
        let flow = server.handle(line, &mut out).expect("write to Vec");
        let text = String::from_utf8(out).expect("utf-8 responses");
        (
            flow,
            text.lines().map(str::to_string).collect::<Vec<String>>(),
        )
    }

    #[test]
    fn server_answers_ping_run_shutdown_and_rejects_garbage() {
        let dir = tmp("server");
        let server = Server::new(ResultCache::new(&dir), SweepRunner::new(2));

        let (flow, lines) = respond(&server, "{\"op\":\"ping\"}");
        assert_eq!(flow, Flow::Continue);
        let ping = Json::parse(&lines[0]).expect("ping json");
        assert_eq!(
            ping.get("schema").and_then(Json::as_str),
            Some(SERVE_SCHEMA)
        );
        assert_eq!(ping.get("jobs").and_then(Json::as_usize), Some(2));

        let spec = quick_spec();
        let req = format!("{{\"op\":\"run\",\"spec\":{}}}", spec.canonical_json());
        let (_, lines) = respond(&server, &req);
        let item = parse_item(&lines[0], None).expect("run result");
        assert!(!item.cached);
        let (_, lines) = respond(&server, &req);
        let hit = parse_item(&lines[0], None).expect("cached result");
        assert!(hit.cached);
        assert_eq!(hit.body, item.body, "hit bytes == live bytes");

        for bad in [
            "not json at all",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"run\"}",
            "{\"op\":\"batch\",\"specs\":[]}",
            // An invalid spec: fig4 has no sequential form.
            "{\"op\":\"batch\",\"specs\":[{\"workload\":{\"kind\":\"fig4\",\"inner\":1,\
             \"outer\":1},\"threads\":1,\"mechanism\":null}]}",
        ] {
            let (flow, lines) = respond(&server, bad);
            assert_eq!(flow, Flow::Continue);
            let j = Json::parse(&lines[0]).unwrap_or_else(|e| panic!("{bad}: {e}"));
            assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
            assert!(j.get("error").and_then(Json::as_str).is_some(), "{bad}");
        }

        let (flow, lines) = respond(&server, "{\"op\":\"shutdown\"}");
        assert_eq!(flow, Flow::Shutdown);
        assert!(lines[0].contains("\"op\":\"shutdown\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_streams_items_in_order_with_summary() {
        let dir = tmp("batch");
        let server = Server::new(ResultCache::new(&dir), SweepRunner::new(4));
        let specs = [
            RunSpec::sequential(WorkloadSpec::Loop1 { n: 64 }),
            RunSpec::parallel(WorkloadSpec::Loop2 { n: 64 }, 4, BarrierMechanism::FilterD),
            RunSpec::sequential(WorkloadSpec::Loop3 { n: 64 }),
        ];
        let mut req = String::from("{\"op\":\"batch\",\"specs\":[");
        for (i, s) in specs.iter().enumerate() {
            if i > 0 {
                req.push(',');
            }
            req.push_str(&s.canonical_json());
        }
        req.push_str("]}");
        let (_, lines) = respond(&server, &req);
        assert_eq!(lines.len(), specs.len() + 1, "items plus summary");
        for (i, line) in lines[..specs.len()].iter().enumerate() {
            let item = parse_item(line, Some(i)).expect("in-order item");
            assert!(!item.cached);
            assert_eq!(
                item.json().get("spec").map(Json::dump).as_deref(),
                Some(specs[i].canonical_json().as_str()),
                "item {i} carries its own spec"
            );
        }
        let summary = Json::parse(&lines[specs.len()]).expect("summary json");
        assert_eq!(summary.get("op").and_then(Json::as_str), Some("batch"));
        assert_eq!(summary.get("items").and_then(Json::as_usize), Some(3));
        assert_eq!(summary.get("failed").and_then(Json::as_usize), Some(0));
        // Resubmission: every item served from cache, bytes unchanged.
        let (_, again) = respond(&server, &req);
        for (i, line) in again[..specs.len()].iter().enumerate() {
            let item = parse_item(line, Some(i)).expect("cached item");
            assert!(item.cached, "item {i} should hit the cache");
            let first = parse_item(&lines[i], Some(i)).expect("first item");
            assert_eq!(item.body, first.body, "item {i} bytes identical");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn suite_specs_match_the_tracked_workloads() {
        let specs = suite_specs(false);
        assert_eq!(specs.len(), BarrierMechanism::ALL.len() + 1);
        for (spec, m) in specs.iter().zip(BarrierMechanism::ALL) {
            assert_eq!(*spec, RunSpec::fig4(m, 16, 64, 64));
        }
        let vit = specs.last().expect("viterbi item");
        assert_eq!(vit.workload.kind(), "viterbi");
        assert_eq!(vit.exec.threads, 16);
        for spec in suite_specs(true) {
            spec.validate().expect("quick suite specs validate");
        }
    }
}
