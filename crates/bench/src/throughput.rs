//! Wall-clock simulator-throughput benchmark.
//!
//! The paper's figures are about *simulated* cycles; this module is about
//! how fast the simulator itself chews through them. Every PR that touches
//! the engine hot path runs `cargo run --release -p bench-suite --bin
//! throughput` and commits the resulting `BENCH_throughput.json`, so the
//! host-throughput trajectory is tracked alongside the paper results.
//!
//! Two invariants make these numbers comparable across commits:
//!
//! 1. The workloads are fixed: the Figure 4 barrier-latency sweep (all
//!    mechanisms, 16 cores, 64 × 64 barriers) and the Viterbi kernel
//!    (K=5, 16 threads, FilterD).
//! 2. Each sample reports the simulated cycle count and a
//!    [`MachineStats::digest`](cmp_sim::MachineStats) fingerprint; an
//!    engine optimization must leave both bit-identical. Host seconds may
//!    move, simulated behaviour may not.

use std::time::Instant;

use barrier_filter::BarrierMechanism;
use cmp_sim::{json_escape, EpisodeStats};
use kernels::viterbi::Viterbi;

use crate::latency::build_latency_machine;

/// One measured workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSample {
    /// Workload identifier (stable across PRs; new workloads append).
    pub workload: String,
    /// Total simulated cycles (must not change across engine PRs).
    pub sim_cycles: u64,
    /// Total simulated instructions retired.
    pub sim_instructions: u64,
    /// Host wall-clock seconds for the simulation calls only (excludes
    /// machine construction and input generation).
    pub wall_seconds: f64,
    /// `sim_instructions / wall_seconds` — the headline number.
    pub instr_per_sec: f64,
    /// Combined [`MachineStats::digest`](cmp_sim::MachineStats)
    /// fingerprint, when the workload exposes full machine stats.
    pub stats_digest: Option<u64>,
    /// Per-barrier-episode metrics aggregated over the workload's
    /// machines (not part of the digest: informational).
    pub episodes: EpisodeStats,
}

fn sample(
    workload: &str,
    sim_cycles: u64,
    sim_instructions: u64,
    wall_seconds: f64,
    stats_digest: Option<u64>,
    episodes: EpisodeStats,
) -> ThroughputSample {
    ThroughputSample {
        workload: workload.to_string(),
        sim_cycles,
        sim_instructions,
        wall_seconds,
        instr_per_sec: sim_instructions as f64 / wall_seconds.max(1e-9),
        stats_digest,
        episodes,
    }
}

/// The Figure 4 workload: every barrier mechanism at `cores` cores,
/// `inner` × `outer` barriers each. Returns totals across mechanisms and a
/// digest chained over each run's full stats snapshot.
///
/// # Panics
///
/// Panics if any mechanism's run fails: the workload is fixed and must
/// always complete.
pub fn fig4_sample(cores: usize, inner: u64, outer: u64) -> ThroughputSample {
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut wall = 0f64;
    let mut episodes = EpisodeStats::default();
    // Chain per-mechanism digests order-sensitively.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for mechanism in BarrierMechanism::ALL {
        let mut m = build_latency_machine(mechanism, cores, inner, outer);
        let t0 = Instant::now();
        let summary = m
            .run()
            .unwrap_or_else(|e| panic!("fig4 {mechanism} @ {cores} cores failed: {e}"));
        wall += t0.elapsed().as_secs_f64();
        cycles += summary.cycles;
        instructions += summary.instructions;
        let stats = m.stats();
        episodes.merge(&stats.episodes);
        for b in stats.digest().to_le_bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x100_0000_01b3);
        }
    }
    sample(
        &format!("fig4_{cores}core"),
        cycles,
        instructions,
        wall,
        Some(digest),
        episodes,
    )
}

/// The Viterbi workload: the paper's worst-scaling kernel (K=5, 16
/// threads, FilterD), dominated by fine-grained barrier episodes and
/// line ping-pong — a directory/coherence-heavy counterweight to the
/// barrier-only fig4 loop.
///
/// # Panics
///
/// Panics if the kernel fails to run or validate.
pub fn viterbi_sample(data_bits: usize, threads: usize) -> ThroughputSample {
    let v = Viterbi::new(data_bits);
    let t0 = Instant::now();
    let outcome = v
        .run_parallel(threads, BarrierMechanism::FilterD)
        .expect("viterbi throughput workload");
    let wall = t0.elapsed().as_secs_f64();
    sample(
        &format!("viterbi_k5_{threads}t"),
        outcome.cycles,
        outcome.instructions,
        wall,
        Some(outcome.stats_digest),
        outcome.episodes,
    )
}

/// [`viterbi_sample`] with a Chrome trace streamed to `trace_path`
/// (viewable in `chrome://tracing`/Perfetto). The digest and cycle count
/// are bit-identical to the untraced run; `wall_seconds` includes the
/// trace-writing overhead, so traced samples should not be committed to
/// `BENCH_throughput.json`.
///
/// # Panics
///
/// Panics if the kernel fails to run, validate, or open the trace file.
pub fn viterbi_sample_traced(
    data_bits: usize,
    threads: usize,
    trace_path: &str,
) -> ThroughputSample {
    let v = Viterbi::new(data_bits);
    let trace = cmp_sim::TraceConfig::ChromeJson {
        path: trace_path.to_string(),
    };
    let t0 = Instant::now();
    let outcome = v
        .run_parallel_traced(threads, BarrierMechanism::FilterD, trace)
        .expect("traced viterbi throughput workload");
    let wall = t0.elapsed().as_secs_f64();
    sample(
        &format!("viterbi_k5_{threads}t_traced"),
        outcome.cycles,
        outcome.instructions,
        wall,
        Some(outcome.stats_digest),
        outcome.episodes,
    )
}

/// Serialize samples as the `BENCH_throughput.json` document (std-only,
/// hand-rolled JSON: the repo builds with no registry access).
pub fn to_json(samples: &[ThroughputSample]) -> String {
    let mut out = String::from("{\n  \"schema\": \"fastbar-throughput/v1\",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": \"{}\", ", json_escape(&s.workload)));
        out.push_str(&format!("\"sim_cycles\": {}, ", s.sim_cycles));
        out.push_str(&format!("\"sim_instructions\": {}, ", s.sim_instructions));
        out.push_str(&format!("\"wall_seconds\": {:.6}, ", s.wall_seconds));
        out.push_str(&format!("\"instr_per_sec\": {:.1}, ", s.instr_per_sec));
        match s.stats_digest {
            Some(d) => out.push_str(&format!("\"stats_digest\": \"{d:#018x}\", ")),
            None => out.push_str("\"stats_digest\": null, "),
        }
        let e = &s.episodes;
        out.push_str(&format!(
            "\"episodes\": {{\"count\": {}, \"parks\": {}, \"releases\": {}, \
             \"serviced\": {}, \"mean_arrival_spread\": {:.1}, \
             \"mean_release_fanout\": {:.1}}}",
            e.episodes,
            e.parks,
            e.releases,
            e.serviced,
            e.mean_arrival_spread(),
            e.mean_release_fanout(),
        ));
        out.push('}');
        if i + 1 < samples.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_sample_is_deterministic_in_simulated_terms() {
        let a = fig4_sample(4, 4, 2);
        let b = fig4_sample(4, 4, 2);
        assert_eq!(a.sim_cycles, b.sim_cycles);
        assert_eq!(a.sim_instructions, b.sim_instructions);
        assert_eq!(a.stats_digest, b.stats_digest);
        assert!(a.stats_digest.is_some());
        assert!(a.instr_per_sec > 0.0);
    }

    #[test]
    fn json_document_has_schema_and_all_samples() {
        let e = EpisodeStats::default();
        let s = vec![
            sample("w1", 10, 20, 0.5, Some(7), e),
            sample("w2", 1, 2, 0.25, None, e),
        ];
        let j = to_json(&s);
        assert!(j.contains("fastbar-throughput/v1"));
        assert!(j.contains("\"workload\": \"w1\""));
        assert!(j.contains("\"stats_digest\": null"));
        assert!(j.contains("\"instr_per_sec\": 40.0"));
        assert!(j.contains("\"episodes\": {\"count\": 0"));
    }

    #[test]
    fn json_strings_are_escaped() {
        let s = vec![sample(
            "w\"quoted\\slash",
            1,
            1,
            0.5,
            None,
            EpisodeStats::default(),
        )];
        let j = to_json(&s);
        assert!(j.contains("\"workload\": \"w\\\"quoted\\\\slash\""));
    }
}
