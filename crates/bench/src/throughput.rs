//! Wall-clock simulator-throughput benchmark.
//!
//! The paper's figures are about *simulated* cycles; this module is about
//! how fast the simulator itself chews through them. Every PR that touches
//! the engine hot path runs `cargo run --release -p bench-suite --bin
//! throughput` and commits the resulting `BENCH_throughput.json`, so the
//! host-throughput trajectory is tracked alongside the paper results.
//!
//! Two invariants make these numbers comparable across commits:
//!
//! 1. The workloads are fixed: the Figure 4 barrier-latency sweep (all
//!    mechanisms, 16 cores, 64 × 64 barriers) and the Viterbi kernel
//!    (K=5, 16 threads, FilterD).
//! 2. Each sample reports the simulated cycle count and a
//!    [`MachineStats::digest`](cmp_sim::MachineStats) fingerprint; an
//!    engine optimization must leave both bit-identical. Host seconds may
//!    move, simulated behaviour may not.

use std::time::Instant;

use barrier_filter::{Barrier, BarrierMechanism};
use cmp_sim::{
    json_escape, DecodeCacheStats, EventQueueStats, FusedMemStats, Measurement, TraceSink,
};
use kernels::viterbi::Viterbi;
use kernels::{EngineKnobs, ExecSpec, RunAttachments, RunSpec};

use crate::latency::fig4_machine_with;
use crate::sweep::SweepRunner;

/// Committed digest of the full `fig4_16core` workload (16 cores, 64 × 64
/// barriers, all mechanisms chained in [`BarrierMechanism::ALL`] order).
/// Every engine optimization must reproduce it bit-for-bit.
pub const EXPECTED_FIG4_16CORE_DIGEST: u64 = 0x0546_812c_cc90_cd5e;

/// Committed digest of the full `viterbi_k5_16t` workload (96 data bits,
/// 16 threads, FilterD).
pub const EXPECTED_VITERBI_K5_16T_DIGEST: u64 = 0x6694_92d6_5199_a9fb;

/// One measured workload: the shared [`Measurement`] record (simulated
/// cycles, instructions, digest, episode metrics — none of which may
/// change across engine PRs) plus the host-side timing.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSample {
    /// Workload identifier (stable across PRs; new workloads append).
    pub workload: String,
    /// The simulated-run record shared with every other measurement layer.
    pub sim: Measurement,
    /// Host wall-clock seconds for the simulation calls only (excludes
    /// machine construction and input generation).
    pub wall_seconds: f64,
    /// `sim.instructions / wall_seconds` — the headline number.
    pub instr_per_sec: f64,
    /// Decoded-superblock cache counters summed over the workload's
    /// machines. Host-side engine metrics (schema v3): they vary with
    /// [`SimConfig::decode_cache`](cmp_sim::SimConfig::decode_cache)
    /// while `sim` stays bit-identical.
    pub decode: DecodeCacheStats,
    /// Sharded-event-queue counters summed over the workload's machines
    /// (schema v4). All zero on the default calendar queue; nonzero lane
    /// pushes prove a sharded run actually ran sharded.
    pub queue: EventQueueStats,
    /// Memory-op-fused executor counters summed over the workload's
    /// machines (schema v4). All zero when fusion (or the decode cache)
    /// is off.
    pub fused: FusedMemStats,
}

fn sample(
    workload: &str,
    sim: Measurement,
    wall_seconds: f64,
    decode: DecodeCacheStats,
    queue: EventQueueStats,
    fused: FusedMemStats,
) -> ThroughputSample {
    ThroughputSample {
        workload: workload.to_string(),
        sim,
        wall_seconds,
        instr_per_sec: sim.instructions as f64 / wall_seconds.max(1e-9),
        decode,
        queue,
        fused,
    }
}

/// The measured outcome of one mechanism's run within the fig4 workload —
/// the unit of host parallelism when the workload runs on a
/// [`SweepRunner`].
#[derive(Debug, Clone)]
struct Fig4Part {
    sim: Measurement,
    wall: f64,
    decode: DecodeCacheStats,
    queue: EventQueueStats,
    fused: FusedMemStats,
}

fn fig4_finish(mechanism: BarrierMechanism, cores: usize, mut m: cmp_sim::Machine) -> Fig4Part {
    let t0 = Instant::now();
    let summary = m
        .run()
        .unwrap_or_else(|e| panic!("fig4 {mechanism} @ {cores} cores failed: {e}"));
    let wall = t0.elapsed().as_secs_f64();
    Fig4Part {
        sim: Measurement::new(&summary, &m.stats()),
        wall,
        decode: m.decode_stats(),
        queue: m.queue_stats(),
        fused: m.fused_stats(),
    }
}

fn fig4_part(spec: &RunSpec, mut att: RunAttachments<'_>) -> Fig4Part {
    let mechanism = spec.exec.mechanism.expect("fig4 parts are parallel");
    let cores = spec.exec.threads;
    let m = fig4_machine_with(spec, &mut att)
        .unwrap_or_else(|e| panic!("fig4 {mechanism} @ {cores} cores failed to build: {e}"));
    fig4_finish(mechanism, cores, m)
}

/// Fold per-mechanism parts — which must be in [`BarrierMechanism::ALL`]
/// order — into the combined fig4 sample. The digest chain is
/// order-sensitive by design, so the fold reproduces the serial digest
/// exactly no matter which part's simulation finished first on the host.
fn fold_fig4(cores: usize, parts: &[Fig4Part]) -> ThroughputSample {
    let mut sim = Measurement::default();
    let mut wall = 0f64;
    let mut decode = DecodeCacheStats::default();
    let mut queue = EventQueueStats::default();
    let mut fused = FusedMemStats::default();
    for part in parts {
        sim.cycles += part.sim.cycles;
        sim.instructions += part.sim.instructions;
        wall += part.wall;
        decode.hits += part.decode.hits;
        decode.builds += part.decode.builds;
        decode.invalidations += part.decode.invalidations;
        queue.core_events += part.queue.core_events;
        queue.shared_events += part.queue.shared_events;
        queue.head_rescans += part.queue.head_rescans;
        fused.loads += part.fused.loads;
        fused.stores += part.fused.stores;
        fused.memo_hits += part.fused.memo_hits;
        sim.episodes.merge(&part.sim.episodes);
    }
    sim.stats_digest = fold_fig4_digests(parts.iter().map(|p| p.sim.stats_digest));
    sample(
        &format!("fig4_{cores}core"),
        sim,
        wall,
        decode,
        queue,
        fused,
    )
}

/// The per-mechanism [`RunSpec`]s of the fig4 workload: every mechanism
/// in [`BarrierMechanism::ALL`] at `cores` cores, `inner` × `outer`
/// barriers each, sharing `knobs`. These are the exact values a serve
/// batch, a cache key and the in-process sample agree on.
pub fn fig4_specs(cores: usize, inner: u64, outer: u64, knobs: EngineKnobs) -> Vec<RunSpec> {
    BarrierMechanism::ALL
        .into_iter()
        .map(|mechanism| RunSpec::fig4(mechanism, cores, inner, outer).with_knobs(knobs))
        .collect()
}

/// Chain per-mechanism stats digests — which must be in
/// [`BarrierMechanism::ALL`] order — into the combined fig4 workload
/// digest (the value pinned by [`EXPECTED_FIG4_16CORE_DIGEST`]). Public
/// so a serve client can fold the digests it got off the wire and check
/// them against the committed value.
pub fn fold_fig4_digests(digests: impl IntoIterator<Item = u64>) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for d in digests {
        for b in d.to_le_bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x100_0000_01b3);
        }
    }
    digest
}

/// The Figure 4 workload: every barrier mechanism at `cores` cores,
/// `inner` × `outer` barriers each. Returns totals across mechanisms and a
/// digest chained over each run's full stats snapshot.
///
/// # Panics
///
/// Panics if any mechanism's run fails: the workload is fixed and must
/// always complete.
pub fn fig4_sample(cores: usize, inner: u64, outer: u64) -> ThroughputSample {
    fig4_sample_with(cores, inner, outer, EngineKnobs::default(), |_| None)
}

/// [`fig4_sample`] with every engine fast-path knob explicit (a `None`
/// knob keeps the process default) and a hook that may attach a trace
/// sink (e.g. a race detector) to each mechanism's machine once its
/// barrier is registered. Knobs are host-side execution strategies and
/// sinks are observers: every combination must yield a bit-identical
/// chained digest — `tests/determinism.rs` and `throughput --check` pin
/// this against the committed [`EXPECTED_FIG4_16CORE_DIGEST`].
///
/// # Panics
///
/// Panics if any mechanism's run fails.
pub fn fig4_sample_with(
    cores: usize,
    inner: u64,
    outer: u64,
    knobs: EngineKnobs,
    mut observe: impl FnMut(&Barrier) -> Option<Box<dyn TraceSink>>,
) -> ThroughputSample {
    let parts: Vec<Fig4Part> = fig4_specs(cores, inner, outer, knobs)
        .iter()
        .map(|spec| {
            fig4_part(
                spec,
                RunAttachments::observed(&mut |b: &Barrier| observe(b)),
            )
        })
        .collect();
    fold_fig4(cores, &parts)
}

/// The Viterbi workload: the paper's worst-scaling kernel (K=5, 16
/// threads, FilterD), dominated by fine-grained barrier episodes and
/// line ping-pong — a directory/coherence-heavy counterweight to the
/// barrier-only fig4 loop.
///
/// # Panics
///
/// Panics if the kernel fails to run or validate.
pub fn viterbi_sample(data_bits: usize, threads: usize) -> ThroughputSample {
    let v = Viterbi::new(data_bits);
    let t0 = Instant::now();
    let outcome = v
        .run_parallel(threads, BarrierMechanism::FilterD)
        .expect("viterbi throughput workload");
    let wall = t0.elapsed().as_secs_f64();
    sample(
        &format!("viterbi_k5_{threads}t"),
        outcome.sim,
        wall,
        outcome.decode,
        outcome.queue,
        outcome.fused,
    )
}

/// [`viterbi_sample`] with a Chrome trace streamed to `trace_path`
/// (viewable in `chrome://tracing`/Perfetto). The digest and cycle count
/// are bit-identical to the untraced run; `wall_seconds` includes the
/// trace-writing overhead, so traced samples should not be committed to
/// `BENCH_throughput.json`.
///
/// # Panics
///
/// Panics if the kernel fails to run, validate, or open the trace file.
pub fn viterbi_sample_traced(
    data_bits: usize,
    threads: usize,
    trace_path: &str,
) -> ThroughputSample {
    let v = Viterbi::new(data_bits);
    let trace = cmp_sim::TraceConfig::ChromeJson {
        path: trace_path.to_string(),
    };
    let t0 = Instant::now();
    let outcome = v
        .run_with(
            &ExecSpec::parallel(threads, BarrierMechanism::FilterD),
            RunAttachments::traced(trace),
        )
        .expect("traced viterbi throughput workload")
        .outcome;
    let wall = t0.elapsed().as_secs_f64();
    sample(
        &format!("viterbi_k5_{threads}t_traced"),
        outcome.sim,
        wall,
        outcome.decode,
        outcome.queue,
        outcome.fused,
    )
}

/// One independent simulation of the throughput suite — the job unit the
/// [`SweepRunner`] schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SuiteJob {
    /// One mechanism's run of the fig4 workload.
    Fig4(BarrierMechanism),
    /// The whole Viterbi workload (a single machine).
    Viterbi,
}

enum SuiteOut {
    Fig4(Fig4Part),
    Viterbi(Box<ThroughputSample>),
}

/// The whole throughput suite executed on `runner`: the seven fig4
/// mechanism runs and the Viterbi kernel as eight independent jobs.
/// `samples` is `[fig4_{cores}core, viterbi_k5_{threads}t]` — built from
/// per-job results reassembled in workload order, so every simulated
/// number and digest is bit-identical to the serial suite.
/// `suite_wall_seconds` is the host wall time of the whole batch, the
/// quantity host parallelism actually improves (per-sample `wall_seconds`
/// stays the *sum* of that workload's simulation times, comparable across
/// job counts).
pub struct SuiteResult {
    /// `[fig4, viterbi]` samples, in that order.
    pub samples: Vec<ThroughputSample>,
    /// Host wall-clock seconds for the whole batch, dispatch to last join.
    pub suite_wall_seconds: f64,
}

/// Run the throughput suite on `runner`.
///
/// # Panics
///
/// Panics if any workload fails: the suite is fixed and must always
/// complete.
pub fn run_suite(
    runner: &SweepRunner,
    cores: usize,
    inner: u64,
    outer: u64,
    vit_bits: usize,
    vit_threads: usize,
) -> SuiteResult {
    let jobs: Vec<SuiteJob> = BarrierMechanism::ALL
        .into_iter()
        .map(SuiteJob::Fig4)
        .chain(std::iter::once(SuiteJob::Viterbi))
        .collect();
    let t0 = Instant::now();
    let outs = runner
        .run_all(&jobs, |_, &job| match job {
            SuiteJob::Fig4(mechanism) => SuiteOut::Fig4(fig4_part(
                &RunSpec::fig4(mechanism, cores, inner, outer),
                RunAttachments::default(),
            )),
            SuiteJob::Viterbi => SuiteOut::Viterbi(Box::new(viterbi_sample(vit_bits, vit_threads))),
        })
        .unwrap_or_else(|e| panic!("throughput suite: {e}"));
    let suite_wall_seconds = t0.elapsed().as_secs_f64();
    // Jobs come back in dispatch order: ALL-order fig4 parts, then viterbi.
    let mut parts = Vec::new();
    let mut viterbi = None;
    for out in outs {
        match out {
            SuiteOut::Fig4(p) => parts.push(p),
            SuiteOut::Viterbi(s) => viterbi = Some(*s),
        }
    }
    SuiteResult {
        samples: vec![
            fold_fig4(cores, &parts),
            viterbi.expect("viterbi job present"),
        ],
        suite_wall_seconds,
    }
}

/// The `BENCH_throughput.json` document: the fixed workload samples plus
/// the host-parallelism context that makes wall times interpretable.
pub struct ThroughputDoc {
    /// Worker count the parallel pass ran with.
    pub jobs: usize,
    /// Hardware threads the host reported (`available_parallelism`) — a
    /// `jobs > host_threads` run is oversubscribed and its parallel wall
    /// time says nothing about runner scaling.
    pub host_threads: usize,
    /// Whole-suite wall seconds with one worker.
    pub serial_wall_seconds: f64,
    /// Whole-suite wall seconds with `jobs` workers.
    pub parallel_wall_seconds: f64,
    /// Per-workload samples (simulated numbers identical in both passes).
    pub samples: Vec<ThroughputSample>,
}

/// Serialize the document as `BENCH_throughput.json` (std-only,
/// hand-rolled JSON: the repo builds with no registry access).
///
/// Schema `fastbar-throughput/v4` extends v3 with per-sample `queue`
/// (sharded-event-queue lane pushes and cohort rebuilds; all zero on the
/// default calendar queue) and `fused` (memory-op-fused executor loads,
/// stores and line-memo hits) objects — host-side engine counters; every
/// simulated field keeps its v3 meaning.
pub fn to_json(doc: &ThroughputDoc) -> String {
    let mut out = String::from("{\n  \"schema\": \"fastbar-throughput/v4\",\n");
    out.push_str(&format!("  \"jobs\": {},\n", doc.jobs));
    out.push_str(&format!("  \"host_threads\": {},\n", doc.host_threads));
    out.push_str(&format!(
        "  \"serial_wall_seconds\": {:.6},\n",
        doc.serial_wall_seconds
    ));
    out.push_str(&format!(
        "  \"parallel_wall_seconds\": {:.6},\n",
        doc.parallel_wall_seconds
    ));
    out.push_str("  \"samples\": [\n");
    let samples = &doc.samples;
    for (i, s) in samples.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": \"{}\", ", json_escape(&s.workload)));
        out.push_str(&format!("\"sim_cycles\": {}, ", s.sim.cycles));
        out.push_str(&format!("\"sim_instructions\": {}, ", s.sim.instructions));
        out.push_str(&format!("\"wall_seconds\": {:.6}, ", s.wall_seconds));
        out.push_str(&format!("\"instr_per_sec\": {:.1}, ", s.instr_per_sec));
        out.push_str(&format!(
            "\"stats_digest\": \"{:#018x}\", ",
            s.sim.stats_digest
        ));
        let e = &s.sim.episodes;
        out.push_str(&format!(
            "\"episodes\": {{\"count\": {}, \"parks\": {}, \"releases\": {}, \
             \"serviced\": {}, \"mean_arrival_spread\": {:.1}, \
             \"mean_release_fanout\": {:.1}}}, ",
            e.episodes,
            e.parks,
            e.releases,
            e.serviced,
            e.mean_arrival_spread(),
            e.mean_release_fanout(),
        ));
        let d = &s.decode;
        out.push_str(&format!(
            "\"decode\": {{\"hits\": {}, \"builds\": {}, \"invalidations\": {}}}, ",
            d.hits, d.builds, d.invalidations,
        ));
        let q = &s.queue;
        out.push_str(&format!(
            "\"queue\": {{\"core_events\": {}, \"shared_events\": {}, \"head_rescans\": {}}}, ",
            q.core_events, q.shared_events, q.head_rescans,
        ));
        let f = &s.fused;
        out.push_str(&format!(
            "\"fused\": {{\"loads\": {}, \"stores\": {}, \"memo_hits\": {}}}",
            f.loads, f.stores, f.memo_hits,
        ));
        out.push('}');
        if i + 1 < samples.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_sim::EpisodeStats;

    fn doc(samples: Vec<ThroughputSample>) -> ThroughputDoc {
        ThroughputDoc {
            jobs: 2,
            host_threads: 8,
            serial_wall_seconds: 1.5,
            parallel_wall_seconds: 0.75,
            samples,
        }
    }

    fn meas(cycles: u64, instructions: u64, stats_digest: u64) -> Measurement {
        Measurement {
            cycles,
            instructions,
            stats_digest,
            episodes: EpisodeStats::default(),
        }
    }

    fn decode(hits: u64, builds: u64, invalidations: u64) -> DecodeCacheStats {
        DecodeCacheStats {
            hits,
            builds,
            invalidations,
        }
    }

    fn queue(core_events: u64, shared_events: u64, head_rescans: u64) -> EventQueueStats {
        EventQueueStats {
            core_events,
            shared_events,
            head_rescans,
        }
    }

    fn fused(loads: u64, stores: u64, memo_hits: u64) -> FusedMemStats {
        FusedMemStats {
            loads,
            stores,
            memo_hits,
        }
    }

    #[test]
    fn fig4_sample_is_deterministic_in_simulated_terms() {
        let a = fig4_sample(4, 4, 2);
        let b = fig4_sample(4, 4, 2);
        assert_eq!(a.sim.cycles, b.sim.cycles);
        assert_eq!(a.sim.instructions, b.sim.instructions);
        assert_eq!(a.sim.stats_digest, b.sim.stats_digest);
        assert!(a.instr_per_sec > 0.0);
    }

    #[test]
    fn parallel_suite_matches_serial_samples() {
        let (cores, inner, outer, bits, threads) = (4, 4, 2, 24, 4);
        let serial_fig4 = fig4_sample(cores, inner, outer);
        let serial_vit = viterbi_sample(bits, threads);
        let suite = run_suite(&SweepRunner::new(4), cores, inner, outer, bits, threads);
        assert_eq!(suite.samples.len(), 2);
        assert!(suite.suite_wall_seconds > 0.0);
        for (par, ser) in suite.samples.iter().zip([&serial_fig4, &serial_vit]) {
            assert_eq!(par.workload, ser.workload);
            assert_eq!(par.sim, ser.sim, "simulated record must be identical");
        }
    }

    #[test]
    fn json_document_has_schema_and_all_samples() {
        let j = to_json(&doc(vec![
            sample(
                "w1",
                meas(10, 20, 7),
                0.5,
                decode(100, 4, 1),
                queue(50, 6, 9),
                fused(30, 2, 25),
            ),
            sample(
                "w2",
                meas(1, 2, 9),
                0.25,
                decode(0, 0, 0),
                queue(0, 0, 0),
                fused(0, 0, 0),
            ),
        ]));
        assert!(j.contains("fastbar-throughput/v4"));
        assert!(j.contains("\"jobs\": 2"));
        assert!(j.contains("\"host_threads\": 8"));
        assert!(j.contains("\"serial_wall_seconds\": 1.500000"));
        assert!(j.contains("\"parallel_wall_seconds\": 0.750000"));
        assert!(j.contains("\"workload\": \"w1\""));
        assert!(
            j.contains("\"stats_digest\": \"0x0000000000000007\""),
            "digests are always emitted as hex now"
        );
        assert!(j.contains("\"instr_per_sec\": 40.0"));
        assert!(j.contains("\"episodes\": {\"count\": 0"));
        assert!(
            j.contains("\"decode\": {\"hits\": 100, \"builds\": 4, \"invalidations\": 1}"),
            "v3 samples carry the decoded-superblock counters"
        );
        assert!(j.contains("\"decode\": {\"hits\": 0, \"builds\": 0, \"invalidations\": 0}"));
        assert!(
            j.contains(
                "\"queue\": {\"core_events\": 50, \"shared_events\": 6, \"head_rescans\": 9}"
            ),
            "v4 samples carry the sharded-queue counters"
        );
        assert!(
            j.contains("\"fused\": {\"loads\": 30, \"stores\": 2, \"memo_hits\": 25}"),
            "v4 samples carry the fused-memory counters"
        );
        assert!(j.contains("\"fused\": {\"loads\": 0, \"stores\": 0, \"memo_hits\": 0}"));
    }

    #[test]
    fn json_strings_are_escaped() {
        let j = to_json(&doc(vec![sample(
            "w\"quoted\\slash",
            meas(1, 1, 0),
            0.5,
            decode(0, 0, 0),
            queue(0, 0, 0),
            fused(0, 0, 0),
        )]));
        assert!(j.contains("\"workload\": \"w\\\"quoted\\\\slash\""));
    }
}
