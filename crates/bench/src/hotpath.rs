//! Per-stage engine cost profiler (the `hotpath` binary).
//!
//! The throughput suite reports one number per workload; when it stalls,
//! the next perf PR starts from a blind profile. This module isolates the
//! engine's per-instruction cost *stages* with differential microbenches:
//! single-core straight-line loops whose bodies exercise exactly one
//! engine path, timed with each fast-path knob toggled. Subtracting the
//! pure-ALU ceiling from each variant yields the marginal cost of one
//! stage (dispatch, scheduling, memory) in host nanoseconds per retired
//! instruction — numbers directly comparable across commits because the
//! workloads are fixed.
//!
//! The committed snapshot lives at `results/hotpath.txt`; regenerate it
//! with `cargo run --release -p bench-suite --bin hotpath`.

use std::time::Instant;

use barrier_filter::BarrierMechanism;
use cmp_sim::{Machine, MachineBuilder, SimConfig, DATA_BASE};
use sim_isa::{Asm, Reg};

use crate::latency::build_latency_machine;

/// Ops per loop iteration in each microbench body (plus 2 loop-control
/// instructions: `addi` + `bne`).
const BODY_OPS: u64 = 14;

/// Loop iterations — sized so each point runs a few hundred ms in release.
const ITERS: u64 = 400_000;

/// One timed microbench point.
#[derive(Debug, Clone)]
pub struct HotpathPoint {
    /// Point identifier (workload + knob setting).
    pub name: String,
    /// Instructions the simulated run retired.
    pub instructions: u64,
    /// Host wall-clock seconds for the run (excludes machine build).
    pub wall_seconds: f64,
}

impl HotpathPoint {
    /// Host nanoseconds per retired simulated instruction.
    pub fn ns_per_instr(&self) -> f64 {
        self.wall_seconds * 1e9 / self.instructions.max(1) as f64
    }

    /// Million simulated instructions per host second.
    pub fn minstr_per_sec(&self) -> f64 {
        self.instructions as f64 / self.wall_seconds.max(1e-9) / 1e6
    }
}

/// Which microbench body the loop runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Body {
    /// `BODY_OPS` register-register ALU ops: the exec + step ceiling.
    Alu,
    /// `BODY_OPS` loads of the same resident line: + the load-hit path.
    LoadHit,
    /// `BODY_OPS` stores to the same line: + the store-buffer/drain path.
    Store,
}

/// Engine-knob overrides for one point (`None` = the config default).
#[derive(Debug, Clone, Copy, Default)]
struct Knobs {
    burst_budget: Option<u32>,
    decode_cache: Option<bool>,
    event_shards: Option<bool>,
    fused_memory: Option<bool>,
}

fn build_loop(body: Body, knobs: Knobs) -> Machine {
    let mut config = SimConfig::with_cores(1);
    if let Some(b) = knobs.burst_budget {
        config.burst_budget = b;
    }
    if let Some(d) = knobs.decode_cache {
        config.decode_cache = d;
    }
    if let Some(s) = knobs.event_shards {
        config.event_shards = s;
    }
    if let Some(f) = knobs.fused_memory {
        config.fused_memory = f;
    }
    let mut asm = Asm::new();
    asm.label("entry").expect("fresh assembler");
    asm.li(Reg::S2, DATA_BASE as i64);
    asm.li(Reg::S0, ITERS as i64);
    asm.label("loop").expect("unique");
    for _ in 0..BODY_OPS {
        match body {
            Body::Alu => asm.add(Reg::T0, Reg::T1, Reg::T2),
            Body::LoadHit => asm.ldd(Reg::T0, Reg::S2, 0),
            Body::Store => asm.std(Reg::T1, Reg::S2, 0),
        };
    }
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bne(Reg::S0, Reg::ZERO, "loop");
    asm.halt();
    let program = asm.assemble().expect("assembly");
    let entry = program.require_symbol("entry").expect("entry symbol");
    let mut mb = MachineBuilder::new(config, program).expect("builder");
    mb.add_thread(entry);
    mb.build().expect("build")
}

fn run_point(name: &str, body: Body, knobs: Knobs) -> HotpathPoint {
    let mut m = build_loop(body, knobs);
    let t0 = Instant::now();
    let summary = m.run().unwrap_or_else(|e| panic!("hotpath {name}: {e}"));
    HotpathPoint {
        name: name.to_string(),
        instructions: summary.instructions,
        wall_seconds: t0.elapsed().as_secs_f64(),
    }
}

/// The full profile: every microbench point plus the fig4 reference
/// workload.
#[derive(Debug)]
pub struct HotpathReport {
    /// Timed points, in measurement order.
    pub points: Vec<HotpathPoint>,
}

impl HotpathReport {
    fn point(&self, name: &str) -> &HotpathPoint {
        self.points
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("missing hotpath point {name}"))
    }

    /// Marginal cost of `b` over `a` in ns per instruction (clamped at
    /// zero: a negative difference is measurement noise).
    fn delta(&self, a: &str, b: &str) -> f64 {
        (self.point(b).ns_per_instr() - self.point(a).ns_per_instr()).max(0.0)
    }

    /// Render the human-readable report (the committed snapshot format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Engine hot-path profile (single-core microbenches + fig4 reference)\n");
        out.push_str("ns/instr = host nanoseconds per retired simulated instruction\n\n");
        out.push_str(&format!(
            "{:<34} {:>12} {:>9} {:>10} {:>10}\n",
            "point", "sim Minstr", "host s", "ns/instr", "Minstr/s"
        ));
        out.push_str(&"-".repeat(79));
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!(
                "{:<34} {:>12.2} {:>9.3} {:>10.2} {:>10.2}\n",
                p.name,
                p.instructions as f64 / 1e6,
                p.wall_seconds,
                p.ns_per_instr(),
                p.minstr_per_sec()
            ));
        }
        out.push_str("\nDerived stage costs (marginal ns/instr over the ALU ceiling):\n");
        out.push_str(&format!(
            "  exec+step ceiling (alu, all fast paths) : {:>6.2}\n",
            self.point("alu").ns_per_instr()
        ));
        out.push_str(&format!(
            "  decode stage (alu, decode cache off)    : {:>6.2}\n",
            self.delta("alu", "alu_decode_off")
        ));
        out.push_str(&format!(
            "  schedule stage (alu, burst budget 0)    : {:>6.2}\n",
            self.delta("alu", "alu_burst0")
        ));
        out.push_str(&format!(
            "  sharded-queue cost at burst 0           : {:>6.2}\n",
            self.delta("alu_burst0", "alu_burst0_shards")
        ));
        out.push_str(&format!(
            "  memory stage, load hit (fused)          : {:>6.2}\n",
            self.delta("alu", "load_hit")
        ));
        out.push_str(&format!(
            "  fused-memory saving on load hits        : {:>6.2}\n",
            self.delta("load_hit", "load_hit_fused_off")
        ));
        out.push_str(&format!(
            "  memory stage, store                     : {:>6.2}\n",
            self.delta("alu", "store")
        ));
        out
    }
}

/// Run the whole profile (a few seconds in release).
///
/// # Panics
///
/// Panics if any microbench run fails: the workloads are fixed
/// straight-line loops and must always complete.
pub fn profile() -> HotpathReport {
    let d = Knobs::default();
    let mut points = vec![
        run_point("alu", Body::Alu, d),
        run_point(
            "alu_decode_off",
            Body::Alu,
            Knobs {
                decode_cache: Some(false),
                ..d
            },
        ),
        run_point(
            "alu_burst0",
            Body::Alu,
            Knobs {
                burst_budget: Some(0),
                ..d
            },
        ),
        run_point(
            "alu_burst0_shards",
            Body::Alu,
            Knobs {
                burst_budget: Some(0),
                event_shards: Some(true),
                ..d
            },
        ),
        run_point("load_hit", Body::LoadHit, d),
        run_point(
            "load_hit_fused_off",
            Body::LoadHit,
            Knobs {
                fused_memory: Some(false),
                ..d
            },
        ),
        run_point("store", Body::Store, d),
    ];
    // The fig4 reference, broken out per mechanism: each barrier mechanism
    // stresses a different engine mix (ll/sc retries, fence drains, spin
    // loads, hook events), so the per-mechanism ns/instr localizes which
    // path a regression lives in.
    let mut total_instr = 0u64;
    let mut total_wall = 0f64;
    for mechanism in BarrierMechanism::ALL {
        let mut m = build_latency_machine(mechanism, 16, 64, 64);
        let t0 = Instant::now();
        let summary = m
            .run()
            .unwrap_or_else(|e| panic!("hotpath fig4 {mechanism}: {e}"));
        let wall = t0.elapsed().as_secs_f64();
        total_instr += summary.instructions;
        total_wall += wall;
        points.push(HotpathPoint {
            name: format!("fig4/{mechanism}"),
            instructions: summary.instructions,
            wall_seconds: wall,
        });
    }
    points.push(HotpathPoint {
        name: "fig4_16core (reference)".to_string(),
        instructions: total_instr,
        wall_seconds: total_wall,
    });
    HotpathReport { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_points_time_and_report() {
        let p = run_point("alu", Body::Alu, Knobs::default());
        // 14 body ops + addi + bne per iteration, + 2 preamble + halt.
        assert_eq!(p.instructions, ITERS * (BODY_OPS + 2) + 3);
        assert!(p.ns_per_instr() > 0.0);
    }

    #[test]
    fn load_and_store_bodies_run_to_completion() {
        for body in [Body::LoadHit, Body::Store] {
            let p = run_point("m", body, Knobs::default());
            assert_eq!(p.instructions, ITERS * (BODY_OPS + 2) + 3);
        }
    }

    #[test]
    fn report_renders_every_stage() {
        let mk = |name: &str, ns: f64| HotpathPoint {
            name: name.to_string(),
            instructions: 1_000_000,
            wall_seconds: ns * 1e-9 * 1_000_000.0,
        };
        let report = HotpathReport {
            points: vec![
                mk("alu", 5.0),
                mk("alu_decode_off", 8.0),
                mk("alu_burst0", 30.0),
                mk("alu_burst0_shards", 35.0),
                mk("load_hit", 12.0),
                mk("load_hit_fused_off", 15.0),
                mk("store", 20.0),
            ],
        };
        let text = report.render();
        assert!(text.contains("schedule stage"));
        assert!(text.contains("fused-memory saving"));
        assert!(text.contains("sharded-queue cost"));
        assert!(text.contains("25.00"), "burst0 delta = 30 - 5");
    }
}
