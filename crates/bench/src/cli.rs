//! One argument parser for every figure binary.
//!
//! Each binary used to hand-roll its own `std::env::args()` scan, with
//! drifting help text and error conventions. [`Cli`] is the single
//! replacement: every binary gets `--quick`, `--jobs N` and `--help` for
//! free, and opts into the flags it actually supports (`--check`,
//! `--trace`, `--out`, and the fault-injection pair `--faults`/`--seed`).
//! Unrecognized flags are rejected — a binary never silently ignores a
//! flag it does not implement.
//!
//! ```no_run
//! use bench_suite::cli::Cli;
//!
//! let args = Cli::new("fig5_autocorr", "Figure 5 — Autocorrelation speedup").parse();
//! let n = if args.quick { 512 } else { 2048 };
//! ```

use crate::sweep::SweepRunner;

/// Default fault-plan seed for `--seed` (an arbitrary committed constant:
/// the point is that every run without an explicit seed replays the same
/// chaos schedule).
pub const DEFAULT_SEED: u64 = 0x5eed_ba44_1e4a_0001;

/// Most boolean switches one binary can declare via [`Cli::with_switch`].
const MAX_SWITCHES: usize = 4;

/// Flag declaration for one figure binary: the universal flags plus
/// whichever optional ones the binary supports.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    name: &'static str,
    about: &'static str,
    check: bool,
    trace: bool,
    out: Option<&'static str>,
    faults: bool,
    switches: [Option<(&'static str, &'static str)>; MAX_SWITCHES],
}

/// Parsed command line, with defaults filled in for every flag the binary
/// did not receive (and `0`/[`DEFAULT_SEED`] for fault flags the binary
/// does not even declare, so downstream code can read them unconditionally).
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// `--quick`: shrink problem sizes/rep counts for a smoke run.
    pub quick: bool,
    /// `--check`: assert committed digests, exit non-zero on mismatch.
    pub check: bool,
    /// Worker pool sized by `--jobs N` (default: all host threads).
    pub runner: SweepRunner,
    /// `--trace PATH` (or prefix), if given.
    pub trace: Option<String>,
    /// `--out PATH`, defaulted to the binary's declared output path.
    pub out: Option<String>,
    /// `--faults N`: scheduled fault events per run (default 0).
    pub faults: usize,
    /// `--seed S`: fault-plan seed, decimal or `0x` hex.
    pub seed: u64,
    /// Declared boolean switches that were present, by flag spelling.
    switches: Vec<&'static str>,
}

impl BenchArgs {
    /// Whether the declared boolean switch `flag` (e.g. `"--mc"`) was
    /// present on the command line.
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.contains(&flag)
    }
}

/// Outcome of [`Cli::parse_from`]: either a parsed argument set or a
/// request for the usage text.
#[derive(Debug, Clone)]
pub enum Parse {
    /// Flags parsed; run the benchmark.
    Run(BenchArgs),
    /// `--help`/`-h` was present; print [`Cli::usage`] and exit 0.
    Help,
}

impl Cli {
    /// A parser accepting the universal flags (`--quick`, `--jobs N`,
    /// `--help`) for the binary `name`, described by `about` in the help
    /// text.
    pub fn new(name: &'static str, about: &'static str) -> Cli {
        Cli {
            name,
            about,
            check: false,
            trace: false,
            out: None,
            faults: false,
            switches: [None; MAX_SWITCHES],
        }
    }

    /// Accept `--check` (digest assertion mode).
    #[must_use]
    pub fn with_check(mut self) -> Cli {
        self.check = true;
        self
    }

    /// Accept `--trace PATH`.
    #[must_use]
    pub fn with_trace(mut self) -> Cli {
        self.trace = true;
        self
    }

    /// Accept `--out PATH`, defaulting to `default_path` when absent.
    #[must_use]
    pub fn with_out(mut self, default_path: &'static str) -> Cli {
        self.out = Some(default_path);
        self
    }

    /// Accept the fault-injection pair `--faults N` and `--seed S`.
    #[must_use]
    pub fn with_faults(mut self) -> Cli {
        self.faults = true;
        self
    }

    /// Accept a binary-specific boolean switch (e.g. `--mc`), read back
    /// via [`BenchArgs::switch`]. `flag` must include the `--` prefix.
    ///
    /// # Panics
    ///
    /// More than four declared switches (a declaration-time bug, not an
    /// input error).
    #[must_use]
    pub fn with_switch(mut self, flag: &'static str, help: &'static str) -> Cli {
        assert!(flag.starts_with("--"), "switch {flag:?} must start with --");
        let slot = self
            .switches
            .iter_mut()
            .find(|s| s.is_none())
            .expect("too many declared switches");
        *slot = Some((flag, help));
        self
    }

    /// The full help text for this binary's declared flags.
    pub fn usage(&self) -> String {
        let mut flags = String::from("[--quick] [--jobs N]");
        if self.check {
            flags.push_str(" [--check]");
        }
        if self.trace {
            flags.push_str(" [--trace PATH]");
        }
        if self.out.is_some() {
            flags.push_str(" [--out PATH]");
        }
        if self.faults {
            flags.push_str(" [--faults N] [--seed S]");
        }
        for (flag, _) in self.switches.iter().flatten() {
            flags.push_str(&format!(" [{flag}]"));
        }
        let mut text = format!(
            "Usage: {} {flags} [--help]\n\n{}\n\nOptions:\n      \
             --quick        shrink problem sizes for a fast smoke run\n      \
             --jobs N       worker threads for the sweep (default: all host threads)\n",
            self.name, self.about
        );
        if self.check {
            text.push_str(
                "      --check        assert the committed stats digests; exit non-zero on mismatch\n",
            );
        }
        if self.trace {
            text.push_str("      --trace PATH   stream a Chrome trace to PATH\n");
        }
        if let Some(default) = self.out {
            text.push_str(&format!(
                "      --out PATH     write the JSON document to PATH (default: {default})\n"
            ));
        }
        if self.faults {
            text.push_str(&format!(
                "      --faults N     scheduled fault events per run (default: 0)\n      \
                 --seed S       fault-plan seed, decimal or 0x hex (default: {DEFAULT_SEED:#x})\n"
            ));
        }
        for (flag, help) in self.switches.iter().flatten() {
            text.push_str(&format!("      {flag:<14} {help}\n"));
        }
        text.push_str("  -h, --help         print this help\n");
        text
    }

    /// Parse the process arguments, handling `--help` (usage to stdout,
    /// exit 0) and errors (message plus usage to stderr, exit 2) the same
    /// way in every binary.
    pub fn parse(&self) -> BenchArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match self.parse_from(&args) {
            Ok(Parse::Run(parsed)) => parsed,
            Ok(Parse::Help) => {
                print!("{}", self.usage());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{}: {e}\n\n{}", self.name, self.usage());
                std::process::exit(2);
            }
        }
    }

    /// Parse an explicit argument list (no `argv[0]`). Pure — the testable
    /// core of [`parse`](Cli::parse).
    ///
    /// # Errors
    ///
    /// Returns a one-line message for an unrecognized flag, a missing or
    /// malformed value, or a positional argument (no binary takes any).
    pub fn parse_from(&self, args: &[String]) -> Result<Parse, String> {
        let mut parsed = BenchArgs {
            quick: false,
            check: false,
            runner: SweepRunner::available(),
            trace: None,
            out: self.out.map(String::from),
            faults: 0,
            seed: DEFAULT_SEED,
            switches: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f, Some(v.to_string())),
                None => (arg.as_str(), None),
            };
            let mut value = |flag: &str| {
                inline
                    .clone()
                    .or_else(|| it.next().cloned())
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag {
                "--help" | "-h" => return Ok(Parse::Help),
                "--quick" => parsed.quick = true,
                "--check" if self.check => parsed.check = true,
                "--jobs" => {
                    let v = value("--jobs")?;
                    let jobs: usize =
                        v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                            format!("--jobs: expected a positive integer, got {v:?}")
                        })?;
                    parsed.runner = SweepRunner::new(jobs);
                }
                "--trace" if self.trace => parsed.trace = Some(value("--trace")?),
                "--out" if self.out.is_some() => parsed.out = Some(value("--out")?),
                "--faults" if self.faults => {
                    let v = value("--faults")?;
                    parsed.faults = v
                        .parse()
                        .map_err(|_| format!("--faults: expected a count, got {v:?}"))?;
                }
                "--seed" if self.faults => {
                    let v = value("--seed")?;
                    parsed.seed = parse_seed(&v)
                        .ok_or_else(|| format!("--seed: expected decimal or 0x hex, got {v:?}"))?;
                }
                _ => {
                    if let Some((declared, _)) = self
                        .switches
                        .iter()
                        .flatten()
                        .find(|(declared, _)| *declared == flag)
                    {
                        parsed.switches.push(declared);
                    } else {
                        return Err(format!("unrecognized argument {arg:?} (try --help)"));
                    }
                }
            }
        }
        Ok(Parse::Run(parsed))
    }
}

/// Parse a seed as decimal or `0x`-prefixed hex.
fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn run(cli: &Cli, args: &[&str]) -> Result<BenchArgs, String> {
        match cli.parse_from(&strings(args))? {
            Parse::Run(a) => Ok(a),
            Parse::Help => Err("help requested".into()),
        }
    }

    #[test]
    fn universal_flags_parse() {
        let cli = Cli::new("t", "test binary");
        let a = run(&cli, &["--quick", "--jobs", "3"]).unwrap();
        assert!(a.quick);
        assert!(!a.check);
        assert_eq!(a.runner.jobs(), 3);
        assert_eq!(a.faults, 0);
        assert_eq!(a.seed, DEFAULT_SEED);
        let b = run(&cli, &["--jobs=2"]).unwrap();
        assert_eq!(b.runner.jobs(), 2);
        assert!(!b.quick);
    }

    #[test]
    fn undeclared_flags_are_rejected() {
        let cli = Cli::new("t", "test binary");
        for flags in [
            &["--check"][..],
            &["--trace", "x"],
            &["--out", "x"],
            &["--faults", "3"],
            &["--seed", "1"],
            &["--frobnicate"],
            &["positional"],
        ] {
            let err = run(&cli, flags).unwrap_err();
            assert!(err.contains("unrecognized"), "{flags:?}: {err}");
        }
    }

    #[test]
    fn declared_flags_parse_with_defaults() {
        let cli = Cli::new("t", "test binary")
            .with_check()
            .with_trace()
            .with_out("OUT.json")
            .with_faults();
        let a = run(&cli, &[]).unwrap();
        assert!(!a.check);
        assert_eq!(a.trace, None);
        assert_eq!(a.out.as_deref(), Some("OUT.json"));
        let b = run(
            &cli,
            &[
                "--check", "--trace", "t.json", "--out", "o.json", "--faults", "7", "--seed",
                "0x2a",
            ],
        )
        .unwrap();
        assert!(b.check);
        assert_eq!(b.trace.as_deref(), Some("t.json"));
        assert_eq!(b.out.as_deref(), Some("o.json"));
        assert_eq!(b.faults, 7);
        assert_eq!(b.seed, 0x2a);
        let c = run(&cli, &["--seed", "42"]).unwrap();
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn declared_switches_parse_and_undeclared_ones_are_rejected() {
        let cli = Cli::new("t", "test binary")
            .with_switch("--mc", "run the model-checker layer")
            .with_switch("--json", "stream findings as JSON lines");
        let a = run(&cli, &["--mc", "--quick"]).unwrap();
        assert!(a.switch("--mc"));
        assert!(!a.switch("--json"));
        let b = run(&cli, &["--json", "--mc"]).unwrap();
        assert!(b.switch("--mc") && b.switch("--json"));
        let err = run(&cli, &["--verbose"]).unwrap_err();
        assert!(err.contains("unrecognized"));
        // A switch declared by one binary stays rejected by another.
        let plain = Cli::new("t", "test binary");
        assert!(run(&plain, &["--mc"]).unwrap_err().contains("unrecognized"));
        let usage = cli.usage();
        assert!(usage.contains("[--mc]"));
        assert!(usage.contains("stream findings as JSON lines"));
    }

    #[test]
    fn bad_values_report_the_flag() {
        let cli = Cli::new("t", "test binary").with_faults();
        for (flags, needle) in [
            (&["--jobs"][..], "--jobs"),
            (&["--jobs", "0"], "--jobs"),
            (&["--jobs", "many"], "--jobs"),
            (&["--faults", "-1"], "--faults"),
            (&["--seed", "0xZZ"], "--seed"),
            (&["--seed"], "--seed"),
        ] {
            let err = run(&cli, flags).unwrap_err();
            assert!(err.contains(needle), "{flags:?}: {err}");
        }
    }

    #[test]
    fn help_short_circuits_and_usage_lists_declared_flags() {
        let cli = Cli::new("t", "test binary").with_faults();
        assert!(matches!(
            cli.parse_from(&strings(&["--quick", "--help"])).unwrap(),
            Parse::Help
        ));
        assert!(matches!(
            cli.parse_from(&strings(&["-h"])).unwrap(),
            Parse::Help
        ));
        let usage = cli.usage();
        assert!(usage.contains("test binary"));
        assert!(usage.contains("--faults"));
        assert!(usage.contains("--seed"));
        assert!(!usage.contains("--check"));
        assert!(!usage.contains("--trace"));
        let full = Cli::new("t", "x").with_check().with_trace().with_out("O");
        let usage = full.usage();
        assert!(usage.contains("--check"));
        assert!(usage.contains("--trace"));
        assert!(usage.contains("default: O"));
    }
}
