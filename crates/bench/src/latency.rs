//! The Figure 4 micro-benchmark: average time per barrier over a loop of
//! consecutive barriers with no work between them (the methodology of §4.2,
//! following Culler/Singh/Gupta).

use barrier_filter::{Barrier, BarrierMechanism, BarrierSystem};
use cmp_sim::{
    AddressSpace, Machine, MachineBuilder, Measurement, SimConfig, SimError, TraceConfig, TraceSink,
};
use sim_isa::{Asm, Reg};

/// Build (but do not run) the Figure 4 micro-benchmark machine: `inner`
/// consecutive barriers of `mechanism` across `cores` threads, repeated
/// `outer` times with no work in between. Shared by [`barrier_latency`]
/// and the wall-clock throughput benchmark.
///
/// # Panics
///
/// Panics on assembler/build failures (static program construction bugs).
pub fn build_latency_machine(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
) -> Machine {
    build_latency_machine_traced(mechanism, cores, inner, outer, TraceConfig::Off)
}

/// [`build_latency_machine`] with trace events streamed to the sink
/// `trace` selects. Tracing is an observer: the machine's simulated
/// behaviour is bit-identical to the untraced build.
///
/// # Panics
///
/// Panics on assembler/build/trace-sink failures.
pub fn build_latency_machine_traced(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
    trace: TraceConfig,
) -> Machine {
    let budget = SimConfig::with_cores(cores).burst_budget;
    build_latency_machine_tuned(mechanism, cores, inner, outer, trace, budget)
}

/// [`build_latency_machine_traced`] with an explicit core-step burst
/// budget (`0` disables the engine's burst fast path entirely). The burst
/// path is an engine optimization, not a model change: any budget must
/// yield a bit-identical [`MachineStats::digest`](cmp_sim::MachineStats)
/// — the invariance test in `tests/determinism.rs` holds this line.
///
/// # Panics
///
/// Panics on assembler/build/trace-sink failures.
pub fn build_latency_machine_tuned(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
    trace: TraceConfig,
    burst_budget: u32,
) -> Machine {
    let decode_cache = SimConfig::with_cores(cores).decode_cache;
    build_latency_machine_engine(
        mechanism,
        cores,
        inner,
        outer,
        trace,
        burst_budget,
        decode_cache,
    )
}

/// Explicit settings for every engine fast-path knob. All four are
/// host-side execution strategies, not model changes — any combination
/// must yield a bit-identical
/// [`MachineStats::digest`](cmp_sim::MachineStats); the matrix test in
/// `tests/determinism.rs` holds this line across all mechanisms and the
/// full knob cross product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineTune {
    /// Core-step burst budget (`0` disables the burst fast path).
    pub burst_budget: u32,
    /// Decoded-superblock cache ([`SimConfig::decode_cache`]).
    pub decode_cache: bool,
    /// Sharded per-core event lanes ([`SimConfig::event_shards`]).
    pub event_shards: bool,
    /// Memory-op-fused decoded executor ([`SimConfig::fused_memory`]).
    pub fused_memory: bool,
}

impl EngineTune {
    /// The process defaults for a `cores`-core machine (including any
    /// `FASTBAR_*` environment overrides, exactly as
    /// [`SimConfig::with_cores`] resolves them).
    pub fn defaults(cores: usize) -> EngineTune {
        let c = SimConfig::with_cores(cores);
        EngineTune {
            burst_budget: c.burst_budget,
            decode_cache: c.decode_cache,
            event_shards: c.event_shards,
            fused_memory: c.fused_memory,
        }
    }

    /// Write the four knobs into `config`, leaving everything else as-is.
    pub fn apply(&self, config: &mut SimConfig) {
        config.burst_budget = self.burst_budget;
        config.decode_cache = self.decode_cache;
        config.event_shards = self.event_shards;
        config.fused_memory = self.fused_memory;
    }
}

/// [`build_latency_machine_tuned`] with every engine fast-path knob
/// explicit via [`EngineTune`].
///
/// # Panics
///
/// Panics on assembler/build/trace-sink failures.
pub fn build_latency_machine_knobs(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
    trace: TraceConfig,
    tune: EngineTune,
) -> Machine {
    let mut config = SimConfig::with_cores(cores);
    tune.apply(&mut config);
    config.trace = trace;
    build_latency_machine_inner(config, mechanism, inner, outer, |_| None)
}

/// [`build_latency_machine_tuned`] with the burst budget *and* the
/// decoded-superblock cache explicit; the queue and fused-memory knobs
/// keep their process defaults (see [`build_latency_machine_knobs`] for
/// the full set).
///
/// # Panics
///
/// Panics on assembler/build/trace-sink failures.
#[allow(clippy::too_many_arguments)]
pub fn build_latency_machine_engine(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
    trace: TraceConfig,
    burst_budget: u32,
    decode_cache: bool,
) -> Machine {
    let tune = EngineTune {
        burst_budget,
        decode_cache,
        ..EngineTune::defaults(cores)
    };
    build_latency_machine_knobs(mechanism, cores, inner, outer, trace, tune)
}

/// [`build_latency_machine`] on an explicit [`SimConfig`] — the entry
/// point for non-flat machines (clustered topologies, alternative hop
/// latencies). Every core in the config runs the barrier loop. The flat
/// path above is the degenerate case: `SimConfig::with_cores(n)` here is
/// bit-identical to `build_latency_machine(mechanism, n, ..)`.
///
/// # Panics
///
/// Panics on assembler/build failures (static program construction bugs).
pub fn build_latency_machine_on(
    config: SimConfig,
    mechanism: BarrierMechanism,
    inner: u64,
    outer: u64,
) -> Machine {
    build_latency_machine_inner(config, mechanism, inner, outer, |_| None)
}

/// [`build_latency_machine`] with a hook that may attach a trace sink
/// (e.g. a race detector) once the barrier is registered. Sinks are
/// observers: the machine's simulated behaviour is bit-identical to the
/// unobserved build.
///
/// # Panics
///
/// Panics on assembler/build failures.
pub fn build_latency_machine_observed(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
    observe: impl FnOnce(&Barrier) -> Option<Box<dyn TraceSink>>,
) -> Machine {
    build_latency_machine_inner(
        SimConfig::with_cores(cores),
        mechanism,
        inner,
        outer,
        observe,
    )
}

fn build_latency_machine_inner(
    config: SimConfig,
    mechanism: BarrierMechanism,
    inner: u64,
    outer: u64,
    observe: impl FnOnce(&Barrier) -> Option<Box<dyn TraceSink>>,
) -> Machine {
    let cores = config.num_cores;
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys =
        BarrierSystem::new(&config, cores, &mut space).expect("barrier system allocation");
    let barrier = sys
        .create_barrier(&mut asm, &mut space, mechanism, cores)
        .expect("barrier registration");
    assert!(!barrier.is_fallback(), "latency sweep must not fall back");
    asm.label("entry").expect("fresh assembler");
    asm.li(Reg::S0, outer as i64);
    asm.label("outer").expect("unique");
    asm.li(Reg::S1, inner as i64);
    asm.label("inner").expect("unique");
    barrier.emit_call(&mut asm);
    asm.addi(Reg::S1, Reg::S1, -1);
    asm.bne(Reg::S1, Reg::ZERO, "inner");
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bne(Reg::S0, Reg::ZERO, "outer");
    asm.halt();
    let program = asm.assemble().expect("assembly");
    let entry = program.require_symbol("entry").unwrap();
    let mut cfg = config;
    cfg.cycle_limit = cfg.cycle_limit.max(2_000_000_000);
    let mut mb = MachineBuilder::new(cfg, program).expect("builder");
    for _ in 0..cores {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).expect("install");
    if let Some(sink) = observe(&barrier) {
        mb.with_trace_sink(sink);
    }
    mb.build().expect("build")
}

/// One measured point of the Figure 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Barrier mechanism measured.
    pub mechanism: BarrierMechanism,
    /// Cores (= threads) participating.
    pub cores: usize,
    /// Average cycles per barrier.
    pub cycles_per_barrier: f64,
    /// Mean interconnect queueing delay per transaction, max over the
    /// address and data networks (saturation signal).
    pub bus_mean_wait: f64,
    /// The simulated-run record shared with every other measurement layer
    /// (cycles, instructions, digest, episode metrics).
    pub sim: Measurement,
}

/// Measure average cycles/barrier: `inner` consecutive barriers, repeated
/// `outer` times (the paper uses 64 × 64).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics on assembler/build failures (static program construction bugs).
pub fn barrier_latency(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
) -> Result<LatencyPoint, SimError> {
    barrier_latency_traced(mechanism, cores, inner, outer, TraceConfig::Off)
}

/// [`barrier_latency`] with trace events streamed to the sink `trace`
/// selects (e.g. [`TraceConfig::ChromeJson`] for a Perfetto-loadable
/// file). The measured point is bit-identical to the untraced run.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics on assembler/build/trace-sink failures.
pub fn barrier_latency_traced(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
    trace: TraceConfig,
) -> Result<LatencyPoint, SimError> {
    let mut m = build_latency_machine_traced(mechanism, cores, inner, outer, trace);
    measure_latency_machine(&mut m, mechanism, cores, inner, outer)
}

/// [`barrier_latency`] on an explicit [`SimConfig`] — the measured entry
/// point for clustered topologies. `cores` in the returned point is the
/// config's core count; the flat path is the degenerate case.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics on assembler/build failures (static program construction bugs).
pub fn barrier_latency_on(
    config: SimConfig,
    mechanism: BarrierMechanism,
    inner: u64,
    outer: u64,
) -> Result<LatencyPoint, SimError> {
    let cores = config.num_cores;
    let mut m = build_latency_machine_on(config, mechanism, inner, outer);
    measure_latency_machine(&mut m, mechanism, cores, inner, outer)
}

fn measure_latency_machine(
    m: &mut Machine,
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
) -> Result<LatencyPoint, SimError> {
    let summary = m.run()?;
    let stats = m.stats();
    Ok(LatencyPoint {
        mechanism,
        cores,
        cycles_per_barrier: summary.cycles as f64 / (inner * outer) as f64,
        bus_mean_wait: stats.addr_bus.mean_wait().max(stats.data_bus.mean_wait()),
        sim: Measurement::new(&summary, &stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_point_is_positive_and_scales() {
        let p4 = barrier_latency(BarrierMechanism::FilterD, 4, 8, 2).unwrap();
        let p16 = barrier_latency(BarrierMechanism::FilterD, 16, 8, 2).unwrap();
        assert!(p4.cycles_per_barrier > 0.0);
        assert!(
            p16.cycles_per_barrier > p4.cycles_per_barrier,
            "more threads -> more work per episode"
        );
    }
}
