//! The Figure 4 micro-benchmark: average time per barrier over a loop of
//! consecutive barriers with no work between them (the methodology of §4.2,
//! following Culler/Singh/Gupta).
//!
//! The workload itself lives in the kernels crate as
//! [`Fig4`], addressed — like every other workload — by a
//! serializable [`RunSpec`]. This module is the measurement view: it maps
//! a finished run onto [`LatencyPoint`] (cycles/barrier plus the bus
//! saturation signal) and keeps the two legacy-shaped helpers the
//! wall-clock benchmark and fixtures still want.

use barrier_filter::BarrierMechanism;
use cmp_sim::{Machine, Measurement};
use kernels::{Fig4, KernelError, RunAttachments, RunSpec, WorkloadSpec};

/// Build (but do not run) the Figure 4 machine described by `spec`, with
/// attachments (trace selection, observer hooks). Split from the run so
/// the wall-clock throughput benchmark can time only the simulation.
///
/// # Errors
///
/// [`KernelError::Spec`] if the workload is not `fig4` (or is sequential,
/// or would fall back); barrier/assembly/build failures otherwise.
pub fn fig4_machine_with(
    spec: &RunSpec,
    att: &mut RunAttachments<'_>,
) -> Result<Machine, KernelError> {
    spec.validate()?;
    match spec.workload {
        WorkloadSpec::Fig4 { inner, outer } => Fig4::new(inner, outer).build(&spec.exec, att),
        ref other => Err(KernelError::Spec(format!(
            "latency measurement wants a fig4 workload, got {}",
            other.kind()
        ))),
    }
}

/// [`fig4_machine_with`] with no attachments.
///
/// # Errors
///
/// Same as [`fig4_machine_with`].
pub fn fig4_machine(spec: &RunSpec) -> Result<Machine, KernelError> {
    fig4_machine_with(spec, &mut RunAttachments::default())
}

/// Legacy-shaped sugar over [`fig4_machine`]: `inner` consecutive barriers
/// of `mechanism` across `cores` threads, repeated `outer` times.
///
/// # Panics
///
/// Panics on spec/assembler/build failures (static construction bugs).
pub fn build_latency_machine(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
) -> Machine {
    fig4_machine(&RunSpec::fig4(mechanism, cores, inner, outer))
        .unwrap_or_else(|e| panic!("fig4 machine {mechanism} @ {cores}: {e}"))
}

/// One measured point of the Figure 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Barrier mechanism measured.
    pub mechanism: BarrierMechanism,
    /// Cores (= threads) participating.
    pub cores: usize,
    /// Average cycles per barrier.
    pub cycles_per_barrier: f64,
    /// Mean interconnect queueing delay per transaction, max over the
    /// address and data networks (saturation signal).
    pub bus_mean_wait: f64,
    /// The simulated-run record shared with every other measurement layer
    /// (cycles, instructions, digest, episode metrics).
    pub sim: Measurement,
}

/// Run the Figure 4 workload described by `spec` and report it as a
/// latency point. Attachments (tracing, observers) are digest-invariant.
///
/// # Errors
///
/// [`KernelError::Spec`] if the workload is not `fig4`; simulation
/// failures otherwise.
pub fn run_latency_with(
    spec: &RunSpec,
    att: RunAttachments<'_>,
) -> Result<LatencyPoint, KernelError> {
    let WorkloadSpec::Fig4 { .. } = spec.workload else {
        return Err(KernelError::Spec(format!(
            "latency measurement wants a fig4 workload, got {}",
            spec.workload.kind()
        )));
    };
    let mechanism = spec.exec.mechanism.ok_or_else(|| {
        KernelError::Spec("a latency point needs a barrier mechanism".to_string())
    })?;
    let out = kernels::run_with(spec, att)?;
    Ok(LatencyPoint {
        mechanism,
        cores: spec.exec.threads,
        cycles_per_barrier: out.outcome.cycles_per_rep,
        bus_mean_wait: out.outcome.bus_mean_wait,
        sim: out.outcome.sim,
    })
}

/// [`run_latency_with`] with no attachments.
///
/// # Errors
///
/// Same as [`run_latency_with`].
pub fn run_latency(spec: &RunSpec) -> Result<LatencyPoint, KernelError> {
    run_latency_with(spec, RunAttachments::default())
}

/// Measure average cycles/barrier: `inner` consecutive barriers, repeated
/// `outer` times (the paper uses 64 × 64). Sugar over [`run_latency`] on
/// the flat topology.
///
/// # Errors
///
/// Propagates build and simulator errors.
pub fn barrier_latency(
    mechanism: BarrierMechanism,
    cores: usize,
    inner: u64,
    outer: u64,
) -> Result<LatencyPoint, KernelError> {
    run_latency(&RunSpec::fig4(mechanism, cores, inner, outer))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_point_is_positive_and_scales() {
        let p4 = barrier_latency(BarrierMechanism::FilterD, 4, 8, 2).unwrap();
        let p16 = barrier_latency(BarrierMechanism::FilterD, 16, 8, 2).unwrap();
        assert!(p4.cycles_per_barrier > 0.0);
        assert!(
            p16.cycles_per_barrier > p4.cycles_per_barrier,
            "more threads -> more work per episode"
        );
    }

    #[test]
    fn non_fig4_specs_are_rejected() {
        let spec = RunSpec::parallel(WorkloadSpec::Loop1 { n: 64 }, 4, BarrierMechanism::FilterD);
        assert!(matches!(run_latency(&spec), Err(KernelError::Spec(_))));
        assert!(matches!(fig4_machine(&spec), Err(KernelError::Spec(_))));
    }
}
