//! Figure 5: execution speed-up, relative to sequential execution, of the
//! multi-threaded EEMBC Autocorrelation benchmark on 16 cores, by barrier
//! mechanism.
//!
//! Paper shape: "parallelizes readily" — 3.86× with software combining
//! barriers, 7.31× with the best filter barrier, 7.98× with the dedicated
//! barrier network; "the barrier filter performs almost as well as the
//! aggressively modeled Polychronopoulos barrier hardware, but requires
//! less modification to the cores."
//!
//! Usage: `fig5_autocorr [--quick] [--jobs N]`.

use barrier_filter::BarrierMechanism;
use bench_suite::cli::Cli;
use bench_suite::{measure_on, report};
use kernels::autocorr::Autocorr;

fn main() {
    let args = Cli::new(
        "fig5_autocorr",
        "Figure 5 — Autocorrelation speedup by barrier mechanism (16 cores)",
    )
    .parse();
    let (quick, runner) = (args.quick, args.runner);
    let n = if quick { 512 } else { 2048 };
    let threads = 16;
    let kernel = Autocorr::new(n);
    let row = measure_on(
        &runner,
        format!("autocorr N={n} lag=32"),
        || kernel.run_sequential(),
        |m| kernel.run_parallel(threads, m),
    )
    .expect("autocorrelation");

    println!("Figure 5: Autocorrelation speedup over sequential, 16 cores (N={n}, lag=32)");
    println!();
    let header = vec!["mechanism".to_string(), "speedup".to_string()];
    let body: Vec<Vec<String>> = BarrierMechanism::ALL
        .iter()
        .map(|&m| vec![m.to_string(), report::f2(row.speedup(m))])
        .collect();
    print!("{}", report::table(&header, &body));
    println!();
    println!(
        "best software {:.2}x | best filter {:.2}x | dedicated network {:.2}x",
        row.best_software_speedup(),
        row.best_filter_speedup(),
        row.speedup(BarrierMechanism::HwDedicated),
    );
    println!("(paper: 3.86x software, 7.31x best filter, 7.98x dedicated network)");
}
