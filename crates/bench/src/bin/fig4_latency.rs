//! Figure 4: average execution time of different barrier mechanisms versus
//! core count (4–64 cores, one thread per core), measured as the paper does
//! — a loop of 64 consecutive barriers executed 64 times with no work
//! between them.
//!
//! Usage: `fig4_latency [--quick]` (`--quick` shrinks the rep counts for
//! smoke runs).

use barrier_filter::BarrierMechanism;
use bench_suite::{barrier_latency, report};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (inner, outer) = if quick { (16, 4) } else { (64, 64) };
    let core_counts = [4usize, 8, 16, 32, 64];

    println!("Figure 4: average cycles per barrier (loop of {inner} barriers x {outer} reps)");
    println!();
    let mut header = vec!["mechanism".to_string()];
    header.extend(core_counts.iter().map(|c| format!("{c} cores")));
    let mut rows = Vec::new();
    let mut waits = Vec::new();
    for mechanism in BarrierMechanism::ALL {
        let mut row = vec![mechanism.to_string()];
        let mut wait_row = vec![mechanism.to_string()];
        for &cores in &core_counts {
            let p = barrier_latency(mechanism, cores, inner, outer)
                .unwrap_or_else(|e| panic!("{mechanism} @ {cores} cores failed: {e}"));
            row.push(report::f1(p.cycles_per_barrier));
            wait_row.push(report::f1(p.bus_mean_wait));
        }
        rows.push(row);
        waits.push(wait_row);
    }
    print!("{}", report::table(&header, &rows));
    println!();
    println!("Bus saturation signal: mean bus queueing delay per transaction (cycles)");
    println!();
    print!("{}", report::table(&header, &waits));
}
