//! Figure 4: average execution time of different barrier mechanisms versus
//! core count (4–64 cores, one thread per core), measured as the paper does
//! — a loop of 64 consecutive barriers executed 64 times with no work
//! between them.
//!
//! Usage: `fig4_latency [--quick] [--jobs N] [--trace PREFIX]`
//!
//! The 35-point grid (7 mechanisms × 5 core counts) is a batch of
//! independent simulations; `--jobs N` spreads it over N host threads
//! (default: all of them) without changing a single simulated cycle —
//! results are assembled in grid order regardless of completion order.
//! `--quick` shrinks the rep counts for smoke runs. `--trace PREFIX`
//! streams a Chrome trace of each mechanism's 16-core point to
//! `PREFIX.<mechanism>.trace.json` (one file per mechanism; load them in
//! `chrome://tracing` or <https://ui.perfetto.dev>). Only the 16-core
//! points are traced: a full-sweep trace would be tens of megabytes per
//! point, and 16 cores is the configuration the paper's Figure 4 table
//! centres on. Tracing never changes the measured numbers.

use barrier_filter::BarrierMechanism;
use bench_suite::cli::Cli;
use bench_suite::latency::run_latency_with;
use bench_suite::report;
use cmp_sim::TraceConfig;
use kernels::{RunAttachments, RunSpec};

/// The core count whose points are traced under `--trace`.
const TRACED_CORES: usize = 16;

fn main() {
    let args = Cli::new(
        "fig4_latency",
        "Figure 4 — average barrier latency vs core count",
    )
    .with_trace()
    .parse();
    let (quick, runner) = (args.quick, args.runner);
    let trace_prefix = args.trace.as_deref();
    if let Some(prefix) = trace_prefix {
        // Fail before the sweep, not mid-build inside a worker: trace
        // files land next to the prefix, so the prefix must be writable.
        let probe = format!("{prefix}.probe");
        if let Err(e) = std::fs::write(&probe, b"") {
            eprintln!("fig4_latency: cannot write trace files at prefix {prefix:?}: {e}");
            std::process::exit(2);
        }
        let _ = std::fs::remove_file(&probe);
    }
    let (inner, outer) = if quick { (16, 4) } else { (64, 64) };
    let core_counts = [4usize, 8, 16, 32, 64];

    println!(
        "Figure 4: average cycles per barrier (loop of {inner} barriers x {outer} reps, \
         {} host jobs)",
        runner.jobs()
    );
    println!();
    // The full grid as one flat batch of independent jobs; the worker pool
    // returns points in grid order regardless of completion order.
    let grid: Vec<(BarrierMechanism, usize)> = BarrierMechanism::ALL
        .into_iter()
        .flat_map(|m| core_counts.iter().map(move |&cores| (m, cores)))
        .collect();
    let points = runner
        .run_all(&grid, |_, &(mechanism, cores)| {
            let trace = match trace_prefix {
                Some(prefix) if cores == TRACED_CORES => TraceConfig::ChromeJson {
                    path: format!("{prefix}.{mechanism}.trace.json"),
                },
                _ => TraceConfig::Off,
            };
            let spec = RunSpec::fig4(mechanism, cores, inner, outer);
            run_latency_with(&spec, RunAttachments::traced(trace))
                .unwrap_or_else(|e| panic!("{mechanism} @ {cores} cores failed: {e}"))
        })
        .unwrap_or_else(|e| panic!("fig4 sweep: {e}"));

    let mut header = vec!["mechanism".to_string()];
    header.extend(core_counts.iter().map(|c| format!("{c} cores")));
    let mut rows = Vec::new();
    let mut waits = Vec::new();
    let mut spreads = Vec::new();
    let traces_written: Vec<String> = match trace_prefix {
        Some(prefix) => BarrierMechanism::ALL
            .iter()
            .map(|m| format!("{prefix}.{m}.trace.json"))
            .collect(),
        None => Vec::new(),
    };
    for (mechanism, chunk) in BarrierMechanism::ALL
        .into_iter()
        .zip(points.chunks(core_counts.len()))
    {
        let mut row = vec![mechanism.to_string()];
        let mut wait_row = vec![mechanism.to_string()];
        let mut spread_row = vec![mechanism.to_string()];
        for p in chunk {
            row.push(report::f1(p.cycles_per_barrier));
            wait_row.push(report::f1(p.bus_mean_wait));
            spread_row.push(format!(
                "{}/{}",
                report::f1(p.sim.episodes.mean_arrival_spread()),
                report::f1(p.sim.episodes.mean_release_fanout())
            ));
        }
        rows.push(row);
        waits.push(wait_row);
        spreads.push(spread_row);
    }
    print!("{}", report::table(&header, &rows));
    println!();
    println!("Bus saturation signal: mean bus queueing delay per transaction (cycles)");
    println!();
    print!("{}", report::table(&header, &waits));
    println!();
    println!("Episode decomposition: mean arrival spread / release fan-out per barrier (cycles)");
    println!();
    print!("{}", report::table(&header, &spreads));
    if !traces_written.is_empty() {
        println!();
        println!("Chrome traces written ({TRACED_CORES}-core points):");
        for path in traces_written {
            println!("  {path}");
        }
    }
}
