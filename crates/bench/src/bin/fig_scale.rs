//! Scaling sweep: barrier latency from the paper's 16-core bus to
//! clustered 256- and 1024-core machines.
//!
//! Sweeps the Figure 4 micro-benchmark over the preset machines of
//! [`scale_config`](bench_suite::scale::scale_config) (flat 16-core bus,
//! then 4×16, 16×16 and 16×64 clustered topologies) under the flat
//! baselines and both hierarchical tree-combining variants, writing the
//! machine-readable `BENCH_scale.json` (schema `fastbar-scale/v1`).
//!
//! Usage: `fig_scale [--quick] [--jobs N] [--check] [--out PATH]`
//!
//! `--quick` shrinks the grid to the CI smoke (the 64-core clustered
//! machine under `sw-central` and `sw-hier`, short loops). `--check`
//! additionally re-runs the two committed 16-core workloads at full rep
//! counts and asserts their pinned digests — the degenerate-topology
//! guard that the flat machine, now expressed as a 1-cluster topology
//! routed through the interconnect layer, is bit-identical to every
//! trajectory before it. It composes with `--quick`: the digest check
//! always uses the full committed rep counts, so `fig_scale --quick
//! --check` is a complete smoke.

use bench_suite::cli::Cli;
use bench_suite::report;
use bench_suite::scale::{run_scale, to_scale_json, ScaleDoc};
use bench_suite::throughput::{
    fig4_sample, viterbi_sample, EXPECTED_FIG4_16CORE_DIGEST, EXPECTED_VITERBI_K5_16T_DIGEST,
};

fn main() {
    let args = Cli::new(
        "fig_scale",
        "Scaling sweep 16 -> 1024 cores -> BENCH_scale.json",
    )
    .with_check()
    .with_out("BENCH_scale.json")
    .parse();
    let runner = args.runner;
    let out_path = args.out.as_deref().expect("--out has a default");

    let points = match run_scale(&runner, &args) {
        Ok(points) => points,
        Err(panic) => {
            eprintln!("fig_scale: {panic}");
            std::process::exit(1);
        }
    };

    println!(
        "Barrier latency vs machine scale ({} points, {} jobs{})",
        points.len(),
        runner.jobs(),
        if args.quick { ", quick grid" } else { "" }
    );
    println!();
    let header: Vec<String> = [
        "cores",
        "clusters",
        "mechanism",
        "cyc/barrier",
        "bus wait",
        "episodes",
        "stats digest",
    ]
    .map(String::from)
    .to_vec();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.point.cores.to_string(),
                p.clusters.to_string(),
                p.point.mechanism.to_string(),
                report::f1(p.point.cycles_per_barrier),
                report::f2(p.point.bus_mean_wait),
                p.point.sim.episodes.episodes.to_string(),
                format!("{:#018x}", p.point.sim.stats_digest),
            ]
        })
        .collect();
    print!("{}", report::table(&header, &rows));

    if args.check {
        // The degenerate-topology guard: the flat 16-core machine is now a
        // 1-cluster topology routed through the interconnect layer, and the
        // committed workloads must still land on the exact digests every
        // past (pre-topology) trajectory committed to. Full rep counts
        // regardless of --quick: the constants were minted at 64 x 64.
        let fig4 = fig4_sample(16, 64, 64);
        let viterbi = viterbi_sample(96, 16);
        for (workload, got, expected) in [
            (
                "fig4_16core",
                fig4.sim.stats_digest,
                EXPECTED_FIG4_16CORE_DIGEST,
            ),
            (
                "viterbi_k5_16t",
                viterbi.sim.stats_digest,
                EXPECTED_VITERBI_K5_16T_DIGEST,
            ),
        ] {
            if got != expected {
                eprintln!(
                    "fig_scale: {workload}: digest {got:#018x} != committed {expected:#018x} — \
                     the degenerate 1-cluster topology changed the flat machine"
                );
                std::process::exit(1);
            }
        }
        println!();
        println!("digest check passed: the flat machine survives the topology layer bit-identical");
    }

    let doc = ScaleDoc {
        jobs: runner.jobs(),
        quick: args.quick,
        points,
    };
    if let Err(e) = std::fs::write(out_path, to_scale_json(&doc)) {
        eprintln!("fig_scale: writing {out_path}: {e}");
        std::process::exit(1);
    }
    println!();
    println!("wrote {out_path}");
}
