//! Simulator wall-clock throughput benchmark.
//!
//! Runs the fixed throughput workloads (the Figure 4 barrier sweep at 16
//! cores and the Viterbi kernel) twice — once with one worker, once on the
//! requested job count — and reports simulated instructions per host
//! second plus both whole-suite wall times, writing the machine-readable
//! trajectory file `BENCH_throughput.json` in the current directory.
//!
//! Usage: `throughput [--quick] [--jobs N] [--check] [--out PATH] [--trace PATH]`
//!
//! `--jobs N` sizes the worker pool of the parallel pass (default: all
//! host threads); simulated numbers and digests are bit-identical across
//! job counts, only wall time moves. `--check` re-times each tracked
//! workload to a median-of-[`CHECK_REPS`] wall (single-shot walls on a
//! shared host swing ±20%, the median is what lands in the JSON), asserts
//! the committed full-workload digests
//! ([`EXPECTED_FIG4_16CORE_DIGEST`]/[`EXPECTED_VITERBI_K5_16T_DIGEST`]),
//! and then pins the full `{decode_cache} × {event_shards} ×
//! {fused_memory}` knob cross product (8 combinations) against those same
//! digests at full workload size — the CI gate that the engine fast paths
//! stay execution strategies, never model changes (it forces the full rep
//! counts; `--quick` would change the digests). `--quick` shrinks rep
//! counts for smoke runs (and marks the
//! workloads accordingly, so quick numbers are never confused with the
//! tracked ones); `--out` overrides the JSON path. `--trace PATH`
//! additionally re-runs the Viterbi workload with a Chrome trace streamed
//! to PATH (load it in `chrome://tracing` or <https://ui.perfetto.dev>)
//! and checks that tracing left the stats digest bit-identical; the
//! traced re-run is not written to the JSON file (its wall time includes
//! trace I/O).

use barrier_filter::BarrierMechanism;
use bench_suite::cli::Cli;
use bench_suite::throughput::{
    fig4_sample, fig4_sample_with, run_suite, to_json, viterbi_sample, viterbi_sample_traced,
    ThroughputDoc, ThroughputSample, EXPECTED_FIG4_16CORE_DIGEST, EXPECTED_VITERBI_K5_16T_DIGEST,
};
use bench_suite::{report, SweepRunner};
use kernels::viterbi::Viterbi;
use kernels::{EngineKnobs, ExecSpec, RunAttachments};

/// Wall-time repetitions per workload under `--check`. The reported wall
/// is the median of this many serial runs.
const CHECK_REPS: usize = 3;

fn median(mut walls: Vec<f64>) -> f64 {
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

/// `--check`: re-time each tracked workload to a median-of-[`CHECK_REPS`]
/// wall (updating the sample in place so the table and JSON report the
/// median), assert the committed digests, then run the full
/// `{decode_cache} × {event_shards} × {fused_memory}` cross product at
/// full workload size and require every combination to reproduce the same
/// committed digests bit-for-bit.
fn run_check(samples: &mut [ThroughputSample], inner: u64, outer: u64, vit_bits: usize) {
    for s in samples.iter_mut() {
        let expected = match s.workload.as_str() {
            "fig4_16core" => EXPECTED_FIG4_16CORE_DIGEST,
            "viterbi_k5_16t" => EXPECTED_VITERBI_K5_16T_DIGEST,
            other => panic!("unexpected workload {other:?} under --check"),
        };
        let got = s.sim.stats_digest;
        assert_eq!(
            got, expected,
            "{}: digest {got:#018x} != committed {expected:#018x} — \
             simulated behaviour changed",
            s.workload
        );
        let mut walls = vec![s.wall_seconds];
        while walls.len() < CHECK_REPS {
            let rerun = if s.workload == "fig4_16core" {
                fig4_sample(16, inner, outer)
            } else {
                viterbi_sample(vit_bits, 16)
            };
            assert_eq!(
                rerun.sim.stats_digest, got,
                "{}: wall-time rep diverged from the first run",
                s.workload
            );
            walls.push(rerun.wall_seconds);
        }
        s.wall_seconds = median(walls);
        s.instr_per_sec = s.sim.instructions as f64 / s.wall_seconds.max(1e-9);
    }
    for decode in [false, true] {
        for shards in [false, true] {
            for fused in [false, true] {
                let label = format!("decode={decode} shards={shards} fused={fused}");
                let knobs = EngineKnobs {
                    decode_cache: Some(decode),
                    event_shards: Some(shards),
                    fused_memory: Some(fused),
                    ..EngineKnobs::default()
                };
                let fig4 = fig4_sample_with(16, inner, outer, knobs, |_| None);
                assert_eq!(
                    fig4.sim.stats_digest, EXPECTED_FIG4_16CORE_DIGEST,
                    "fig4_16core [{label}]: digest {:#018x} != committed \
                     {EXPECTED_FIG4_16CORE_DIGEST:#018x} — a fast-path knob \
                     changed simulated behaviour",
                    fig4.sim.stats_digest
                );
                let mut exec = ExecSpec::parallel(16, BarrierMechanism::FilterD);
                exec.knobs = knobs;
                let vit = Viterbi::new(vit_bits)
                    .run_with(&exec, RunAttachments::default())
                    .expect("viterbi check workload")
                    .outcome;
                assert_eq!(
                    vit.sim.stats_digest, EXPECTED_VITERBI_K5_16T_DIGEST,
                    "viterbi_k5_16t [{label}]: digest {:#018x} != committed \
                     {EXPECTED_VITERBI_K5_16T_DIGEST:#018x} — a fast-path knob \
                     changed simulated behaviour",
                    vit.sim.stats_digest
                );
            }
        }
    }
    println!(
        "check passed: median-of-{CHECK_REPS} walls recorded; both committed \
         digests reproduced by all 8 decode/shards/fused combinations"
    );
    println!();
}

fn main() {
    let args = Cli::new(
        "throughput",
        "Host-side simulator throughput → BENCH_throughput.json",
    )
    .with_check()
    .with_trace()
    .with_out("BENCH_throughput.json")
    .parse();
    let (quick, check, runner) = (args.quick, args.check, args.runner);
    let out_path = args.out.as_deref().expect("--out has a default");
    let trace_path = args.trace.as_deref();
    if quick && check {
        eprintln!("throughput: --check asserts the full-workload digests; drop --quick");
        std::process::exit(2);
    }
    if let Some(path) = trace_path {
        // Fail before the suite runs, not after: the traced re-run is the
        // very last step, and an unwritable path would waste the whole run.
        if let Err(e) = std::fs::write(path, b"") {
            eprintln!("throughput: cannot write trace file {path:?}: {e}");
            std::process::exit(2);
        }
    }

    let (inner, outer, vit_bits) = if quick { (8, 2, 24) } else { (64, 64, 96) };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Serial pass: the reference numbers (per-workload walls comparable
    // with the v1 trajectory), then the parallel pass on the requested
    // worker count. Simulated numbers must agree bit-for-bit.
    let serial = run_suite(&SweepRunner::new(1), 16, inner, outer, vit_bits, 16);
    let parallel = run_suite(&runner, 16, inner, outer, vit_bits, 16);
    for (s, p) in serial.samples.iter().zip(&parallel.samples) {
        assert_eq!(
            (s.sim.cycles, s.sim.stats_digest),
            (p.sim.cycles, p.sim.stats_digest),
            "{}: parallel pass diverged from serial — sweep jobs must be independent",
            s.workload
        );
    }

    let mut samples = serial.samples;
    if quick {
        for s in &mut samples {
            s.workload.push_str("_quick");
        }
    }
    if check {
        run_check(&mut samples, inner, outer, vit_bits);
    }

    println!(
        "Simulator throughput (simulated instructions per host second; \
         parallel pass: {} jobs on {host_threads} host threads)",
        runner.jobs()
    );
    println!();
    let header: Vec<String> = [
        "workload",
        "sim Mcycles",
        "sim Minstr",
        "host s",
        "Minstr/s",
        "stats digest",
        "episodes",
        "spread/fanout",
    ]
    .map(String::from)
    .to_vec();
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.workload.clone(),
                report::f1(s.sim.cycles as f64 / 1e6),
                report::f1(s.sim.instructions as f64 / 1e6),
                format!("{:.3}", s.wall_seconds),
                report::f2(s.instr_per_sec / 1e6),
                format!("{:#018x}", s.sim.stats_digest),
                s.sim.episodes.episodes.to_string(),
                format!(
                    "{}/{}",
                    report::f1(s.sim.episodes.mean_arrival_spread()),
                    report::f1(s.sim.episodes.mean_release_fanout())
                ),
            ]
        })
        .collect();
    print!("{}", report::table(&header, &rows));
    println!();
    println!(
        "whole suite: {:.3}s serial, {:.3}s at {} jobs ({:.2}x)",
        serial.suite_wall_seconds,
        parallel.suite_wall_seconds,
        runner.jobs(),
        serial.suite_wall_seconds / parallel.suite_wall_seconds.max(1e-9),
    );

    let doc = ThroughputDoc {
        jobs: runner.jobs(),
        host_threads,
        serial_wall_seconds: serial.suite_wall_seconds,
        parallel_wall_seconds: parallel.suite_wall_seconds,
        samples,
    };
    let json = to_json(&doc);
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("throughput: writing {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Some(path) = trace_path {
        let traced = viterbi_sample_traced(vit_bits, 16, path);
        let untraced = doc
            .samples
            .iter()
            .find(|s| s.workload.starts_with("viterbi"))
            .expect("viterbi sample present");
        assert_eq!(
            (traced.sim.cycles, traced.sim.stats_digest),
            (untraced.sim.cycles, untraced.sim.stats_digest),
            "tracing changed simulated behaviour — sinks must be pure observers"
        );
        println!();
        println!(
            "wrote Chrome trace to {path} ({} barrier episodes; digest unchanged)",
            traced.sim.episodes.episodes
        );
    }
}
