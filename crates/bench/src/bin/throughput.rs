//! Simulator wall-clock throughput benchmark.
//!
//! Runs the fixed throughput workloads (the Figure 4 barrier sweep at 16
//! cores and the Viterbi kernel) and reports simulated instructions per
//! host second, writing the machine-readable trajectory file
//! `BENCH_throughput.json` in the current directory.
//!
//! Usage: `throughput [--quick] [--out PATH] [--trace PATH]`
//!
//! `--quick` shrinks rep counts for smoke runs (and marks the workloads
//! accordingly, so quick numbers are never confused with the tracked
//! ones); `--out` overrides the JSON path. `--trace PATH` additionally
//! re-runs the Viterbi workload with a Chrome trace streamed to PATH
//! (load it in `chrome://tracing` or <https://ui.perfetto.dev>) and
//! checks that tracing left the stats digest bit-identical; the traced
//! re-run is not written to the JSON file (its wall time includes trace
//! I/O).

use bench_suite::report;
use bench_suite::throughput::{fig4_sample, to_json, viterbi_sample, viterbi_sample_traced};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_throughput.json", String::as_str);
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);

    let (inner, outer, vit_bits) = if quick { (8, 2, 24) } else { (64, 64, 96) };
    let mut samples = vec![fig4_sample(16, inner, outer), viterbi_sample(vit_bits, 16)];
    if quick {
        for s in &mut samples {
            s.workload.push_str("_quick");
        }
    }

    println!("Simulator throughput (simulated instructions per host second)");
    println!();
    let header: Vec<String> = [
        "workload",
        "sim Mcycles",
        "sim Minstr",
        "host s",
        "Minstr/s",
        "stats digest",
        "episodes",
        "spread/fanout",
    ]
    .map(String::from)
    .to_vec();
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.workload.clone(),
                report::f1(s.sim_cycles as f64 / 1e6),
                report::f1(s.sim_instructions as f64 / 1e6),
                format!("{:.3}", s.wall_seconds),
                report::f2(s.instr_per_sec / 1e6),
                s.stats_digest
                    .map_or_else(|| "-".to_string(), |d| format!("{d:#018x}")),
                s.episodes.episodes.to_string(),
                format!(
                    "{}/{}",
                    report::f1(s.episodes.mean_arrival_spread()),
                    report::f1(s.episodes.mean_release_fanout())
                ),
            ]
        })
        .collect();
    print!("{}", report::table(&header, &rows));

    let json = to_json(&samples);
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!();
    println!("wrote {out_path}");

    if let Some(path) = trace_path {
        let traced = viterbi_sample_traced(vit_bits, 16, path);
        let untraced = samples
            .iter()
            .find(|s| s.workload.starts_with("viterbi"))
            .expect("viterbi sample present");
        assert_eq!(
            (traced.sim_cycles, traced.stats_digest),
            (untraced.sim_cycles, untraced.stats_digest),
            "tracing changed simulated behaviour — sinks must be pure observers"
        );
        println!();
        println!(
            "wrote Chrome trace to {path} ({} barrier episodes; digest unchanged)",
            traced.episodes.episodes
        );
    }
}
