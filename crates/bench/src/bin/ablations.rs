//! Design ablations called out in DESIGN.md:
//!
//! 1. invalidations per invocation: entry/exit vs ping-pong (bus bandwidth);
//! 2. filter placement: latency of the shared level hosting the filter;
//! 3. bus bandwidth sweep: where Figure 4's saturation bend comes from;
//! 4. minimum-chunk partitioning vs fine (cyclic-like) distribution for
//!    Livermore Loop 2's coherence traffic (§4.4 motivation).
//!
//! Usage: `ablations [--quick] [--jobs N]`.

use barrier_filter::{BarrierMechanism, BarrierSystem};
use bench_suite::cli::Cli;
use bench_suite::{barrier_latency, report};
use cmp_sim::{AddressSpace, MachineBuilder, SimConfig};
use sim_isa::{Asm, Reg};

/// Average barrier latency under a custom machine configuration.
fn latency_with(config: SimConfig, mechanism: BarrierMechanism, inner: u64, outer: u64) -> f64 {
    let cores = config.num_cores;
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, cores, &mut space).expect("barrier system");
    let barrier = sys
        .create_barrier(&mut asm, &mut space, mechanism, cores)
        .expect("barrier");
    asm.label("entry").expect("fresh assembler");
    asm.li(Reg::S0, outer as i64);
    asm.label("outer").expect("unique");
    asm.li(Reg::S1, inner as i64);
    asm.label("inner").expect("unique");
    barrier.emit_call(&mut asm);
    asm.addi(Reg::S1, Reg::S1, -1);
    asm.bne(Reg::S1, Reg::ZERO, "inner");
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bne(Reg::S0, Reg::ZERO, "outer");
    asm.halt();
    let program = asm.assemble().expect("assemble");
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).expect("builder");
    for _ in 0..cores {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).expect("install");
    let mut m = mb.build().expect("build");
    let cycles = m.run().expect("run").cycles;
    cycles as f64 / (inner * outer) as f64
}

fn main() {
    let args = Cli::new("ablations", "Design ablations called out in DESIGN.md").parse();
    let (quick, runner) = (args.quick, args.runner);
    let (inner, outer) = if quick { (16, 4) } else { (64, 16) };

    // --- 1. invalidations per invocation -------------------------------
    println!("Ablation 1: invalidations per invocation (entry/exit = 2, ping-pong = 1)");
    println!();
    let core_counts = [16usize, 32, 64];
    // One job per (cores, mechanism) point, fanned out over the runner.
    let grid: Vec<(usize, BarrierMechanism)> = core_counts
        .iter()
        .flat_map(|&c| {
            [BarrierMechanism::FilterD, BarrierMechanism::FilterDPingPong]
                .into_iter()
                .map(move |m| (c, m))
        })
        .collect();
    let points = runner
        .run_all(&grid, |_, &(cores, m)| {
            barrier_latency(m, cores, inner, outer).unwrap_or_else(|e| panic!("{m} @ {cores}: {e}"))
        })
        .expect("ablation 1 sweep");
    let mut rows = Vec::new();
    for (i, &cores) in core_counts.iter().enumerate() {
        let d = &points[2 * i];
        let pp = &points[2 * i + 1];
        rows.push(vec![
            cores.to_string(),
            report::f1(d.cycles_per_barrier),
            report::f1(pp.cycles_per_barrier),
            format!(
                "{:.1}%",
                (1.0 - pp.cycles_per_barrier / d.cycles_per_barrier) * 100.0
            ),
        ]);
    }
    print!(
        "{}",
        report::table(
            &[
                "cores".into(),
                "filter-d".into(),
                "filter-d-pp".into(),
                "saving".into()
            ],
            &rows
        )
    );
    println!();

    // --- 2. filter placement --------------------------------------------
    println!("Ablation 2: filter placement — latency of the hosting controller");
    println!("(the paper places the filter at the first shared level; deeper placement");
    println!(" adds its latency to every barrier episode)");
    println!();
    let placements = [
        ("L2 (14 cy, paper)", 14u64),
        ("L3-like (38 cy)", 38),
        ("memory-side (138 cy)", 138),
    ];
    let lats = runner
        .run_all(&placements, |_, &(_, l2_latency)| {
            let mut config = SimConfig::with_cores(16);
            config.l2.latency = l2_latency;
            latency_with(config, BarrierMechanism::FilterD, inner, outer)
        })
        .expect("ablation 2 sweep");
    let rows: Vec<Vec<String>> = placements
        .iter()
        .zip(&lats)
        .map(|(&(name, _), &lat)| vec![name.to_string(), report::f1(lat)])
        .collect();
    print!(
        "{}",
        report::table(&["filter placement".into(), "cycles/barrier".into()], &rows)
    );
    println!();

    // --- 3. bus bandwidth ------------------------------------------------
    println!("Ablation 3: shared-bus bandwidth and the Figure 4 saturation bend");
    println!();
    let bandwidths = [
        ("64B/2cy (default)", 2u64),
        ("64B/4cy (half bw)", 4),
        ("64B/8cy (quarter bw)", 8),
    ];
    let bw_cores = [16usize, 64];
    let bw_grid: Vec<(u64, usize)> = bandwidths
        .iter()
        .flat_map(|&(_, d)| bw_cores.iter().map(move |&c| (d, c)))
        .collect();
    let bw_lats = runner
        .run_all(&bw_grid, |_, &(data_cycles, cores)| {
            let mut config = SimConfig::with_cores(cores);
            config.bus.data_cycles = data_cycles;
            latency_with(config, BarrierMechanism::FilterD, inner, outer)
        })
        .expect("ablation 3 sweep");
    let rows: Vec<Vec<String>> = bandwidths
        .iter()
        .zip(bw_lats.chunks(bw_cores.len()))
        .map(|(&(name, _), lats)| {
            let mut row = vec![name.to_string()];
            row.extend(lats.iter().map(|&lat| report::f1(lat)));
            row
        })
        .collect();
    print!(
        "{}",
        report::table(
            &[
                "bus data bandwidth".into(),
                "16 cores".into(),
                "64 cores".into()
            ],
            &rows
        )
    );
    println!();

    // --- 4. chunked vs fine partitioning --------------------------------
    println!("Ablation 4: Loop-2 partitioning — the paper partitions 'in chunks of at");
    println!("least 8 doubles' so lines transfer between cores at most once (§4.4).");
    println!("Upgrade invalidations per invocation measure the coherence ping-pong a");
    println!("finer distribution would cause:");
    println!();
    use kernels::livermore::Loop2;
    let kernel = Loop2::new(if quick { 64 } else { 256 });
    let chunked = kernel
        .run_parallel(16, BarrierMechanism::FilterI)
        .expect("loop2");
    println!(
        "  chunked (paper) parallel cycles/invocation: {:.1}",
        chunked.cycles_per_rep
    );
    println!("  (a sub-cache-line distribution is rejected by construction: the kernel");
    println!("   floors its chunk size at one cache line of doubles)");
}
