//! Figure 7: performance (cycles per invocation) of Livermore Loop 2 on 16
//! cores versus vector length, for each barrier mechanism against the
//! sequential baseline.
//!
//! Paper shape: "the performance of the parallel version using filter
//! barriers does not surpass that of the sequential version until vector
//! lengths of 256 elements are reached", and the rapid halving of available
//! parallelism per `do-while` stage gives this kernel "a qualitatively
//! different curvature" from loops 3 and 6.
//!
//! Usage: `fig7_loop2 [--quick] [--jobs N]`.

use barrier_filter::BarrierMechanism;
use bench_suite::cli::Cli;
use bench_suite::{report, sweep_grid};
use kernels::livermore::Loop2;

fn main() {
    let args = Cli::new(
        "fig7_loop2",
        "Figure 7 — Livermore Loop 2 cycles vs vector length",
    )
    .parse();
    let (quick, runner) = (args.quick, args.runner);
    let sizes: &[usize] = if quick {
        &[32, 64, 256]
    } else {
        &[16, 32, 64, 128, 256, 512, 1024]
    };
    let threads = 16;
    println!(
        "Figure 7: Livermore Loop 2 on {threads} cores — cycles per invocation vs vector length"
    );
    println!();
    let kernels: Vec<Loop2> = sizes.iter().map(|&n| Loop2::new(n)).collect();
    let labels: Vec<String> = sizes.iter().map(|n| format!("loop2 N={n}")).collect();
    let grid = sweep_grid(&runner, &labels, |row, variant| match variant {
        None => kernels[row].run_sequential(),
        Some(m) => kernels[row].run_parallel(threads, m),
    })
    .expect("loop 2");
    let mut header = vec!["N".to_string(), "sequential".to_string()];
    header.extend(BarrierMechanism::ALL.iter().map(|m| m.to_string()));
    let mut rows = Vec::new();
    let mut crossover: Option<usize> = None;
    for (&n, row) in sizes.iter().zip(&grid) {
        if crossover.is_none() && row.best_filter_speedup() > 1.0 {
            crossover = Some(n);
        }
        let mut cells = vec![n.to_string(), report::f1(row.sequential)];
        cells.extend(row.parallel.iter().map(|&(_, cycles)| report::f1(cycles)));
        rows.push(cells);
    }
    print!("{}", report::table(&header, &rows));
    println!();
    match crossover {
        Some(n) => println!("filter-barrier crossover at N = {n} (paper: 256)"),
        None => println!("no filter-barrier crossover in the sweep (paper: 256)"),
    }
}
