//! Per-stage engine cost profile (see [`bench_suite::hotpath`]).
//!
//! Times single-core microbenches that isolate each engine stage
//! (exec/step ceiling, decode layer, event scheduling, memory paths) with
//! the fast-path knobs toggled, plus the fig4 reference workload, and
//! prints marginal ns-per-instruction stage costs. Commit the output as
//! `results/hotpath.txt` so future perf PRs start from a current profile:
//!
//! `cargo run --release -p bench-suite --bin hotpath > results/hotpath.txt`

fn main() {
    print!("{}", bench_suite::hotpath::profile().render());
}
