//! Figure 10: performance of Livermore Loop 6 (general linear recurrence)
//! on 16 cores versus vector length.
//!
//! Paper shape: "fast barrier synchronization provided by barrier filters
//! allows the 16-thread version … to be faster than a sequential version
//! at vector lengths as small as 64 elements. The parallel version is more
//! than a factor of 3 faster … for vector lengths of 256 elements."
//!
//! Usage: `fig10_loop6 [--quick] [--jobs N]`.

use barrier_filter::BarrierMechanism;
use bench_suite::cli::Cli;
use bench_suite::{report, sweep_grid};
use kernels::livermore::Loop6;

fn main() {
    let args = Cli::new(
        "fig10_loop6",
        "Figure 10 — Livermore Loop 6 cycles vs vector length",
    )
    .parse();
    let (quick, runner) = (args.quick, args.runner);
    let sizes: &[usize] = if quick {
        &[32, 64, 128]
    } else {
        &[16, 32, 64, 128, 256]
    };
    let threads = 16;
    println!(
        "Figure 10: Livermore Loop 6 on {threads} cores — cycles per invocation vs vector length"
    );
    println!();
    let kernels: Vec<Loop6> = sizes.iter().map(|&n| Loop6::new(n)).collect();
    let labels: Vec<String> = sizes.iter().map(|n| format!("loop6 N={n}")).collect();
    let grid = sweep_grid(&runner, &labels, |row, variant| match variant {
        None => kernels[row].run_sequential(),
        Some(m) => kernels[row].run_parallel(threads, m),
    })
    .expect("loop 6");
    let mut header = vec!["N".to_string(), "sequential".to_string()];
    header.extend(BarrierMechanism::ALL.iter().map(|m| m.to_string()));
    let mut rows = Vec::new();
    let mut crossover: Option<usize> = None;
    let mut at_256 = None;
    for (&n, row) in sizes.iter().zip(&grid) {
        if crossover.is_none() && row.best_filter_speedup() > 1.0 {
            crossover = Some(n);
        }
        if n == 256 {
            at_256 = Some(row.best_filter_speedup());
        }
        let mut cells = vec![n.to_string(), report::f1(row.sequential)];
        cells.extend(row.parallel.iter().map(|&(_, c)| report::f1(c)));
        rows.push(cells);
    }
    print!("{}", report::table(&header, &rows));
    println!();
    println!(
        "filter crossover at N = {} (paper: 64)",
        crossover.map_or("none".into(), |n| n.to_string())
    );
    if let Some(s) = at_256 {
        println!("filter speedup at N = 256: {s:.2}x (paper: more than 3x)");
    }
}
