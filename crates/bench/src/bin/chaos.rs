//! Chaos sweep: fault injection × barrier mechanism over the Viterbi and
//! Livermore Loop 2 kernels (§3.3.3 recovery claims, measured).
//!
//! Usage: `chaos [--quick] [--jobs N] [--check] [--out PATH] [--faults N] [--seed S]`
//!
//! Every point must produce validated kernel output, quiescent filter
//! tables, and a bit-identical replay from the same seed — the sweep
//! panics otherwise. `--faults N` sweeps `{0, N}` events per run instead
//! of the default ladder; `--seed S` replays a specific chaos schedule.
//! `--check` additionally asserts the zero-fault Viterbi/FilterD point
//! against the committed digest (full sizes only, so not with `--quick`).
//! `--out` writes the `fastbar-chaos/v1` JSON document.

use barrier_filter::BarrierMechanism;
use bench_suite::chaos::{run_chaos, to_json};
use bench_suite::cli::Cli;
use bench_suite::report;
use bench_suite::throughput::EXPECTED_VITERBI_K5_16T_DIGEST;

fn main() {
    let args = Cli::new(
        "chaos",
        "Fault-injection sweep — barrier recovery under OS interference (§3.3.3)",
    )
    .with_check()
    .with_out("BENCH_chaos.json")
    .with_faults()
    .parse();
    if args.quick && args.check {
        eprintln!("chaos: --check asserts the full-workload digest; drop --quick");
        std::process::exit(2);
    }
    let levels: Vec<usize> = if args.faults > 0 {
        vec![0, args.faults]
    } else if args.quick {
        vec![0, 2, 6]
    } else {
        vec![0, 8, 32]
    };

    println!(
        "Chaos sweep: faults {levels:?} x mechanisms x {{viterbi, loop2}} \
         (seed {:#x}, {} host jobs)",
        args.seed,
        args.runner.jobs()
    );
    println!();
    let doc = run_chaos(&args.runner, args.quick, &levels, args.seed);

    let header: Vec<String> = [
        "workload",
        "mechanism",
        "faults",
        "injected",
        "skipped",
        "violations",
        "resumed",
        "cancels",
        "reparks",
        "stats digest",
    ]
    .map(String::from)
    .to_vec();
    let rows: Vec<Vec<String>> = doc
        .points
        .iter()
        .map(|p| {
            vec![
                p.workload.to_string(),
                p.mechanism.to_string(),
                p.faults.to_string(),
                p.report.injected.to_string(),
                p.report.skipped.to_string(),
                p.report.violations.to_string(),
                p.report.resumed.to_string(),
                p.sim.episodes.cancellations.to_string(),
                p.sim.episodes.reparks.to_string(),
                format!("{:#018x}", p.sim.stats_digest),
            ]
        })
        .collect();
    print!("{}", report::table(&header, &rows));
    println!();
    let injected: usize = doc.points.iter().map(|p| p.report.injected).sum();
    let violations: usize = doc.points.iter().map(|p| p.report.violations).sum();
    println!(
        "{} points, {injected} faults injected, {violations} recoverable violations; \
         every run validated, quiescent, and replay-identical",
        doc.points.len()
    );

    if args.check {
        let p = doc
            .points
            .iter()
            .find(|p| {
                p.workload == "viterbi" && p.mechanism == BarrierMechanism::FilterD && p.faults == 0
            })
            .expect("zero-fault viterbi FilterD point present");
        assert_eq!(
            p.sim.stats_digest, EXPECTED_VITERBI_K5_16T_DIGEST,
            "viterbi baseline digest {:#018x} != committed {EXPECTED_VITERBI_K5_16T_DIGEST:#018x} — \
             fault plumbing changed the fault-free path",
            p.sim.stats_digest
        );
        println!("digest check passed: zero-fault viterbi matches the committed digest");
    }

    if let Some(path) = args.out.as_deref() {
        let json = to_json(&doc);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("chaos: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
