//! Program verifier + race detector over the kernel × mechanism grid.
//!
//! Runs every parallel kernel under every barrier mechanism with the
//! happens-before race detector attached, statically analyzes the exact
//! program each run executed, and writes the machine-readable verdict
//! file `BENCH_verify.json` in the current directory.
//!
//! Usage: `verify [--quick] [--jobs N] [--out PATH]`
//!
//! Every cell must come back *clean* — no static `Error` diagnostics and
//! no dynamic race — or the binary exits non-zero, printing each dirty
//! cell's findings. `--quick` shrinks problem sizes for the CI smoke run
//! (verdicts are size-independent for the shipped kernels; only cycle
//! counts move). `--jobs N` sizes the host worker pool; cells are
//! independent simulations, so parallelism cannot change a verdict.

use bench_suite::cli::Cli;
use bench_suite::report;
use bench_suite::verify::{run_verify, to_json};

fn main() {
    let args = Cli::new(
        "verify",
        "Static verifier + race detector over every kernel × mechanism → BENCH_verify.json",
    )
    .with_out("BENCH_verify.json")
    .parse();
    let out_path = args.out.as_deref().expect("--out has a default");
    let threads = 4;

    let doc = match run_verify(&args.runner, threads, args.quick) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("verify: sweep failed: {e}");
            std::process::exit(1);
        }
    };

    let header: Vec<String> = [
        "kernel",
        "mechanism",
        "errors",
        "warnings",
        "races",
        "reads",
        "writes",
        "verdict",
    ]
    .map(String::from)
    .to_vec();
    let rows: Vec<Vec<String>> = doc
        .cases
        .iter()
        .map(|c| {
            vec![
                c.kernel.to_string(),
                c.mechanism.to_string(),
                c.errors().to_string(),
                c.warnings().to_string(),
                c.races.total_races.to_string(),
                c.races.reads_checked.to_string(),
                c.races.writes_checked.to_string(),
                if c.clean() { "clean" } else { "DIRTY" }.to_string(),
            ]
        })
        .collect();
    println!(
        "Verifying {} kernels × {} mechanisms at {threads} threads{}",
        bench_suite::verify::VerifyKernel::ALL.len(),
        barrier_filter::BarrierMechanism::ALL.len(),
        if doc.quick { " (quick sizes)" } else { "" },
    );
    println!();
    print!("{}", report::table(&header, &rows));

    if let Err(e) = std::fs::write(out_path, to_json(&doc)) {
        eprintln!("verify: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!();
    println!("wrote {out_path}");

    if !doc.passed() {
        for c in doc.cases.iter().filter(|c| !c.clean()) {
            eprintln!("{} × {}:", c.kernel, c.mechanism);
            for d in c
                .diagnostics
                .iter()
                .filter(|d| d.severity == analyze::Severity::Error)
            {
                eprintln!("  {d}");
            }
            for r in &c.races.races {
                eprintln!(
                    "  race: {} at {:#x} (cores {} and {}, cycle {})",
                    r.kind.name(),
                    r.addr,
                    r.prev_core,
                    r.core,
                    r.cycle
                );
            }
        }
        eprintln!("verify: FAILED — the cells above are not clean");
        std::process::exit(1);
    }
    println!("verify: all {} cells clean", doc.cases.len());
}
