//! Program verifier + race detector + model checker over the kernel ×
//! mechanism grid.
//!
//! Runs every parallel kernel under every barrier mechanism (including
//! 64-core clustered topology points for the hierarchical pair) with the
//! happens-before race detector attached, statically analyzes the exact
//! program each run executed, optionally explores every mechanism's
//! emitted routine with the bounded model checker, and writes the
//! machine-readable verdict file `BENCH_verify.json` in the current
//! directory.
//!
//! Usage: `verify [--quick] [--jobs N] [--check] [--out PATH] [--mc] [--json]`
//!
//! Every cell must come back *clean* — no static `Error` diagnostics, no
//! dynamic race, and (with `--mc`) no model-checker counterexample — or
//! the binary exits non-zero, printing each dirty cell's findings.
//! `--quick` shrinks problem sizes for the CI smoke run (verdicts are
//! size-independent for the shipped kernels; only cycle counts move).
//! `--check` additionally replays the two committed throughput samples
//! and asserts their pinned stats digests. `--json` streams every finding
//! as one JSON object per line on stdout instead of the table. `--jobs N`
//! sizes the host worker pool; cells are independent simulations, so
//! parallelism cannot change a verdict.

use bench_suite::cli::Cli;
use bench_suite::report;
use bench_suite::verify::{run_verify, stream_findings, to_json};
use bench_suite::{
    fig4_sample, viterbi_sample, EXPECTED_FIG4_16CORE_DIGEST, EXPECTED_VITERBI_K5_16T_DIGEST,
};

/// Replay the two committed throughput samples and compare their stats
/// digests against the pinned constants. Any drift in ISA semantics,
/// barrier emission, or timing model shows up here before it shows up as
/// a wrong figure.
fn check_digests() -> Result<(), String> {
    let fig4 = fig4_sample(16, 64, 64);
    if fig4.sim.stats_digest != EXPECTED_FIG4_16CORE_DIGEST {
        return Err(format!(
            "fig4 16-core digest drifted: got {:#018x}, pinned {EXPECTED_FIG4_16CORE_DIGEST:#018x}",
            fig4.sim.stats_digest
        ));
    }
    let vit = viterbi_sample(96, 16);
    if vit.sim.stats_digest != EXPECTED_VITERBI_K5_16T_DIGEST {
        return Err(format!(
            "viterbi K=5 16-thread digest drifted: got {:#018x}, pinned \
             {EXPECTED_VITERBI_K5_16T_DIGEST:#018x}",
            vit.sim.stats_digest
        ));
    }
    Ok(())
}

fn main() {
    let args = Cli::new(
        "verify",
        "Static verifier + race detector + model checker over every kernel × mechanism \
         → BENCH_verify.json",
    )
    .with_out("BENCH_verify.json")
    .with_check()
    .with_switch(
        "--mc",
        "explore every mechanism with the bounded model checker",
    )
    .with_switch("--json", "stream findings as one JSON object per line")
    .parse();
    let out_path = args.out.as_deref().expect("--out has a default");
    let json_mode = args.switch("--json");
    let with_mc = args.switch("--mc");
    let threads = 4;

    if args.check {
        if let Err(e) = check_digests() {
            eprintln!("verify: digest check failed: {e}");
            std::process::exit(1);
        }
        if !json_mode {
            println!("digest check: both committed samples match their pinned digests");
        }
    }

    let doc = match run_verify(&args.runner, threads, args.quick, with_mc) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("verify: sweep failed: {e}");
            std::process::exit(1);
        }
    };

    if json_mode {
        print!("{}", stream_findings(&doc));
    } else {
        let header: Vec<String> = [
            "kernel",
            "mechanism",
            "cores",
            "errors",
            "warnings",
            "races",
            "reads",
            "writes",
            "verdict",
        ]
        .map(String::from)
        .to_vec();
        let rows: Vec<Vec<String>> = doc
            .cases
            .iter()
            .map(|c| {
                vec![
                    c.kernel.to_string(),
                    c.mechanism.to_string(),
                    if c.clusters > 1 {
                        format!("{}/{}cl", c.threads, c.clusters)
                    } else {
                        c.threads.to_string()
                    },
                    c.errors().to_string(),
                    c.warnings().to_string(),
                    c.races.total_races.to_string(),
                    c.races.reads_checked.to_string(),
                    c.races.writes_checked.to_string(),
                    if c.clean() { "clean" } else { "DIRTY" }.to_string(),
                ]
            })
            .collect();
        println!(
            "Verifying {} kernels × {} mechanisms at {threads} threads{}",
            bench_suite::verify::VerifyKernel::ALL.len(),
            barrier_filter::BarrierMechanism::EXTENDED.len(),
            if doc.quick { " (quick sizes)" } else { "" },
        );
        println!();
        print!("{}", report::table(&header, &rows));

        if with_mc {
            let header: Vec<String> = [
                "mechanism",
                "cores",
                "fault",
                "states",
                "transitions",
                "verdict",
            ]
            .map(String::from)
            .to_vec();
            let rows: Vec<Vec<String>> = doc
                .mc
                .iter()
                .map(|c| {
                    vec![
                        c.mechanism.to_string(),
                        c.cores.to_string(),
                        if c.fault { "on" } else { "off" }.to_string(),
                        c.states.to_string(),
                        c.transitions.to_string(),
                        if c.skipped.is_some() {
                            "skip".to_string()
                        } else if c.clean() {
                            "clean".to_string()
                        } else {
                            "DIRTY".to_string()
                        },
                    ]
                })
                .collect();
            println!();
            println!("Model checker (episodes ×2, fault off/on):");
            println!();
            print!("{}", report::table(&header, &rows));
        }
    }

    if let Err(e) = std::fs::write(out_path, to_json(&doc)) {
        eprintln!("verify: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    if !json_mode {
        println!();
        println!("wrote {out_path}");
    }

    if !doc.passed() {
        for c in doc.cases.iter().filter(|c| !c.clean()) {
            eprintln!(
                "{} × {} ({}t/{}c):",
                c.kernel, c.mechanism, c.threads, c.clusters
            );
            for d in c
                .diagnostics
                .iter()
                .filter(|d| d.severity == analyze::Severity::Error)
            {
                eprintln!("  {d}");
            }
            for r in &c.races.races {
                eprintln!(
                    "  race: {} at {:#x} (cores {} and {}, cycle {})",
                    r.kind.name(),
                    r.addr,
                    r.prev_core,
                    r.core,
                    r.cycle
                );
            }
        }
        for c in doc.mc.iter().filter(|c| !c.clean()) {
            eprintln!("mc {} ×{} fault={}:", c.mechanism, c.cores, c.fault);
            if c.truncated {
                eprintln!("  exploration truncated at {} states", c.states);
            }
            for d in &c.findings {
                eprintln!("  {d}");
            }
        }
        eprintln!("verify: FAILED — the cells above are not clean");
        std::process::exit(1);
    }
    if !json_mode {
        let mc_note = if with_mc {
            format!(" + {} mc cells", doc.mc.len())
        } else {
            String::new()
        };
        println!("verify: all {} cells clean{mc_note}", doc.cases.len());
    }
}
