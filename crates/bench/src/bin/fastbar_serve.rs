//! `fastbar-serve`: the batch sweep daemon and its client, one binary.
//!
//! ```text
//! fastbar_serve serve    (--unix PATH | --tcp ADDR) [--cache DIR] [--jobs N]
//! fastbar_serve submit   (--unix PATH | --tcp ADDR) [--quick] [--check]
//! fastbar_serve ping     (--unix PATH | --tcp ADDR)
//! fastbar_serve shutdown (--unix PATH | --tcp ADDR)
//! ```
//!
//! `serve` listens on a Unix-domain socket or TCP address and answers
//! the line-delimited JSON protocol documented in
//! [`bench_suite::serve`], scheduling each batch across `--jobs` host
//! workers (default: all host threads) and caching every result under
//! `--cache` (default: `.fastbar-cache`) keyed by the spec digest — a
//! resubmitted job is served byte-identically from disk without
//! simulating a cycle.
//!
//! `submit` sends the standard suite — the Figure 4 sweep (every
//! mechanism at 16 cores, 64 × 64 barriers) plus the Viterbi workload —
//! as one batch, prints a result table, and with `--check` asserts the
//! committed digests
//! ([`EXPECTED_FIG4_16CORE_DIGEST`](bench_suite::throughput::EXPECTED_FIG4_16CORE_DIGEST)
//! /
//! [`EXPECTED_VITERBI_K5_16T_DIGEST`](bench_suite::throughput::EXPECTED_VITERBI_K5_16T_DIGEST))
//! against what came off the wire. `--quick` shrinks rep counts (and is
//! rejected with `--check`: the committed digests are full-size).

use std::path::PathBuf;

use bench_suite::serve::{
    check_suite, suite_specs, Client, Endpoint, Listener, ResultCache, Server,
};
use bench_suite::{report, SweepRunner};
use cmp_sim::Json;

const USAGE: &str = "\
Usage: fastbar_serve <command> (--unix PATH | --tcp ADDR) [options]

Commands:
  serve       run the daemon until a client sends shutdown
  submit      submit the standard fig4+viterbi suite as one batch
  ping        check the daemon is alive and speaks fastbar-serve/v1
  shutdown    ask the daemon to exit

Options:
      --unix PATH    connect/listen on a Unix-domain socket at PATH
      --tcp ADDR     connect/listen on a TCP address like 127.0.0.1:7345
      --cache DIR    (serve) result cache directory (default: .fastbar-cache)
      --jobs N       (serve) worker threads per batch (default: all host threads)
      --quick        (submit) shrink rep counts for a smoke run
      --check        (submit) assert the committed full-size digests
  -h, --help         print this help
";

fn die(message: &str) -> ! {
    eprintln!("fastbar_serve: {message}\n\n{USAGE}");
    std::process::exit(2);
}

/// Flags shared by every command, parsed from the arguments after the
/// command word. Flags a command does not use are rejected by `finish`.
struct Flags {
    endpoint: Endpoint,
    cache: Option<String>,
    jobs: Option<usize>,
    quick: bool,
    check: bool,
}

fn parse_flags(args: &[String], accept: &[&str]) -> Flags {
    let mut endpoint = None;
    let mut cache = None;
    let mut jobs = None;
    let mut quick = false;
    let mut check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |flag: &str| {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        if !accept.contains(&flag) && flag != "--unix" && flag != "--tcp" {
            die(&format!("unrecognized argument {arg:?}"));
        }
        match flag {
            "--unix" => endpoint = Some(Endpoint::Unix(PathBuf::from(value("--unix")))),
            "--tcp" => endpoint = Some(Endpoint::Tcp(value("--tcp"))),
            "--cache" => cache = Some(value("--cache")),
            "--jobs" => {
                let v = value("--jobs");
                jobs = Some(v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    die(&format!("--jobs: expected a positive integer, got {v:?}"))
                }));
            }
            "--quick" => quick = true,
            "--check" => check = true,
            _ => unreachable!("accept list checked above"),
        }
    }
    let endpoint = endpoint.unwrap_or_else(|| die("one of --unix PATH or --tcp ADDR is required"));
    Flags {
        endpoint,
        cache,
        jobs,
        quick,
        check,
    }
}

fn connect(endpoint: &Endpoint) -> Client {
    Client::connect(endpoint).unwrap_or_else(|e| {
        die(&format!(
            "connecting to {endpoint}: {e} (is the daemon running?)"
        ))
    })
}

fn cmd_serve(args: &[String]) {
    let flags = parse_flags(args, &["--cache", "--jobs"]);
    let cache_dir = flags.cache.unwrap_or_else(|| ".fastbar-cache".into());
    let runner = flags
        .jobs
        .map_or_else(SweepRunner::available, SweepRunner::new);
    let listener = Listener::bind(&flags.endpoint)
        .unwrap_or_else(|e| die(&format!("binding {}: {e}", flags.endpoint)));
    let bound = listener
        .endpoint()
        .unwrap_or_else(|e| die(&format!("resolving bound address: {e}")));
    println!(
        "fastbar-serve listening on {bound} ({} jobs, cache at {cache_dir})",
        runner.jobs()
    );
    let server = Server::new(ResultCache::new(cache_dir), runner);
    if let Err(e) = listener.serve(&server) {
        eprintln!("fastbar_serve: accept loop failed: {e}");
        std::process::exit(1);
    }
    println!("fastbar-serve: shutdown acknowledged, exiting");
}

fn cmd_submit(args: &[String]) {
    let flags = parse_flags(args, &["--quick", "--check"]);
    if flags.quick && flags.check {
        die("--check asserts the full-size digests; drop --quick");
    }
    let mut client = connect(&flags.endpoint);
    let specs = suite_specs(flags.quick);
    let items = client
        .batch(&specs)
        .unwrap_or_else(|e| die(&format!("batch failed: {e}")));

    let header: Vec<String> = ["spec", "cached", "sim Mcycles", "cyc/rep", "stats digest"]
        .map(String::from)
        .to_vec();
    let rows: Vec<Vec<String>> = specs
        .iter()
        .zip(&items)
        .map(|(spec, item)| {
            let j = item.json();
            let label = match spec.exec.mechanism {
                Some(m) => format!("{} {m}", spec.workload.kind()),
                None => spec.workload.kind().to_string(),
            };
            vec![
                label,
                if item.cached { "hit" } else { "live" }.to_string(),
                report::f1(j.get("cycles").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6),
                report::f1(
                    j.get("cycles_per_rep")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0),
                ),
                format!("{:#018x}", item.stats_digest()),
            ]
        })
        .collect();
    print!("{}", report::table(&header, &rows));
    let hits = items.iter().filter(|i| i.cached).count();
    println!();
    println!("{} items, {hits} served from cache", items.len());

    if flags.check {
        if let Err(e) = check_suite(&items) {
            eprintln!("fastbar_serve: digest check FAILED: {e}");
            std::process::exit(1);
        }
        println!("check passed: both committed digests reproduced over the wire");
    }
}

fn cmd_ping(args: &[String]) {
    let flags = parse_flags(args, &[]);
    let mut client = connect(&flags.endpoint);
    match client.ping() {
        Ok(jobs) => println!("pong from {} ({jobs} jobs)", flags.endpoint),
        Err(e) => die(&format!("ping failed: {e}")),
    }
}

fn cmd_shutdown(args: &[String]) {
    let flags = parse_flags(args, &[]);
    let mut client = connect(&flags.endpoint);
    match client.shutdown() {
        Ok(()) => println!("daemon at {} acknowledged shutdown", flags.endpoint),
        Err(e) => die(&format!("shutdown failed: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("ping") => cmd_ping(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some(other) => die(&format!("unknown command {other:?}")),
        None => die("a command is required"),
    }
}
