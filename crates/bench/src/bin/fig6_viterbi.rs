//! Figure 6: execution speed-up, relative to sequential execution, of the
//! multi-threaded EEMBC Viterbi decoder on 16 cores, by barrier mechanism.
//!
//! Paper shape: "the Viterbi decoder shows more limited improvements —
//! notably, the parallel implementation using software barriers is actually
//! slower than the sequential version. Only with lower overhead barriers
//! was there a speedup from the multi-threaded approach."
//!
//! Usage: `fig6_viterbi [--quick] [--jobs N]`.

use barrier_filter::BarrierMechanism;
use bench_suite::cli::Cli;
use bench_suite::{measure_on, report};
use kernels::viterbi::Viterbi;

fn main() {
    let args = Cli::new(
        "fig6_viterbi",
        "Figure 6 — Viterbi decoder speedup by barrier mechanism (16 cores)",
    )
    .parse();
    let (quick, runner) = (args.quick, args.runner);
    let bits = if quick { 128 } else { 512 };
    let threads = 16;
    let kernel = Viterbi::new(bits);
    let row = measure_on(
        &runner,
        format!("viterbi K=5 bits={bits}"),
        || kernel.run_sequential(),
        |m| kernel.run_parallel(threads, m),
    )
    .expect("viterbi");

    println!(
        "Figure 6: Viterbi decoder speedup over sequential, 16 cores (K=5, {} states, {bits} data bits)",
        kernel.states()
    );
    println!();
    let header = vec!["mechanism".to_string(), "speedup".to_string()];
    let body: Vec<Vec<String>> = BarrierMechanism::ALL
        .iter()
        .map(|&m| vec![m.to_string(), report::f2(row.speedup(m))])
        .collect();
    print!("{}", report::table(&header, &body));
    println!();
    let sw = row.best_software_speedup();
    let filt = row.best_filter_speedup();
    println!(
        "best software {sw:.2}x | best filter {filt:.2}x | dedicated {:.2}x",
        row.speedup(BarrierMechanism::HwDedicated)
    );
    println!(
        "software barriers are {} than sequential (paper: slower, 0.76x)",
        if sw < 1.0 {
            "slower"
        } else {
            "FASTER (shape mismatch!)"
        }
    );
    println!(
        "filter barriers give a speedup: {} (paper: yes)",
        if filt > 1.0 {
            "yes"
        } else {
            "NO (shape mismatch!)"
        }
    );
}
