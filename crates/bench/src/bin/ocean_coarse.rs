//! §4.1 contrast experiment: coarse-grained barrier parallelism.
//!
//! The paper examined SPLASH-2 and found only coarse-grained barrier use:
//! Ocean on its default input "executes only hundreds of dynamic barriers
//! versus tens of millions of instructions per thread. This leads to
//! barriers accounting for less than 4 percent of total execution time,
//! even with simple, lock-based centralized barriers. While using a filter
//! barrier implementation significantly reduces the overhead from barriers,
//! overall execution only improves by 3.5%."
//!
//! This binary runs the Ocean-like proxy (red-black relaxation, two
//! barriers per sweep) and reports the same overhead comparison.
//!
//! Usage: `ocean_coarse [--quick] [--jobs N]`.

use barrier_filter::BarrierMechanism;
use bench_suite::cli::Cli;
use bench_suite::{measure_on, report};
use kernels::ocean::OceanProxy;

fn main() {
    let args = Cli::new(
        "ocean_coarse",
        "§4.1 — coarse-grained (Ocean-like) barrier overhead",
    )
    .parse();
    let (quick, runner) = (args.quick, args.runner);
    // SPLASH-2 Ocean's default input is a 258x258 grid; at that size the
    // per-sweep stencil work dwarfs any barrier, which is the paper's point.
    let (g, sweeps) = if quick { (130, 8) } else { (258, 24) };
    let threads = 16;
    let kernel = OceanProxy::new(g, sweeps);
    println!(
        "Coarse-grained contrast (Ocean-like proxy): {g}x{g} grid, {sweeps} sweeps, {} dynamic barriers",
        kernel.dynamic_barriers()
    );
    println!();
    let row = measure_on(
        &runner,
        format!("ocean {g}x{g}"),
        || kernel.run_sequential(),
        |m| kernel.run_parallel(threads, m),
    )
    .expect("ocean proxy");
    let mut rows = Vec::new();
    let mut sw_central_cycles = None;
    let mut best_filter_cycles: Option<f64> = None;
    for &(m, cycles) in &row.parallel {
        if m == BarrierMechanism::SwCentral {
            sw_central_cycles = Some(cycles);
        }
        if m.is_filter() {
            best_filter_cycles = Some(best_filter_cycles.map_or(cycles, |b: f64| b.min(cycles)));
        }
        rows.push(vec![
            m.to_string(),
            report::f1(cycles),
            report::f2(row.sequential / cycles),
        ]);
    }
    let header = vec![
        "mechanism".to_string(),
        "cycles".to_string(),
        "speedup vs seq".to_string(),
    ];
    print!("{}", report::table(&header, &rows));
    println!();
    let sw = sw_central_cycles.expect("measured");
    let filt = best_filter_cycles.expect("measured");
    let improvement = (sw - filt) / sw * 100.0;
    println!(
        "whole-program improvement from replacing the centralized software barrier \
         with the best filter barrier: {improvement:.1}% (paper: ~3.5%)"
    );
    println!(
        "=> at coarse granularity the barrier mechanism barely matters; the fine-grained \
         kernels of Figures 5-10 are where fast barriers pay off"
    );
}
