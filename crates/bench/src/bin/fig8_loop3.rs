//! Figure 8: performance (cycles per invocation) of Livermore Loop 3
//! (inner product) on 16 cores versus vector length.
//!
//! Paper shape: "the performance of the parallel versions using filter
//! barriers surpasses that of the sequential version at vector lengths as
//! short as 64 elements (8 elements per thread from each input vector, due
//! to the minimum partition size to avoid useless coherence traffic)";
//! software barriers "required vector lengths longer by a factor of two to
//! four to achieve a speedup".
//!
//! Usage: `fig8_loop3 [--quick] [--jobs N]`.

use barrier_filter::BarrierMechanism;
use bench_suite::cli::Cli;
use bench_suite::{report, sweep_grid};
use kernels::livermore::Loop3;

fn main() {
    let args = Cli::new(
        "fig8_loop3",
        "Figure 8 — Livermore Loop 3 cycles vs vector length",
    )
    .parse();
    let (quick, runner) = (args.quick, args.runner);
    let sizes: &[usize] = if quick {
        &[32, 64, 256]
    } else {
        &[16, 32, 64, 128, 256, 512, 1024]
    };
    let threads = 16;
    println!(
        "Figure 8: Livermore Loop 3 on {threads} cores — cycles per invocation vs vector length"
    );
    println!();
    let kernels: Vec<Loop3> = sizes.iter().map(|&n| Loop3::new(n)).collect();
    let labels: Vec<String> = sizes.iter().map(|n| format!("loop3 N={n}")).collect();
    let grid = sweep_grid(&runner, &labels, |row, variant| match variant {
        None => kernels[row].run_sequential(),
        Some(m) => kernels[row].run_parallel(threads, m),
    })
    .expect("loop 3");
    let mut header = vec!["N".to_string(), "sequential".to_string()];
    header.extend(BarrierMechanism::ALL.iter().map(|m| m.to_string()));
    let mut rows = Vec::new();
    let mut filter_cross: Option<usize> = None;
    let mut sw_cross: Option<usize> = None;
    for (&n, row) in sizes.iter().zip(&grid) {
        if filter_cross.is_none() && row.best_filter_speedup() > 1.0 {
            filter_cross = Some(n);
        }
        if sw_cross.is_none() && row.best_software_speedup() > 1.0 {
            sw_cross = Some(n);
        }
        let mut cells = vec![n.to_string(), report::f1(row.sequential)];
        cells.extend(row.parallel.iter().map(|&(_, c)| report::f1(c)));
        rows.push(cells);
    }
    print!("{}", report::table(&header, &rows));
    println!();
    println!(
        "filter crossover at N = {} (paper: 64); software crossover at N = {} (paper: 2-4x longer)",
        filter_cross.map_or("none".into(), |n| n.to_string()),
        sw_cross.map_or("none".into(), |n| n.to_string()),
    );
}
