//! Table 1: speedups achieved on kernels distributed across a 16-core CMP
//! when using the *best software barrier*, relative to sequential execution
//! on a single core. "Numbers less than 1 are slowdowns, and point to the
//! sequential version of the code as being a better alternative to
//! parallelism when using software barriers."
//!
//! Paper values: Livermore 2 → 0.42, Livermore 3 → 1.52, Livermore 6 →
//! 2.08, Autocorrelation → 3.86, Viterbi → 0.76. Livermore numbers use
//! vector length 256.
//!
//! Usage: `table1 [--quick] [--jobs N]`.

use barrier_filter::BarrierMechanism;
use bench_suite::cli::Cli;
use bench_suite::{report, speedup_table, sweep_grid, GridVariant, SpeedupRow, SweepRunner};
use kernels::autocorr::Autocorr;
use kernels::livermore::{Loop2, Loop3, Loop6};
use kernels::viterbi::Viterbi;
use kernels::{KernelError, KernelOutcome};

/// One heterogeneous workload of the table, erased to a grid-cell runner.
type Workload = Box<dyn Fn(GridVariant) -> Result<KernelOutcome, KernelError> + Sync>;

fn rows(quick: bool, runner: &SweepRunner) -> Vec<SpeedupRow> {
    let threads = 16;
    let (n_liv, n_ac, n_vit) = if quick {
        (64, 256, 64)
    } else {
        (256, 1024, 256)
    };
    let l2 = Loop2::new(n_liv);
    let l3 = Loop3::new(n_liv);
    let l6 = Loop6::new(n_liv);
    let ac = Autocorr::new(n_ac);
    let vit = Viterbi::new(n_vit);
    let labels = vec![
        format!("Livermore loop 2 (N={n_liv})"),
        format!("Livermore loop 3 (N={n_liv})"),
        format!("Livermore loop 6 (N={n_liv})"),
        format!("EEMBC Autocorrelation (N={n_ac})"),
        format!("EEMBC Viterbi (bits={n_vit})"),
    ];
    let workloads: Vec<Workload> = vec![
        Box::new(move |v| match v {
            None => l2.run_sequential(),
            Some(m) => l2.run_parallel(threads, m),
        }),
        Box::new(move |v| match v {
            None => l3.run_sequential(),
            Some(m) => l3.run_parallel(threads, m),
        }),
        Box::new(move |v| match v {
            None => l6.run_sequential(),
            Some(m) => l6.run_parallel(threads, m),
        }),
        Box::new(move |v| match v {
            None => ac.run_sequential(),
            Some(m) => ac.run_parallel(threads, m),
        }),
        Box::new(move |v| match v {
            None => vit.run_sequential(),
            Some(m) => vit.run_parallel(threads, m),
        }),
    ];
    sweep_grid(runner, &labels, |row, variant| workloads[row](variant)).expect("table 1 grid")
}

fn main() {
    let args = Cli::new(
        "table1",
        "Table 1 — best software-barrier speedups on 16 cores",
    )
    .parse();
    let (quick, runner) = (args.quick, args.runner);
    let rows = rows(quick, &runner);

    println!("Table 1: best software-barrier speedup on 16 cores (paper: 0.42 / 1.52 / 2.08 / 3.86 / 0.76)");
    println!();
    let header = vec![
        "kernel".to_string(),
        "best sw barrier".to_string(),
        "best filter".to_string(),
        "paper (best sw)".to_string(),
    ];
    let paper = ["0.42", "1.52", "2.08", "3.86", "0.76"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .zip(paper)
        .map(|(r, p)| {
            vec![
                r.label.clone(),
                report::f2(r.best_software_speedup()),
                report::f2(r.best_filter_speedup()),
                p.to_string(),
            ]
        })
        .collect();
    print!("{}", report::table(&header, &body));
    println!();
    println!("Full speedup matrix (all seven mechanisms):");
    println!();
    print!("{}", speedup_table(&rows));

    // The paper's headline claim: "the approach we will describe always
    // provides a speedup for the parallelized code for all of the
    // benchmarks."
    let all_filter_speedups = rows.iter().all(|r| r.best_filter_speedup() > 1.0);
    println!();
    println!(
        "filter barriers provide a speedup on every kernel: {}",
        if all_filter_speedups {
            "yes"
        } else {
            "NO (shape mismatch!)"
        }
    );
    let _ = BarrierMechanism::ALL;
}
