//! Shared speedup-measurement plumbing for the kernel experiments
//! (Table 1, Figures 5–8 and 10).

use barrier_filter::BarrierMechanism;
use kernels::{KernelError, KernelOutcome};

/// Sequential baseline plus one parallel measurement per mechanism.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Workload label.
    pub label: String,
    /// Sequential cycles per repetition.
    pub sequential: f64,
    /// `(mechanism, cycles_per_rep)` in [`BarrierMechanism::ALL`] order.
    pub parallel: Vec<(BarrierMechanism, f64)>,
}

impl SpeedupRow {
    /// Speedup of `mechanism` over sequential (>1 is faster).
    pub fn speedup(&self, mechanism: BarrierMechanism) -> f64 {
        let &(_, cycles) = self
            .parallel
            .iter()
            .find(|(m, _)| *m == mechanism)
            .expect("mechanism measured");
        self.sequential / cycles
    }

    /// The best speedup achieved by a software-only barrier — the quantity
    /// Table 1 reports.
    pub fn best_software_speedup(&self) -> f64 {
        BarrierMechanism::ALL
            .into_iter()
            .filter(|m| m.is_software())
            .map(|m| self.speedup(m))
            .fold(f64::MIN, f64::max)
    }

    /// The best speedup achieved by a filter barrier.
    pub fn best_filter_speedup(&self) -> f64 {
        BarrierMechanism::ALL
            .into_iter()
            .filter(|m| m.is_filter())
            .map(|m| self.speedup(m))
            .fold(f64::MIN, f64::max)
    }
}

/// Measure a kernel: the `seq` closure runs the sequential baseline, and
/// `par` runs the parallel version for a given mechanism. Both must
/// validate internally (they return [`KernelOutcome`] only on a verified
/// run).
///
/// # Errors
///
/// Propagates kernel failures, labelled with the workload and mechanism.
pub fn measure(
    label: impl Into<String>,
    seq: impl Fn() -> Result<KernelOutcome, KernelError>,
    par: impl Fn(BarrierMechanism) -> Result<KernelOutcome, KernelError>,
) -> Result<SpeedupRow, String> {
    let label = label.into();
    let sequential = seq()
        .map_err(|e| format!("{label} sequential: {e}"))?
        .cycles_per_rep;
    let mut parallel = Vec::new();
    for m in BarrierMechanism::ALL {
        let outcome = par(m).map_err(|e| format!("{label} {m}: {e}"))?;
        parallel.push((m, outcome.cycles_per_rep));
    }
    Ok(SpeedupRow {
        label,
        sequential,
        parallel,
    })
}

/// Render rows as a speedup table (columns: workload, sequential cycles,
/// one speedup per mechanism).
pub fn speedup_table(rows: &[SpeedupRow]) -> String {
    let mut header = vec!["workload".to_string(), "seq cycles".to_string()];
    header.extend(BarrierMechanism::ALL.iter().map(|m| m.to_string()));
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.label.clone(), crate::report::f1(r.sequential)];
            row.extend(
                BarrierMechanism::ALL
                    .iter()
                    .map(|&m| crate::report::f2(r.speedup(m))),
            );
            row
        })
        .collect();
    crate::report::table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_row() -> SpeedupRow {
        SpeedupRow {
            label: "x".into(),
            sequential: 1000.0,
            parallel: BarrierMechanism::ALL
                .into_iter()
                .map(|m| {
                    let c = match m {
                        BarrierMechanism::SwCentral => 2000.0,
                        BarrierMechanism::SwTree => 800.0,
                        BarrierMechanism::HwDedicated => 200.0,
                        _ => 400.0,
                    };
                    (m, c)
                })
                .collect(),
        }
    }

    #[test]
    fn speedups_and_bests() {
        let r = fake_row();
        assert_eq!(r.speedup(BarrierMechanism::SwCentral), 0.5);
        assert_eq!(r.best_software_speedup(), 1.25);
        assert_eq!(r.best_filter_speedup(), 2.5);
    }

    #[test]
    fn table_renders() {
        let t = speedup_table(&[fake_row()]);
        assert!(t.contains("sw-central"));
        assert!(t.contains("0.50"));
    }
}
