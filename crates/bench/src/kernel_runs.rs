//! Shared speedup-measurement plumbing for the kernel experiments
//! (Table 1, Figures 5–8 and 10).
//!
//! Every kernel figure is the same grid: workload rows (a kernel at some
//! size) × variant columns (the sequential baseline plus one parallel run
//! per [`BarrierMechanism`]). [`sweep_grid`] flattens that grid into
//! independent jobs on a [`SweepRunner`], so every figure binary gets
//! `--jobs` host parallelism from one helper — with results reassembled
//! in row-major, [`BarrierMechanism::ALL`]-column order no matter which
//! job finishes first.

use crate::sweep::SweepRunner;
use barrier_filter::BarrierMechanism;
use kernels::{KernelError, KernelOutcome};

/// One cell of the workload × variant grid: `None` is the sequential
/// baseline column, `Some(m)` a parallel run under mechanism `m`.
pub type GridVariant = Option<BarrierMechanism>;

/// Sequential baseline plus one parallel measurement per mechanism.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Workload label.
    pub label: String,
    /// Sequential cycles per repetition.
    pub sequential: f64,
    /// `(mechanism, cycles_per_rep)` in [`BarrierMechanism::ALL`] order.
    pub parallel: Vec<(BarrierMechanism, f64)>,
}

impl SpeedupRow {
    /// Speedup of `mechanism` over sequential (>1 is faster).
    pub fn speedup(&self, mechanism: BarrierMechanism) -> f64 {
        let &(_, cycles) = self
            .parallel
            .iter()
            .find(|(m, _)| *m == mechanism)
            .expect("mechanism measured");
        self.sequential / cycles
    }

    /// The best speedup achieved by a software-only barrier — the quantity
    /// Table 1 reports.
    pub fn best_software_speedup(&self) -> f64 {
        BarrierMechanism::ALL
            .into_iter()
            .filter(|m| m.is_software())
            .map(|m| self.speedup(m))
            .fold(f64::MIN, f64::max)
    }

    /// The best speedup achieved by a filter barrier.
    pub fn best_filter_speedup(&self) -> f64 {
        BarrierMechanism::ALL
            .into_iter()
            .filter(|m| m.is_filter())
            .map(|m| self.speedup(m))
            .fold(f64::MIN, f64::max)
    }
}

/// Measure a kernel: the `seq` closure runs the sequential baseline, and
/// `par` runs the parallel version for a given mechanism. Both must
/// validate internally (they return [`KernelOutcome`] only on a verified
/// run). Runs every variant serially on the calling thread; use
/// [`measure_on`] to spread the variants over a [`SweepRunner`].
///
/// # Errors
///
/// Propagates kernel failures, labelled with the workload and mechanism.
pub fn measure(
    label: impl Into<String>,
    seq: impl Fn() -> Result<KernelOutcome, KernelError> + Sync,
    par: impl Fn(BarrierMechanism) -> Result<KernelOutcome, KernelError> + Sync,
) -> Result<SpeedupRow, String> {
    measure_on(&SweepRunner::new(1), label, seq, par)
}

/// [`measure`], with the baseline and the seven mechanism runs dispatched
/// as independent jobs on `runner`. The returned row is identical to the
/// serial one — each variant is a self-contained simulation, and the row
/// is assembled in [`BarrierMechanism::ALL`] order after every job lands.
///
/// # Errors
///
/// Propagates kernel failures and captured job panics, labelled with the
/// workload and mechanism.
pub fn measure_on(
    runner: &SweepRunner,
    label: impl Into<String>,
    seq: impl Fn() -> Result<KernelOutcome, KernelError> + Sync,
    par: impl Fn(BarrierMechanism) -> Result<KernelOutcome, KernelError> + Sync,
) -> Result<SpeedupRow, String> {
    let labels = [label.into()];
    let mut rows = sweep_grid(runner, &labels, |_, variant| match variant {
        None => seq(),
        Some(m) => par(m),
    })?;
    Ok(rows.pop().expect("one label in, one row out"))
}

/// Run the full workload × variant grid on `runner` and fold the outcomes
/// into one [`SpeedupRow`] per workload.
///
/// `run(row, variant)` must execute workload `labels[row]` under
/// `variant` ([`None`] = sequential baseline, `Some(m)` = parallel under
/// `m`) and is called exactly once per grid cell, possibly concurrently
/// from pool workers. Rows come back in `labels` order with parallel
/// columns in [`BarrierMechanism::ALL`] order — the same shapes the
/// serial loops produced — regardless of job completion order.
///
/// # Errors
///
/// Collects every failed cell (kernel error or captured panic) into one
/// report; any failure fails the grid.
pub fn sweep_grid(
    runner: &SweepRunner,
    labels: &[String],
    run: impl Fn(usize, GridVariant) -> Result<KernelOutcome, KernelError> + Sync,
) -> Result<Vec<SpeedupRow>, String> {
    let cells: Vec<(usize, GridVariant)> = (0..labels.len())
        .flat_map(|row| {
            std::iter::once((row, None)).chain(
                BarrierMechanism::ALL
                    .into_iter()
                    .map(move |m| (row, Some(m))),
            )
        })
        .collect();
    let outcomes = runner.run_all(&cells, |_, &(row, variant)| {
        run(row, variant).map_err(|e| match variant {
            None => format!("{} sequential: {e}", labels[row]),
            Some(m) => format!("{} {m}: {e}", labels[row]),
        })
    })?;
    let failures: Vec<String> = outcomes
        .iter()
        .filter_map(|o| o.as_ref().err().cloned())
        .collect();
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    let width = 1 + BarrierMechanism::ALL.len();
    let rows = labels
        .iter()
        .enumerate()
        .map(|(row, label)| {
            let cells = &outcomes[row * width..(row + 1) * width];
            let cycles = |i: usize| {
                cells[i]
                    .as_ref()
                    .expect("failures drained above")
                    .cycles_per_rep
            };
            SpeedupRow {
                label: label.clone(),
                sequential: cycles(0),
                parallel: BarrierMechanism::ALL
                    .into_iter()
                    .enumerate()
                    .map(|(i, m)| (m, cycles(1 + i)))
                    .collect(),
            }
        })
        .collect();
    Ok(rows)
}

/// Render rows as a speedup table (columns: workload, sequential cycles,
/// one speedup per mechanism).
pub fn speedup_table(rows: &[SpeedupRow]) -> String {
    let mut header = vec!["workload".to_string(), "seq cycles".to_string()];
    header.extend(BarrierMechanism::ALL.iter().map(|m| m.to_string()));
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.label.clone(), crate::report::f1(r.sequential)];
            row.extend(
                BarrierMechanism::ALL
                    .iter()
                    .map(|&m| crate::report::f2(r.speedup(m))),
            );
            row
        })
        .collect();
    crate::report::table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_row() -> SpeedupRow {
        SpeedupRow {
            label: "x".into(),
            sequential: 1000.0,
            parallel: BarrierMechanism::ALL
                .into_iter()
                .map(|m| {
                    let c = match m {
                        BarrierMechanism::SwCentral => 2000.0,
                        BarrierMechanism::SwTree => 800.0,
                        BarrierMechanism::HwDedicated => 200.0,
                        _ => 400.0,
                    };
                    (m, c)
                })
                .collect(),
        }
    }

    #[test]
    fn speedups_and_bests() {
        let r = fake_row();
        assert_eq!(r.speedup(BarrierMechanism::SwCentral), 0.5);
        assert_eq!(r.best_software_speedup(), 1.25);
        assert_eq!(r.best_filter_speedup(), 2.5);
    }

    #[test]
    fn table_renders() {
        let t = speedup_table(&[fake_row()]);
        assert!(t.contains("sw-central"));
        assert!(t.contains("0.50"));
    }

    /// A deterministic fake cell: cycles encode (row, column) so any
    /// reordering or cross-slot mixup is visible in the reassembled rows.
    fn fake_cell(row: usize, variant: GridVariant) -> Result<KernelOutcome, KernelError> {
        let col = match variant {
            None => 0,
            Some(m) => {
                1 + BarrierMechanism::ALL
                    .iter()
                    .position(|&x| x == m)
                    .expect("known mechanism")
            }
        };
        let cycles = (100 * row + col) as u64;
        Ok(KernelOutcome {
            sim: cmp_sim::Measurement {
                cycles,
                instructions: 1,
                stats_digest: cycles,
                episodes: Default::default(),
            },
            cycles_per_rep: cycles as f64,
            decode: Default::default(),
            queue: Default::default(),
            fused: Default::default(),
            bus_mean_wait: 0.0,
        })
    }

    #[test]
    fn grid_rows_are_identical_across_job_counts() {
        let labels: Vec<String> = (0..3).map(|i| format!("w{i}")).collect();
        let serial = sweep_grid(&SweepRunner::new(1), &labels, fake_cell).expect("serial grid");
        let parallel = sweep_grid(&SweepRunner::new(4), &labels, fake_cell).expect("parallel grid");
        assert_eq!(serial.len(), 3);
        for (row, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s.label, labels[row]);
            assert_eq!(s.label, p.label);
            assert_eq!(s.sequential, (100 * row) as f64);
            assert_eq!(s.sequential, p.sequential);
            assert_eq!(s.parallel, p.parallel);
            for (col, &(m, cycles)) in s.parallel.iter().enumerate() {
                assert_eq!(m, BarrierMechanism::ALL[col], "ALL-order columns");
                assert_eq!(cycles, (100 * row + col + 1) as f64);
            }
        }
    }

    #[test]
    fn grid_reports_every_failed_cell() {
        let labels = vec!["good".to_string(), "bad".to_string()];
        let err = sweep_grid(&SweepRunner::new(2), &labels, |row, variant| {
            if row == 1 && variant == Some(BarrierMechanism::SwTree) {
                Err(KernelError::Validation("boom".into()))
            } else {
                fake_cell(row, variant)
            }
        })
        .expect_err("one bad cell fails the grid");
        assert!(err.contains("bad sw-tree"), "{err}");
        assert!(err.contains("boom"), "{err}");
    }
}
