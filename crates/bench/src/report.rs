//! Plain-text table formatting shared by the harness binaries.

/// Render a table: a header row followed by data rows, columns padded to
/// the widest cell. Returns the formatted block (trailing newline
/// included).
pub fn table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    emit_row(&mut out, header);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        emit_row(&mut out, row);
    }
    out
}

/// Format a float with two decimals (the paper's speedup precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with one decimal (cycle counts).
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let t = table(
            &["name".into(), "value".into()],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "12.34".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.00"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f2(3.856), "3.86");
        assert_eq!(f1(128.04), "128.0");
    }
}
