//! The scaling sweep behind `fig_scale`: barrier latency as the machine
//! grows from the paper's 16-core bus to clustered 256- and 1024-core
//! topologies.
//!
//! The paper's evaluation stops at 16 cores on a single shared bus; the
//! hierarchical-topology extension asks how each mechanism behaves when
//! the interconnect is no longer flat. Every point reuses the Figure 4
//! micro-benchmark loop ([`run_latency`] on a clustered
//! [`RunSpec`]) — `inner` consecutive barriers repeated `outer` times
//! with no work between them — on the preset machine for that core
//! count:
//!
//! | cores | machine |
//! |---|---|
//! | 16 | flat Table 2 bus (the paper's machine, 1-cluster degenerate) |
//! | 64 | 4 clusters × 16 cores |
//! | 256 | 16 clusters × 16 cores |
//! | 1024 | 16 clusters × 64 cores |
//!
//! Mechanism coverage pairs the flat baselines (centralized LL/SC,
//! combining tree, dedicated wires) with the two hierarchical variants
//! (`sw-hier`, `filter-d-hier`) whose tree-combining shape is the point
//! of the sweep. The flat `filter-d` barrier rides along at 16 cores
//! where its single-bank table still fits; beyond that its per-thread
//! lines outgrow a cluster bank granule and the hierarchical variant is
//! its successor.
//!
//! Barrier repetitions shrink as the machine grows (512 barriers at 16
//! cores down to 8 at 1024) so the full sweep stays tractable while each
//! point still averages over enough episodes to be stable — the engine
//! is deterministic, so repetitions smooth pipeline warm-up, not noise.

use crate::cli::BenchArgs;
use crate::latency::{run_latency, LatencyPoint};
use crate::sweep::SweepRunner;
use barrier_filter::BarrierMechanism;
use cmp_sim::{json_escape, SimConfig};
use kernels::RunSpec;

/// Core counts of the full sweep, smallest first.
pub const SCALE_CORE_COUNTS: [usize; 4] = [16, 64, 256, 1024];

/// Cluster count of the preset machine for `cores` cores (the
/// [`RunSpec::clustered`] argument): 1 keeps the paper's flat bus,
/// anything larger selects the hierarchical interconnect.
pub fn scale_clusters(cores: usize) -> usize {
    match cores {
        c if c <= 16 => 1,
        64 => 4,
        _ => 16,
    }
}

/// The preset machine for `cores` cores: the paper's flat bus at 16,
/// hierarchical clusters beyond (see the module table). Identical to
/// what a [`RunSpec`] with [`scale_clusters`] clusters builds.
pub fn scale_config(cores: usize) -> SimConfig {
    SimConfig::clustered(cores, scale_clusters(cores))
}

/// Mechanisms measured at `cores` cores. Always includes the flat
/// baselines and both hierarchical variants; the single-bank `filter-d`
/// joins only while its per-thread table fits one flat bank.
pub fn scale_mechanisms(cores: usize) -> Vec<BarrierMechanism> {
    let mut mechanisms = vec![
        BarrierMechanism::SwCentral,
        BarrierMechanism::SwTree,
        BarrierMechanism::HwDedicated,
        BarrierMechanism::SwHier,
        BarrierMechanism::FilterDHier,
    ];
    if cores <= 16 {
        mechanisms.insert(2, BarrierMechanism::FilterD);
    }
    mechanisms
}

/// Barrier repetitions `(inner, outer)` for a point at `cores` cores.
/// The centralized LL/SC barrier's episode cost grows quadratically with
/// contenders (every arrival re-fights for one line), so at 1024 cores it
/// gets the minimum loop that still demonstrates the blowup — one
/// sw-central barrier at 1024 cores simulates ~4M cycles of bus fights.
pub fn scale_reps(cores: usize, mechanism: BarrierMechanism, quick: bool) -> (u64, u64) {
    if quick {
        return (8, 2);
    }
    match cores {
        c if c <= 16 => (64, 8),
        64 => (32, 4),
        256 => (16, 2),
        _ if mechanism == BarrierMechanism::SwCentral => (2, 1),
        _ => (4, 2),
    }
}

/// One measured point of the scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Clusters in the machine (1 = the flat bus).
    pub clusters: usize,
    /// Inner barrier count of the measurement loop.
    pub inner: u64,
    /// Outer repetition count of the measurement loop.
    pub outer: u64,
    /// The Figure 4 measurement (mechanism, cores, cycles/barrier,
    /// saturation signal, simulated-run record).
    pub point: LatencyPoint,
}

/// The sweep grid as `(cores, mechanism)` pairs, in report order.
/// `quick` restricts to the CI smoke: the 64-core clustered machine
/// under the centralized baseline and one hierarchical variant.
pub fn scale_grid(quick: bool) -> Vec<(usize, BarrierMechanism)> {
    if quick {
        return vec![
            (64, BarrierMechanism::SwCentral),
            (64, BarrierMechanism::SwHier),
        ];
    }
    SCALE_CORE_COUNTS
        .into_iter()
        .flat_map(|cores| {
            scale_mechanisms(cores)
                .into_iter()
                .map(move |mechanism| (cores, mechanism))
        })
        .collect()
}

/// Run the scaling sweep on `runner`, honouring `args.quick`.
///
/// # Errors
///
/// Reports the sweep jobs that panicked (a simulation failure is a
/// harness bug, not a measurement).
pub fn run_scale(runner: &SweepRunner, args: &BenchArgs) -> Result<Vec<ScalePoint>, String> {
    let grid = scale_grid(args.quick);
    runner.run_all(&grid, |_, &(cores, mechanism)| {
        let clusters = scale_clusters(cores);
        let (inner, outer) = scale_reps(cores, mechanism, args.quick);
        let spec = RunSpec::fig4(mechanism, cores, inner, outer).clustered(clusters);
        let point =
            run_latency(&spec).unwrap_or_else(|e| panic!("{mechanism} @ {cores} cores: {e}"));
        ScalePoint {
            clusters,
            inner,
            outer,
            point,
        }
    })
}

/// The `BENCH_scale.json` document.
pub struct ScaleDoc {
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Whether this was the `--quick` smoke grid.
    pub quick: bool,
    /// Measured points, in grid order.
    pub points: Vec<ScalePoint>,
}

/// Serialize the document as `BENCH_scale.json` (std-only, hand-rolled
/// JSON — the repo builds with no registry access).
///
/// Schema `fastbar-scale/v1`: per point the machine shape (`cores`,
/// `clusters`), the loop (`inner`, `outer`), the headline
/// `cycles_per_barrier`, the interconnect saturation signal
/// (`bus_mean_wait`), and the simulated-run record (`sim_cycles`,
/// `sim_instructions`, `stats_digest`, `episodes`).
pub fn to_scale_json(doc: &ScaleDoc) -> String {
    let mut out = String::from("{\n  \"schema\": \"fastbar-scale/v1\",\n");
    out.push_str(&format!("  \"jobs\": {},\n", doc.jobs));
    out.push_str(&format!("  \"quick\": {},\n", doc.quick));
    out.push_str("  \"points\": [\n");
    for (i, p) in doc.points.iter().enumerate() {
        let l = &p.point;
        out.push_str("    {");
        out.push_str(&format!("\"cores\": {}, ", l.cores));
        out.push_str(&format!("\"clusters\": {}, ", p.clusters));
        out.push_str(&format!(
            "\"mechanism\": \"{}\", ",
            json_escape(l.mechanism.name())
        ));
        out.push_str(&format!("\"inner\": {}, ", p.inner));
        out.push_str(&format!("\"outer\": {}, ", p.outer));
        out.push_str(&format!(
            "\"cycles_per_barrier\": {:.1}, ",
            l.cycles_per_barrier
        ));
        out.push_str(&format!("\"bus_mean_wait\": {:.3}, ", l.bus_mean_wait));
        out.push_str(&format!("\"sim_cycles\": {}, ", l.sim.cycles));
        out.push_str(&format!("\"sim_instructions\": {}, ", l.sim.instructions));
        out.push_str(&format!(
            "\"stats_digest\": \"{:#018x}\", ",
            l.sim.stats_digest
        ));
        let e = &l.sim.episodes;
        out.push_str(&format!(
            "\"episodes\": {{\"count\": {}, \"parks\": {}, \"releases\": {}, \
             \"serviced\": {}}}",
            e.episodes, e.parks, e.releases, e.serviced,
        ));
        out.push('}');
        if i + 1 < doc.points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_sim::{EpisodeStats, Measurement};

    #[test]
    fn full_grid_covers_every_core_count_with_a_hierarchical_variant() {
        let grid = scale_grid(false);
        for cores in SCALE_CORE_COUNTS {
            let at: Vec<_> = grid.iter().filter(|(c, _)| *c == cores).collect();
            assert!(at.len() >= 4, "{cores} cores: need >= 4 mechanisms");
            assert!(
                at.iter().any(|(_, m)| m.is_hierarchical()),
                "{cores} cores: need a tree-combining variant"
            );
        }
        assert!(
            grid.iter()
                .any(|&(c, m)| c == 16 && m == BarrierMechanism::FilterD),
            "the paper's filter-d baseline rides along at 16 cores"
        );
    }

    #[test]
    fn quick_grid_is_the_64_core_smoke() {
        let grid = scale_grid(true);
        assert_eq!(grid.len(), 2);
        assert!(grid.iter().all(|&(c, _)| c == 64));
        assert!(grid.iter().any(|(_, m)| m.is_hierarchical()));
    }

    #[test]
    fn the_16_core_preset_is_the_paper_machine() {
        let config = scale_config(16);
        assert_eq!(config.topology.clusters, 1, "16 cores stay flat");
        assert_eq!(config, SimConfig::with_cores(16));
        assert_eq!(scale_config(256).topology.clusters, 16);
        assert_eq!(scale_config(1024).cores_per_cluster(), 64);
    }

    #[test]
    fn json_document_has_schema_and_all_points() {
        let point = LatencyPoint {
            mechanism: BarrierMechanism::SwHier,
            cores: 64,
            cycles_per_barrier: 123.45,
            bus_mean_wait: 0.5,
            sim: Measurement {
                cycles: 2000,
                instructions: 900,
                stats_digest: 0xabcd,
                episodes: EpisodeStats::default(),
            },
        };
        let doc = ScaleDoc {
            jobs: 2,
            quick: false,
            points: vec![ScalePoint {
                clusters: 4,
                inner: 8,
                outer: 2,
                point,
            }],
        };
        let json = to_scale_json(&doc);
        assert!(json.contains("\"schema\": \"fastbar-scale/v1\""));
        assert!(json.contains("\"mechanism\": \"sw-hier\""));
        assert!(json.contains("\"clusters\": 4"));
        assert!(json.contains("\"cycles_per_barrier\": 123.5"));
        assert!(json.contains("\"stats_digest\": \"0x000000000000abcd\""));
        assert!(json.ends_with("}\n"));
    }
}
