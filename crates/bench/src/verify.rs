//! Kernel × mechanism verification sweep: both layers of the `analyze`
//! crate driven over every shipped parallel kernel.
//!
//! Each grid cell runs one kernel under one barrier mechanism with a
//! [`RaceDetectorSink`] attached, then feeds the assembled program and
//! its registered [`ProtocolSpec`](barrier_filter::ProtocolSpec) through
//! the static verifier. A cell is *clean* when the static pass reports no
//! `Error` and the dynamic pass observed no race — the shipped kernels
//! must be clean under every mechanism, and the `verify` binary exits
//! non-zero otherwise.
//!
//! The sweep rides the same [`SweepRunner`] as every figure binary: cells
//! are independent simulations, so host parallelism cannot change a
//! single verdict.

use analyze::{analyze_program, Diagnostic, RaceDetectorSink, RaceReport, Severity};
use barrier_filter::BarrierMechanism;
use cmp_sim::json_escape;
use kernels::autocorr::Autocorr;
use kernels::livermore::{Loop1, Loop2, Loop3, Loop4, Loop6};
use kernels::ocean::OceanProxy;
use kernels::viterbi::Viterbi;
use kernels::{ExecSpec, KernelError, KernelOutcome, RunAttachments};
use sim_isa::Program;

use crate::sweep::SweepRunner;

/// One verifiable workload: a parallel kernel at the sweep's fixed size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyKernel {
    /// Livermore Loop 1 (hydro fragment).
    Loop1,
    /// Livermore Loop 2 (ICCG).
    Loop2,
    /// Livermore Loop 3 (inner product).
    Loop3,
    /// Livermore Loop 4 (banded linear equations).
    Loop4,
    /// Livermore Loop 6 (general linear recurrence).
    Loop6,
    /// EEMBC-like Autocorrelation.
    Autocorr,
    /// EEMBC-like Viterbi decoder.
    Viterbi,
    /// SPLASH-2 Ocean-like stencil (coarse-grained contrast case).
    Ocean,
}

impl VerifyKernel {
    /// Every parallel kernel in the suite (Loop 5 is inherently serial
    /// and has no parallel version to verify).
    pub const ALL: [VerifyKernel; 8] = [
        VerifyKernel::Loop1,
        VerifyKernel::Loop2,
        VerifyKernel::Loop3,
        VerifyKernel::Loop4,
        VerifyKernel::Loop6,
        VerifyKernel::Autocorr,
        VerifyKernel::Viterbi,
        VerifyKernel::Ocean,
    ];

    /// Workload label.
    pub fn name(self) -> &'static str {
        match self {
            VerifyKernel::Loop1 => "loop1",
            VerifyKernel::Loop2 => "loop2",
            VerifyKernel::Loop3 => "loop3",
            VerifyKernel::Loop4 => "loop4",
            VerifyKernel::Loop6 => "loop6",
            VerifyKernel::Autocorr => "autocorr",
            VerifyKernel::Viterbi => "viterbi",
            VerifyKernel::Ocean => "ocean",
        }
    }
}

/// The verdict for one kernel × mechanism cell.
#[derive(Debug, Clone)]
pub struct VerifyCase {
    /// Workload label ([`VerifyKernel::name`]).
    pub kernel: &'static str,
    /// Barrier mechanism the kernel ran under.
    pub mechanism: BarrierMechanism,
    /// Core/thread count of the run.
    pub threads: usize,
    /// Every static finding, sorted by program counter.
    pub diagnostics: Vec<Diagnostic>,
    /// The dynamic pass's happens-before report.
    pub races: RaceReport,
    /// Simulated cycles of the observed run.
    pub cycles: u64,
    /// Stats digest of the observed run (must equal the unobserved one).
    pub stats_digest: u64,
}

impl VerifyCase {
    /// Static findings at `Error` severity.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Static findings at `Warning` severity.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// No static `Error` and no dynamic race.
    pub fn clean(&self) -> bool {
        self.errors() == 0 && !self.races.racy()
    }
}

/// The whole sweep: one [`VerifyCase`] per kernel × mechanism cell.
#[derive(Debug, Clone)]
pub struct VerifyDoc {
    /// Core/thread count every cell ran at.
    pub threads: usize,
    /// Whether `--quick` shrank the workloads.
    pub quick: bool,
    /// Cells in kernel-major, [`BarrierMechanism::ALL`]-column order.
    pub cases: Vec<VerifyCase>,
}

impl VerifyDoc {
    /// Whether every cell verified clean.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(VerifyCase::clean)
    }
}

/// Verify one kernel under one mechanism: run it with the race detector
/// attached, then statically analyze the very program that ran.
///
/// # Errors
///
/// Labels and propagates kernel failures (which include the harness's own
/// output validation — a cell that computes wrong answers never reaches
/// the verifier).
pub fn verify_case(
    kernel: VerifyKernel,
    mechanism: BarrierMechanism,
    threads: usize,
    quick: bool,
) -> Result<VerifyCase, String> {
    let mut handle = None;
    let mut spec = None;
    let (outcome, program) =
        run_observed(kernel, mechanism, threads, quick, &mut handle, &mut spec)
            .map_err(|e| format!("{} × {mechanism}: {e}", kernel.name()))?;
    let spec = spec.expect("parallel kernels always register a barrier");
    let handle = handle.expect("observe hook always installs the detector");
    let diagnostics = analyze_program(&program, std::slice::from_ref(&spec));
    Ok(VerifyCase {
        kernel: kernel.name(),
        mechanism,
        threads,
        diagnostics,
        races: handle.report(),
        cycles: outcome.sim.cycles,
        stats_digest: outcome.sim.stats_digest,
    })
}

fn run_observed(
    kernel: VerifyKernel,
    mechanism: BarrierMechanism,
    threads: usize,
    quick: bool,
    handle: &mut Option<analyze::RaceHandle>,
    spec: &mut Option<barrier_filter::ProtocolSpec>,
) -> Result<(KernelOutcome, Program), KernelError> {
    let observe = |bar: &barrier_filter::Barrier| {
        *spec = Some(bar.protocol().clone());
        let sink = RaceDetectorSink::new([bar.protocol()]);
        *handle = Some(sink.handle());
        Some(Box::new(sink) as Box<dyn cmp_sim::TraceSink>)
    };
    let exec = ExecSpec::parallel(threads, mechanism);
    let att = RunAttachments::observed(observe);
    let out = match kernel {
        VerifyKernel::Loop1 => Loop1::new(if quick { 64 } else { 128 }).run_with(&exec, att),
        VerifyKernel::Loop2 => Loop2::new(if quick { 64 } else { 128 }).run_with(&exec, att),
        VerifyKernel::Loop3 => Loop3::new(if quick { 64 } else { 128 }).run_with(&exec, att),
        VerifyKernel::Loop4 => Loop4::new(if quick { 64 } else { 128 }).run_with(&exec, att),
        VerifyKernel::Loop6 => Loop6::new(if quick { 24 } else { 40 }).run_with(&exec, att),
        VerifyKernel::Autocorr => Autocorr::new(if quick { 64 } else { 96 }).run_with(&exec, att),
        VerifyKernel::Viterbi => Viterbi::new(if quick { 24 } else { 48 }).run_with(&exec, att),
        VerifyKernel::Ocean => OceanProxy::new(16, if quick { 2 } else { 3 }).run_with(&exec, att),
    }?;
    Ok((out.outcome, out.program))
}

/// Run the full kernel × mechanism grid on `runner`.
///
/// # Errors
///
/// Collects every failed cell (kernel error or captured panic) into one
/// report; any failure fails the sweep.
pub fn run_verify(runner: &SweepRunner, threads: usize, quick: bool) -> Result<VerifyDoc, String> {
    let grid: Vec<(VerifyKernel, BarrierMechanism)> = VerifyKernel::ALL
        .into_iter()
        .flat_map(|k| BarrierMechanism::ALL.into_iter().map(move |m| (k, m)))
        .collect();
    let cases = runner.run_all(&grid, |_, &(kernel, mechanism)| {
        verify_case(kernel, mechanism, threads, quick)
    })?;
    let cases: Result<Vec<VerifyCase>, String> = cases.into_iter().collect();
    Ok(VerifyDoc {
        threads,
        quick,
        cases: cases?,
    })
}

/// Render the sweep as the machine-readable `BENCH_verify.json` document.
pub fn to_json(doc: &VerifyDoc) -> String {
    let mut out = String::from("{\n  \"schema\": \"fastbar-verify/v1\",\n");
    out.push_str(&format!("  \"threads\": {},\n", doc.threads));
    out.push_str(&format!("  \"quick\": {},\n", doc.quick));
    out.push_str(&format!("  \"passed\": {},\n", doc.passed()));
    out.push_str("  \"cases\": [\n");
    for (i, c) in doc.cases.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"kernel\": \"{}\", ", json_escape(c.kernel)));
        out.push_str(&format!(
            "\"mechanism\": \"{}\", ",
            json_escape(&c.mechanism.to_string())
        ));
        out.push_str(&format!("\"errors\": {}, ", c.errors()));
        out.push_str(&format!("\"warnings\": {}, ", c.warnings()));
        out.push_str(&format!("\"races\": {}, ", c.races.total_races));
        out.push_str(&format!("\"reads_checked\": {}, ", c.races.reads_checked));
        out.push_str(&format!("\"writes_checked\": {}, ", c.races.writes_checked));
        out.push_str(&format!("\"sync_accesses\": {}, ", c.races.sync_accesses));
        out.push_str(&format!("\"cycles\": {}, ", c.cycles));
        out.push_str(&format!("\"stats_digest\": \"{:#018x}\", ", c.stats_digest));
        out.push_str("\"findings\": [");
        for (j, d) in c.diagnostics.iter().enumerate() {
            out.push_str(&format!(
                "{{\"severity\": \"{}\", \"rule\": \"{}\", \"message\": \"{}\"",
                d.severity,
                json_escape(d.rule),
                json_escape(&d.message)
            ));
            if let Some(pc) = d.pc {
                out.push_str(&format!(", \"pc\": \"{pc:#x}\""));
            }
            out.push('}');
            if j + 1 < c.diagnostics.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        if i + 1 < doc.cases.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_verifies_clean() {
        let case = verify_case(VerifyKernel::Loop3, BarrierMechanism::FilterD, 4, true)
            .expect("cell runs");
        assert!(case.clean(), "shipped kernel must be clean: {case:#?}");
        assert!(case.races.reads_checked > 0);
        assert!(case.races.writes_checked > 0);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let case = verify_case(
            VerifyKernel::Autocorr,
            BarrierMechanism::HwDedicated,
            4,
            true,
        )
        .expect("cell runs");
        let doc = VerifyDoc {
            threads: 4,
            quick: true,
            cases: vec![case],
        };
        let json = to_json(&doc);
        assert!(json.contains("\"schema\": \"fastbar-verify/v1\""));
        assert!(json.contains("\"kernel\": \"autocorr\""));
        assert!(json.contains("\"passed\": true"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }
}
