//! Kernel × mechanism verification sweep: all three layers of the
//! `analyze` crate driven over every shipped parallel kernel.
//!
//! Each grid cell runs one kernel under one barrier mechanism with a
//! [`RaceDetectorSink`] attached, then feeds the assembled program and
//! its registered [`ProtocolSpec`](barrier_filter::ProtocolSpec) through
//! the static verifier. A cell is *clean* when the static pass reports no
//! `Error` and the dynamic pass observed no race — the shipped kernels
//! must be clean under every mechanism, and the `verify` binary exits
//! non-zero otherwise.
//!
//! The grid covers every [`BarrierMechanism::EXTENDED`] member on the
//! flat Table-2 machine, plus 64-core / 4-cluster topology points for the
//! two hierarchical mechanisms (whose interesting code paths — the
//! `tid >> k` leader addressing of the global phase — a flat machine
//! never executes).
//!
//! The third layer is the bounded model checker ([`analyze::mc`]): every
//! mechanism's emitted routine is explored exhaustively at 2–4 cores,
//! with and without an injected fault, against the `R-MC-*` properties.
//!
//! The sweep rides the same [`SweepRunner`] as every figure binary: cells
//! are independent simulations, so host parallelism cannot change a
//! single verdict.

use analyze::{
    analyze_program, model_check, Diagnostic, McConfig, RaceDetectorSink, RaceReport, Severity,
};
use barrier_filter::{BarrierMechanism, BarrierSystem};
use cmp_sim::{json_escape, AddressSpace, SimConfig};
use kernels::{RunAttachments, RunSpec, WorkloadSpec};
use sim_isa::Asm;

use crate::sweep::SweepRunner;

/// Core counts the model-checker layer explores per mechanism.
pub const MC_CORE_COUNTS: [usize; 3] = [2, 3, 4];

/// Core count of the clustered topology points.
pub const CLUSTERED_CORES: usize = 64;

/// Cluster count of the clustered topology points.
pub const CLUSTERS: usize = 4;

/// One verifiable workload: a parallel kernel at the sweep's fixed size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyKernel {
    /// Livermore Loop 1 (hydro fragment).
    Loop1,
    /// Livermore Loop 2 (ICCG).
    Loop2,
    /// Livermore Loop 3 (inner product).
    Loop3,
    /// Livermore Loop 4 (banded linear equations).
    Loop4,
    /// Livermore Loop 6 (general linear recurrence).
    Loop6,
    /// EEMBC-like Autocorrelation.
    Autocorr,
    /// EEMBC-like Viterbi decoder.
    Viterbi,
    /// SPLASH-2 Ocean-like stencil (coarse-grained contrast case).
    Ocean,
}

impl VerifyKernel {
    /// Every parallel kernel in the suite (Loop 5 is inherently serial
    /// and has no parallel version to verify).
    pub const ALL: [VerifyKernel; 8] = [
        VerifyKernel::Loop1,
        VerifyKernel::Loop2,
        VerifyKernel::Loop3,
        VerifyKernel::Loop4,
        VerifyKernel::Loop6,
        VerifyKernel::Autocorr,
        VerifyKernel::Viterbi,
        VerifyKernel::Ocean,
    ];

    /// Workload label.
    pub fn name(self) -> &'static str {
        match self {
            VerifyKernel::Loop1 => "loop1",
            VerifyKernel::Loop2 => "loop2",
            VerifyKernel::Loop3 => "loop3",
            VerifyKernel::Loop4 => "loop4",
            VerifyKernel::Loop6 => "loop6",
            VerifyKernel::Autocorr => "autocorr",
            VerifyKernel::Viterbi => "viterbi",
            VerifyKernel::Ocean => "ocean",
        }
    }

    /// This kernel at the sweep's fixed size (`quick` shrinks it for the
    /// CI smoke run; verdicts are size-independent for the shipped
    /// kernels, only cycle counts move).
    pub fn workload(self, quick: bool) -> WorkloadSpec {
        match self {
            VerifyKernel::Loop1 => WorkloadSpec::Loop1 {
                n: if quick { 64 } else { 128 },
            },
            VerifyKernel::Loop2 => WorkloadSpec::Loop2 {
                n: if quick { 64 } else { 128 },
            },
            VerifyKernel::Loop3 => WorkloadSpec::Loop3 {
                n: if quick { 64 } else { 128 },
            },
            VerifyKernel::Loop4 => WorkloadSpec::Loop4 {
                n: if quick { 64 } else { 128 },
            },
            VerifyKernel::Loop6 => WorkloadSpec::Loop6 {
                n: if quick { 24 } else { 40 },
            },
            VerifyKernel::Autocorr => WorkloadSpec::Autocorr {
                n: if quick { 64 } else { 96 },
                lags: 32,
            },
            VerifyKernel::Viterbi => WorkloadSpec::Viterbi {
                constraint: 5,
                data_bits: if quick { 24 } else { 48 },
                noise_per_mille: 10,
            },
            VerifyKernel::Ocean => WorkloadSpec::Ocean {
                grid: 16,
                sweeps: if quick { 2 } else { 3 },
            },
        }
    }
}

/// The verdict for one kernel × mechanism cell.
#[derive(Debug, Clone)]
pub struct VerifyCase {
    /// Workload label ([`VerifyKernel::name`]).
    pub kernel: &'static str,
    /// Barrier mechanism the kernel ran under.
    pub mechanism: BarrierMechanism,
    /// Core/thread count of the run.
    pub threads: usize,
    /// Topology preset the run used (1 = flat Table-2 machine).
    pub clusters: usize,
    /// Content address of the exact [`RunSpec`] this cell executed.
    pub spec_digest: u64,
    /// Every static finding, sorted by program counter.
    pub diagnostics: Vec<Diagnostic>,
    /// The dynamic pass's happens-before report.
    pub races: RaceReport,
    /// Simulated cycles of the observed run.
    pub cycles: u64,
    /// Stats digest of the observed run (must equal the unobserved one).
    pub stats_digest: u64,
}

impl VerifyCase {
    /// Static findings at `Error` severity.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Static findings at `Warning` severity.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// No static `Error` and no dynamic race.
    pub fn clean(&self) -> bool {
        self.errors() == 0 && !self.races.racy()
    }
}

/// One model-checker cell: a mechanism's emitted routine explored at a
/// small core count, with or without fault injection.
#[derive(Debug, Clone)]
pub struct McCase {
    /// Mechanism whose routine was explored.
    pub mechanism: BarrierMechanism,
    /// Cores of the explored instance.
    pub cores: usize,
    /// Whether one `SwitchOut`/`Migrate` fault was injected.
    pub fault: bool,
    /// Why the cell could not run, when it could not (e.g. the flat
    /// topology cannot host a hierarchical mechanism at this core
    /// count). A skipped cell counts as clean.
    pub skipped: Option<String>,
    /// Distinct states explored.
    pub states: u64,
    /// Transitions executed.
    pub transitions: u64,
    /// Whether exploration hit its state bound.
    pub truncated: bool,
    /// Property counterexamples (each carries its schedule).
    pub findings: Vec<Diagnostic>,
}

impl McCase {
    /// Fully explored with no counterexample (or legitimately skipped).
    pub fn clean(&self) -> bool {
        self.skipped.is_some() || (!self.truncated && self.findings.is_empty())
    }
}

/// The whole sweep: one [`VerifyCase`] per kernel × mechanism cell, plus
/// the model-checker grid when it was requested.
#[derive(Debug, Clone)]
pub struct VerifyDoc {
    /// Core/thread count the flat cells ran at.
    pub threads: usize,
    /// Whether `--quick` shrank the workloads.
    pub quick: bool,
    /// Flat cells in kernel-major [`BarrierMechanism::EXTENDED`]-column
    /// order, then the clustered topology points.
    pub cases: Vec<VerifyCase>,
    /// Model-checker cells in [`BarrierMechanism::EXTENDED`] ×
    /// [`MC_CORE_COUNTS`] × fault order (empty when the layer was off).
    pub mc: Vec<McCase>,
}

impl VerifyDoc {
    /// Whether every cell (simulation and model-checker) verified clean.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(VerifyCase::clean) && self.mc.iter().all(McCase::clean)
    }
}

/// Verify one kernel under one mechanism: run the [`RunSpec`] with the
/// race detector attached, then statically analyze the very program that
/// ran.
///
/// # Errors
///
/// Labels and propagates kernel failures (which include the harness's own
/// output validation — a cell that computes wrong answers never reaches
/// the verifier).
pub fn verify_case(
    kernel: VerifyKernel,
    mechanism: BarrierMechanism,
    threads: usize,
    clusters: usize,
    quick: bool,
) -> Result<VerifyCase, String> {
    let spec = RunSpec::parallel(kernel.workload(quick), threads, mechanism).clustered(clusters);
    let mut handle = None;
    let mut protocol = None;
    let observe = |bar: &barrier_filter::Barrier| {
        protocol = Some(bar.protocol().clone());
        let sink = RaceDetectorSink::new([bar.protocol()]);
        handle = Some(sink.handle());
        Some(Box::new(sink) as Box<dyn cmp_sim::TraceSink>)
    };
    let out = kernels::run_with(&spec, RunAttachments::observed(observe)).map_err(|e| {
        format!(
            "{} × {mechanism} ({threads}t/{clusters}c): {e}",
            kernel.name()
        )
    })?;
    let protocol = protocol.expect("parallel kernels always register a barrier");
    let handle = handle.expect("observe hook always installs the detector");
    let diagnostics = analyze_program(&out.program, std::slice::from_ref(&protocol));
    Ok(VerifyCase {
        kernel: kernel.name(),
        mechanism,
        threads,
        clusters,
        spec_digest: spec.digest(),
        diagnostics,
        races: handle.report(),
        cycles: out.outcome.sim.cycles,
        stats_digest: out.outcome.sim.stats_digest,
    })
}

/// Run one model-checker cell: emit `mechanism` for `cores` through the
/// real registration path on a flat machine and explore it exhaustively.
/// Registration failures and fallbacks (a topology that cannot host the
/// mechanism) come back as skipped cells, not errors.
pub fn mc_case(mechanism: BarrierMechanism, cores: usize, fault: bool) -> McCase {
    let mut cell = McCase {
        mechanism,
        cores,
        fault,
        skipped: None,
        states: 0,
        transitions: 0,
        truncated: false,
        findings: Vec::new(),
    };
    let config = SimConfig::with_cores(cores);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = match BarrierSystem::new(&config, cores, &mut space) {
        Ok(sys) => sys,
        Err(e) => {
            cell.skipped = Some(format!("topology: {e}"));
            return cell;
        }
    };
    let barrier = match sys.create_barrier(&mut asm, &mut space, mechanism, cores) {
        Ok(b) if !b.is_fallback() => b,
        Ok(_) => {
            cell.skipped = Some(format!("topology: {cores} flat cores fall back"));
            return cell;
        }
        Err(e) => {
            cell.skipped = Some(format!("topology: {e}"));
            return cell;
        }
    };
    asm.label("entry").unwrap();
    barrier.emit_call(&mut asm);
    asm.halt();
    let protocol = barrier.protocol().clone();
    let program = match asm.assemble() {
        Ok(p) => p,
        Err(e) => {
            cell.skipped = Some(format!("assembly: {e}"));
            return cell;
        }
    };
    let cfg = McConfig {
        fault,
        ..McConfig::default()
    };
    let report = model_check(&program, &protocol, &cfg);
    cell.states = report.states;
    cell.transitions = report.transitions;
    cell.truncated = report.truncated;
    cell.findings = report.diagnostics;
    cell
}

/// Run the full verification grid on `runner`: every kernel ×
/// [`BarrierMechanism::EXTENDED`] on the flat `threads`-core machine, the
/// clustered topology points for the hierarchical pair, and (when
/// `with_mc`) the model-checker sweep.
///
/// # Errors
///
/// Collects every failed cell (kernel error or captured panic) into one
/// report; any failure fails the sweep.
pub fn run_verify(
    runner: &SweepRunner,
    threads: usize,
    quick: bool,
    with_mc: bool,
) -> Result<VerifyDoc, String> {
    let mut grid: Vec<(VerifyKernel, BarrierMechanism, usize, usize)> = VerifyKernel::ALL
        .into_iter()
        .flat_map(|k| {
            BarrierMechanism::EXTENDED
                .into_iter()
                .map(move |m| (k, m, threads, 1))
        })
        .collect();
    for kernel in VerifyKernel::ALL {
        for mechanism in [BarrierMechanism::SwHier, BarrierMechanism::FilterDHier] {
            grid.push((kernel, mechanism, CLUSTERED_CORES, CLUSTERS));
        }
    }
    let cases = runner.run_all(&grid, |_, &(kernel, mechanism, threads, clusters)| {
        verify_case(kernel, mechanism, threads, clusters, quick)
    })?;
    let cases: Result<Vec<VerifyCase>, String> = cases.into_iter().collect();

    let mc = if with_mc {
        let mc_grid: Vec<(BarrierMechanism, usize, bool)> = BarrierMechanism::EXTENDED
            .into_iter()
            .flat_map(|m| {
                MC_CORE_COUNTS
                    .into_iter()
                    .flat_map(move |c| [false, true].map(move |f| (m, c, f)))
            })
            .collect();
        runner.run_all(&mc_grid, |_, &(mechanism, cores, fault)| {
            mc_case(mechanism, cores, fault)
        })?
    } else {
        Vec::new()
    };

    Ok(VerifyDoc {
        threads,
        quick,
        cases: cases?,
        mc,
    })
}

fn findings_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (j, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "{{\"severity\": \"{}\", \"rule\": \"{}\", \"message\": \"{}\"",
            d.severity,
            json_escape(d.rule),
            json_escape(&d.message)
        ));
        if let Some(pc) = d.pc {
            out.push_str(&format!(", \"pc\": \"{pc:#x}\""));
        }
        out.push('}');
        if j + 1 < diags.len() {
            out.push_str(", ");
        }
    }
    out.push(']');
    out
}

/// Render the sweep as the machine-readable `BENCH_verify.json` document.
pub fn to_json(doc: &VerifyDoc) -> String {
    let mut out = String::from("{\n  \"schema\": \"fastbar-verify/v2\",\n");
    out.push_str(&format!("  \"threads\": {},\n", doc.threads));
    out.push_str(&format!("  \"quick\": {},\n", doc.quick));
    out.push_str(&format!("  \"passed\": {},\n", doc.passed()));
    out.push_str("  \"cases\": [\n");
    for (i, c) in doc.cases.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"kernel\": \"{}\", ", json_escape(c.kernel)));
        out.push_str(&format!(
            "\"mechanism\": \"{}\", ",
            json_escape(&c.mechanism.to_string())
        ));
        out.push_str(&format!("\"threads\": {}, ", c.threads));
        out.push_str(&format!("\"clusters\": {}, ", c.clusters));
        out.push_str(&format!("\"spec_digest\": \"{:#018x}\", ", c.spec_digest));
        out.push_str(&format!("\"errors\": {}, ", c.errors()));
        out.push_str(&format!("\"warnings\": {}, ", c.warnings()));
        out.push_str(&format!("\"races\": {}, ", c.races.total_races));
        out.push_str(&format!("\"reads_checked\": {}, ", c.races.reads_checked));
        out.push_str(&format!("\"writes_checked\": {}, ", c.races.writes_checked));
        out.push_str(&format!("\"sync_accesses\": {}, ", c.races.sync_accesses));
        out.push_str(&format!("\"cycles\": {}, ", c.cycles));
        out.push_str(&format!("\"stats_digest\": \"{:#018x}\", ", c.stats_digest));
        out.push_str(&format!(
            "\"findings\": {}}}",
            findings_json(&c.diagnostics)
        ));
        if i + 1 < doc.cases.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"mc\": [\n");
    for (i, c) in doc.mc.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"mechanism\": \"{}\", ",
            json_escape(&c.mechanism.to_string())
        ));
        out.push_str(&format!("\"cores\": {}, ", c.cores));
        out.push_str(&format!("\"fault\": {}, ", c.fault));
        match &c.skipped {
            Some(why) => out.push_str(&format!("\"skipped\": \"{}\", ", json_escape(why))),
            None => out.push_str("\"skipped\": null, "),
        }
        out.push_str(&format!("\"states\": {}, ", c.states));
        out.push_str(&format!("\"transitions\": {}, ", c.transitions));
        out.push_str(&format!("\"truncated\": {}, ", c.truncated));
        out.push_str(&format!("\"clean\": {}, ", c.clean()));
        out.push_str(&format!("\"findings\": {}}}", findings_json(&c.findings)));
        if i + 1 < doc.mc.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn finding_line(prefix: &str, d: &Diagnostic) -> String {
    let mut line = format!(
        "{prefix}\"severity\": \"{}\", \"rule\": \"{}\"",
        d.severity,
        json_escape(d.rule)
    );
    if let Some(pc) = d.pc {
        line.push_str(&format!(", \"pc\": \"{pc:#x}\""));
    }
    line.push_str(&format!(", \"message\": \"{}\"}}", json_escape(&d.message)));
    line
}

/// Render every finding of the sweep as one JSON object per line
/// (`--json` mode): static diagnostics and races cell by cell in grid
/// order, then model-checker counterexamples. Deterministic: the grid
/// order is fixed and each cell's findings are already sorted.
pub fn stream_findings(doc: &VerifyDoc) -> String {
    let mut out = String::new();
    for c in &doc.cases {
        let prefix = format!(
            "{{\"layer\": \"static\", \"kernel\": \"{}\", \"mechanism\": \"{}\", \
             \"threads\": {}, \"clusters\": {}, ",
            json_escape(c.kernel),
            json_escape(&c.mechanism.to_string()),
            c.threads,
            c.clusters
        );
        for d in &c.diagnostics {
            out.push_str(&finding_line(&prefix, d));
            out.push('\n');
        }
        for r in &c.races.races {
            out.push_str(&format!(
                "{{\"layer\": \"race\", \"kernel\": \"{}\", \"mechanism\": \"{}\", \
                 \"threads\": {}, \"clusters\": {}, \"kind\": \"{}\", \"addr\": \"{:#x}\", \
                 \"cores\": [{}, {}], \"cycle\": {}}}\n",
                json_escape(c.kernel),
                json_escape(&c.mechanism.to_string()),
                c.threads,
                c.clusters,
                json_escape(r.kind.name()),
                r.addr,
                r.prev_core,
                r.core,
                r.cycle
            ));
        }
    }
    for c in &doc.mc {
        let prefix = format!(
            "{{\"layer\": \"mc\", \"mechanism\": \"{}\", \"cores\": {}, \"fault\": {}, ",
            json_escape(&c.mechanism.to_string()),
            c.cores,
            c.fault
        );
        for d in &c.findings {
            out.push_str(&finding_line(&prefix, d));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_verifies_clean() {
        let case = verify_case(VerifyKernel::Loop3, BarrierMechanism::FilterD, 4, 1, true)
            .expect("cell runs");
        assert!(case.clean(), "shipped kernel must be clean: {case:#?}");
        assert!(case.races.reads_checked > 0);
        assert!(case.races.writes_checked > 0);
        assert_ne!(case.spec_digest, 0);
    }

    #[test]
    fn one_clustered_cell_verifies_clean() {
        let case = verify_case(
            VerifyKernel::Loop3,
            BarrierMechanism::SwHier,
            CLUSTERED_CORES,
            CLUSTERS,
            true,
        )
        .expect("clustered cell runs");
        assert!(case.clean(), "clustered cell must be clean: {case:#?}");
        assert_eq!(case.clusters, CLUSTERS);
    }

    #[test]
    fn mc_cells_run_and_skip_correctly() {
        let cell = mc_case(BarrierMechanism::SwCentral, 2, false);
        assert!(cell.skipped.is_none());
        assert!(cell.clean(), "{:#?}", cell.findings);
        assert!(cell.states > 1);
        // A hierarchical mechanism cannot register on 3 flat cores: the
        // cell is skipped, not failed.
        let cell = mc_case(BarrierMechanism::SwHier, 3, false);
        assert!(cell.skipped.is_some());
        assert!(cell.clean());
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let case = verify_case(
            VerifyKernel::Autocorr,
            BarrierMechanism::HwDedicated,
            4,
            1,
            true,
        )
        .expect("cell runs");
        let doc = VerifyDoc {
            threads: 4,
            quick: true,
            cases: vec![case],
            mc: vec![mc_case(BarrierMechanism::HwDedicated, 2, true)],
        };
        let json = to_json(&doc);
        assert!(json.contains("\"schema\": \"fastbar-verify/v2\""));
        assert!(json.contains("\"kernel\": \"autocorr\""));
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\"mc\": ["));
        assert!(json.contains("\"states\": "));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }

    #[test]
    fn findings_stream_is_one_object_per_line() {
        // A dirty mc cell guarantees at least one finding to stream.
        let mut cell = mc_case(BarrierMechanism::SwCentral, 2, false);
        cell.findings.push(Diagnostic::global(
            Severity::Error,
            analyze::rules::MC_DEADLOCK,
            "synthetic",
        ));
        let doc = VerifyDoc {
            threads: 4,
            quick: true,
            cases: Vec::new(),
            mc: vec![cell],
        };
        let stream = stream_findings(&doc);
        assert!(!stream.is_empty());
        for line in stream.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(line.contains("\"rule\": "));
        }
    }
}
