//! Host-parallel sweep execution: run independent simulations on a bounded
//! worker pool without perturbing a single simulated cycle.
//!
//! Every figure in the paper is a sweep of *independent* simulations
//! (mechanism × core count × kernel). Each sweep point builds its own
//! [`Machine`](cmp_sim::Machine) from scratch — no shared mutable state, no
//! RNG, no host-time dependence — so the host can run them on as many
//! threads as it has without changing any simulated outcome. The
//! determinism contract is structural, not best-effort:
//!
//! * **Job = one closure call.** The runner never splits or reorders work
//!   inside a job; parallelism is purely across jobs.
//! * **Results are returned in item order**, regardless of which worker
//!   finished first. `run(items, f)[i]` is always the result of
//!   `f(i, &items[i])`.
//! * **Panics are captured per job**, not propagated to the pool: one
//!   diverging sweep point reports as [`JobPanic`] in its own slot while
//!   the remaining jobs still complete.
//!
//! The pool is built on `std::thread::scope` (std-only, no extra
//! dependencies): workers claim job indices from a shared atomic cursor,
//! write results into per-slot mailboxes, and join before `run` returns.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sweep job that panicked, captured in its result slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job in the input slice.
    pub job: usize,
    /// The panic payload, if it was a string (the common case for
    /// `panic!`/`assert!`); `"<non-string panic payload>"` otherwise.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep job #{} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// A bounded worker pool for embarrassingly parallel sweeps.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> SweepRunner {
        SweepRunner { jobs: jobs.max(1) }
    }

    /// A runner sized to the host: one worker per available hardware
    /// thread (1 if the host won't say).
    pub fn available() -> SweepRunner {
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        SweepRunner::new(jobs)
    }

    /// Parse `--jobs N` (or `--jobs=N`) out of a CLI argument list,
    /// defaulting to [`available`](SweepRunner::available) when absent.
    /// Returns an error string on a malformed or missing value.
    pub fn from_args(args: &[String]) -> Result<SweepRunner, String> {
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let value = if arg == "--jobs" {
                it.next()
                    .cloned()
                    .ok_or_else(|| "--jobs requires a value".to_string())?
            } else if let Some(v) = arg.strip_prefix("--jobs=") {
                v.to_string()
            } else {
                continue;
            };
            let jobs: usize = value
                .parse()
                .map_err(|_| format!("--jobs: expected a positive integer, got {value:?}"))?;
            if jobs == 0 {
                return Err("--jobs: expected a positive integer, got 0".to_string());
            }
            return Ok(SweepRunner::new(jobs));
        }
        Ok(SweepRunner::available())
    }

    /// Number of workers this runner will spawn.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f(i, &items[i])` for every item on the worker pool and return
    /// the results in item order. Each job's panic (if any) is captured in
    /// its own slot; the other jobs run to completion regardless.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<Result<T, JobPanic>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<Result<T, JobPanic>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.jobs.min(items.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let result =
                        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| JobPanic {
                            job: i,
                            message: panic_message(payload.as_ref()),
                        });
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index was claimed and completed")
            })
            .collect()
    }

    /// Like [`run`](SweepRunner::run), but unwrap: return all results in
    /// item order, or a combined report of every job that panicked.
    pub fn run_all<I, T, F>(&self, items: &[I], f: F) -> Result<Vec<T>, String>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        let mut failures = Vec::new();
        for result in self.run(items, f) {
            match result {
                Ok(v) => out.push(v),
                Err(p) => failures.push(p.to_string()),
            }
        }
        if failures.is_empty() {
            Ok(out)
        } else {
            Err(failures.join("; "))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn results_come_back_in_item_order() {
        // Jobs sleep inversely to their index so later items finish first;
        // ordering must still follow the input slice.
        let items: Vec<u64> = (0..16).collect();
        let out = SweepRunner::new(4)
            .run_all(&items, |i, &x| {
                std::thread::sleep(std::time::Duration::from_millis(16 - x));
                (i, x * x)
            })
            .expect("no panics");
        for (i, (job, sq)) in out.iter().enumerate() {
            assert_eq!(*job, i);
            assert_eq!(*sq, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn panics_are_captured_per_job() {
        let items: Vec<u32> = (0..8).collect();
        let results = SweepRunner::new(3).run(&items, |_, &x| {
            assert!(x != 5, "job five exploded");
            x + 1
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let p = r.as_ref().expect_err("job 5 panicked");
                assert_eq!(p.job, 5);
                assert!(p.message.contains("job five exploded"), "{}", p.message);
            } else {
                assert_eq!(*r.as_ref().expect("other jobs complete"), i as u32 + 1);
            }
        }
        let err = SweepRunner::new(3)
            .run_all(&items, |_, &x| {
                assert!(x != 5, "job five exploded");
                x
            })
            .expect_err("run_all reports the panic");
        assert!(err.contains("sweep job #5"), "{err}");
    }

    #[test]
    fn jobs_flag_parses_and_defaults() {
        assert_eq!(
            SweepRunner::from_args(&strings(&["--jobs", "4"]))
                .expect("parses")
                .jobs(),
            4
        );
        assert_eq!(
            SweepRunner::from_args(&strings(&["--quick", "--jobs=2"]))
                .expect("parses")
                .jobs(),
            2
        );
        let default = SweepRunner::from_args(&[]).expect("defaults");
        assert!(default.jobs() >= 1);
        assert!(SweepRunner::from_args(&strings(&["--jobs"])).is_err());
        assert!(SweepRunner::from_args(&strings(&["--jobs", "zero"])).is_err());
        assert!(SweepRunner::from_args(&strings(&["--jobs", "0"])).is_err());
    }

    #[test]
    fn empty_and_oversubscribed_inputs_work() {
        let none: Vec<u8> = Vec::new();
        assert!(SweepRunner::new(8)
            .run_all(&none, |_, &x| x)
            .expect("ok")
            .is_empty());
        // More workers than items: extra workers exit immediately.
        let out = SweepRunner::new(64)
            .run_all(&[1u8, 2, 3], |_, &x| x * 2)
            .expect("ok");
        assert_eq!(out, vec![2, 4, 6]);
    }
}
