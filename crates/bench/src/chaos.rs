//! Chaos sweep: barrier recovery under deterministic fault injection.
//!
//! §3.3.3 claims the barrier filter tolerates OS interference — parked
//! threads can be context-switched out, delayed, or migrated (with the
//! filters re-armed through the reprogram path) and the barrier still
//! functions. This sweep measures that claim: every point drives a real
//! kernel (Viterbi, Livermore Loop 2) through a seeded
//! [`FaultPlan`] and demands three things of the run:
//!
//! 1. **Validated output** — the kernel's own host-reference check passes
//!    even with faults injected mid-episode.
//! 2. **Quiescent filters** — after the run, no filter table holds a
//!    parked fill (checked by the kernel harness).
//! 3. **Bit-identical replay** — the same `(seed, plan)` reproduces the
//!    same [`Measurement`], run for run.
//!
//! A zero-fault point must additionally be bit-identical to the plain
//! (never-faulted) run, so chaos plumbing is proven to be a pure observer
//! when disabled.

use barrier_filter::BarrierMechanism;
use cmp_sim::{json_escape, FaultPlan, FaultReport, Lcg, Measurement};
use kernels::livermore::Loop2;
use kernels::viterbi::Viterbi;
use kernels::{ExecSpec, KernelError, KernelOutcome, RunAttachments};

use crate::sweep::SweepRunner;

/// One kernel the chaos sweep drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosWorkload {
    /// EEMBC Viterbi (K=5): fine-grained episodes, filter-heavy.
    Viterbi,
    /// Livermore Loop 2: halving parallelism, idle threads at late stages.
    Loop2,
}

impl ChaosWorkload {
    /// Both workloads, in sweep order.
    pub const ALL: [ChaosWorkload; 2] = [ChaosWorkload::Viterbi, ChaosWorkload::Loop2];

    /// Stable identifier used in reports and seed derivation.
    pub fn name(self) -> &'static str {
        match self {
            ChaosWorkload::Viterbi => "viterbi",
            ChaosWorkload::Loop2 => "loop2",
        }
    }

    /// Problem size / thread count for this workload (`quick` shrinks for
    /// smoke runs; full sizes match the throughput workloads, so the
    /// zero-fault Viterbi/FilterD point reproduces the committed digest).
    fn shape(self, quick: bool) -> (usize, usize) {
        match (self, quick) {
            (ChaosWorkload::Viterbi, true) => (24, 8),
            (ChaosWorkload::Viterbi, false) => (96, 16),
            (ChaosWorkload::Loop2, true) => (64, 8),
            (ChaosWorkload::Loop2, false) => (256, 16),
        }
    }

    /// Run the workload under `plan`, validating output and filter
    /// quiescence internally.
    fn run(
        self,
        quick: bool,
        mechanism: BarrierMechanism,
        plan: &FaultPlan,
    ) -> Result<(KernelOutcome, FaultReport), KernelError> {
        let (size, threads) = self.shape(quick);
        let exec = ExecSpec::parallel(threads, mechanism);
        let att = RunAttachments::with_plan(plan);
        let out = match self {
            ChaosWorkload::Viterbi => Viterbi::new(size).run_with(&exec, att),
            ChaosWorkload::Loop2 => Loop2::new(size).run_with(&exec, att),
        }?;
        Ok((out.outcome, out.faults))
    }
}

/// One verified point of the sweep.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Workload identifier ([`ChaosWorkload::name`]).
    pub workload: &'static str,
    /// Barrier mechanism under test.
    pub mechanism: BarrierMechanism,
    /// Scheduled fault events in the plan (0 = baseline).
    pub faults: usize,
    /// Seed the point's [`FaultPlan`] was generated from.
    pub plan_seed: u64,
    /// Simulated-run record (identical across replays by construction —
    /// the sweep asserts it).
    pub sim: Measurement,
    /// What the injector actually did.
    pub report: FaultReport,
}

/// The chaos document written as `BENCH_chaos.json`.
pub struct ChaosDoc {
    /// Master seed every per-point plan seed derives from.
    pub seed: u64,
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Whether smoke sizes were used.
    pub quick: bool,
    /// Verified points, in workload × mechanism × fault-level order.
    pub points: Vec<ChaosPoint>,
}

/// Derive a per-point plan seed from the master seed and the point's grid
/// coordinates, so every point gets an independent (but replayable)
/// schedule.
fn plan_seed(
    seed: u64,
    workload: ChaosWorkload,
    mechanism: BarrierMechanism,
    faults: usize,
) -> u64 {
    let w = ChaosWorkload::ALL
        .iter()
        .position(|&x| x == workload)
        .expect("known workload") as u64;
    let m = BarrierMechanism::ALL
        .iter()
        .position(|&x| x == mechanism)
        .expect("known mechanism") as u64;
    Lcg::new(seed ^ (w << 48) ^ (m << 40) ^ faults as u64).next_u64()
}

/// Run the full sweep: `levels` fault counts × every [`BarrierMechanism`]
/// × both workloads, on `runner`. Each faulted point runs **twice** from
/// the same plan and the two [`Measurement`]s must match bit-for-bit;
/// each zero-fault point must match the plain (fault-free) baseline run.
/// Level 0 is always swept (prepended if absent) so the baseline
/// comparison exists for every workload × mechanism cell.
///
/// # Panics
///
/// Panics if any run fails to complete, validate, or leave its filters
/// quiescent, or if a replay diverges — each of those falsifies §3.3.3,
/// so the sweep treats it as fatal rather than reporting around it.
pub fn run_chaos(runner: &SweepRunner, quick: bool, levels: &[usize], seed: u64) -> ChaosDoc {
    let mut levels: Vec<usize> = levels.to_vec();
    if !levels.contains(&0) {
        levels.insert(0, 0);
    }
    levels.sort_unstable();
    levels.dedup();
    let grid: Vec<(ChaosWorkload, BarrierMechanism)> = ChaosWorkload::ALL
        .into_iter()
        .flat_map(|w| BarrierMechanism::ALL.into_iter().map(move |m| (w, m)))
        .collect();
    // Baselines first: they pin the fault horizon (events must land inside
    // the run, not after it) and the zero-fault reference measurement.
    let baselines: Vec<Measurement> = runner
        .run_all(&grid, |_, &(w, m)| {
            let (outcome, report) = w
                .run(quick, m, &FaultPlan::none())
                .unwrap_or_else(|e| panic!("{} {m} baseline failed: {e}", w.name()));
            assert_eq!(
                report,
                FaultReport::default(),
                "empty plan must inject nothing"
            );
            outcome.sim
        })
        .unwrap_or_else(|e| panic!("chaos baselines: {e}"));

    let cells: Vec<(ChaosWorkload, BarrierMechanism, usize, Measurement)> = grid
        .iter()
        .enumerate()
        .flat_map(|(i, &(w, m))| {
            let baseline = baselines[i];
            levels.iter().map(move |&f| (w, m, f, baseline))
        })
        .collect();
    let points = runner
        .run_all(&cells, |_, &(w, m, faults, baseline)| {
            if faults == 0 {
                return ChaosPoint {
                    workload: w.name(),
                    mechanism: m,
                    faults: 0,
                    plan_seed: plan_seed(seed, w, m, 0),
                    sim: baseline,
                    report: FaultReport::default(),
                };
            }
            let ps = plan_seed(seed, w, m, faults);
            let plan = FaultPlan::generate(ps, faults, baseline.cycles);
            let run = || {
                w.run(quick, m, &plan)
                    .unwrap_or_else(|e| panic!("{} {m} x{faults} faults failed: {e}", w.name()))
            };
            let (first, report) = run();
            let (second, report2) = run();
            assert_eq!(
                (first.sim, report),
                (second.sim, report2),
                "{} {m} x{faults}: replay from seed {ps:#x} diverged",
                w.name()
            );
            if !m.is_filter() {
                // Non-filter barriers never park, so every fault is a
                // counted no-op and the run must be bit-identical to the
                // baseline.
                assert_eq!(report.injected, 0, "{} {m}: nothing to inject", w.name());
                assert_eq!(
                    first.sim,
                    baseline,
                    "{} {m}: faults must be no-ops",
                    w.name()
                );
            }
            ChaosPoint {
                workload: w.name(),
                mechanism: m,
                faults,
                plan_seed: ps,
                sim: first.sim,
                report,
            }
        })
        .unwrap_or_else(|e| panic!("chaos sweep: {e}"));
    ChaosDoc {
        seed,
        jobs: runner.jobs(),
        quick,
        points,
    }
}

/// Serialize the document (schema `fastbar-chaos/v1`; std-only JSON).
pub fn to_json(doc: &ChaosDoc) -> String {
    let mut out = String::from("{\n  \"schema\": \"fastbar-chaos/v1\",\n");
    out.push_str(&format!("  \"seed\": \"{:#018x}\",\n", doc.seed));
    out.push_str(&format!("  \"jobs\": {},\n", doc.jobs));
    out.push_str(&format!("  \"quick\": {},\n", doc.quick));
    out.push_str("  \"points\": [\n");
    for (i, p) in doc.points.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": \"{}\", ", json_escape(p.workload)));
        out.push_str(&format!(
            "\"mechanism\": \"{}\", ",
            json_escape(&p.mechanism.to_string())
        ));
        out.push_str(&format!("\"faults\": {}, ", p.faults));
        out.push_str(&format!("\"plan_seed\": \"{:#018x}\", ", p.plan_seed));
        out.push_str(&format!("\"sim_cycles\": {}, ", p.sim.cycles));
        out.push_str(&format!("\"sim_instructions\": {}, ", p.sim.instructions));
        out.push_str(&format!(
            "\"stats_digest\": \"{:#018x}\", ",
            p.sim.stats_digest
        ));
        let r = &p.report;
        out.push_str(&format!(
            "\"injected\": {}, \"skipped\": {}, \"violations\": {}, \"resumed\": {}, ",
            r.injected, r.skipped, r.violations, r.resumed
        ));
        let e = &p.sim.episodes;
        out.push_str(&format!(
            "\"episodes\": {}, \"parks\": {}, \"releases\": {}, \"cancellations\": {}, \
             \"reparks\": {}, \"resumes_after_release\": {}",
            e.episodes, e.parks, e.releases, e.cancellations, e.reparks, e.resumes_after_release
        ));
        out.push('}');
        if i + 1 < doc.points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_sim::EpisodeStats;

    #[test]
    fn plan_seeds_are_stable_and_distinct_per_cell() {
        let a = plan_seed(1, ChaosWorkload::Viterbi, BarrierMechanism::FilterD, 4);
        assert_eq!(
            a,
            plan_seed(1, ChaosWorkload::Viterbi, BarrierMechanism::FilterD, 4)
        );
        assert_ne!(
            a,
            plan_seed(1, ChaosWorkload::Loop2, BarrierMechanism::FilterD, 4)
        );
        assert_ne!(
            a,
            plan_seed(1, ChaosWorkload::Viterbi, BarrierMechanism::FilterI, 4)
        );
        assert_ne!(
            a,
            plan_seed(2, ChaosWorkload::Viterbi, BarrierMechanism::FilterD, 4)
        );
    }

    #[test]
    fn json_document_has_schema_and_fields() {
        let doc = ChaosDoc {
            seed: 0x2a,
            jobs: 2,
            quick: true,
            points: vec![ChaosPoint {
                workload: "viterbi",
                mechanism: BarrierMechanism::FilterD,
                faults: 4,
                plan_seed: 7,
                sim: Measurement {
                    cycles: 10,
                    instructions: 20,
                    stats_digest: 9,
                    episodes: EpisodeStats::default(),
                },
                report: FaultReport {
                    injected: 3,
                    skipped: 1,
                    violations: 2,
                    resumed: 3,
                },
            }],
        };
        let j = to_json(&doc);
        assert!(j.contains("fastbar-chaos/v1"));
        assert!(j.contains("\"seed\": \"0x000000000000002a\""));
        assert!(j.contains("\"workload\": \"viterbi\""));
        assert!(j.contains("\"mechanism\": \"filter-d\""));
        assert!(j.contains("\"faults\": 4"));
        assert!(j.contains("\"injected\": 3"));
        assert!(j.contains("\"violations\": 2"));
        assert!(j.contains("\"stats_digest\": \"0x0000000000000009\""));
        assert!(j.contains("\"cancellations\": 0"));
    }
}
