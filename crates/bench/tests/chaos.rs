//! Fault-injection integration tests: the §3.3.3 recovery claims, held as
//! executable invariants.
//!
//! Mechanism families behave differently under the injector and both are
//! covered for every [`FaultKind`]:
//!
//! * **Filter barriers** (`FilterD`, `FilterI`) park arrival fills, so
//!   switch-out / delayed-resume / migration / reprogram faults find real
//!   targets. Every faulted run must finish, leave the filter tables
//!   quiescent, and satisfy `parks == releases + cancellations`.
//! * **Non-parking barriers** (`SwCentral`, `HwDedicated`) never park, so
//!   every fault is a counted no-op and the run must be bit-identical to
//!   the fault-free baseline.

use barrier_filter::BarrierMechanism;
use bench_suite::latency::build_latency_machine;
use cmp_sim::{run_with_faults, FaultEvent, FaultKind, FaultPlan, FaultReport, Machine, RunState};
use kernels::livermore::Loop2;
use kernels::viterbi::Viterbi;
use kernels::{ExecSpec, RunAttachments};

const FILTERS: [BarrierMechanism; 2] = [BarrierMechanism::FilterD, BarrierMechanism::FilterI];
const NON_PARKING: [BarrierMechanism; 2] =
    [BarrierMechanism::SwCentral, BarrierMechanism::HwDedicated];

/// The shared fixture: an 8-core barrier loop long enough for faults to
/// land mid-run.
fn machine(mechanism: BarrierMechanism) -> Machine {
    build_latency_machine(mechanism, 8, 8, 4)
}

/// Fault-free reference run of the fixture.
fn baseline(mechanism: BarrierMechanism) -> (u64, u64) {
    let mut m = machine(mechanism);
    let s = m.run().expect("baseline run");
    (s.cycles, m.stats().digest())
}

/// First pause cycle (a multiple of 25) at which at least `k` cores are
/// parked. Deterministic: the fixture machine is, so its parked sets at a
/// given cycle are too.
fn first_time_with_parked(mechanism: BarrierMechanism, k: usize) -> u64 {
    let mut m = machine(mechanism);
    let mut t = 0;
    loop {
        t += 25;
        match m.run_until(t).expect("probe run") {
            RunState::Finished(_) => panic!("{mechanism}: never saw {k} parked cores"),
            RunState::Paused => {
                if m.parked_cores().len() >= k {
                    return m.now();
                }
            }
        }
    }
}

fn plan(events: Vec<FaultEvent>) -> FaultPlan {
    let mut events = events;
    events.sort_by_key(|e| e.at);
    FaultPlan { seed: 0, events }
}

/// Run the fixture under `plan` and enforce the universal postconditions:
/// the run finishes, the filter tables are quiescent, and (no timeouts
/// configured) every park was either released or cancelled.
fn run_checked(mechanism: BarrierMechanism, plan: &FaultPlan) -> (u64, u64, FaultReport) {
    let mut m = machine(mechanism);
    let (summary, report) = run_with_faults(&mut m, plan).expect("faulted run");
    assert!(
        m.hooks_quiescent(),
        "{mechanism}: filter tables must be quiescent after the run"
    );
    if mechanism.is_filter() {
        let e = m.stats().episodes;
        assert_eq!(
            e.parks,
            e.releases + e.cancellations,
            "{mechanism}: every park must be released or cancelled"
        );
    }
    (summary.cycles, m.stats().digest(), report)
}

#[test]
fn switch_out_and_resume_round_trips_on_filter_barriers() {
    for mechanism in FILTERS {
        let start = first_time_with_parked(mechanism, 1);
        let (cycles, _) = baseline(mechanism);
        let events = (0..12)
            .map(|i| FaultEvent {
                at: start + (cycles.saturating_sub(start) * i) / 16,
                pick: 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1),
                kind: FaultKind::SwitchOut { delay: 60 + 13 * i },
            })
            .collect();
        let (_, _, report) = run_checked(mechanism, &plan(events));
        assert!(report.injected > 0, "{mechanism}: no switch-out landed");
        assert_eq!(
            report.resumed, report.injected,
            "{mechanism}: every switched-out thread resumes exactly once"
        );
        // The round trip is visible in the episode accounting too.
        let mut m = machine(mechanism);
        let first = FaultEvent {
            at: start,
            pick: 7,
            kind: FaultKind::SwitchOut { delay: 80 },
        };
        let (_, r) = run_with_faults(&mut m, &plan(vec![first])).expect("single fault");
        assert_eq!(r.injected, 1);
        let e = m.stats().episodes;
        assert_eq!(e.cancellations, 1, "{mechanism}: the park was cancelled");
        assert_eq!(
            e.reparks + e.resumes_after_release,
            1,
            "{mechanism}: the resumed thread re-issued its arrival"
        );
    }
}

#[test]
fn faults_are_counted_noops_on_non_parking_barriers() {
    for mechanism in NON_PARKING {
        let (cycles, digest) = baseline(mechanism);
        let events = (0..16)
            .map(|i| FaultEvent {
                at: cycles * i / 16,
                pick: i,
                kind: match i % 4 {
                    0 => FaultKind::SwitchOut { delay: 50 },
                    1 => FaultKind::DelayResume { extra: 50 },
                    2 => FaultKind::Migrate { delay: 50 },
                    _ => FaultKind::Reprogram,
                },
            })
            .collect();
        let (faulted_cycles, faulted_digest, report) = run_checked(mechanism, &plan(events));
        assert_eq!(
            report.injected, 0,
            "{mechanism}: nothing parks, nothing to inject"
        );
        assert_eq!(report.skipped, 16, "{mechanism}: every event is a no-op");
        assert_eq!(
            (faulted_cycles, faulted_digest),
            (cycles, digest),
            "{mechanism}: a no-op plan must leave the run bit-identical"
        );
    }
}

#[test]
fn delayed_resume_stretches_the_run_on_filter_barriers() {
    for mechanism in FILTERS {
        let start = first_time_with_parked(mechanism, 1);
        let switch_out = FaultEvent {
            at: start,
            pick: 3,
            kind: FaultKind::SwitchOut { delay: 400 },
        };
        let (cycles_plain, _, r_plain) = run_checked(mechanism, &plan(vec![switch_out]));
        assert_eq!(r_plain.injected, 1, "{mechanism}: switch-out must land");
        let delay = FaultEvent {
            at: start + 100,
            pick: 0,
            kind: FaultKind::DelayResume { extra: 5_000 },
        };
        let (cycles_delayed, _, r) = run_checked(mechanism, &plan(vec![switch_out, delay]));
        assert_eq!(
            r.injected, 2,
            "{mechanism}: the delay found the pending resume"
        );
        assert_eq!(r.resumed, 1);
        assert!(
            cycles_delayed >= cycles_plain + 4_000,
            "{mechanism}: a 5000-cycle resume delay must stretch the run \
             ({cycles_plain} -> {cycles_delayed})"
        );
    }
}

#[test]
fn migration_swaps_parked_threads_and_rearms_filters() {
    for mechanism in FILTERS {
        let start = first_time_with_parked(mechanism, 2);
        let migrate = FaultEvent {
            at: start,
            pick: 0x5bd1_e995,
            kind: FaultKind::Migrate { delay: 120 },
        };
        let (_, _, report) = run_checked(mechanism, &plan(vec![migrate]));
        assert_eq!(report.injected, 1, "{mechanism}: migration must land");
        assert_eq!(
            report.resumed, 2,
            "{mechanism}: both migrated threads resume"
        );
    }
}

#[test]
fn reprogram_probe_surfaces_recoverable_violations_on_busy_filters() {
    for mechanism in FILTERS {
        let start = first_time_with_parked(mechanism, 1);
        // One probe per bank: hooked banks inject (busy ones violate),
        // hookless banks are counted skips — never a panic either way.
        let banks = machine(mechanism).config().l2_banks as u64;
        let events = (0..banks)
            .map(|b| FaultEvent {
                at: start,
                pick: b,
                kind: FaultKind::Reprogram,
            })
            .collect();
        let (_, _, report) = run_checked(mechanism, &plan(events));
        assert!(
            report.violations >= 1,
            "{mechanism}: reprogramming a filter holding parked fills must \
             surface a recoverable violation"
        );
        assert_eq!(report.injected + report.skipped, banks as usize);
    }
}

#[test]
fn zero_fault_plans_are_digest_invariant() {
    for mechanism in FILTERS.into_iter().chain(NON_PARKING) {
        let (cycles, digest) = baseline(mechanism);
        let mut m = machine(mechanism);
        let (summary, report) = run_with_faults(&mut m, &FaultPlan::none()).expect("run");
        assert_eq!(report, FaultReport::default());
        assert_eq!(
            (summary.cycles, m.stats().digest()),
            (cycles, digest),
            "{mechanism}: an empty plan must be exactly Machine::run"
        );
    }
    // Kernel level: the faulted entry point with an empty plan reproduces
    // the plain API bit-for-bit.
    let v = Viterbi::new(24);
    let plain = v
        .run_parallel(4, BarrierMechanism::FilterD)
        .expect("plain viterbi");
    let exec = ExecSpec::parallel(4, BarrierMechanism::FilterD);
    let out = v
        .run_with(&exec, RunAttachments::with_plan(&FaultPlan::none()))
        .expect("zero-fault viterbi");
    assert_eq!(out.faults, FaultReport::default());
    assert_eq!(out.outcome.sim, plain.sim);
}

#[test]
fn seeded_chaos_replays_bit_identically() {
    for mechanism in FILTERS {
        let (cycles, _) = baseline(mechanism);
        let chaos = FaultPlan::generate(0xc0ff_ee00 ^ cycles, 24, cycles);
        let (c1, d1, r1) = run_checked(mechanism, &chaos);
        let (c2, d2, r2) = run_checked(mechanism, &chaos);
        assert_eq!((c1, d1, r1), (c2, d2, r2), "{mechanism}: replay diverged");
    }
}

#[test]
fn faulted_kernels_still_validate_viterbi() {
    let v = Viterbi::new(24);
    for mechanism in FILTERS {
        let probe = v
            .run_parallel(4, mechanism)
            .expect("probe run for the horizon");
        let plan = FaultPlan::generate(0x1e7b, 16, probe.sim.cycles);
        let out = v
            .run_with(
                &ExecSpec::parallel(4, mechanism),
                RunAttachments::with_plan(&plan),
            )
            .expect("faulted viterbi must still validate");
        assert!(out.outcome.sim.cycles > 0);
        assert_eq!(out.faults.injected + out.faults.skipped, 16);
    }
}

#[test]
fn faulted_kernels_still_validate_loop2() {
    let k = Loop2::new(64);
    for mechanism in FILTERS {
        let probe = k
            .run_parallel(4, mechanism)
            .expect("probe run for the horizon");
        let plan = FaultPlan::generate(0x10072, 16, probe.sim.cycles);
        let out = k
            .run_with(
                &ExecSpec::parallel(4, mechanism),
                RunAttachments::with_plan(&plan),
            )
            .expect("faulted loop2 must still validate");
        assert!(out.outcome.sim.cycles > 0);
        assert_eq!(out.faults.injected + out.faults.skipped, 16);
    }
}

/// The `RunSummary::cycles` monotonicity contract under faults: the
/// reported cycle count must equal `Machine::now()` at the moment the run
/// finishes and dominate every core's halt cycle. Fault-driven runs are
/// where the two can drift — switch-outs and delayed resumes push `now`
/// through quiescent-advance pauses and trailing hook timers that no
/// core's halt cycle reflects — so a summary that re-derived `cycles`
/// from halt cycles alone could roll time backwards. Non-vacuous: the
/// plan must actually round-trip switched-out threads.
#[test]
fn faulted_summaries_stay_monotone_with_now() {
    for mechanism in FILTERS {
        let start = first_time_with_parked(mechanism, 1);
        let (cycles, _) = baseline(mechanism);
        let events = (0..12)
            .map(|i| FaultEvent {
                at: start + (cycles.saturating_sub(start) * i) / 16,
                pick: 0x2545_f491_4f6c_dd1du64.wrapping_mul(i + 1),
                kind: FaultKind::SwitchOut { delay: 90 + 17 * i },
            })
            .collect();
        let mut m = machine(mechanism);
        let (summary, report) = run_with_faults(&mut m, &plan(events)).expect("faulted run");
        assert!(
            report.resumed > 0,
            "{mechanism}: no switched-out thread resumed — vacuous"
        );
        assert_eq!(
            summary.cycles,
            m.now(),
            "{mechanism}: summary cycles must match the machine clock"
        );
        for (core, stats) in m.stats().cores.iter().enumerate() {
            let halt = stats.halt_cycle.expect("every core halted");
            assert!(
                summary.cycles >= halt,
                "{mechanism}: summary ({}) behind core {core}'s halt ({halt})",
                summary.cycles
            );
        }
    }
}

/// The strongest form of the monotonicity contract: a quiescent-advance
/// pause jumps `Machine::now()` straight to the requested pause horizon
/// (so an OS resume scheduled for cycle T lands at cycle T), and the
/// final summary must carry that overshoot forward rather than report
/// the (much earlier) cycle the machine actually went idle at.
#[test]
fn quiescent_advance_overshoot_never_rolls_the_summary_back() {
    let mechanism = BarrierMechanism::FilterD;
    let start = first_time_with_parked(mechanism, 1);
    let mut m = machine(mechanism);
    assert!(matches!(m.run_until(start), Ok(RunState::Paused)));
    let victim = m.parked_cores()[0];
    assert!(m.context_switch_out(victim));
    // With the victim switched out, every other thread parks behind the
    // barrier and the event queue drains; the machine is then quiescent
    // (only the OS can make progress) and run_until jumps the clock to
    // the pause horizon.
    let horizon = m.now() + 100_000;
    match m.run_until(horizon).expect("quiescent pause") {
        RunState::Paused => {}
        RunState::Finished(_) => panic!("cannot finish with a switched-out thread"),
    }
    assert_eq!(m.now(), horizon, "quiescent-advance must reach the horizon");
    m.resume_thread(victim).expect("resume the victim");
    let summary = match m.run_until(u64::MAX).expect("finish the run") {
        RunState::Finished(s) => s,
        RunState::Paused => panic!("resumed machine must finish"),
    };
    assert_eq!(summary.cycles, m.now());
    assert!(
        summary.cycles >= horizon,
        "summary ({}) rolled back past the quiescent-advance horizon ({horizon})",
        summary.cycles
    );
}
