//! End-to-end serve protocol: a daemon on a Unix socket, the standard
//! {fig4 × 7 mechanisms + Viterbi} batch streamed back in item order
//! with the committed digests intact, a resubmission served entirely
//! from cache with byte-identical results, and a clean shutdown. A
//! second test smoke-checks the TCP transport on an ephemeral port.

use std::path::PathBuf;

use bench_suite::serve::{
    check_suite, suite_specs, Client, Endpoint, Listener, ResultCache, Server,
};
use bench_suite::throughput::{
    fold_fig4_digests, EXPECTED_FIG4_16CORE_DIGEST, EXPECTED_VITERBI_K5_16T_DIGEST,
};
use bench_suite::SweepRunner;
use kernels::{RunSpec, WorkloadSpec};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fastbar-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn full_suite_over_unix_socket_pins_digests_and_replays_from_cache() {
    let dir = tmp("unix");
    let sock = dir.join("serve.sock");
    let endpoint = Endpoint::Unix(sock.clone());
    let listener = Listener::bind(&endpoint).expect("bind unix socket");
    let server = Server::new(
        ResultCache::new(dir.join("cache")),
        SweepRunner::available(),
    );
    let daemon = std::thread::spawn(move || listener.serve(&server));

    let mut client = Client::connect(&endpoint).expect("connect");
    let jobs = client.ping().expect("ping");
    assert!(jobs >= 1);

    // The full-size tracked suite: every mechanism's fig4 point at 16
    // cores (64 × 64 barriers) plus Viterbi (K=5, 96 bits, 16 threads).
    let specs = suite_specs(false);
    let first = client.batch(&specs).expect("live batch");
    assert_eq!(first.len(), specs.len());
    for (i, item) in first.iter().enumerate() {
        assert_eq!(item.index, i, "results stream in item order");
        assert!(!item.cached, "item {i}: cold cache must run live");
    }

    // The committed digests hold through the wire: the seven fig4 items
    // fold to the pinned workload digest, the Viterbi item matches its
    // own pin. check_suite() is the same assertion the submit --check
    // CLI path runs; the explicit folds below keep the constants visible.
    check_suite(&first).expect("committed digests over the wire");
    let fig4 = fold_fig4_digests(first[..7].iter().map(|i| i.stats_digest()));
    assert_eq!(fig4, EXPECTED_FIG4_16CORE_DIGEST);
    assert_eq!(first[7].stats_digest(), EXPECTED_VITERBI_K5_16T_DIGEST);

    // Resubmission: every item answered from cache, byte-identical.
    let second = client.batch(&specs).expect("cached batch");
    assert_eq!(second.len(), first.len());
    for (a, b) in first.iter().zip(&second) {
        assert!(
            b.cached,
            "item {}: resubmission must hit the cache",
            b.index
        );
        assert_eq!(a.body, b.body, "item {}: cached bytes differ", b.index);
        assert_eq!(a.body_fnv, b.body_fnv);
    }
    check_suite(&second).expect("cached digests identical");

    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon thread").expect("serve loop");
    assert!(!sock.exists(), "socket file unlinked on clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_transport_round_trips_on_an_ephemeral_port() {
    let dir = tmp("tcp");
    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind tcp");
    let endpoint = listener.endpoint().expect("resolved port");
    let server = Server::new(ResultCache::new(dir.join("cache")), SweepRunner::new(2));
    let daemon = std::thread::spawn(move || listener.serve(&server));

    let mut client = Client::connect(&endpoint).expect("connect");
    client.ping().expect("ping");
    let spec = RunSpec::sequential(WorkloadSpec::Loop1 { n: 64 });
    let live = client.run_spec(&spec).expect("live run");
    assert!(!live.cached);

    // A second connection sees the same daemon (and its warm cache).
    drop(client);
    let mut client = Client::connect(&endpoint).expect("reconnect");
    let hit = client.run_spec(&spec).expect("cached run");
    assert!(hit.cached, "second submission hits the cache");
    assert_eq!(
        hit.body, live.body,
        "cached bytes identical across connections"
    );

    client.shutdown().expect("clean shutdown");
    daemon.join().expect("daemon thread").expect("serve loop");
    let _ = std::fs::remove_dir_all(&dir);
}
