//! The on-disk result cache across the spec grid: a hit must return the
//! *exact bytes* a live replay of the same spec would produce — flat,
//! faulted and clustered points alike — and a corrupted entry must be
//! detected by its digest and silently recomputed.

use std::path::PathBuf;

use barrier_filter::BarrierMechanism;
use bench_suite::cli::DEFAULT_SEED;
use bench_suite::serve::{result_json, run_cached, ResultCache};
use cmp_sim::Json;
use kernels::{run, RunSpec, WorkloadSpec};

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fastbar-serve-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Three grid points that exercise the spec dimensions the cache key
/// must cover: a flat fig4 smoke point, a fault-injected Viterbi run,
/// and a 256-core clustered point (hierarchical mechanism — flat
/// filters do not fit a 16-cluster topology).
fn grid() -> Vec<RunSpec> {
    vec![
        RunSpec::fig4(BarrierMechanism::FilterD, 8, 8, 4),
        RunSpec::parallel(
            WorkloadSpec::Viterbi {
                constraint: 5,
                data_bits: 24,
                noise_per_mille: 10,
            },
            4,
            BarrierMechanism::FilterD,
        )
        .with_faults(DEFAULT_SEED, 3, 20_000),
        RunSpec::fig4(BarrierMechanism::FilterDHier, 256, 4, 2).clustered(16),
    ]
}

#[test]
fn hits_are_bit_identical_to_live_replay_across_the_grid() {
    let dir = tmp("grid");
    let cache = ResultCache::new(&dir);
    for spec in grid() {
        let digest = spec.digest();
        let (first, cached) =
            run_cached(&cache, &spec).unwrap_or_else(|e| panic!("{}: {e}", spec.canonical_json()));
        assert!(!cached, "{digest:#018x}: first run must miss");
        // An independent live replay through the plain run() entry point
        // serializes to the same bytes the cache now holds.
        let replay = result_json(&spec, &run(&spec).expect("live replay"));
        assert_eq!(first, replay, "{digest:#018x}: cached bytes != live replay");
        let (hit, cached) = run_cached(&cache, &spec).expect("cache hit");
        assert!(cached, "{digest:#018x}: second run must hit");
        assert_eq!(hit, first, "{digest:#018x}: hit bytes != first-run bytes");
        // The entry lives at the content-addressed path and carries the
        // spec for provenance.
        assert!(cache.entry_path(digest).is_file());
        let body = Json::parse(&hit).expect("result body parses");
        assert_eq!(
            body.get("spec").map(Json::dump).as_deref(),
            Some(spec.canonical_json().as_str())
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faulted_point_records_injections_in_the_body() {
    let dir = tmp("faulted");
    let cache = ResultCache::new(&dir);
    let spec = grid().remove(1);
    let (body, _) = run_cached(&cache, &spec).expect("faulted run");
    let j = Json::parse(&body).expect("result body parses");
    let faults = j.get("faults").expect("faults block");
    let injected = faults
        .get("injected")
        .and_then(Json::as_u64)
        .expect("count");
    let skipped = faults.get("skipped").and_then(Json::as_u64).expect("count");
    assert_eq!(injected + skipped, 3, "every scheduled event accounted for");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_are_detected_and_recomputed() {
    let dir = tmp("corrupt");
    let cache = ResultCache::new(&dir);
    let spec = RunSpec::fig4(BarrierMechanism::FilterD, 8, 8, 4);
    let (good, _) = run_cached(&cache, &spec).expect("seed the cache");
    let path = cache.entry_path(spec.digest());

    // Flip one digit inside the stored body: the header's body_fnv no
    // longer matches, so the entry must read as a miss and be repaired.
    let text = std::fs::read_to_string(&path).expect("read entry");
    let (header, body) = text.split_once('\n').expect("two-line entry");
    let tampered = format!("{header}\n{}", body.replacen('1', "2", 1));
    assert_ne!(tampered, text, "tamper actually changed the entry");
    std::fs::write(&path, tampered).expect("tamper entry");
    assert!(
        cache.load(spec.digest()).is_none(),
        "tampered body is a miss"
    );
    let (recomputed, cached) = run_cached(&cache, &spec).expect("recompute");
    assert!(!cached, "tampered entry must recompute, not hit");
    assert_eq!(recomputed, good, "recomputed bytes match the original");
    assert_eq!(
        cache.load(spec.digest()).as_deref(),
        Some(good.as_str()),
        "the entry was repaired on disk"
    );

    // A header whose spec_fnv names a different spec is also a miss —
    // an entry can never answer for a key it was not stored under.
    let text = std::fs::read_to_string(&path).expect("read repaired entry");
    let wrong_key = text.replacen(
        &format!("{:#018x}", spec.digest()),
        &format!("{:#018x}", spec.digest() ^ 1),
        1,
    );
    std::fs::write(&path, wrong_key).expect("rekey entry");
    assert!(
        cache.load(spec.digest()).is_none(),
        "rekeyed header is a miss"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
