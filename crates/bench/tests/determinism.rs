//! Determinism regression tests for the simulation engine.
//!
//! The engine's correctness contract is bit-level reproducibility: the same
//! `SimConfig` and program must produce the same cycle counts, instruction
//! counts and full `MachineStats` on every run, in every process. The
//! hot-path machinery this guards — the calendar event queue's
//! same-cycle FIFO order and the deterministic `FxHashMap` line tables —
//! has no randomized fallback, so any divergence here is a real engine bug,
//! not flakiness.

use analyze::RaceDetectorSink;
use barrier_filter::BarrierMechanism;
use bench_suite::latency::{barrier_latency, fig4_machine, fig4_machine_with, run_latency};
use bench_suite::scale::scale_clusters;
use bench_suite::throughput::{
    fig4_sample_with, EXPECTED_FIG4_16CORE_DIGEST, EXPECTED_VITERBI_K5_16T_DIGEST,
};
use bench_suite::{build_latency_machine, SweepRunner};
use cmp_sim::{Measurement, TraceConfig, TraceSink};
use kernels::viterbi::Viterbi;
use kernels::{EngineKnobs, ExecSpec, RunAttachments, RunSpec};

/// Run the Figure 4 micro-benchmark twice from scratch and require the
/// whole observable outcome — `RunSummary` and the full `MachineStats`
/// snapshot (caches, directory, buses, per-core counters) — to match.
fn assert_repeatable(mechanism: BarrierMechanism) {
    let (cores, inner, outer) = (8, 8, 2);
    let mut a = build_latency_machine(mechanism, cores, inner, outer);
    let mut b = build_latency_machine(mechanism, cores, inner, outer);
    let sa = a.run().expect("first run");
    let sb = b.run().expect("second run");
    assert_eq!(sa, sb, "{mechanism}: RunSummary must be identical");
    assert!(sa.cycles > 0 && sa.instructions > 0);
    assert_eq!(
        a.stats(),
        b.stats(),
        "{mechanism}: full MachineStats must be identical"
    );
    assert_eq!(a.stats().digest(), b.stats().digest());
}

#[test]
fn software_central_barrier_is_deterministic() {
    assert_repeatable(BarrierMechanism::SwCentral);
}

#[test]
fn software_tree_barrier_is_deterministic() {
    assert_repeatable(BarrierMechanism::SwTree);
}

#[test]
fn filter_d_barrier_is_deterministic() {
    assert_repeatable(BarrierMechanism::FilterD);
}

#[test]
fn filter_i_barrier_is_deterministic() {
    assert_repeatable(BarrierMechanism::FilterI);
}

/// The topology layer's degenerate case: `fig_scale` reaches the 16-core
/// machine through a [`RunSpec`] clustered with `scale_clusters(16)` (the
/// spec shape every clustered point uses), while the historical figures
/// go through `barrier_latency`'s flat sugar. The two must be the same
/// machine bit-for-bit — same `Measurement` (cycles, instructions, stats
/// digest) — or the 1-cluster topology is not actually degenerate.
#[test]
fn the_scale_path_reproduces_the_flat_machine_bit_identically() {
    let (inner, outer) = (8, 2);
    for mechanism in [
        BarrierMechanism::SwCentral,
        BarrierMechanism::FilterD,
        BarrierMechanism::SwHier,
        BarrierMechanism::FilterDHier,
    ] {
        let flat = barrier_latency(mechanism, 16, inner, outer).expect("flat path");
        let spec = RunSpec::fig4(mechanism, 16, inner, outer).clustered(scale_clusters(16));
        let scaled = run_latency(&spec).expect("scale path");
        assert_eq!(
            flat.sim, scaled.sim,
            "{mechanism}: the 1-cluster topology must be degenerate"
        );
        assert_eq!(flat.cycles_per_barrier, scaled.cycles_per_barrier);
        assert!(flat.sim.cycles > 0);
    }
}

/// Run-twice determinism beyond the old 64-core ceiling: a 256-core
/// clustered machine (16 clusters x 16 cores) under both tree-combining
/// variants must reproduce its whole `Measurement` from scratch.
#[test]
fn clustered_256_core_tree_barriers_are_deterministic() {
    for mechanism in [BarrierMechanism::SwHier, BarrierMechanism::FilterDHier] {
        let spec = RunSpec::fig4(mechanism, 256, 4, 2).clustered(scale_clusters(256));
        let run = || run_latency(&spec).expect("256-core run");
        let (a, b) = (run(), run());
        assert_eq!(
            a.sim, b.sim,
            "{mechanism}: 256-core measurement must be reproducible"
        );
        assert_eq!(a.cycles_per_barrier, b.cycles_per_barrier);
        assert_eq!(a.cores, 256);
        assert!(a.sim.cycles > 0);
    }
}

#[test]
fn viterbi_kernel_is_deterministic_end_to_end() {
    // A data-bearing kernel (not just the barrier loop): coherence traffic,
    // store buffers and parked fills all in play.
    let run = || {
        Viterbi::new(32)
            .run_parallel(4, BarrierMechanism::FilterD)
            .expect("viterbi run")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.sim, b.sim);
    assert!(a.sim.cycles > 0);
    assert!(
        a.sim.episodes.episodes > 0,
        "FilterD runs have barrier episodes"
    );
}

/// The sink-invariance contract: enabling ANY trace sink must leave
/// `MachineStats::digest()` and cycle counts bit-identical to the
/// untraced run. Sinks are observers; if one ever acquires a simulated
/// resource or perturbs event order, this fails.
#[test]
fn trace_sinks_never_change_simulated_behaviour() {
    let (cores, inner, outer) = (8, 8, 2);
    let tmp = std::env::temp_dir().join("fastbar_determinism_sink.trace.json");
    let chrome = TraceConfig::ChromeJson {
        path: tmp.to_str().expect("utf-8 temp path").to_string(),
    };
    for mechanism in [
        BarrierMechanism::FilterD,
        BarrierMechanism::SwCentral,
        BarrierMechanism::HwDedicated,
    ] {
        let mut base = build_latency_machine(mechanism, cores, inner, outer);
        let sum_base = base.run().expect("untraced run");
        let stats_base = base.stats();
        for trace in [TraceConfig::ring(), TraceConfig::Metrics, chrome.clone()] {
            let label = format!("{mechanism} with {trace:?}");
            let spec = RunSpec::fig4(mechanism, cores, inner, outer);
            let mut m = fig4_machine_with(&spec, &mut RunAttachments::traced(trace))
                .expect("traced machine");
            let sum = m.run().expect("traced run");
            assert_eq!(sum, sum_base, "{label}: RunSummary diverged");
            let stats = m.stats();
            assert_eq!(
                stats.digest(),
                stats_base.digest(),
                "{label}: stats digest diverged"
            );
            assert_eq!(stats, stats_base, "{label}: full MachineStats diverged");
        }
    }
    std::fs::remove_file(&tmp).ok();
}

/// The strongest form of the observer contract: attaching the
/// happens-before race detector to the two committed throughput
/// workloads must reproduce their *pinned* digests bit-for-bit — not
/// merely match an unobserved re-run, but land on the exact constants
/// every past trajectory committed to. A detector that acquires a
/// simulated resource, reorders an event, or even perturbs trace
/// emission timing fails here. And the observation is not vacuous: the
/// detector must actually have processed events and found both
/// workloads race-free.
#[test]
fn race_detector_leaves_pinned_digests_bit_identical() {
    // fig4_16core: all seven mechanisms at 16 cores, 64 × 64 barriers,
    // one detector per mechanism run.
    let mut handles = Vec::new();
    let fig4 = fig4_sample_with(16, 64, 64, EngineKnobs::default(), |bar| {
        let sink = RaceDetectorSink::new([bar.protocol()]);
        handles.push(sink.handle());
        Some(Box::new(sink) as Box<dyn TraceSink>)
    });
    assert_eq!(
        fig4.sim.stats_digest, EXPECTED_FIG4_16CORE_DIGEST,
        "fig4_16core digest moved under observation: {:#018x} != committed {:#018x}",
        fig4.sim.stats_digest, EXPECTED_FIG4_16CORE_DIGEST
    );
    assert_eq!(handles.len(), BarrierMechanism::ALL.len());
    let mut observed_traffic = 0;
    for handle in &handles {
        let report = handle.report();
        assert!(!report.racy(), "barrier loop raced: {:?}", report.races);
        // The dedicated-network loop legitimately touches no memory at
        // all; the software and filter loops must show sync traffic.
        observed_traffic += report.sync_accesses + report.writes_checked;
    }
    assert!(observed_traffic > 0, "no detector saw any event — vacuous");

    // viterbi_k5_16t: the committed kernel workload (K=5, 96 data bits,
    // 16 threads, FilterD), observed end to end.
    let mut handle = None;
    let outcome = Viterbi::new(96)
        .run_with(
            &ExecSpec::parallel(16, BarrierMechanism::FilterD),
            RunAttachments::observed(|bar| {
                let sink = RaceDetectorSink::new([bar.protocol()]);
                handle = Some(sink.handle());
                Some(Box::new(sink))
            }),
        )
        .expect("observed viterbi workload")
        .outcome;
    assert_eq!(
        outcome.sim.stats_digest, EXPECTED_VITERBI_K5_16T_DIGEST,
        "viterbi_k5_16t digest moved under observation: {:#018x} != committed {:#018x}",
        outcome.sim.stats_digest, EXPECTED_VITERBI_K5_16T_DIGEST
    );
    let report = handle.expect("observe hook ran").report();
    assert!(!report.racy(), "viterbi raced: {:?}", report.races);
    assert!(report.reads_checked > 0 && report.writes_checked > 0);
}

/// Per-episode accounting on a FilterD barrier loop at N threads: each of
/// the `inner * outer` barriers runs exactly one episode, and every
/// thread's arrival fill is either parked (it got there early) or serviced
/// directly (it was the episode's own releaser — its dcbi opened the
/// barrier before its read reached the hook). So across the run
/// `parks + serviced == N * episodes` exactly, and every parked fill is
/// released with data (`releases == parks`). Note serviced is *at least*
/// one per episode, not exactly one: when release fan-out overlaps the
/// next barrier's arrivals, a fast re-arriver can also be serviced
/// directly rather than parked.
#[test]
fn filter_d_episode_accounting_is_exact() {
    let (cores, inner, outer) = (8u64, 8u64, 2u64);
    let mut m = build_latency_machine(BarrierMechanism::FilterD, cores as usize, inner, outer);
    m.run().expect("FilterD loop");
    let e = m.stats().episodes;
    let episodes = inner * outer;
    assert_eq!(e.episodes, episodes, "one episode per barrier");
    assert_eq!(
        e.parks + e.serviced,
        cores * episodes,
        "every thread's arrival fill is either parked or serviced"
    );
    assert_eq!(e.releases, e.parks, "every parked fill is released");
    assert_eq!(e.errors, 0, "no timeouts in a clean run");
    assert!(
        e.serviced >= episodes,
        "at least the releasing arriver of each episode is serviced directly \
         ({} serviced < {episodes} episodes)",
        e.serviced
    );
    assert!(e.arrival_spread_total > 0, "arrivals are not simultaneous");
    assert!(e.release_fanout_total > 0, "release fan-out takes cycles");
    // The digest must NOT cover episode stats (historical digests predate
    // them); fills_parked, which it does cover, must agree with the
    // episode layer.
    assert_eq!(m.stats().fills_parked(), e.parks);
}

/// The host-parallelism contract: running the Figure 4 grid on a
/// `SweepRunner` with any worker count yields the same results, in the
/// same order, as the serial sweep — bit-identical `RunSummary`, full
/// `MachineStats`, and digests per grid point. The sweep points share no
/// simulated state, so the only way this can fail is a runner bug
/// (result-slot mixup, lost job) or a hidden global in the engine.
#[test]
fn parallel_sweep_matches_serial_sweep() {
    let (inner, outer) = (8u64, 2);
    let grid: Vec<(BarrierMechanism, usize)> = BarrierMechanism::ALL
        .into_iter()
        .flat_map(|m| [4usize, 8].into_iter().map(move |c| (m, c)))
        .collect();
    let sweep = |jobs: usize| {
        SweepRunner::new(jobs)
            .run_all(&grid, |_, &(mechanism, cores)| {
                let mut m = build_latency_machine(mechanism, cores, inner, outer);
                let summary = m.run().expect("grid point");
                (summary, m.stats().clone())
            })
            .expect("no panics in the grid")
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(serial.len(), grid.len());
    for (i, ((ser_sum, ser_stats), (par_sum, par_stats))) in
        serial.iter().zip(&parallel).enumerate()
    {
        let (mechanism, cores) = grid[i];
        let label = format!("{mechanism} @ {cores} cores (grid slot {i})");
        assert_eq!(ser_sum, par_sum, "{label}: RunSummary diverged");
        assert_eq!(ser_stats, par_stats, "{label}: full MachineStats diverged");
        assert_eq!(
            ser_stats.digest(),
            par_stats.digest(),
            "{label}: digest diverged"
        );
    }
}

/// The engine fast-path contract, as a full matrix: the core-step burst
/// (consuming a core's own ready events in place while every queued event
/// is strictly later), the decoded-superblock cache (executing
/// pre-decoded instruction runs without touching `Program::fetch`), the
/// sharded per-core event lanes, and the memory-op-fused decoded executor
/// are execution shortcuts, not model changes. Every combination of
/// `burst_budget ∈ {0, 1, 64}` × `decode_cache` × `event_shards` ×
/// `fused_memory` must yield a bit-identical `RunSummary`, full
/// `MachineStats`, and digest for every barrier mechanism. The matrix is
/// held non-vacuous through the engine's own host-side counters: budgets
/// 0 and 1 must never burst (a burst needs at least two steps), budget 64
/// must; the decode cache must hit when enabled and stay silent when
/// disabled; a sharded run must push lane events while a calendar run
/// reports all-zero queue stats; and fused memory must retire fused
/// accesses exactly when it and the decode cache are both on — for every
/// mechanism whose barrier loop touches data memory at all (filter-i
/// stores its arrival flag then sleeps on an interrupt, so its loop can
/// legitimately retire zero fused *loads*), with an aggregate check that
/// fused loads and line-memo hits actually happened somewhere in the
/// matrix.
#[test]
fn engine_fast_paths_never_change_simulated_behaviour() {
    let (cores, inner, outer) = (8, 8, 2);
    let budgets = [0u32, 1, 64];
    let mut fused_loads_anywhere = 0u64;
    let mut fused_memo_hits_anywhere = 0u64;
    for mechanism in BarrierMechanism::ALL {
        let run = |knobs: EngineKnobs| {
            let spec = RunSpec::fig4(mechanism, cores, inner, outer).with_knobs(knobs);
            let mut m = fig4_machine(&spec).expect("fig4 machine");
            let summary = m.run().expect("barrier loop");
            (
                summary,
                m.stats().clone(),
                m.burst_retired(),
                m.decode_stats(),
                m.queue_stats(),
                m.fused_stats(),
            )
        };
        let (ref_sum, ref_stats, ..) = run(EngineKnobs {
            burst_budget: Some(0),
            decode_cache: Some(false),
            event_shards: Some(false),
            fused_memory: Some(false),
        });
        let ref_digest = ref_stats.digest();
        for budget in budgets {
            for decode in [false, true] {
                for shards in [false, true] {
                    for fused in [false, true] {
                        let label = format!(
                            "{mechanism} budget={budget} decode={decode} \
                             shards={shards} fused={fused}"
                        );
                        let (sum, stats, bursts, dstats, qstats, fstats) = run(EngineKnobs {
                            burst_budget: Some(budget),
                            decode_cache: Some(decode),
                            event_shards: Some(shards),
                            fused_memory: Some(fused),
                        });
                        assert_eq!(sum, ref_sum, "{label}: RunSummary diverged");
                        assert_eq!(stats, ref_stats, "{label}: full MachineStats diverged");
                        assert_eq!(stats.digest(), ref_digest, "{label}: digest diverged");
                        if budget < 2 {
                            assert_eq!(bursts, 0, "{label}: a burst needs at least two steps");
                        } else {
                            assert!(bursts > 0, "{label}: burst path never engaged — vacuous");
                        }
                        if decode {
                            assert!(dstats.hits > 0, "{label}: decode cache never hit — vacuous");
                            assert!(dstats.builds > 0, "{label}: decode cache built nothing");
                        } else {
                            assert_eq!(
                                dstats,
                                Default::default(),
                                "{label}: disabled decode cache must stay silent"
                            );
                        }
                        if shards {
                            assert!(
                                qstats.core_events > 0,
                                "{label}: sharded queue saw no lane events — vacuous"
                            );
                        } else {
                            assert_eq!(
                                qstats,
                                Default::default(),
                                "{label}: calendar queue must report zero lane stats"
                            );
                        }
                        if decode && fused {
                            let l1d_traffic: u64 =
                                ref_stats.l1d.iter().map(|c| c.hits + c.misses).sum();
                            if l1d_traffic > 0 {
                                assert!(
                                    fstats.loads + fstats.stores > 0,
                                    "{label}: loop touches data memory but the fused \
                                     executor retired nothing — vacuous"
                                );
                            }
                            fused_loads_anywhere += fstats.loads;
                            fused_memo_hits_anywhere += fstats.memo_hits;
                        } else {
                            assert_eq!(
                                fstats,
                                Default::default(),
                                "{label}: fused-memory counters must stay silent"
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(
        fused_loads_anywhere > 0,
        "no mechanism retired a fused load — the fused path is vacuous"
    );
    assert!(
        fused_memo_hits_anywhere > 0,
        "no mechanism hit the fused line memo — the memo path is vacuous"
    );
}

/// The knob matrix beyond the flat topology: one 256-core clustered point
/// (16 clusters × 16 cores, tree-combining software barrier) must produce
/// the identical `Measurement` — digest included — on the calendar queue
/// and on the sharded lanes, with and without the fused executor. This is
/// the scale regime the sharded queue was designed for, so the
/// equivalence is asserted where the lane count is largest, and held
/// non-vacuous through the same counters as the flat matrix.
#[test]
fn clustered_256_core_knob_matrix_is_digest_invariant() {
    let run = |shards: bool, fused: bool| {
        let spec = RunSpec::fig4(BarrierMechanism::SwHier, 256, 4, 2)
            .clustered(scale_clusters(256))
            .with_knobs(EngineKnobs {
                event_shards: Some(shards),
                fused_memory: Some(fused),
                ..EngineKnobs::default()
            });
        let mut m = fig4_machine(&spec).expect("256-core clustered machine");
        let summary = m.run().expect("256-core clustered run");
        (
            Measurement::new(&summary, &m.stats()),
            m.queue_stats(),
            m.fused_stats(),
        )
    };
    let (reference, q0, _) = run(false, false);
    assert_eq!(q0, Default::default(), "calendar queue stats must be zero");
    for (shards, fused) in [(false, true), (true, false), (true, true)] {
        let label = format!("256-core shards={shards} fused={fused}");
        let (m, q, f) = run(shards, fused);
        assert_eq!(m, reference, "{label}: Measurement diverged");
        if shards {
            assert!(q.core_events > 0, "{label}: no lane events — vacuous");
            assert!(q.head_rescans > 0, "{label}: no cohort rebuilds — vacuous");
        }
        if fused {
            assert!(f.loads > 0, "{label}: no fused loads — vacuous");
        }
    }
}

/// The decode cache must reproduce the *pinned* digests of both committed
/// throughput workloads with the cache disabled — not merely match a
/// same-process re-run. The committed constants were minted by engine
/// trajectories without the decoded-superblock layer, so hitting them
/// from both sides of the switch proves the cache is invisible to the
/// simulated machine on the real workloads, at full 16-core scale.
/// Non-vacuousness is pinned through the host-side counters on both
/// sides: off-runs must report zero decode activity, on-runs must hit.
#[test]
fn decode_cache_reproduces_pinned_digests_on_and_off() {
    for decode in [false, true] {
        let knobs = EngineKnobs {
            decode_cache: Some(decode),
            ..EngineKnobs::default()
        };
        let fig4 = fig4_sample_with(16, 64, 64, knobs, |_| None);
        assert_eq!(
            fig4.sim.stats_digest, EXPECTED_FIG4_16CORE_DIGEST,
            "fig4_16core digest moved with decode_cache={decode}: {:#018x} != committed {:#018x}",
            fig4.sim.stats_digest, EXPECTED_FIG4_16CORE_DIGEST
        );
        let mut exec = ExecSpec::parallel(16, BarrierMechanism::FilterD);
        exec.knobs = knobs;
        let outcome = Viterbi::new(96)
            .run_with(&exec, RunAttachments::default())
            .expect("viterbi workload")
            .outcome;
        assert_eq!(
            outcome.sim.stats_digest, EXPECTED_VITERBI_K5_16T_DIGEST,
            "viterbi_k5_16t digest moved with decode_cache={decode}: {:#018x} != committed {:#018x}",
            outcome.sim.stats_digest, EXPECTED_VITERBI_K5_16T_DIGEST
        );
        if decode {
            assert!(
                fig4.decode.hits > 0,
                "fig4 decode cache never hit — vacuous"
            );
            assert!(outcome.decode.hits > 0, "viterbi decode cache never hit");
        } else {
            assert_eq!(fig4.decode, Default::default());
            assert_eq!(outcome.decode, Default::default());
        }
    }
}
