//! Determinism regression tests for the simulation engine.
//!
//! The engine's correctness contract is bit-level reproducibility: the same
//! `SimConfig` and program must produce the same cycle counts, instruction
//! counts and full `MachineStats` on every run, in every process. The
//! hot-path machinery this guards — the calendar event queue's
//! same-cycle FIFO order and the deterministic `FxHashMap` line tables —
//! has no randomized fallback, so any divergence here is a real engine bug,
//! not flakiness.

use barrier_filter::BarrierMechanism;
use bench_suite::build_latency_machine;
use kernels::viterbi::Viterbi;

/// Run the Figure 4 micro-benchmark twice from scratch and require the
/// whole observable outcome — `RunSummary` and the full `MachineStats`
/// snapshot (caches, directory, buses, per-core counters) — to match.
fn assert_repeatable(mechanism: BarrierMechanism) {
    let (cores, inner, outer) = (8, 8, 2);
    let mut a = build_latency_machine(mechanism, cores, inner, outer);
    let mut b = build_latency_machine(mechanism, cores, inner, outer);
    let sa = a.run().expect("first run");
    let sb = b.run().expect("second run");
    assert_eq!(sa, sb, "{mechanism}: RunSummary must be identical");
    assert!(sa.cycles > 0 && sa.instructions > 0);
    assert_eq!(
        a.stats(),
        b.stats(),
        "{mechanism}: full MachineStats must be identical"
    );
    assert_eq!(a.stats().digest(), b.stats().digest());
}

#[test]
fn software_central_barrier_is_deterministic() {
    assert_repeatable(BarrierMechanism::SwCentral);
}

#[test]
fn software_tree_barrier_is_deterministic() {
    assert_repeatable(BarrierMechanism::SwTree);
}

#[test]
fn filter_d_barrier_is_deterministic() {
    assert_repeatable(BarrierMechanism::FilterD);
}

#[test]
fn filter_i_barrier_is_deterministic() {
    assert_repeatable(BarrierMechanism::FilterI);
}

#[test]
fn viterbi_kernel_is_deterministic_end_to_end() {
    // A data-bearing kernel (not just the barrier loop): coherence traffic,
    // store buffers and parked fills all in play.
    let run = || {
        Viterbi::new(32)
            .run_parallel(4, BarrierMechanism::FilterD)
            .expect("viterbi run")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert!(a.cycles > 0);
}
