//! Static verifier and dynamic race detector for MiniRISC barrier
//! programs.
//!
//! Two independent layers share this crate:
//!
//! * **Static** — [`analyze_program`] builds a control-flow graph over a
//!   [`Program`] image ([`cfg::Cfg`]), reports structural defects (bad
//!   branch targets, fall-off-the-end, unreachable code), runs register
//!   def-use dataflow (possibly-uninitialized reads, dead stores), and
//!   checks each installed barrier's routine against its mechanism's
//!   protocol contract ([`ProtocolSpec`], from
//!   [`barrier_filter::Barrier::protocol`]). Findings come back as
//!   [`Diagnostic`]s carrying stable rule ids (the [`rules`] module) so
//!   tests and CI gate on identity, not message text.
//! * **Dynamic** — [`RaceDetectorSink`] attaches to a machine as a
//!   [`TraceSink`](cmp_sim::TraceSink) and reconstructs a
//!   happens-before order from the synchronization that actually
//!   happened (invalidate/fill-release pairs, software flag and counter
//!   traffic, the dedicated network), flagging any pair of conflicting
//!   data accesses the order does not cover. It is an observer only:
//!   attaching it cannot change cycle counts or run digests.
//!
//! The `verify` bench binary drives both layers over every shipped
//! kernel × mechanism combination.

mod cfg;
mod dataflow;
mod diag;
mod lint;
pub mod mc;
mod props;
mod race;

use barrier_filter::{ProtocolSpec, RegionKind};
use sim_isa::{Instr, Program};

pub use cfg::{idx_of, pc_of, Block, Cfg};
pub use dataflow::Root;
pub use diag::{rules, Diagnostic, Severity};
pub use lint::mechanism_rules;
pub use mc::{model_check, McConfig, McReport};
pub use race::{Race, RaceDetectorSink, RaceHandle, RaceKind, RaceReport};

/// Entry points of `program` for reachability and dataflow: every symbol
/// that names an instruction, plus the per-thread arrival stub lines of
/// any I-cache filter (reached only through an indirect call the CFG
/// cannot see; their registers come from the caller, so they start
/// all-defined).
fn roots(program: &Program, specs: &[ProtocolSpec]) -> Vec<Root> {
    let n = program.len();
    let mut out = Vec::new();
    if n > 0 {
        // The image start is always executable (emitters lay a jump over
        // their routines there), whether or not a symbol names it.
        out.push(Root {
            idx: 0,
            all_defined: false,
        });
    }
    for (_, pc) in program.symbols() {
        if let Some(idx) = idx_of(pc, n) {
            out.push(Root {
                idx,
                all_defined: false,
            });
        }
    }
    for spec in specs {
        for region in &spec.regions {
            if !matches!(region.kind, RegionKind::Arrival | RegionKind::ArrivalAlt) {
                continue;
            }
            for t in 0..spec.threads as u64 {
                if let Some(idx) = idx_of(region.base + t * 64, n) {
                    out.push(Root {
                        idx,
                        all_defined: true,
                    });
                }
            }
        }
    }
    out
}

/// Report non-padding instructions no entry point can reach
/// ([`rules::CFG_UNREACHABLE`]), one diagnostic per contiguous run.
fn check_unreachable(program: &Program, reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    let n = program.len();
    let mut i = 0;
    while i < n {
        if reachable[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && !reachable[i] {
            i += 1;
        }
        // `nop` runs are alignment padding (arrival stub lines), not code.
        let real: Vec<usize> = (start..i)
            .filter(|&j| program.fetch(pc_of(j)).expect("idx in range") != Instr::Nop)
            .collect();
        if let (Some(&first), count) = (real.first(), real.len()) {
            diags.push(Diagnostic::at(
                Severity::Warning,
                pc_of(first),
                rules::CFG_UNREACHABLE,
                format!("{count} instruction(s) unreachable from every entry point"),
            ));
        }
    }
}

/// Run the full static verifier: CFG structure, unreachable code,
/// register dataflow, and one barrier-protocol lint per spec.
///
/// Diagnostics come back sorted by program counter (program-wide findings
/// first), each carrying a stable [`rules`] id.
pub fn analyze_program(program: &Program, specs: &[ProtocolSpec]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cfg = Cfg::build(program, &mut diags);
    let roots = roots(program, specs);
    let reachable = cfg.reachable_from(roots.iter().map(|r| r.idx));
    check_unreachable(program, &reachable, &mut diags);
    dataflow::check(program, &cfg, &roots, &mut diags);
    for spec in specs {
        lint::check(program, &cfg, spec, &mut diags);
    }
    diags.sort_by_key(|d| (d.pc.is_some(), d.pc, d.rule));
    diags
}

/// The highest severity present, if any finding exists.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// Whether any finding is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    max_severity(diags) >= Some(Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Asm, Reg, CODE_BASE, INSTR_BYTES};

    #[test]
    fn unreachable_code_is_flagged_but_nop_padding_is_not() {
        let mut a = Asm::new();
        a.label("entry").unwrap();
        a.j("end");
        a.li(Reg::T0, 1); // dead
        a.li(Reg::T0, 2); // dead
        a.nop(); // padding
        a.label("end").unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        let diags = analyze_program(&p, &[]);
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == rules::CFG_UNREACHABLE)
            .collect();
        assert_eq!(unreachable.len(), 1);
        assert!(unreachable[0].message.starts_with("2 instruction(s)"));
        assert_eq!(unreachable[0].pc, Some(CODE_BASE + INSTR_BYTES));
    }

    #[test]
    fn severity_helpers() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        let diags = analyze_program(&p, &[]);
        assert!(!has_errors(&diags));
        assert!(has_errors(&[Diagnostic::global(
            Severity::Error,
            rules::CFG_TARGET,
            "x"
        )]));
    }
}
