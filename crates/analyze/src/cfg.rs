//! Control-flow graph over a MiniRISC program image.
//!
//! The graph is built at instruction granularity (every program has at
//! most a few thousand instructions) with basic blocks layered on top for
//! reporting. Structural defects found while building — branches to
//! addresses outside the image, paths that can run off the end — come
//! back as diagnostics alongside the graph.
//!
//! Call treatment is the standard intraprocedural compromise:
//!
//! * `jal zero, t` is a plain jump: one successor, `t`.
//! * `jal rd, t` (rd ≠ zero) is a call: successors `t` *and* the return
//!   point `pc + 4` (the callee is assumed to return).
//! * `jalr zero, …` is an indirect jump or return: no static successors.
//! * `jalr rd, …` (rd ≠ zero) is an indirect call: successor `pc + 4`.

use sim_isa::{Instr, Program, CODE_BASE, INSTR_BYTES};

use crate::diag::{rules, Diagnostic, Severity};

/// A basic block: a maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
}

/// Instruction-granularity control-flow graph with basic-block structure.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor instruction indices, per instruction.
    succs: Vec<Vec<usize>>,
    /// Basic blocks in layout order.
    blocks: Vec<Block>,
}

/// Convert an instruction index to its program counter.
pub fn pc_of(idx: usize) -> u64 {
    CODE_BASE + idx as u64 * INSTR_BYTES
}

/// Convert a program counter to an instruction index, if it is a valid
/// instruction address for an image of `len` instructions.
pub fn idx_of(pc: u64, len: usize) -> Option<usize> {
    if pc < CODE_BASE || !(pc - CODE_BASE).is_multiple_of(INSTR_BYTES) {
        return None;
    }
    let idx = ((pc - CODE_BASE) / INSTR_BYTES) as usize;
    (idx < len).then_some(idx)
}

impl Cfg {
    /// Build the graph for `program`, reporting structural defects
    /// ([`rules::CFG_TARGET`], [`rules::CFG_FALLOFF`]) into `diags`.
    pub fn build(program: &Program, diags: &mut Vec<Diagnostic>) -> Cfg {
        let n = program.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (name, pc) in program.symbols() {
            if let Some(i) = idx_of(pc, n) {
                leader[i] = true;
            } else if pc != program.code_end() {
                diags.push(Diagnostic::global(
                    Severity::Warning,
                    rules::CFG_TARGET,
                    format!("symbol `{name}` resolves to {pc:#x}, outside the image"),
                ));
            }
        }
        for idx in 0..n {
            let instr = program.fetch(pc_of(idx)).expect("idx in range");
            let (takes_target, falls_through) = match instr {
                Instr::Beq(..)
                | Instr::Bne(..)
                | Instr::Blt(..)
                | Instr::Bge(..)
                | Instr::Bltu(..)
                | Instr::Bgeu(..) => (true, true),
                Instr::Jal(rd, _) => (true, !rd.is_zero()),
                // Indirect: a return (`jalr zero`) terminates the path;
                // an indirect call is assumed to come back.
                Instr::Jalr(rd, ..) => (false, !rd.is_zero()),
                Instr::Halt => (false, false),
                _ => (false, true),
            };
            if takes_target {
                let target = instr
                    .branch_target()
                    .expect("direct transfers have targets");
                if let Some(t) = idx_of(target, n) {
                    succs[idx].push(t);
                    leader[t] = true;
                } else {
                    diags.push(Diagnostic::at(
                        Severity::Error,
                        pc_of(idx),
                        rules::CFG_TARGET,
                        format!("control transfer to {target:#x}, outside the code image"),
                    ));
                }
            }
            if falls_through {
                if idx + 1 < n {
                    succs[idx].push(idx + 1);
                } else {
                    diags.push(Diagnostic::at(
                        Severity::Error,
                        pc_of(idx),
                        rules::CFG_FALLOFF,
                        "execution can fall off the end of the code image",
                    ));
                }
            }
            if instr.is_control() && idx + 1 < n {
                leader[idx + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut start = 0;
        for (idx, &lead) in leader.iter().enumerate().skip(1) {
            if lead {
                blocks.push(Block { start, end: idx });
                start = idx;
            }
        }
        if n > 0 {
            blocks.push(Block { start, end: n });
        }
        Cfg { succs, blocks }
    }

    /// Number of instructions in the graph.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successor instruction indices of `idx`.
    pub fn succs(&self, idx: usize) -> &[usize] {
        &self.succs[idx]
    }

    /// Basic blocks in layout order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Every instruction reachable from `roots` (instruction indices),
    /// as a membership mask.
    pub fn reachable_from(&self, roots: impl IntoIterator<Item = usize>) -> Vec<bool> {
        let mut seen = vec![false; self.succs.len()];
        let mut stack: Vec<usize> = roots.into_iter().filter(|&r| r < seen.len()).collect();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            stack.extend(self.succs[i].iter().copied());
        }
        seen
    }

    /// Like [`reachable_from`](Cfg::reachable_from), but paths may not
    /// pass *through* any instruction in `barrier`: a barrier node is
    /// marked reached when hit, but its successors are never followed.
    /// This answers "can X reach Y while avoiding every Z" — the shape of
    /// every protocol all-paths check.
    pub fn reachable_avoiding(
        &self,
        roots: impl IntoIterator<Item = usize>,
        barrier: &[usize],
    ) -> Vec<bool> {
        let mut blocked = vec![false; self.succs.len()];
        for &b in barrier {
            if b < blocked.len() {
                blocked[b] = true;
            }
        }
        let mut seen = vec![false; self.succs.len()];
        let mut stack: Vec<usize> = roots.into_iter().filter(|&r| r < seen.len()).collect();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            if blocked[i] {
                continue;
            }
            stack.extend(self.succs[i].iter().copied());
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Asm, Reg};

    fn program(build: impl FnOnce(&mut Asm)) -> Program {
        let mut a = Asm::new();
        build(&mut a);
        a.assemble().unwrap()
    }

    #[test]
    fn straight_line_with_halt_is_one_block() {
        let p = program(|a| {
            a.li(Reg::T0, 1);
            a.addi(Reg::T0, Reg::T0, 1);
            a.halt();
        });
        let mut diags = Vec::new();
        let cfg = Cfg::build(&p, &mut diags);
        assert!(diags.is_empty());
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.succs(2), &[] as &[usize]);
    }

    #[test]
    fn branch_splits_blocks_and_adds_both_edges() {
        let p = program(|a| {
            a.label("top").unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bne(Reg::T0, Reg::ZERO, "top");
            a.halt();
        });
        let mut diags = Vec::new();
        let cfg = Cfg::build(&p, &mut diags);
        assert!(diags.is_empty());
        assert_eq!(cfg.succs(1), &[0, 2]);
        assert_eq!(cfg.blocks().len(), 2);
    }

    #[test]
    fn fall_off_end_is_an_error() {
        let p = program(|a| {
            a.li(Reg::T0, 1);
        });
        let mut diags = Vec::new();
        Cfg::build(&p, &mut diags);
        assert!(diags.iter().any(|d| d.rule == rules::CFG_FALLOFF));
    }

    #[test]
    fn bad_branch_target_is_an_error() {
        let p = program(|a| {
            a.beq(Reg::T0, Reg::ZERO, 0xdead_0000u64);
            a.halt();
        });
        let mut diags = Vec::new();
        let cfg = Cfg::build(&p, &mut diags);
        let d = diags
            .iter()
            .find(|d| d.rule == rules::CFG_TARGET)
            .expect("target diagnostic");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.pc, Some(CODE_BASE));
        // no edge to the bogus target; fallthrough edge remains
        assert_eq!(cfg.succs(0), &[1]);
    }

    #[test]
    fn reachability_and_avoidance() {
        let p = program(|a| {
            a.label("entry").unwrap();
            a.beq(Reg::T0, Reg::ZERO, "skip"); // 0
            a.li(Reg::T1, 1); // 1 (the "barrier" node)
            a.label("skip").unwrap();
            a.halt(); // 2
        });
        let mut diags = Vec::new();
        let cfg = Cfg::build(&p, &mut diags);
        let r = cfg.reachable_from([0]);
        assert!(r.iter().all(|&x| x));
        // avoiding node 1, node 2 is still reachable via the branch edge
        let r = cfg.reachable_avoiding([0], &[1]);
        assert!(r[2]);
        // but starting *below* the branch, blocking 1 blocks 2
        let r = cfg.reachable_avoiding([1], &[1]);
        assert!(r[1] && !r[2], "barrier node explored but not crossed");
    }
}
