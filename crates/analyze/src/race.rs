//! Happens-before race detection over a simulator trace.
//!
//! [`RaceDetectorSink`] is a pure observer: it implements
//! [`TraceSink`], so it sees every event the machine emits but cannot
//! perturb timing or digests. It reconstructs a happens-before order
//! from the synchronization the trace shows actually happened, then
//! checks every ordinary data access against it (FastTrack-style: a
//! last-write epoch plus an epoch-or-vector read state per byte).
//!
//! Synchronization edges, per mechanism family:
//!
//! * **Filter barriers** — a `dcbi`/`icbi` of a line inside an arrival or
//!   exit region is a *release*: the issuing core's clock joins the
//!   region's clock. A `Released`/`Serviced`/`Errored` fill completion on
//!   such a line is the matching *acquire*. The simulator only completes
//!   those fills once every thread has invalidated, so each thread
//!   acquires every other thread's pre-barrier history — but the detector
//!   never assumes that: if a buggy mechanism released early, the region
//!   clock would be missing arrivals and downstream conflicts would
//!   surface as races.
//! * **Software barriers** — loads and stores whose address falls in a
//!   declared sync region (counter or flag lines) act as lock
//!   acquire/release on their 8-byte granule's clock. These accesses are
//!   synchronization, not data, so they are excluded from race candidacy.
//! * **Dedicated network** — `HwBarArrive` releases into the group's
//!   clock, `HwBarRelease` acquires from it.
//!
//! Region clocks are monotone (never reset between episodes). That is a
//! sound over-approximation of ordering — consecutive episodes really are
//! ordered through the barrier — so it can only suppress impossible
//! interleavings, never invent false races.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use barrier_filter::{ProtocolSpec, SyncRegion};
use cmp_sim::{TraceEvent, TraceSink};

/// Vector clock, indexed by core.
type Vc = Vec<u32>;

fn grown(vc: &mut Vc, n: usize) {
    if vc.len() < n {
        vc.resize(n, 0);
    }
}

fn join(dst: &mut Vc, src: &Vc) {
    grown(dst, src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (*d).max(s);
    }
}

fn at(vc: &Vc, core: usize) -> u32 {
    vc.get(core).copied().unwrap_or(0)
}

/// What kind of conflict a race is, named `previous access`/`current
/// access`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two unordered writes.
    WriteWrite,
    /// A write unordered after a read.
    ReadWrite,
    /// A read unordered after a write.
    WriteRead,
}

impl RaceKind {
    /// Short human-readable name (`write-write`, ...).
    pub fn name(self) -> &'static str {
        match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
            RaceKind::WriteRead => "write-read",
        }
    }
}

/// One detected race: two accesses to the same byte with no
/// happens-before path between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Byte address both accesses touch.
    pub addr: u64,
    /// Core performing the later (detected) access.
    pub core: usize,
    /// Core that performed the earlier conflicting access.
    pub prev_core: usize,
    /// Cycle of the detected access.
    pub cycle: u64,
    /// Conflict shape.
    pub kind: RaceKind,
}

/// Aggregate detector results, shared out through [`RaceHandle`].
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// First race per 8-byte granule, in detection order (capped).
    pub races: Vec<Race>,
    /// Total conflicting access pairs seen, including suppressed repeats.
    pub total_races: u64,
    /// Ordinary (non-synchronization) reads checked.
    pub reads_checked: u64,
    /// Ordinary writes checked.
    pub writes_checked: u64,
    /// Synchronization accesses observed (excluded from race candidacy).
    pub sync_accesses: u64,
}

impl RaceReport {
    /// Whether any race was detected.
    pub fn racy(&self) -> bool {
        self.total_races > 0
    }
}

/// Cloneable handle onto a detector's results; read it after the run
/// while the sink itself stays owned by the machine.
#[derive(Debug, Clone)]
pub struct RaceHandle(Arc<Mutex<RaceReport>>);

impl RaceHandle {
    /// Snapshot the current report.
    pub fn report(&self) -> RaceReport {
        self.0.lock().expect("race report lock").clone()
    }
}

/// FastTrack read state for one byte.
#[derive(Debug, Clone)]
enum ReadState {
    None,
    /// A single read epoch `(clock, core)`.
    One(u32, usize),
    /// Concurrent reads, as a full vector clock.
    Many(Vc),
}

/// Per-byte shadow: last write epoch and read state.
#[derive(Debug, Clone)]
struct Shadow {
    write: Option<(u32, usize)>,
    read: ReadState,
}

const RACES_KEPT: usize = 64;
const GRANULE_MASK: u64 = !7;

/// Trace-sink race detector. Build it with the [`ProtocolSpec`]s of the
/// barriers installed in the machine (so synchronization addresses are
/// classified correctly), attach via
/// `MachineBuilder::with_trace_sink(Box::new(sink))`, and read results
/// through the [`RaceHandle`] from [`RaceDetectorSink::handle`].
pub struct RaceDetectorSink {
    regions: Vec<SyncRegion>,
    /// Per-core vector clocks.
    clocks: Vec<Vc>,
    /// Per-region release accumulators (indexed like `regions`).
    region_clocks: Vec<Vc>,
    /// Dedicated-network group clocks.
    hw_clocks: HashMap<u16, Vc>,
    /// Software-sync granule clocks.
    lock_clocks: HashMap<u64, Vc>,
    shadow: HashMap<u64, Shadow>,
    reported: HashSet<u64>,
    state: Arc<Mutex<RaceReport>>,
}

impl RaceDetectorSink {
    /// Build a detector that treats the regions of `specs` as
    /// synchronization state. An empty spec list means every access is an
    /// ordinary data access.
    pub fn new<'a>(specs: impl IntoIterator<Item = &'a ProtocolSpec>) -> Self {
        let regions = specs.into_iter().flat_map(|s| s.regions.clone()).collect();
        RaceDetectorSink {
            regions,
            clocks: Vec::new(),
            region_clocks: Vec::new(),
            hw_clocks: HashMap::new(),
            lock_clocks: HashMap::new(),
            shadow: HashMap::new(),
            reported: HashSet::new(),
            state: Arc::new(Mutex::new(RaceReport::default())),
        }
    }

    /// Handle for reading results after the machine consumes the sink.
    pub fn handle(&self) -> RaceHandle {
        RaceHandle(Arc::clone(&self.state))
    }

    fn region_idx(&self, addr: u64) -> Option<usize> {
        self.regions.iter().position(|r| r.contains(addr))
    }

    /// The running clock of `core`, created on first touch with its own
    /// component at 1 (so epochs are never the all-zero "no access yet").
    fn clock(&mut self, core: usize) -> &mut Vc {
        if self.clocks.len() <= core {
            self.clocks.resize_with(core + 1, Vec::new);
        }
        let vc = &mut self.clocks[core];
        grown(vc, core + 1);
        if vc[core] == 0 {
            vc[core] = 1;
        }
        vc
    }

    fn release_region(&mut self, core: usize, idx: usize) {
        if self.region_clocks.len() <= idx {
            self.region_clocks.resize_with(idx + 1, Vec::new);
        }
        let c = self.clock(core).clone();
        join(&mut self.region_clocks[idx], &c);
        self.clock(core)[core] += 1;
    }

    fn acquire_region(&mut self, core: usize, idx: usize) {
        if let Some(rc) = self.region_clocks.get(idx).cloned() {
            join(self.clock(core), &rc);
        }
    }

    fn record_race(
        &mut self,
        addr: u64,
        core: usize,
        prev_core: usize,
        cycle: u64,
        kind: RaceKind,
    ) {
        let mut st = self.state.lock().expect("race report lock");
        st.total_races += 1;
        if st.races.len() < RACES_KEPT && self.reported.insert(addr & GRANULE_MASK) {
            st.races.push(Race {
                addr,
                core,
                prev_core,
                cycle,
                kind,
            });
        }
    }

    fn data_write(&mut self, core: usize, addr: u64, bytes: u64, cycle: u64) {
        let c = self.clock(core).clone();
        let epoch = (c[core], core);
        self.state.lock().expect("race report lock").writes_checked += 1;
        for b in addr..addr + bytes {
            let sh = self.shadow.entry(b).or_insert(Shadow {
                write: None,
                read: ReadState::None,
            });
            let mut conflict = None;
            if let Some((wc, wt)) = sh.write {
                if wt != core && wc > at(&c, wt) {
                    conflict = Some((wt, RaceKind::WriteWrite));
                }
            }
            if conflict.is_none() {
                match &sh.read {
                    ReadState::One(rc, rt) => {
                        if *rt != core && *rc > at(&c, *rt) {
                            conflict = Some((*rt, RaceKind::ReadWrite));
                        }
                    }
                    ReadState::Many(rv) => {
                        for (rt, &rc) in rv.iter().enumerate() {
                            if rt != core && rc > at(&c, rt) {
                                conflict = Some((rt, RaceKind::ReadWrite));
                                break;
                            }
                        }
                    }
                    ReadState::None => {}
                }
            }
            sh.write = Some(epoch);
            sh.read = ReadState::None;
            if let Some((prev, kind)) = conflict {
                self.record_race(b, core, prev, cycle, kind);
            }
        }
    }

    fn data_read(&mut self, core: usize, addr: u64, bytes: u64, cycle: u64) {
        let c = self.clock(core).clone();
        let epoch = (c[core], core);
        self.state.lock().expect("race report lock").reads_checked += 1;
        for b in addr..addr + bytes {
            let sh = self.shadow.entry(b).or_insert(Shadow {
                write: None,
                read: ReadState::None,
            });
            let mut conflict = None;
            if let Some((wc, wt)) = sh.write {
                if wt != core && wc > at(&c, wt) {
                    conflict = Some((wt, RaceKind::WriteRead));
                }
            }
            sh.read = match std::mem::replace(&mut sh.read, ReadState::None) {
                ReadState::None => ReadState::One(epoch.0, epoch.1),
                ReadState::One(rc, rt) => {
                    if rt == core || rc <= at(&c, rt) {
                        ReadState::One(epoch.0, epoch.1)
                    } else {
                        let mut rv = vec![0; rt.max(core) + 1];
                        rv[rt] = rc;
                        rv[core] = epoch.0;
                        ReadState::Many(rv)
                    }
                }
                ReadState::Many(mut rv) => {
                    grown(&mut rv, core + 1);
                    rv[core] = epoch.0;
                    ReadState::Many(rv)
                }
            };
            if let Some((prev, kind)) = conflict {
                self.record_race(b, core, prev, cycle, kind);
            }
        }
    }

    fn sync_write(&mut self, core: usize, addr: u64) {
        self.state.lock().expect("race report lock").sync_accesses += 1;
        let g = addr & GRANULE_MASK;
        let c = self.clock(core).clone();
        join(self.lock_clocks.entry(g).or_default(), &c);
        self.clock(core)[core] += 1;
    }

    fn sync_read(&mut self, core: usize, addr: u64) {
        self.state.lock().expect("race report lock").sync_accesses += 1;
        let g = addr & GRANULE_MASK;
        if let Some(lc) = self.lock_clocks.get(&g).cloned() {
            join(self.clock(core), &lc);
        }
    }

    fn is_sync(&self, addr: u64) -> bool {
        self.regions.iter().any(|r| r.contains(addr))
    }
}

impl TraceSink for RaceDetectorSink {
    fn record(&mut self, cycle: u64, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Invalidate { core, line, .. } => {
                if let Some(idx) = self.region_idx(line) {
                    self.release_region(core, idx);
                }
            }
            TraceEvent::Released { core, line }
            | TraceEvent::Serviced { core, line }
            | TraceEvent::Errored { core, line } => {
                if let Some(idx) = self.region_idx(line) {
                    self.acquire_region(core, idx);
                }
            }
            TraceEvent::HwBarArrive { core, id } => {
                let c = self.clock(core).clone();
                join(self.hw_clocks.entry(id).or_default(), &c);
                self.clock(core)[core] += 1;
            }
            TraceEvent::HwBarRelease { core, id } => {
                if let Some(hc) = self.hw_clocks.get(&id).cloned() {
                    join(self.clock(core), &hc);
                }
            }
            TraceEvent::DataWrite { core, addr, bytes } => {
                if self.is_sync(addr) {
                    self.sync_write(core, addr);
                } else {
                    self.data_write(core, addr, bytes, cycle);
                }
            }
            TraceEvent::DataRead { core, addr, bytes } => {
                if self.is_sync(addr) {
                    self.sync_read(core, addr);
                } else {
                    self.data_read(core, addr, bytes, cycle);
                }
            }
            TraceEvent::DMiss { .. }
            | TraceEvent::IMiss { .. }
            | TraceEvent::Parked { .. }
            | TraceEvent::Upgrade { .. }
            | TraceEvent::CacheToCache { .. }
            | TraceEvent::EpisodeEnd { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use barrier_filter::{RegionKind, SyncRegion};

    fn spec_with(regions: Vec<SyncRegion>) -> ProtocolSpec {
        ProtocolSpec {
            mechanism: barrier_filter::BarrierMechanism::FilterD,
            entry: "entry".into(),
            threads: 2,
            regions,
            tls_offset: None,
            hw_id: None,
            episode_counter: None,
            wake_addrs: Vec::new(),
        }
    }

    fn write(sink: &mut RaceDetectorSink, cycle: u64, core: usize, addr: u64) {
        sink.record(
            cycle,
            &TraceEvent::DataWrite {
                core,
                addr,
                bytes: 8,
            },
        );
    }

    fn read(sink: &mut RaceDetectorSink, cycle: u64, core: usize, addr: u64) {
        sink.record(
            cycle,
            &TraceEvent::DataRead {
                core,
                addr,
                bytes: 8,
            },
        );
    }

    #[test]
    fn unsynchronized_writes_race() {
        let mut sink = RaceDetectorSink::new([]);
        let h = sink.handle();
        write(&mut sink, 10, 0, 0x8000);
        write(&mut sink, 20, 1, 0x8000);
        let r = h.report();
        assert!(r.racy());
        assert_eq!(r.races[0].kind, RaceKind::WriteWrite);
        assert_eq!(r.races[0].prev_core, 0);
        assert_eq!(r.races[0].core, 1);
    }

    #[test]
    fn same_core_never_races_with_itself() {
        let mut sink = RaceDetectorSink::new([]);
        let h = sink.handle();
        write(&mut sink, 10, 0, 0x8000);
        read(&mut sink, 20, 0, 0x8000);
        write(&mut sink, 30, 0, 0x8000);
        assert!(!h.report().racy());
    }

    #[test]
    fn barrier_orders_cross_core_accesses() {
        let arrival = SyncRegion {
            kind: RegionKind::Arrival,
            base: 0x2_0000,
            bytes: 128,
        };
        let spec = spec_with(vec![arrival]);
        let mut sink = RaceDetectorSink::new([&spec]);
        let h = sink.handle();
        write(&mut sink, 10, 0, 0x8000);
        // Both cores invalidate their arrival line (release) ...
        sink.record(
            11,
            &TraceEvent::Invalidate {
                core: 0,
                line: 0x2_0000,
                icache: false,
            },
        );
        sink.record(
            12,
            &TraceEvent::Invalidate {
                core: 1,
                line: 0x2_0040,
                icache: false,
            },
        );
        // ... and their fills complete (acquire).
        sink.record(
            20,
            &TraceEvent::Released {
                core: 0,
                line: 0x2_0000,
            },
        );
        sink.record(
            20,
            &TraceEvent::Released {
                core: 1,
                line: 0x2_0040,
            },
        );
        write(&mut sink, 30, 1, 0x8000);
        assert!(!h.report().racy(), "{:?}", h.report().races);
    }

    #[test]
    fn early_release_is_still_a_race() {
        // Core 1's fill completes *before* core 0 arrives: core 0's write
        // is not in the region clock yet, so the conflict must surface.
        let arrival = SyncRegion {
            kind: RegionKind::Arrival,
            base: 0x2_0000,
            bytes: 128,
        };
        let spec = spec_with(vec![arrival]);
        let mut sink = RaceDetectorSink::new([&spec]);
        let h = sink.handle();
        write(&mut sink, 10, 0, 0x8000);
        sink.record(
            11,
            &TraceEvent::Released {
                core: 1,
                line: 0x2_0040,
            },
        );
        write(&mut sink, 12, 1, 0x8000);
        sink.record(
            13,
            &TraceEvent::Invalidate {
                core: 0,
                line: 0x2_0000,
                icache: false,
            },
        );
        let r = h.report();
        assert!(r.racy());
        assert_eq!(r.races[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn software_sync_granule_orders_accesses() {
        let flag = SyncRegion {
            kind: RegionKind::Flag,
            base: 0x3_0000,
            bytes: 64,
        };
        let spec = spec_with(vec![flag]);
        let mut sink = RaceDetectorSink::new([&spec]);
        let h = sink.handle();
        write(&mut sink, 10, 0, 0x8000);
        write(&mut sink, 11, 0, 0x3_0000); // release: store to the flag
        read(&mut sink, 20, 1, 0x3_0000); // acquire: spin load sees it
        write(&mut sink, 21, 1, 0x8000);
        let r = h.report();
        assert!(!r.racy(), "{:?}", r.races);
        assert_eq!(r.sync_accesses, 2);
    }

    #[test]
    fn hw_barrier_orders_accesses() {
        let mut sink = RaceDetectorSink::new([]);
        let h = sink.handle();
        write(&mut sink, 10, 0, 0x8000);
        sink.record(11, &TraceEvent::HwBarArrive { core: 0, id: 3 });
        sink.record(12, &TraceEvent::HwBarArrive { core: 1, id: 3 });
        sink.record(13, &TraceEvent::HwBarRelease { core: 0, id: 3 });
        sink.record(13, &TraceEvent::HwBarRelease { core: 1, id: 3 });
        write(&mut sink, 20, 1, 0x8000);
        assert!(!h.report().racy());
    }

    #[test]
    fn read_write_race_reports_the_reader() {
        let mut sink = RaceDetectorSink::new([]);
        let h = sink.handle();
        read(&mut sink, 10, 0, 0x8000);
        write(&mut sink, 20, 1, 0x8000);
        let r = h.report();
        assert!(r.racy());
        assert_eq!(r.races[0].kind, RaceKind::ReadWrite);
        assert_eq!(r.races[0].prev_core, 0);
    }

    #[test]
    fn repeat_races_on_a_granule_are_counted_once_in_the_list() {
        let mut sink = RaceDetectorSink::new([]);
        let h = sink.handle();
        write(&mut sink, 10, 0, 0x8000);
        write(&mut sink, 20, 1, 0x8000);
        write(&mut sink, 30, 0, 0x8000);
        let r = h.report();
        assert_eq!(r.races.len(), 1);
        assert!(r.total_races >= 2);
    }
}
