//! Barrier-protocol lint: check an emitted barrier routine against the
//! contract of its mechanism, symbolically.
//!
//! The linter walks the routine reachable from the barrier's entry label
//! with a tiny abstract interpreter that tracks three shapes of register
//! value — exact constants, `tid * 64`, and `base + tid * 64` (the
//! per-thread-line idiom every filter routine uses) — and classifies each
//! memory reference against the barrier's [`ProtocolSpec`] regions. The
//! protocol rules are then graph queries over the routine CFG:
//!
//! * every arrival-line invalidate must be followed **on all paths** by a
//!   fetch of that line ([`rules::BARRIER_DCBI_FETCH`]), with an `isync`
//!   in between ([`rules::BARRIER_ISYNC`]);
//! * filter routines begin with `sync`, and D-cache variants fence again
//!   after the fetch ([`rules::BARRIER_SYNC`]);
//! * entry/exit filters must invalidate their exit line on every path
//!   from fetch to return ([`rules::BARRIER_EXIT`]);
//! * ping-pong variants must address both arrival ranges and toggle the
//!   TLS sense flag ([`rules::BARRIER_PINGPONG`],
//!   [`rules::BARRIER_SENSE`]);
//! * software barriers use well-formed `ll`/`sc` retry loops
//!   ([`rules::BARRIER_LLSC`]);
//! * the dedicated-network routine is exactly one `hwbar` with the
//!   registered id and no memory traffic ([`rules::BARRIER_HWBAR`]).
//!
//! "On all paths" is implemented as reachability with removal: if a
//! return stays reachable from the invalidate after deleting every fetch
//! node, some path skips the fetch.

use std::collections::BTreeSet;

use barrier_filter::{BarrierMechanism, ProtocolSpec, RegionKind};
use sim_isa::{Instr, Program, Reg};

use crate::cfg::{idx_of, pc_of, Cfg};
use crate::diag::{rules, Diagnostic, Severity};

/// A symbolic register value the interpreter can track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Expr {
    /// An exact constant.
    Imm(i64),
    /// `tid * 64` — the per-thread line stride.
    Tid64,
    /// `base + tid * 64` — a per-thread line address.
    ImmPlusTid64(i64),
    /// `tid >> k` — the cluster index the hierarchical routines compute.
    TidShr(u8),
    /// `(tid >> k) * 64` — the per-cluster line stride.
    TidShr64(u8),
    /// `base + (tid >> k) * 64` — a per-cluster line address.
    ImmPlusTidShr64(i64, u8),
}

/// Abstract register value: a small set of possible [`Expr`]s, or
/// unknown. Sets are capped; joins past the cap collapse to unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AbsVal {
    Unknown,
    Vals(BTreeSet<Expr>),
}

const VALS_CAP: usize = 8;

impl AbsVal {
    fn of(e: Expr) -> AbsVal {
        AbsVal::Vals(BTreeSet::from([e]))
    }

    fn join(&self, other: &AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Vals(a), AbsVal::Vals(b)) => {
                let u: BTreeSet<Expr> = a.union(b).copied().collect();
                if u.len() > VALS_CAP {
                    AbsVal::Unknown
                } else {
                    AbsVal::Vals(u)
                }
            }
            _ => AbsVal::Unknown,
        }
    }

    fn map(&self, f: impl Fn(Expr) -> Option<Expr>) -> AbsVal {
        match self {
            AbsVal::Unknown => AbsVal::Unknown,
            AbsVal::Vals(vs) => {
                let mut out = BTreeSet::new();
                for &v in vs {
                    match f(v) {
                        Some(e) => {
                            out.insert(e);
                        }
                        None => return AbsVal::Unknown,
                    }
                }
                AbsVal::Vals(out)
            }
        }
    }
}

type State = Vec<AbsVal>; // indexed by Reg::index()

fn fresh_state() -> State {
    let mut s = vec![AbsVal::Unknown; 32];
    s[Reg::ZERO.index()] = AbsVal::of(Expr::Imm(0));
    s
}

fn join_states(a: &State, b: &State) -> State {
    a.iter().zip(b).map(|(x, y)| x.join(y)).collect()
}

fn transfer(instr: &Instr, state: &mut State) {
    let set = |state: &mut State, d: Reg, v: AbsVal| {
        if !d.is_zero() {
            state[d.index()] = v;
        }
    };
    match *instr {
        Instr::Li(d, imm) => set(state, d, AbsVal::of(Expr::Imm(imm))),
        Instr::Slli(d, s, sh) => {
            let v = if s == Reg::TID && sh == 6 {
                AbsVal::of(Expr::Tid64)
            } else {
                state[s.index()].map(|e| match e {
                    Expr::Imm(x) => Some(Expr::Imm(x.wrapping_shl(sh.into()))),
                    Expr::TidShr(k) if sh == 6 => Some(Expr::TidShr64(k)),
                    _ => None,
                })
            };
            set(state, d, v);
        }
        Instr::Srli(d, s, sh) => {
            let v = if s == Reg::TID {
                AbsVal::of(Expr::TidShr(sh))
            } else {
                state[s.index()].map(|e| match e {
                    Expr::Imm(x) => Some(Expr::Imm(((x as u64) >> sh) as i64)),
                    _ => None,
                })
            };
            set(state, d, v);
        }
        Instr::Addi(d, a, imm) => {
            let v = state[a.index()].map(|e| match e {
                Expr::Imm(x) => Some(Expr::Imm(x.wrapping_add(imm))),
                Expr::Tid64 => Some(Expr::ImmPlusTid64(imm)),
                Expr::ImmPlusTid64(x) => Some(Expr::ImmPlusTid64(x.wrapping_add(imm))),
                Expr::TidShr64(k) => Some(Expr::ImmPlusTidShr64(imm, k)),
                Expr::ImmPlusTidShr64(x, k) => Some(Expr::ImmPlusTidShr64(x.wrapping_add(imm), k)),
                Expr::TidShr(_) => None,
            });
            set(state, d, v);
        }
        Instr::Add(d, a, b) => {
            let (va, vb) = (state[a.index()].clone(), state[b.index()].clone());
            let v = match (&va, &vb) {
                (AbsVal::Vals(xs), AbsVal::Vals(ys)) => {
                    let mut out = BTreeSet::new();
                    let mut ok = true;
                    'outer: for &x in xs {
                        for &y in ys {
                            let sum = match (x, y) {
                                (Expr::Imm(p), Expr::Imm(q)) => Expr::Imm(p.wrapping_add(q)),
                                (Expr::Imm(p), Expr::Tid64) | (Expr::Tid64, Expr::Imm(p)) => {
                                    Expr::ImmPlusTid64(p)
                                }
                                (Expr::Imm(p), Expr::ImmPlusTid64(q))
                                | (Expr::ImmPlusTid64(q), Expr::Imm(p)) => {
                                    Expr::ImmPlusTid64(p.wrapping_add(q))
                                }
                                (Expr::Imm(p), Expr::TidShr64(k))
                                | (Expr::TidShr64(k), Expr::Imm(p)) => Expr::ImmPlusTidShr64(p, k),
                                (Expr::Imm(p), Expr::ImmPlusTidShr64(q, k))
                                | (Expr::ImmPlusTidShr64(q, k), Expr::Imm(p)) => {
                                    Expr::ImmPlusTidShr64(p.wrapping_add(q), k)
                                }
                                _ => {
                                    ok = false;
                                    break 'outer;
                                }
                            };
                            out.insert(sum);
                            if out.len() > VALS_CAP {
                                ok = false;
                                break 'outer;
                            }
                        }
                    }
                    if ok {
                        AbsVal::Vals(out)
                    } else {
                        AbsVal::Unknown
                    }
                }
                _ => AbsVal::Unknown,
            };
            set(state, d, v);
        }
        _ => {
            if let Some(d) = instr.def() {
                set(state, d, AbsVal::Unknown);
            }
        }
    }
}

/// How a memory reference's effective address classifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum AddrClass {
    /// A single concrete address.
    Exact(u64),
    /// `base + tid * 64` for the running thread.
    PerThread(u64),
}

fn classify(state: &State, base: Reg, offset: i64) -> Option<BTreeSet<AddrClass>> {
    match &state[base.index()] {
        AbsVal::Unknown => None,
        AbsVal::Vals(vs) => {
            let mut out = BTreeSet::new();
            for &v in vs {
                match v {
                    Expr::Imm(x) => {
                        out.insert(AddrClass::Exact(x.wrapping_add(offset) as u64));
                    }
                    // A per-cluster line address strides like a per-thread
                    // one for classification: only the range base matters.
                    Expr::Tid64 | Expr::TidShr64(_) => {
                        out.insert(AddrClass::PerThread(offset as u64));
                    }
                    Expr::ImmPlusTid64(x) | Expr::ImmPlusTidShr64(x, _) => {
                        out.insert(AddrClass::PerThread(x.wrapping_add(offset) as u64));
                    }
                    // A raw cluster index is never a well-formed address.
                    Expr::TidShr(_) => return None,
                }
            }
            Some(out)
        }
    }
}

fn region_kind_of(spec: &ProtocolSpec, class: AddrClass) -> Option<RegionKind> {
    let addr = match class {
        AddrClass::Exact(a) | AddrClass::PerThread(a) => a,
    };
    spec.region_of(addr).map(|r| r.kind)
}

fn is_arrival(kind: Option<RegionKind>) -> bool {
    matches!(kind, Some(RegionKind::Arrival | RegionKind::ArrivalAlt))
}

/// Per-instruction facts the rule checks query.
struct RoutineFacts {
    /// Instruction indices in the routine, reachable from its entry.
    members: Vec<usize>,
    /// Entry instruction index.
    entry: usize,
    /// Invalidates (`dcbi`/`icbi`) of arrival/arrival-alt lines.
    arrival_invs: Vec<usize>,
    /// Invalidates of exit lines.
    exit_invs: Vec<usize>,
    /// Arrival fetches: loads (D) or indirect calls (I) of arrival lines.
    fetches: Vec<usize>,
    /// `isync` instructions.
    isyncs: Vec<usize>,
    /// `sync` instructions.
    syncs: Vec<usize>,
    /// Instructions with no successors (returns/halts).
    returns: Vec<usize>,
    /// `hwbar` instructions with their ids.
    hwbars: Vec<(usize, u16)>,
    /// `ll` instructions.
    lls: Vec<usize>,
    /// Arrival-range bases named by arrival invalidates.
    inv_bases: BTreeSet<u64>,
    /// Whether a store to the spec's TLS sense slot exists.
    toggles_sense: bool,
    /// Whether any instruction in the routine references memory.
    touches_memory: bool,
}

fn gather(program: &Program, cfg: &Cfg, spec: &ProtocolSpec, entry: usize) -> RoutineFacts {
    let n = cfg.len();
    let instr_at = |i: usize| program.fetch(pc_of(i)).expect("idx in range");

    // Reachable routine members.
    let in_routine = cfg.reachable_from([entry]);
    let members: Vec<usize> = (0..n).filter(|&i| in_routine[i]).collect();

    // Abstract interpretation to a fixpoint over the routine.
    let mut states: Vec<Option<State>> = vec![None; n];
    states[entry] = Some(fresh_state());
    let mut work = vec![entry];
    while let Some(i) = work.pop() {
        let mut out = states[i].clone().expect("on worklist implies state");
        transfer(&instr_at(i), &mut out);
        for &s in cfg.succs(i) {
            let merged = match &states[s] {
                None => out.clone(),
                Some(prev) => join_states(prev, &out),
            };
            if states[s].as_ref() != Some(&merged) {
                states[s] = Some(merged);
                work.push(s);
            }
        }
    }

    let mut facts = RoutineFacts {
        members: members.clone(),
        entry,
        arrival_invs: Vec::new(),
        exit_invs: Vec::new(),
        fetches: Vec::new(),
        isyncs: Vec::new(),
        syncs: Vec::new(),
        returns: Vec::new(),
        hwbars: Vec::new(),
        lls: Vec::new(),
        inv_bases: BTreeSet::new(),
        toggles_sense: false,
        touches_memory: false,
    };
    for &i in &members {
        let instr = instr_at(i);
        let state = states[i].as_ref();
        if cfg.succs(i).is_empty() {
            facts.returns.push(i);
        }
        if instr.mem_ref().is_some() {
            facts.touches_memory = true;
        }
        match instr {
            Instr::Isync => facts.isyncs.push(i),
            Instr::Sync => facts.syncs.push(i),
            Instr::HwBar(id) => facts.hwbars.push((i, id)),
            Instr::Ll(..) => facts.lls.push(i),
            // The sense flag lives at a fixed TLS offset; the TLS base
            // itself is outside the abstract domain, so match it directly.
            Instr::St(_, base, off, sim_isa::MemWidth::D)
                if base == Reg::TLS && Some(off) == spec.tls_offset =>
            {
                facts.toggles_sense = true;
            }
            // An I-filter "fetch" is the indirect call into the arrival
            // stub line (no `mem_ref`: it is an instruction fetch).
            Instr::Jalr(rd, base, off) if !rd.is_zero() => {
                if let Some(classes) = state.and_then(|st| classify(st, base, off)) {
                    if classes.iter().any(|&c| is_arrival(region_kind_of(spec, c))) {
                        facts.fetches.push(i);
                    }
                }
            }
            _ => {}
        }
        let classes = instr
            .mem_ref()
            .and_then(|m| state.and_then(|st| classify(st, m.base, m.offset)));
        let Some(classes) = classes else { continue };
        let kinds: Vec<Option<RegionKind>> =
            classes.iter().map(|&c| region_kind_of(spec, c)).collect();
        match instr {
            Instr::Dcbi(..) | Instr::Icbi(..) => {
                if kinds.iter().any(|&k| is_arrival(k)) {
                    facts.arrival_invs.push(i);
                    for &c in &classes {
                        if let AddrClass::PerThread(base) = c {
                            if is_arrival(region_kind_of(spec, c)) {
                                facts.inv_bases.insert(base);
                            }
                        }
                    }
                }
                if kinds.contains(&Some(RegionKind::Exit)) {
                    facts.exit_invs.push(i);
                }
            }
            Instr::Ld(..) | Instr::Ll(..) if kinds.iter().any(|&k| is_arrival(k)) => {
                facts.fetches.push(i);
            }
            _ => {}
        }
    }
    facts
}

/// Check one barrier's routine against its protocol contract.
pub fn check(program: &Program, cfg: &Cfg, spec: &ProtocolSpec, diags: &mut Vec<Diagnostic>) {
    use BarrierMechanism::*;
    let Some(entry_pc) = program.symbol(&spec.entry) else {
        diags.push(Diagnostic::global(
            Severity::Error,
            rules::BARRIER_ENTRY,
            format!("barrier entry label `{}` is not in the program", spec.entry),
        ));
        return;
    };
    let Some(entry) = idx_of(entry_pc, cfg.len()) else {
        diags.push(Diagnostic::global(
            Severity::Error,
            rules::BARRIER_ENTRY,
            format!(
                "barrier entry `{}` resolves to {entry_pc:#x}, outside the image",
                spec.entry
            ),
        ));
        return;
    };
    let facts = gather(program, cfg, spec, entry);
    match spec.mechanism {
        SwCentral | SwTree | SwHier => {
            check_llsc(program, cfg, &facts, diags);
            check_sense(spec, &facts, diags);
        }
        FilterDHier => {
            check_entry_sync(program, spec, &facts, diags);
            check_arrival(cfg, spec, &facts, diags);
            check_post_fetch_sync(cfg, spec, &facts, diags);
            check_exit(cfg, spec, &facts, diags);
        }
        FilterD => {
            check_entry_sync(program, spec, &facts, diags);
            check_arrival(cfg, spec, &facts, diags);
            check_post_fetch_sync(cfg, spec, &facts, diags);
            check_exit(cfg, spec, &facts, diags);
        }
        FilterDPingPong => {
            check_entry_sync(program, spec, &facts, diags);
            check_arrival(cfg, spec, &facts, diags);
            check_post_fetch_sync(cfg, spec, &facts, diags);
            check_ping_pong(spec, &facts, diags);
            check_sense(spec, &facts, diags);
        }
        FilterI => {
            check_entry_sync(program, spec, &facts, diags);
            check_arrival(cfg, spec, &facts, diags);
            check_exit(cfg, spec, &facts, diags);
        }
        FilterIPingPong => {
            check_entry_sync(program, spec, &facts, diags);
            check_arrival(cfg, spec, &facts, diags);
            check_ping_pong(spec, &facts, diags);
            check_sense(spec, &facts, diags);
        }
        HwDedicated => check_hwbar(spec, &facts, diags),
    }
}

/// The mechanism-specific lint rules the protocol linter can emit for `mechanism`
/// (beyond the structural `R-BARRIER-ENTRY`, which applies to all).
///
/// This is the anti-rot contract: adding a mechanism without wiring at
/// least one protocol lint for it makes this return an empty slice, which
/// the analyzer test suite rejects.
pub fn mechanism_rules(mechanism: BarrierMechanism) -> &'static [&'static str] {
    use BarrierMechanism::*;
    match mechanism {
        SwCentral | SwTree | SwHier => &[rules::BARRIER_LLSC, rules::BARRIER_SENSE],
        FilterD | FilterDHier => &[
            rules::BARRIER_SYNC,
            rules::BARRIER_DCBI_FETCH,
            rules::BARRIER_ISYNC,
            rules::BARRIER_EXIT,
        ],
        FilterDPingPong => &[
            rules::BARRIER_SYNC,
            rules::BARRIER_DCBI_FETCH,
            rules::BARRIER_ISYNC,
            rules::BARRIER_PINGPONG,
            rules::BARRIER_SENSE,
        ],
        FilterI => &[
            rules::BARRIER_SYNC,
            rules::BARRIER_DCBI_FETCH,
            rules::BARRIER_ISYNC,
            rules::BARRIER_EXIT,
        ],
        FilterIPingPong => &[
            rules::BARRIER_SYNC,
            rules::BARRIER_DCBI_FETCH,
            rules::BARRIER_ISYNC,
            rules::BARRIER_PINGPONG,
            rules::BARRIER_SENSE,
        ],
        HwDedicated => &[rules::BARRIER_HWBAR],
    }
}

fn check_entry_sync(
    program: &Program,
    spec: &ProtocolSpec,
    facts: &RoutineFacts,
    diags: &mut Vec<Diagnostic>,
) {
    let first = program.fetch(pc_of(facts.entry)).expect("entry in range");
    if first != Instr::Sync {
        diags.push(Diagnostic::at(
            Severity::Error,
            pc_of(facts.entry),
            rules::BARRIER_SYNC,
            format!(
                "{} routine must begin with `sync` so arrival publishes all prior stores",
                spec.mechanism
            ),
        ));
    }
}

fn check_arrival(
    cfg: &Cfg,
    spec: &ProtocolSpec,
    facts: &RoutineFacts,
    diags: &mut Vec<Diagnostic>,
) {
    if facts.arrival_invs.is_empty() {
        diags.push(Diagnostic::at(
            Severity::Error,
            pc_of(facts.entry),
            rules::BARRIER_DCBI_FETCH,
            format!(
                "{} routine never invalidates an arrival line",
                spec.mechanism
            ),
        ));
        return;
    }
    for &inv in &facts.arrival_invs {
        // All paths from the invalidate must hit a fetch before returning.
        let avoid_fetch = cfg.reachable_avoiding(cfg.succs(inv).iter().copied(), &facts.fetches);
        if facts.returns.iter().any(|&r| avoid_fetch[r]) {
            diags.push(Diagnostic::at(
                Severity::Error,
                pc_of(inv),
                rules::BARRIER_DCBI_FETCH,
                "arrival line is invalidated but a path returns without fetching it \
                 (the thread would never stall for the release)",
            ));
        }
        // ... and an `isync` must separate the invalidate from the fetch.
        let avoid_isync = cfg.reachable_avoiding(cfg.succs(inv).iter().copied(), &facts.isyncs);
        if facts.fetches.iter().any(|&f| avoid_isync[f]) {
            diags.push(Diagnostic::at(
                Severity::Error,
                pc_of(inv),
                rules::BARRIER_ISYNC,
                "arrival fetch can execute without an `isync` after the invalidate \
                 (a prefetched stale line could satisfy it)",
            ));
        }
    }
}

fn check_post_fetch_sync(
    cfg: &Cfg,
    spec: &ProtocolSpec,
    facts: &RoutineFacts,
    diags: &mut Vec<Diagnostic>,
) {
    let _ = spec;
    for &f in &facts.fetches {
        let avoid_sync = cfg.reachable_avoiding(cfg.succs(f).iter().copied(), &facts.syncs);
        if facts.returns.iter().any(|&r| avoid_sync[r]) {
            diags.push(Diagnostic::at(
                Severity::Error,
                pc_of(f),
                rules::BARRIER_SYNC,
                "a path returns after the arrival fetch without a `sync` release fence",
            ));
        }
    }
}

fn check_exit(cfg: &Cfg, spec: &ProtocolSpec, facts: &RoutineFacts, diags: &mut Vec<Diagnostic>) {
    let _ = spec;
    for &f in &facts.fetches {
        let avoid_exit = cfg.reachable_avoiding(cfg.succs(f).iter().copied(), &facts.exit_invs);
        if facts.returns.iter().any(|&r| avoid_exit[r]) {
            diags.push(Diagnostic::at(
                Severity::Error,
                pc_of(f),
                rules::BARRIER_EXIT,
                "a path returns without invalidating the exit line; the next episode's \
                 state machine would never reset",
            ));
        }
    }
}

fn check_ping_pong(spec: &ProtocolSpec, facts: &RoutineFacts, diags: &mut Vec<Diagnostic>) {
    let wanted: Vec<u64> = spec
        .regions
        .iter()
        .filter(|r| matches!(r.kind, RegionKind::Arrival | RegionKind::ArrivalAlt))
        .map(|r| r.base)
        .collect();
    for base in wanted {
        if !facts.inv_bases.contains(&base) {
            diags.push(Diagnostic::at(
                Severity::Error,
                pc_of(facts.entry),
                rules::BARRIER_PINGPONG,
                format!("ping-pong routine never signals through the arrival range at {base:#x}"),
            ));
        }
    }
}

fn check_sense(spec: &ProtocolSpec, facts: &RoutineFacts, diags: &mut Vec<Diagnostic>) {
    if spec.tls_offset.is_some() && !facts.toggles_sense {
        diags.push(Diagnostic::at(
            Severity::Error,
            pc_of(facts.entry),
            rules::BARRIER_SENSE,
            "sense-reversing routine never stores its TLS sense flag; the next episode \
             would observe a stale sense",
        ));
    }
}

fn check_llsc(program: &Program, cfg: &Cfg, facts: &RoutineFacts, diags: &mut Vec<Diagnostic>) {
    let _ = cfg;
    let n = facts.members.last().map_or(0, |&m| m + 1);
    for &ll in &facts.lls {
        let Instr::Ll(_, ll_base, ll_off) = program.fetch(pc_of(ll)).expect("ll in range") else {
            continue;
        };
        let mut sc = None;
        for j in ll + 1..(ll + 9).min(n) {
            if let Instr::Sc(d, _, base, off) = program.fetch(pc_of(j)).expect("in range") {
                if base == ll_base && off == ll_off {
                    sc = Some((j, d));
                }
                break;
            }
        }
        let Some((sc_idx, sc_dest)) = sc else {
            diags.push(Diagnostic::at(
                Severity::Error,
                pc_of(ll),
                rules::BARRIER_LLSC,
                "load-linked has no matching store-conditional to the same address",
            ));
            continue;
        };
        let mut retries = false;
        for j in sc_idx + 1..(sc_idx + 5).min(n) {
            if let Instr::Beq(a, b, t) = program.fetch(pc_of(j)).expect("in range") {
                let tests_sc = (a == sc_dest && b.is_zero()) || (b == sc_dest && a.is_zero());
                if tests_sc && t.0 == pc_of(ll) {
                    retries = true;
                    break;
                }
            }
        }
        if !retries {
            diags.push(Diagnostic::at(
                Severity::Error,
                pc_of(sc_idx),
                rules::BARRIER_LLSC,
                "store-conditional failure does not branch back to the load-linked",
            ));
        }
    }
}

fn check_hwbar(spec: &ProtocolSpec, facts: &RoutineFacts, diags: &mut Vec<Diagnostic>) {
    match facts.hwbars.as_slice() {
        [(_, id)] if spec.hw_id.is_none() || Some(*id) == spec.hw_id => {}
        [(i, id)] => diags.push(Diagnostic::at(
            Severity::Error,
            pc_of(*i),
            rules::BARRIER_HWBAR,
            format!(
                "hwbar id {id} does not match the registered group {:?}",
                spec.hw_id
            ),
        )),
        [] => diags.push(Diagnostic::at(
            Severity::Error,
            pc_of(facts.entry),
            rules::BARRIER_HWBAR,
            "dedicated-network routine contains no `hwbar`",
        )),
        more => diags.push(Diagnostic::at(
            Severity::Error,
            pc_of(more[1].0),
            rules::BARRIER_HWBAR,
            "dedicated-network routine signals more than once per crossing",
        )),
    }
    if facts.touches_memory {
        diags.push(Diagnostic::at(
            Severity::Error,
            pc_of(facts.entry),
            rules::BARRIER_HWBAR,
            "dedicated-network routine must not touch memory",
        ));
    }
}
