//! Property layer of the bounded model checker.
//!
//! [`mc`](crate::mc) explores the interleaving space of a barrier routine;
//! this module decides what counts as a violation and how a counterexample
//! is presented. Each property has a stable `R-MC-*` rule id (see
//! [`rules`](crate::diag::rules)), and every emitted [`Diagnostic`] carries
//! the full minimized schedule — the breadth-first path of visible
//! operations, one `t<core>@<pc> <op>` step per scheduled transition — so a
//! failing mechanism can be replayed by hand.

use barrier_filter::{FsmEvent, FsmViolation, ProtocolSpec};
use sim_isa::{Instr, Program};

use crate::diag::{rules, Diagnostic, Severity};

/// One scheduled transition of a counterexample: which core moved, at
/// which pc, and whether the move was a normal visible operation, a fetch
/// satisfied by a stale prefetched copy, or an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Act {
    /// Core that moved.
    pub core: u8,
    /// Program counter of the visible operation (the parked pc for a
    /// fault on a blocked core).
    pub pc: u64,
    /// Flavor of the move.
    pub tag: ActTag,
}

/// Flavor of one scheduled transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ActTag {
    /// The core executed the visible operation at its pc.
    Op,
    /// The fetch at the pc was satisfied by a stale prefetched copy of
    /// the just-invalidated line (reachable only when no `isync`
    /// separates the invalidate from the fetch).
    StaleBypass,
    /// The injected `SwitchOut`/`Migrate` fault hit the core: its LL
    /// reservation and prefetched state are lost and a parked fill is
    /// cancelled and re-issued (§3.3.3).
    Fault,
}

/// A property violation found during exploration, before it is attached
/// to its schedule: rule id, the pc of the offending operation (if any),
/// and the human-readable cause.
pub(crate) struct Viol {
    pub rule: &'static str,
    pub pc: Option<u64>,
    pub msg: String,
}

impl Viol {
    pub(crate) fn new(rule: &'static str, pc: Option<u64>, msg: impl Into<String>) -> Viol {
        Viol {
            rule,
            pc,
            msg: msg.into(),
        }
    }
}

/// Map a filter FSM violation (§3.3.4) to the barrier-level property it
/// breaks: a misplaced invalidate means the thread left or re-entered an
/// episode the filter had not closed (episode atomicity), while a fill
/// the filter cannot account for is an arrival the barrier lost.
pub(crate) fn fsm_violation(v: &FsmViolation, core: usize, pc: u64) -> Viol {
    let rule = match v.event {
        FsmEvent::ArrivalInvalidate | FsmEvent::ExitInvalidate => rules::MC_EPISODE_ATOMIC,
        FsmEvent::ArrivalFill => rules::MC_LOST_WAKEUP,
    };
    Viol::new(rule, Some(pc), format!("t{core}: {v}"))
}

/// Check the two return-time properties when core `core` finishes an
/// episode: sense-reversal soundness (the TLS sense slot must alternate
/// once per completed episode) and episode atomicity (no peer may still
/// be short of the episode this core just completed).
pub(crate) fn check_return(
    spec: &ProtocolSpec,
    core: usize,
    completed: u32,
    sense: Option<u64>,
    entered: impl Iterator<Item = (usize, u32)>,
) -> Option<Viol> {
    if let Some(sense) = sense {
        let expect = u64::from(completed % 2);
        if sense != expect {
            return Some(Viol::new(
                rules::MC_SENSE,
                None,
                format!(
                    "t{core}: TLS sense slot is {sense} after completing episode {completed} \
                     (expected {expect}; the sense flag did not alternate)"
                ),
            ));
        }
    }
    for (peer, peer_entered) in entered {
        if peer != core && peer_entered < completed {
            return Some(Viol::new(
                rules::MC_EPISODE_ATOMIC,
                None,
                format!(
                    "t{core}: completed episode {completed} of `{}` while t{peer} has only \
                     entered episode {peer_entered} — the barrier released early",
                    spec.entry
                ),
            ));
        }
    }
    None
}

/// Collects counterexamples, keeping the first (shortest, since the
/// explorer is breadth-first) schedule per rule id.
#[derive(Default)]
pub(crate) struct PropSink {
    found: Vec<Diagnostic>,
}

impl PropSink {
    /// Record `viol` with its schedule unless this rule already has a
    /// counterexample.
    pub(crate) fn report(&mut self, program: &Program, viol: Viol, path: &[Act]) {
        if self.found.iter().any(|d| d.rule == viol.rule) {
            return;
        }
        let msg = format!("{}; schedule: {}", viol.msg, render(program, path));
        self.found.push(match viol.pc {
            Some(pc) => Diagnostic::at(Severity::Error, pc, viol.rule, msg),
            None => Diagnostic::global(Severity::Error, viol.rule, msg),
        });
    }

    /// Whether any counterexample has been recorded.
    pub(crate) fn any(&self) -> bool {
        !self.found.is_empty()
    }

    /// The collected diagnostics, in discovery order.
    pub(crate) fn into_diags(self) -> Vec<Diagnostic> {
        self.found
    }
}

/// Maximum schedule steps spelled out before eliding the middle.
const RENDER_CAP: usize = 48;

/// Render a schedule as `t0@0x10004 dcbi -> t1@0x10010 ll -> ...`.
pub(crate) fn render(program: &Program, path: &[Act]) -> String {
    if path.is_empty() {
        return "<initial state>".into();
    }
    let step = |a: &Act| -> String {
        match a.tag {
            ActTag::Fault => format!("t{}@{:#x} <fault>", a.core, a.pc),
            ActTag::StaleBypass => {
                format!("t{}@{:#x} {}(stale)", a.core, a.pc, mnemonic(program, a.pc))
            }
            ActTag::Op => format!("t{}@{:#x} {}", a.core, a.pc, mnemonic(program, a.pc)),
        }
    };
    if path.len() <= RENDER_CAP {
        let steps: Vec<String> = path.iter().map(step).collect();
        steps.join(" -> ")
    } else {
        let head: Vec<String> = path[..RENDER_CAP / 2].iter().map(step).collect();
        let tail: Vec<String> = path[path.len() - RENDER_CAP / 2..]
            .iter()
            .map(step)
            .collect();
        format!(
            "{} -> ... ({} steps elided) ... -> {}",
            head.join(" -> "),
            path.len() - RENDER_CAP,
            tail.join(" -> ")
        )
    }
}

/// Short operation name for a schedule step.
fn mnemonic(program: &Program, pc: u64) -> &'static str {
    match program.fetch(pc) {
        Some(Instr::Ld(..)) => "ld",
        Some(Instr::St(..)) => "st",
        Some(Instr::Ll(..)) => "ll",
        Some(Instr::Sc(..)) => "sc",
        Some(Instr::Dcbi(..)) => "dcbi",
        Some(Instr::Icbi(..)) => "icbi",
        Some(Instr::HwBar(_)) => "hwbar",
        Some(Instr::Jal(..)) | Some(Instr::Jalr(..)) => "fetch",
        Some(_) => "op",
        // A pc inside an arrival-stub line the image does not cover, or a
        // parked fill: describe it as the fetch it is.
        None => "fetch",
    }
}
