//! Register def-use dataflow: possibly-uninitialized reads and dead
//! stores.
//!
//! Both passes run over the instruction-level [`Cfg`] with 64-bit
//! register masks (32 integer + 32 floating-point registers):
//!
//! * **Uninitialized reads** ([`rules::DF_UNINIT`], Warning): forward
//!   may-defined analysis (union at joins). A read is flagged only when
//!   *no* path from any entry point writes the register first — the
//!   conservative direction for a lint.
//! * **Dead stores** ([`rules::DF_DEADSTORE`], Info): backward liveness
//!   (union at joins). A write is flagged when no path onward reads the
//!   register before it is overwritten or execution ends.
//!
//! Registers the loader initializes (`zero`, `sp`, `tls`, `tid`, `ntid`)
//! are treated as defined at every entry point. Roots entered mid-protocol
//! (the I-cache filter arrival stubs, reached by an indirect call) start
//! with *every* register defined, since their live state comes from the
//! caller.

use sim_isa::{Instr, Program, Reg};

use crate::cfg::{pc_of, Cfg};
use crate::diag::{rules, Diagnostic, Severity};

/// Bitmask over the 64 architectural registers: integer register `r` is
/// bit `r.index()`, FP register `f` is bit `32 + f.index()`.
type RegMask = u64;

fn int_bit(r: Reg) -> RegMask {
    1u64 << r.index()
}

fn def_mask(instr: &Instr) -> RegMask {
    let mut m = 0;
    if let Some(d) = instr.def() {
        if !d.is_zero() {
            m |= int_bit(d);
        }
    }
    if let Some(d) = instr.fdef() {
        m |= 1u64 << (32 + d.index());
    }
    m
}

fn use_mask(instr: &Instr) -> RegMask {
    let mut m = 0;
    for r in instr.int_uses().into_iter().flatten() {
        if !r.is_zero() {
            m |= int_bit(r);
        }
    }
    for f in instr.fp_uses().into_iter().flatten() {
        m |= 1u64 << (32 + f.index());
    }
    m
}

/// Registers the thread loader sets before the first instruction runs.
fn loader_defined() -> RegMask {
    int_bit(Reg::ZERO)
        | int_bit(Reg::SP)
        | int_bit(Reg::TLS)
        | int_bit(Reg::TID)
        | int_bit(Reg::NTID)
}

/// An analysis entry point: an instruction index plus the registers that
/// are live-in there by convention.
#[derive(Debug, Clone, Copy)]
pub struct Root {
    /// Instruction index where execution can begin.
    pub idx: usize,
    /// Whether every register should be treated as already defined (true
    /// for code entered mid-protocol, like arrival stubs).
    pub all_defined: bool,
}

fn reg_name(bit: u32) -> String {
    if bit < 32 {
        Reg::new(bit as u8).to_string()
    } else {
        format!("f{}", bit - 32)
    }
}

/// Run both dataflow lints over the instructions reachable from `roots`.
pub fn check(program: &Program, cfg: &Cfg, roots: &[Root], diags: &mut Vec<Diagnostic>) {
    let n = cfg.len();
    if n == 0 {
        return;
    }
    let instrs: Vec<Instr> = (0..n)
        .map(|i| program.fetch(pc_of(i)).expect("idx in range"))
        .collect();
    let reachable = cfg.reachable_from(roots.iter().map(|r| r.idx));

    // Forward may-defined: in[i] = union over preds of out[p]; a root
    // contributes its convention mask. Union joins mean a register is
    // "possibly defined" as soon as any path writes it.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, _) in instrs.iter().enumerate() {
        for &s in cfg.succs(i) {
            preds[s].push(i);
        }
    }
    let mut root_mask: Vec<Option<RegMask>> = vec![None; n];
    for r in roots {
        if r.idx < n {
            let mask = if r.all_defined {
                u64::MAX
            } else {
                loader_defined()
            };
            root_mask[r.idx] = Some(root_mask[r.idx].unwrap_or(0) | mask);
        }
    }
    let mut defined_in: Vec<RegMask> = vec![0; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if !reachable[i] {
                continue;
            }
            let mut new_in = root_mask[i].unwrap_or(0);
            for &p in &preds[i] {
                if reachable[p] {
                    new_in |= defined_in[p] | def_mask(&instrs[p]);
                }
            }
            if new_in != defined_in[i] {
                defined_in[i] = new_in;
                changed = true;
            }
        }
    }
    for (i, instr) in instrs.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let unseen = use_mask(instr) & !defined_in[i];
        let mut bits = unseen;
        while bits != 0 {
            let bit = bits.trailing_zeros();
            bits &= bits - 1;
            diags.push(Diagnostic::at(
                Severity::Warning,
                pc_of(i),
                rules::DF_UNINIT,
                format!(
                    "register {} is read here but written on no path from any entry point",
                    reg_name(bit)
                ),
            ));
        }
    }

    // Backward liveness for dead stores.
    let mut live_in: Vec<RegMask> = vec![0; n];
    changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            if !reachable[i] {
                continue;
            }
            let mut live_out = 0;
            for &s in cfg.succs(i) {
                live_out |= live_in[s];
            }
            let new_in = use_mask(&instrs[i]) | (live_out & !def_mask(&instrs[i]));
            if new_in != live_in[i] {
                live_in[i] = new_in;
                changed = true;
            }
        }
    }
    for (i, instr) in instrs.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        // Link-register defs are calling convention, not data: the use
        // sits behind an indirect edge the CFG cannot see.
        if matches!(instr, Instr::Jal(..) | Instr::Jalr(..)) {
            continue;
        }
        let mut live_out = 0;
        for &s in cfg.succs(i) {
            live_out |= live_in[s];
        }
        let dead = def_mask(instr) & !live_out;
        let mut bits = dead;
        while bits != 0 {
            let bit = bits.trailing_zeros();
            bits &= bits - 1;
            diags.push(Diagnostic::at(
                Severity::Info,
                pc_of(i),
                rules::DF_DEADSTORE,
                format!(
                    "register {} is written here but never read afterwards",
                    reg_name(bit)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Asm;

    fn analyze(build: impl FnOnce(&mut Asm)) -> Vec<Diagnostic> {
        let mut a = Asm::new();
        build(&mut a);
        let p = a.assemble().unwrap();
        let mut diags = Vec::new();
        let cfg = Cfg::build(&p, &mut diags);
        check(
            &p,
            &cfg,
            &[Root {
                idx: 0,
                all_defined: false,
            }],
            &mut diags,
        );
        diags
    }

    #[test]
    fn uninitialized_read_is_flagged() {
        let diags = analyze(|a| {
            a.add(Reg::T0, Reg::T1, Reg::T2); // t1, t2 never written
            a.halt();
        });
        let uninit: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == rules::DF_UNINIT)
            .collect();
        assert_eq!(uninit.len(), 2);
        assert!(uninit[0].message.contains("t1"));
    }

    #[test]
    fn loader_registers_are_predefined() {
        let diags = analyze(|a| {
            a.add(Reg::T0, Reg::TID, Reg::NTID);
            a.std(Reg::T0, Reg::TLS, 0);
            a.halt();
        });
        assert!(diags.iter().all(|d| d.rule != rules::DF_UNINIT));
    }

    #[test]
    fn write_on_one_path_suppresses_the_warning() {
        let diags = analyze(|a| {
            a.beq(Reg::TID, Reg::ZERO, "skip");
            a.li(Reg::T0, 7);
            a.label("skip").unwrap();
            a.addi(Reg::T1, Reg::T0, 1); // t0 defined on the fallthrough path only
            a.halt();
        });
        assert!(
            diags
                .iter()
                .all(|d| d.rule != rules::DF_UNINIT || !d.message.contains("t0 ")),
            "may-defined analysis must not warn: {diags:?}"
        );
    }

    #[test]
    fn dead_store_is_info() {
        let diags = analyze(|a| {
            a.li(Reg::T0, 1); // overwritten before any read
            a.li(Reg::T0, 2);
            a.std(Reg::T0, Reg::TLS, 0);
            a.halt();
        });
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == rules::DF_DEADSTORE)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].severity, Severity::Info);
        assert_eq!(dead[0].pc, Some(pc_of(0)));
    }

    #[test]
    fn loop_carried_values_are_live() {
        let diags = analyze(|a| {
            a.li(Reg::T0, 8);
            a.label("top").unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bne(Reg::T0, Reg::ZERO, "top");
            a.halt();
        });
        assert!(diags.iter().all(|d| d.rule != rules::DF_DEADSTORE));
    }
}
