//! Bounded model checker for barrier protocols: exhaustive interleaving
//! exploration of the *actual emitted* MiniRISC barrier routine.
//!
//! The checker runs a small instance (2–4 cores, 2 consecutive episodes)
//! of one barrier on an abstract sync-memory machine. Only the state the
//! protocol can observe is tracked: the 64-bit words of the registered
//! [`ProtocolSpec::regions`], the per-core TLS sense slots, LL/SC
//! reservations, the per-slot filter FSM of Figure 3 (with parked fills —
//! the sleep/wake transitions of §3.2), and the dedicated-network arrival
//! set. Everything else a routine does is core-local and deterministic,
//! so cores only interleave at *visible* operations: sync-region
//! accesses, arrival-line invalidates and fills, and `hwbar`.
//!
//! That local-determinism collapse is the partial-order reduction: a
//! core's straight-line segment between two visible operations touches no
//! location another core can observe (per the `SyncRegion` metadata), so
//! it forms a singleton persistent set and is executed atomically with
//! the preceding visible operation. The remaining interleavings are
//! deduplicated by hashing visited states, which merges schedules that
//! commute to the same abstract state. Exploration is breadth-first, so
//! the first counterexample per rule is depth-minimal.
//!
//! Two sources of nondeterminism beyond scheduling are modeled:
//!
//! * **Stale prefetch**: after a core invalidates its own arrival line,
//!   a fetch of that line *may* be satisfied by a stale prefetched copy
//!   unless an `isync` intervenes — exactly the hazard `R-BARRIER-ISYNC`
//!   lints for, but explored semantically here.
//! * **Faults** ([`McConfig::fault`]): one nondeterministic
//!   `SwitchOut`/`Migrate` transition, mirroring the runtime `FaultKind`s:
//!   the victim loses its LL reservation and prefetched state, and a
//!   parked fill is cancelled and re-issued when it runs again (§3.3.3).
//!
//! Checked properties (see [`rules`]): `R-MC-DEADLOCK`,
//! `R-MC-LOST-WAKEUP`, `R-MC-EPISODE-ATOMIC`, `R-MC-SENSE` and
//! `R-MC-HW-PAIRING`. Counterexamples carry the full minimized schedule;
//! the `props` module holds how each property is evaluated.
//!
//! What this does *not* prove: anything about data memory (fence
//! placement for kernel data is `R-BARRIER-SYNC`'s job), real-time
//! behavior, or instances larger than the explored bound.

use std::collections::{BTreeMap, HashMap, VecDeque};

use barrier_filter::{fsm, FsmAction, FsmEvent, ProtocolSpec, RegionKind, ThreadState};
use sim_isa::{Instr, Program, Reg, INSTR_BYTES, LINE_BYTES};

use crate::diag::{rules, Diagnostic, Severity};
use crate::props::{self, Act, ActTag, PropSink, Viol};

/// Return address installed by the driver: a pc outside any code image,
/// so reaching it means the routine returned (one episode completed).
const SENTINEL: u64 = 0xdead_0000;

/// Synthetic per-core TLS base (the checker, not the loader, places TLS).
const TLS_BASE: u64 = 0x7f00_0000;

/// Modeled TLS bytes per core (the sense slots live at small offsets).
const TLS_BYTES: u64 = 64;

/// Per-core TLS block stride (matches the runtime's 4-line blocks).
const TLS_STRIDE: u64 = 256;

/// Straight-line instructions a core may execute between two visible
/// operations before the checker calls it a non-synchronizing loop.
const LOCAL_CAP: usize = 2048;

/// Registers the abstract machine tracks: everything the barrier
/// runtime's register convention lets a routine read or clobber.
const TRACKED: [Reg; 10] = [
    Reg::RA,
    Reg::TLS,
    Reg::T6,
    Reg::T7,
    Reg::T8,
    Reg::T9,
    Reg::K0,
    Reg::K1,
    Reg::TID,
    Reg::NTID,
];

/// Exploration bounds and the fault dimension.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Consecutive episodes each core runs (2 exercises episode reuse:
    /// sense reversal, counter reset, filter exit).
    pub episodes: u32,
    /// Inject one nondeterministic `SwitchOut`/`Migrate` transition.
    pub fault: bool,
    /// Abort (marking the report truncated) past this many states.
    pub max_states: usize,
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            episodes: 2,
            fault: false,
            max_states: 200_000,
        }
    }
}

/// The result of one bounded exploration.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Distinct abstract states reached.
    pub states: u64,
    /// Transitions executed (including edges into already-visited states).
    pub transitions: u64,
    /// Whether exploration hit [`McConfig::max_states`] (verdicts below
    /// only cover the explored prefix).
    pub truncated: bool,
    /// Counterexamples, at most one per `R-MC-*` rule, each carrying its
    /// minimized schedule.
    pub diagnostics: Vec<Diagnostic>,
}

impl McReport {
    /// Whether the explored space satisfied every property.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Where a core stands between transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Status {
    /// Stopped at its next visible operation (or mid-init).
    Running,
    /// Fill parked in filter table `table`, slot `slot` (asleep).
    Parked { table: u8, slot: u8 },
    /// Arrived at the dedicated-network barrier, awaiting fire.
    HwWait,
    /// All episodes completed (or the routine halted).
    Done,
}

/// One core of the abstract machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Core {
    pc: u64,
    regs: [u64; TRACKED.len()],
    tls: [u64; (TLS_BYTES / 8) as usize],
    status: Status,
    /// Episodes begun (1 at init: every core starts inside episode 1).
    entered: u32,
    /// Episodes completed (returns from the routine).
    completed: u32,
    /// Arrival line whose pre-invalidate contents may still satisfy a
    /// fetch (set by the core's own invalidate, cleared by `isync`).
    stale: Option<u64>,
    /// LL reservation (line address).
    link: Option<u64>,
}

/// Per-slot FSM states and parked-fill masks of one filter table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Table {
    slots: Vec<ThreadState>,
    /// Bitmask of cores whose fill is parked on each slot.
    parked: Vec<u8>,
}

/// One abstract machine state: everything the protocol can observe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct McState {
    cores: Vec<Core>,
    /// Sync-region words (8-byte aligned; absent means 0).
    mem: BTreeMap<u64, u64>,
    tables: Vec<Table>,
    /// Cores arrived at the dedicated-network barrier.
    hw_arrived: u8,
    /// Remaining fault injections.
    faults_left: u8,
}

/// Static description of one filter table, derived from the spec's
/// region list exactly as the runtime derives its `FilterTableConfig`s:
/// each `Arrival` region pairs with the following `Exit` region, and a
/// ping-pong `Arrival`/`ArrivalAlt` pair yields two cross-linked tables
/// (each range is the other table's exit) with the alternate table
/// starting in `Servicing`.
struct TableCfg {
    arrival: (u64, u64),
    exit: Option<(u64, u64)>,
    init: ThreadState,
}

impl TableCfg {
    fn lines(&self) -> usize {
        ((self.arrival.1 - self.arrival.0) / LINE_BYTES) as usize
    }
}

fn span(r: &barrier_filter::SyncRegion) -> (u64, u64) {
    (r.base, r.base + r.bytes)
}

fn derive_tables(spec: &ProtocolSpec) -> Vec<TableCfg> {
    let regs = &spec.regions;
    let mut tables = Vec::new();
    let mut i = 0;
    while i < regs.len() {
        if regs[i].kind == RegionKind::Arrival {
            if i + 1 < regs.len() && regs[i + 1].kind == RegionKind::ArrivalAlt {
                tables.push(TableCfg {
                    arrival: span(&regs[i]),
                    exit: Some(span(&regs[i + 1])),
                    init: ThreadState::Waiting,
                });
                tables.push(TableCfg {
                    arrival: span(&regs[i + 1]),
                    exit: Some(span(&regs[i])),
                    init: ThreadState::Servicing,
                });
                i += 2;
                continue;
            }
            if i + 1 < regs.len() && regs[i + 1].kind == RegionKind::Exit {
                tables.push(TableCfg {
                    arrival: span(&regs[i]),
                    exit: Some(span(&regs[i + 1])),
                    init: ThreadState::Waiting,
                });
                i += 2;
                continue;
            }
            tables.push(TableCfg {
                arrival: span(&regs[i]),
                exit: None,
                init: ThreadState::Waiting,
            });
        }
        i += 1;
    }
    tables
}

/// A visible operation a core is stopped at.
enum Visible {
    /// Fetch of an arrival line (instruction fetch when the pc itself is
    /// in the range, data load otherwise).
    Fill { line: u64 },
    /// Plain read of a sync word (`ll` also takes a reservation).
    Read { addr: u64, rd: Reg, ll: bool },
    /// Plain write of a sync word.
    Write { addr: u64, src: Reg },
    /// Store-conditional to a sync word.
    Sc { addr: u64, rd: Reg, src: Reg },
    /// `dcbi`/`icbi` of a line inside a sync region.
    Inval { line: u64 },
    /// Dedicated-network barrier.
    Hw { id: u16 },
}

fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

fn word_of(addr: u64) -> u64 {
    addr & !7
}

fn slot_of(r: Reg) -> Option<usize> {
    TRACKED.iter().position(|&t| t == r)
}

fn get(core: &Core, r: Reg) -> u64 {
    slot_of(r).map_or(0, |s| core.regs[s])
}

fn set(core: &mut Core, r: Reg, v: u64) {
    if let Some(s) = slot_of(r) {
        core.regs[s] = v;
    }
}

/// The immutable context of one exploration.
struct Machine<'a> {
    program: &'a Program,
    spec: &'a ProtocolSpec,
    entry: u64,
    episodes: u32,
    ncores: usize,
    tables: Vec<TableCfg>,
}

impl<'a> Machine<'a> {
    fn initial_state(&self) -> McState {
        let cores = (0..self.ncores)
            .map(|c| {
                let mut core = Core {
                    pc: self.entry,
                    regs: [0; TRACKED.len()],
                    tls: [0; (TLS_BYTES / 8) as usize],
                    status: Status::Running,
                    entered: 1,
                    completed: 0,
                    stale: None,
                    link: None,
                };
                set(&mut core, Reg::RA, SENTINEL);
                set(&mut core, Reg::TLS, TLS_BASE + c as u64 * TLS_STRIDE);
                set(&mut core, Reg::TID, c as u64);
                set(&mut core, Reg::NTID, self.ncores as u64);
                core
            })
            .collect();
        McState {
            cores,
            mem: BTreeMap::new(),
            tables: self
                .tables
                .iter()
                .map(|t| Table {
                    slots: vec![t.init; t.lines()],
                    parked: vec![0; t.lines()],
                })
                .collect(),
            hw_arrived: 0,
            faults_left: 0,
        }
    }

    fn is_tls(&self, c: usize, ea: u64) -> bool {
        let base = TLS_BASE + c as u64 * TLS_STRIDE;
        ea >= base && ea < base + TLS_STRIDE
    }

    fn tls_slot(&self, c: usize, ea: u64) -> Option<usize> {
        let base = TLS_BASE + c as u64 * TLS_STRIDE;
        if ea >= base && ea < base + TLS_BYTES {
            Some(((ea - base) / 8) as usize)
        } else {
            None
        }
    }

    /// The table whose arrival range contains `addr`, with the slot index.
    fn arrival_at(&self, addr: u64) -> Option<(usize, usize)> {
        self.tables.iter().enumerate().find_map(|(t, cfg)| {
            (addr >= cfg.arrival.0 && addr < cfg.arrival.1)
                .then(|| (t, ((addr - cfg.arrival.0) / LINE_BYTES) as usize))
        })
    }

    /// Classify the operation core `c` is stopped at; `None` means the
    /// current instruction is core-local.
    fn visible_at(&self, st: &McState, c: usize) -> Result<Option<Visible>, Viol> {
        let core = &st.cores[c];
        let pc = core.pc;
        if self.arrival_at(pc).is_some() {
            return Ok(Some(Visible::Fill { line: line_of(pc) }));
        }
        let Some(i) = self.program.fetch(pc) else {
            return Err(Viol::new(
                rules::MC_DEADLOCK,
                Some(pc),
                format!("t{c}: pc {pc:#x} is outside the code image"),
            ));
        };
        let ea = |base: Reg, off: i64| get(core, base).wrapping_add(off as u64);
        Ok(match i {
            Instr::Ld(rd, base, off, _) => {
                let ea = ea(base, off);
                if self.is_tls(c, ea) {
                    None
                } else if self.arrival_at(ea).is_some() {
                    Some(Visible::Fill { line: line_of(ea) })
                } else if self.spec.is_sync_addr(ea) {
                    Some(Visible::Read {
                        addr: word_of(ea),
                        rd,
                        ll: false,
                    })
                } else {
                    None
                }
            }
            Instr::Ll(rd, base, off) => {
                let ea = ea(base, off);
                (!self.is_tls(c, ea) && self.spec.is_sync_addr(ea)).then_some(Visible::Read {
                    addr: word_of(ea),
                    rd,
                    ll: true,
                })
            }
            Instr::St(src, base, off, _) => {
                let ea = ea(base, off);
                (!self.is_tls(c, ea) && self.spec.is_sync_addr(ea)).then_some(Visible::Write {
                    addr: word_of(ea),
                    src,
                })
            }
            Instr::Sc(rd, src, base, off) => {
                let ea = ea(base, off);
                (!self.is_tls(c, ea) && self.spec.is_sync_addr(ea)).then_some(Visible::Sc {
                    addr: word_of(ea),
                    rd,
                    src,
                })
            }
            Instr::Dcbi(base, off) | Instr::Icbi(base, off) => {
                let line = line_of(ea(base, off));
                self.spec
                    .is_sync_addr(line)
                    .then_some(Visible::Inval { line })
            }
            Instr::HwBar(id) => Some(Visible::Hw { id }),
            _ => None,
        })
    }

    /// Execute the (core-local) instruction at `c`'s pc.
    fn exec_local(&self, st: &mut McState, c: usize) -> Result<(), Viol> {
        let pc = st.cores[c].pc;
        let Some(i) = self.program.fetch(pc) else {
            return Err(Viol::new(
                rules::MC_DEADLOCK,
                Some(pc),
                format!("t{c}: pc {pc:#x} is outside the code image"),
            ));
        };
        let core = &mut st.cores[c];
        let mut next = pc + INSTR_BYTES;
        let sdiv = |a: u64, b: u64, rem: bool| -> u64 {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                0
            } else if rem {
                a.wrapping_rem(b) as u64
            } else {
                a.wrapping_div(b) as u64
            }
        };
        match i {
            Instr::Add(rd, a, b) => set(core, rd, get(core, a).wrapping_add(get(core, b))),
            Instr::Sub(rd, a, b) => set(core, rd, get(core, a).wrapping_sub(get(core, b))),
            Instr::Mul(rd, a, b) => set(core, rd, get(core, a).wrapping_mul(get(core, b))),
            Instr::Div(rd, a, b) => set(core, rd, sdiv(get(core, a), get(core, b), false)),
            Instr::Rem(rd, a, b) => set(core, rd, sdiv(get(core, a), get(core, b), true)),
            Instr::And(rd, a, b) => set(core, rd, get(core, a) & get(core, b)),
            Instr::Or(rd, a, b) => set(core, rd, get(core, a) | get(core, b)),
            Instr::Xor(rd, a, b) => set(core, rd, get(core, a) ^ get(core, b)),
            Instr::Sll(rd, a, b) => set(core, rd, get(core, a) << (get(core, b) & 63)),
            Instr::Srl(rd, a, b) => set(core, rd, get(core, a) >> (get(core, b) & 63)),
            Instr::Sra(rd, a, b) => {
                set(
                    core,
                    rd,
                    ((get(core, a) as i64) >> (get(core, b) & 63)) as u64,
                );
            }
            Instr::Slt(rd, a, b) => {
                set(
                    core,
                    rd,
                    u64::from((get(core, a) as i64) < get(core, b) as i64),
                );
            }
            Instr::Sltu(rd, a, b) => set(core, rd, u64::from(get(core, a) < get(core, b))),
            Instr::Min(rd, a, b) => {
                set(
                    core,
                    rd,
                    (get(core, a) as i64).min(get(core, b) as i64) as u64,
                );
            }
            Instr::Max(rd, a, b) => {
                set(
                    core,
                    rd,
                    (get(core, a) as i64).max(get(core, b) as i64) as u64,
                );
            }
            Instr::Addi(rd, a, imm) => set(core, rd, get(core, a).wrapping_add(imm as u64)),
            Instr::Andi(rd, a, imm) => set(core, rd, get(core, a) & imm as u64),
            Instr::Ori(rd, a, imm) => set(core, rd, get(core, a) | imm as u64),
            Instr::Xori(rd, a, imm) => set(core, rd, get(core, a) ^ imm as u64),
            Instr::Slli(rd, a, sh) => set(core, rd, get(core, a) << (sh & 63)),
            Instr::Srli(rd, a, sh) => set(core, rd, get(core, a) >> (sh & 63)),
            Instr::Srai(rd, a, sh) => set(core, rd, ((get(core, a) as i64) >> (sh & 63)) as u64),
            Instr::Slti(rd, a, imm) => set(core, rd, u64::from((get(core, a) as i64) < imm)),
            Instr::Li(rd, imm) => set(core, rd, imm as u64),
            Instr::Ld(rd, base, off, _) => {
                let ea = get(core, base).wrapping_add(off as u64);
                let v = self.tls_slot(c, ea).map_or(0, |s| st.cores[c].tls[s]);
                set(&mut st.cores[c], rd, v);
            }
            Instr::St(src, base, off, _) => {
                let ea = get(core, base).wrapping_add(off as u64);
                let v = get(core, src);
                if let Some(s) = self.tls_slot(c, ea) {
                    st.cores[c].tls[s] = v;
                }
            }
            Instr::Ll(rd, base, off) => {
                let ea = get(core, base).wrapping_add(off as u64);
                core.link = Some(line_of(ea));
                set(&mut st.cores[c], rd, 0);
            }
            Instr::Sc(rd, _, base, off) => {
                let ea = get(core, base).wrapping_add(off as u64);
                let ok = core.link == Some(line_of(ea));
                core.link = None;
                set(core, rd, u64::from(ok));
            }
            Instr::Beq(a, b, t) if get(core, a) == get(core, b) => {
                next = t.0;
            }
            Instr::Bne(a, b, t) if get(core, a) != get(core, b) => {
                next = t.0;
            }
            Instr::Blt(a, b, t) if (get(core, a) as i64) < get(core, b) as i64 => {
                next = t.0;
            }
            Instr::Bge(a, b, t) if (get(core, a) as i64) >= get(core, b) as i64 => {
                next = t.0;
            }
            Instr::Bltu(a, b, t) if get(core, a) < get(core, b) => {
                next = t.0;
            }
            Instr::Bgeu(a, b, t) if get(core, a) >= get(core, b) => {
                next = t.0;
            }
            Instr::Jal(rd, t) => {
                set(core, rd, pc + INSTR_BYTES);
                next = t.0;
            }
            Instr::Jalr(rd, base, off) => {
                next = get(core, base).wrapping_add(off as u64);
                set(core, rd, pc + INSTR_BYTES);
            }
            Instr::Isync => st.cores[c].stale = None,
            Instr::Halt => st.cores[c].status = Status::Done,
            // Floating point never carries protocol state; fences order
            // data memory, which is not modeled; non-sync invalidates are
            // no-ops on the abstract machine.
            _ => {}
        }
        if st.cores[c].status == Status::Running {
            st.cores[c].pc = next;
        }
        Ok(())
    }

    /// Complete a (serviced or bypassed) fill: a data fill delivers the
    /// line's word, an instruction fill executes the arrival stub until
    /// control leaves the arrival range.
    fn complete_fill(&self, st: &mut McState, c: usize) -> Result<(), Viol> {
        let pc = st.cores[c].pc;
        if self.arrival_at(pc).is_none() {
            if let Some(Instr::Ld(rd, ..)) = self.program.fetch(pc) {
                set(&mut st.cores[c], rd, 0);
            }
            st.cores[c].pc = pc + INSTR_BYTES;
            return Ok(());
        }
        let mut steps = 0;
        while st.cores[c].status == Status::Running && self.arrival_at(st.cores[c].pc).is_some() {
            steps += 1;
            if steps > 2 * (LINE_BYTES / INSTR_BYTES) {
                return Err(Viol::new(
                    rules::MC_LOST_WAKEUP,
                    Some(st.cores[c].pc),
                    format!("t{c}: arrival stub never leaves its line"),
                ));
            }
            self.exec_local(st, c)?;
        }
        Ok(())
    }

    /// One episode completed: run the return-time property checks, then
    /// re-enter the routine or retire the core.
    fn episode_return(&self, st: &mut McState, c: usize) -> Result<(), Viol> {
        let completed = st.cores[c].completed + 1;
        st.cores[c].completed = completed;
        let sense = self
            .spec
            .tls_offset
            .and_then(|off| st.cores[c].tls.get(off as usize / 8).copied());
        let entered: Vec<(usize, u32)> = st
            .cores
            .iter()
            .enumerate()
            .map(|(i, co)| (i, co.entered))
            .collect();
        if let Some(v) = props::check_return(self.spec, c, completed, sense, entered.into_iter()) {
            return Err(v);
        }
        if completed == self.episodes {
            st.cores[c].status = Status::Done;
        } else {
            st.cores[c].entered += 1;
            st.cores[c].pc = self.entry;
            set(&mut st.cores[c], Reg::RA, SENTINEL);
        }
        Ok(())
    }

    /// Advance core `c` through its core-local segment until it stops at
    /// the next visible operation, returns, or retires.
    fn run_local(&self, st: &mut McState, c: usize) -> Result<(), Viol> {
        let mut steps = 0;
        loop {
            if st.cores[c].status != Status::Running {
                return Ok(());
            }
            if st.cores[c].pc == SENTINEL {
                self.episode_return(st, c)?;
                continue;
            }
            if self.visible_at(st, c)?.is_some() {
                return Ok(());
            }
            steps += 1;
            if steps > LOCAL_CAP {
                return Err(Viol::new(
                    rules::MC_LOST_WAKEUP,
                    Some(st.cores[c].pc),
                    format!(
                        "t{c}: executed {LOCAL_CAP} straight-line instructions without reaching \
                         a synchronization operation — the routine loops without synchronizing"
                    ),
                ));
            }
            self.exec_local(st, c)?;
        }
    }

    /// Write `val` to a sync word, normalizing zeros away (so states
    /// compare equal regardless of write history) and breaking other
    /// cores' LL reservations on the line.
    fn write_word(&self, st: &mut McState, c: usize, addr: u64, val: u64) {
        if val == 0 {
            st.mem.remove(&addr);
        } else {
            st.mem.insert(addr, val);
        }
        let line = line_of(addr);
        for (j, core) in st.cores.iter_mut().enumerate() {
            if j != c && core.link == Some(line) {
                core.link = None;
            }
        }
    }

    /// Open table `t`: the last thread arrived, so every slot moves
    /// Blocking → Servicing and every parked fill is serviced (wake).
    fn open_table(&self, st: &mut McState, t: usize) -> Result<(), Viol> {
        for s in 0..st.tables[t].slots.len() {
            st.tables[t].slots[s] = ThreadState::Servicing;
        }
        let masks: Vec<u8> = st.tables[t].parked.clone();
        for s in 0..masks.len() {
            st.tables[t].parked[s] = 0;
        }
        for mask in masks.iter() {
            for c in 0..self.ncores {
                if mask & (1 << c) != 0 {
                    st.cores[c].status = Status::Running;
                    self.complete_fill(st, c)?;
                    self.run_local(st, c)?;
                }
            }
        }
        Ok(())
    }

    /// Dispatch an invalidate of `line` to every table it belongs to (a
    /// ping-pong line is one table's arrival and the other's exit).
    fn dispatch_inval(&self, st: &mut McState, c: usize, line: u64, pc: u64) -> Result<(), Viol> {
        for (t, cfg) in self.tables.iter().enumerate() {
            if line >= cfg.arrival.0 && line < cfg.arrival.1 {
                let s = ((line - cfg.arrival.0) / LINE_BYTES) as usize;
                match fsm::step(st.tables[t].slots[s], FsmEvent::ArrivalInvalidate, false) {
                    Ok(FsmAction::Transition(ns)) => {
                        st.tables[t].slots[s] = ns;
                        if st.tables[t]
                            .slots
                            .iter()
                            .all(|&x| x == ThreadState::Blocking)
                        {
                            self.open_table(st, t)?;
                        }
                    }
                    Ok(_) => {}
                    Err(v) => return Err(props::fsm_violation(&v, c, pc)),
                }
            }
            if let Some((lo, hi)) = cfg.exit {
                if line >= lo && line < hi {
                    let s = ((line - lo) / LINE_BYTES) as usize;
                    match fsm::step(st.tables[t].slots[s], FsmEvent::ExitInvalidate, false) {
                        Ok(FsmAction::Transition(ns)) => st.tables[t].slots[s] = ns,
                        Ok(_) => {}
                        Err(v) => return Err(props::fsm_violation(&v, c, pc)),
                    }
                }
            }
        }
        Ok(())
    }

    /// Execute core `c`'s visible operation, yielding one successor per
    /// nondeterministic resolution (two when a stale prefetched copy may
    /// satisfy the fetch).
    fn successors(&self, st: &McState, c: usize) -> Vec<(Act, Result<McState, Viol>)> {
        let pc = st.cores[c].pc;
        let act = |tag| Act {
            core: c as u8,
            pc,
            tag,
        };
        let op = match self.visible_at(st, c) {
            Ok(Some(op)) => op,
            Ok(None) => {
                // Defensive: re-settle the core (cannot happen while the
                // every-running-core-is-at-a-visible-op invariant holds).
                let mut s2 = st.clone();
                let r = self.run_local(&mut s2, c).map(|()| s2);
                return vec![(act(ActTag::Op), r)];
            }
            Err(v) => return vec![(act(ActTag::Op), Err(v))],
        };
        let mut out = Vec::new();
        match op {
            Visible::Fill { line } => {
                if st.cores[c].stale == Some(line) {
                    // The prefetched copy from before the invalidate may
                    // satisfy the fetch: the core sails through without the
                    // filter ever seeing the fill.
                    let mut s2 = st.clone();
                    s2.cores[c].stale = None;
                    let r = self
                        .complete_fill(&mut s2, c)
                        .and_then(|()| self.run_local(&mut s2, c))
                        .map(|()| s2);
                    out.push((act(ActTag::StaleBypass), r));
                }
                let mut s2 = st.clone();
                s2.cores[c].stale = None;
                let r = match self.arrival_at(line) {
                    Some((t, s)) => {
                        match fsm::step(s2.tables[t].slots[s], FsmEvent::ArrivalFill, false) {
                            Ok(FsmAction::Park) => {
                                s2.tables[t].parked[s] |= 1 << c;
                                s2.cores[c].status = Status::Parked {
                                    table: t as u8,
                                    slot: s as u8,
                                };
                                Ok(s2)
                            }
                            Ok(_) => self
                                .complete_fill(&mut s2, c)
                                .and_then(|()| self.run_local(&mut s2, c))
                                .map(|()| s2),
                            Err(v) => Err(props::fsm_violation(&v, c, pc)),
                        }
                    }
                    None => self
                        .complete_fill(&mut s2, c)
                        .and_then(|()| self.run_local(&mut s2, c))
                        .map(|()| s2),
                };
                out.push((act(ActTag::Op), r));
            }
            Visible::Read { addr, rd, ll } => {
                let mut s2 = st.clone();
                let v = s2.mem.get(&addr).copied().unwrap_or(0);
                set(&mut s2.cores[c], rd, v);
                if ll {
                    s2.cores[c].link = Some(line_of(addr));
                }
                s2.cores[c].pc = pc + INSTR_BYTES;
                let r = self.run_local(&mut s2, c).map(|()| s2);
                out.push((act(ActTag::Op), r));
            }
            Visible::Write { addr, src } => {
                let mut s2 = st.clone();
                let v = get(&s2.cores[c], src);
                self.write_word(&mut s2, c, addr, v);
                s2.cores[c].pc = pc + INSTR_BYTES;
                let r = self.run_local(&mut s2, c).map(|()| s2);
                out.push((act(ActTag::Op), r));
            }
            Visible::Sc { addr, rd, src } => {
                let mut s2 = st.clone();
                let ok = s2.cores[c].link == Some(line_of(addr));
                s2.cores[c].link = None;
                if ok {
                    let v = get(&s2.cores[c], src);
                    self.write_word(&mut s2, c, addr, v);
                }
                set(&mut s2.cores[c], rd, u64::from(ok));
                s2.cores[c].pc = pc + INSTR_BYTES;
                let r = self.run_local(&mut s2, c).map(|()| s2);
                out.push((act(ActTag::Op), r));
            }
            Visible::Inval { line } => {
                let mut s2 = st.clone();
                if self.arrival_at(line).is_some() {
                    s2.cores[c].stale = Some(line);
                }
                // An invalidate writes back and drops the line everywhere,
                // breaking reservations on it.
                for core in s2.cores.iter_mut() {
                    if core.link == Some(line) {
                        core.link = None;
                    }
                }
                let r = self.dispatch_inval(&mut s2, c, line, pc).and_then(|()| {
                    s2.cores[c].pc = pc + INSTR_BYTES;
                    self.run_local(&mut s2, c)
                });
                out.push((act(ActTag::Op), r.map(|()| s2)));
            }
            Visible::Hw { id } => {
                if self.spec.hw_id != Some(id) {
                    let msg = match self.spec.hw_id {
                        Some(armed) => format!(
                            "t{c}: hwbar {id} fired but the barrier armed dedicated group {armed}"
                        ),
                        None => {
                            format!("t{c}: hwbar {id} fired but the barrier has no dedicated group")
                        }
                    };
                    out.push((
                        act(ActTag::Op),
                        Err(Viol::new(rules::MC_HW_PAIRING, Some(pc), msg)),
                    ));
                    return out;
                }
                let mut s2 = st.clone();
                s2.hw_arrived |= 1 << c;
                let all = (0..self.ncores).fold(0u8, |m, i| m | (1 << i));
                let r = if s2.hw_arrived == all {
                    // Fire: release every waiter (and the last arriver)
                    // simultaneously.
                    s2.hw_arrived = 0;
                    let mut r = Ok(());
                    for j in 0..self.ncores {
                        let release = j == c || s2.cores[j].status == Status::HwWait;
                        if release {
                            s2.cores[j].status = Status::Running;
                            s2.cores[j].pc += INSTR_BYTES;
                            r = r.and_then(|()| self.run_local(&mut s2, j));
                            if r.is_err() {
                                break;
                            }
                        }
                    }
                    r
                } else {
                    s2.cores[c].status = Status::HwWait;
                    Ok(())
                };
                out.push((act(ActTag::Op), r.map(|()| s2)));
            }
        }
        out
    }

    /// Inject the `SwitchOut`/`Migrate` fault on core `c`: reservations
    /// and prefetched state are lost, and a parked fill is cancelled —
    /// the core re-issues it when next scheduled (§3.3.3).
    fn apply_fault(&self, st: &McState, c: usize) -> McState {
        let mut s2 = st.clone();
        s2.faults_left -= 1;
        s2.cores[c].link = None;
        s2.cores[c].stale = None;
        if let Status::Parked { table, slot } = s2.cores[c].status {
            s2.tables[table as usize].parked[slot as usize] &= !(1 << c);
            s2.cores[c].status = Status::Running;
        }
        s2
    }

    /// Describe a stuck state: which cores are unfinished and what the
    /// protocol's counter and release words hold (via the spec's
    /// `episode_counter`/`wake_addrs` metadata).
    fn stuck_msg(&self, st: &McState, what: &str) -> String {
        let mut parts = Vec::new();
        for (c, core) in st.cores.iter().enumerate() {
            if core.completed < self.episodes {
                let how = match core.status {
                    Status::Running => "spinning",
                    Status::Parked { .. } => "parked on a fill",
                    Status::HwWait => "waiting on hwbar",
                    Status::Done => "halted",
                };
                parts.push(format!(
                    "t{c} {how} at {:#x} in episode {}",
                    core.pc, core.entered
                ));
            }
        }
        let mut msg = format!("{what}: {}", parts.join(", "));
        if let Some(addr) = self.spec.episode_counter {
            let v = st.mem.get(&addr).copied().unwrap_or(0);
            msg.push_str(&format!("; arrival counter @{addr:#x} = {v}"));
        }
        for &w in self.spec.wake_addrs.iter().take(4) {
            let v = st.mem.get(&w).copied().unwrap_or(0);
            msg.push_str(&format!("; release word @{w:#x} = {v}"));
        }
        msg
    }
}

/// One explored node: enough to reconstruct the schedule that reached it.
struct Node {
    parent: u32,
    act: Act,
    depth: u32,
}

fn path_to(nodes: &[Node], mut u: u32) -> Vec<Act> {
    let mut p = Vec::new();
    while u != 0 {
        p.push(nodes[u as usize].act);
        u = nodes[u as usize].parent;
    }
    p.reverse();
    p
}

/// Exhaustively explore every schedule of `spec.threads` cores running
/// the routine at `spec.entry` in `program` for [`McConfig::episodes`]
/// consecutive episodes, and report the counterexamples found.
///
/// # Panics
///
/// Panics if `spec.threads` is 0 or above 8 (the abstract machine packs
/// core sets into byte masks; the checker is built for small instances).
pub fn model_check(program: &Program, spec: &ProtocolSpec, cfg: &McConfig) -> McReport {
    assert!(
        (1..=8).contains(&spec.threads),
        "model checker instances are bounded to 1-8 cores"
    );
    let mut report = McReport {
        states: 0,
        transitions: 0,
        truncated: false,
        diagnostics: Vec::new(),
    };
    let Some(entry) = program.symbol(&spec.entry) else {
        report.diagnostics.push(Diagnostic::global(
            Severity::Error,
            rules::BARRIER_ENTRY,
            format!("barrier entry label `{}` is not in the program", spec.entry),
        ));
        return report;
    };
    let machine = Machine {
        program,
        spec,
        entry,
        episodes: cfg.episodes.max(1),
        ncores: spec.threads,
        tables: derive_tables(spec),
    };
    let mut sink = PropSink::default();
    let mut init = machine.initial_state();
    init.faults_left = u8::from(cfg.fault);
    for c in 0..machine.ncores {
        if let Err(v) = machine.run_local(&mut init, c) {
            sink.report(program, v, &[]);
        }
    }
    if sink.any() {
        report.states = 1;
        report.diagnostics = sink.into_diags();
        return report;
    }

    let mut nodes = vec![Node {
        parent: u32::MAX,
        act: Act {
            core: 0,
            pc: 0,
            tag: ActTag::Op,
        },
        depth: 0,
    }];
    let mut visited: HashMap<McState, u32> = HashMap::new();
    visited.insert(init.clone(), 0);
    let mut queue: VecDeque<(McState, u32)> = VecDeque::new();
    queue.push_back((init, 0));
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut complete: Vec<u32> = Vec::new();

    'explore: while let Some((st, u)) = queue.pop_front() {
        if st.cores.iter().all(|co| co.completed >= machine.episodes) {
            complete.push(u);
            continue;
        }
        let mut moves = Vec::new();
        for (c, core) in st.cores.iter().enumerate() {
            if core.status == Status::Running {
                moves.push(Act {
                    core: c as u8,
                    pc: core.pc,
                    tag: ActTag::Op,
                });
            }
        }
        if st.faults_left > 0 {
            for (c, core) in st.cores.iter().enumerate() {
                if matches!(core.status, Status::Running | Status::Parked { .. }) {
                    moves.push(Act {
                        core: c as u8,
                        pc: core.pc,
                        tag: ActTag::Fault,
                    });
                }
            }
        }
        if moves.is_empty() {
            let v = Viol::new(
                rules::MC_DEADLOCK,
                None,
                machine.stuck_msg(&st, "no thread can take a step"),
            );
            sink.report(program, v, &path_to(&nodes, u));
            continue;
        }
        for act in moves {
            let succs = match act.tag {
                ActTag::Fault => vec![(act, Ok(machine.apply_fault(&st, act.core as usize)))],
                _ => machine.successors(&st, act.core as usize),
            };
            for (act2, res) in succs {
                report.transitions += 1;
                match res {
                    Err(v) => {
                        let mut p = path_to(&nodes, u);
                        p.push(act2);
                        sink.report(program, v, &p);
                    }
                    Ok(s2) => {
                        if let Some(&v) = visited.get(&s2) {
                            edges.push((u, v));
                        } else {
                            if nodes.len() >= cfg.max_states {
                                report.truncated = true;
                                break 'explore;
                            }
                            let v = nodes.len() as u32;
                            nodes.push(Node {
                                parent: u,
                                act: act2,
                                depth: nodes[u as usize].depth + 1,
                            });
                            visited.insert(s2.clone(), v);
                            edges.push((u, v));
                            queue.push_back((s2, v));
                        }
                    }
                }
            }
        }
    }
    report.states = nodes.len() as u64;

    // Lost-wakeup pass: over the fully explored graph, find states from
    // which no completion state is reachable. Only meaningful when the
    // graph is complete (not truncated) and no earlier violation pruned
    // branches.
    if !report.truncated && !sink.any() {
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for &(a, b) in &edges {
            rev[b as usize].push(a);
        }
        let mut can = vec![false; nodes.len()];
        let mut bfs: VecDeque<u32> = complete.iter().copied().collect();
        for &u in &complete {
            can[u as usize] = true;
        }
        while let Some(u) = bfs.pop_front() {
            for &p in &rev[u as usize] {
                if !can[p as usize] {
                    can[p as usize] = true;
                    bfs.push_back(p);
                }
            }
        }
        let stuck = (0..nodes.len())
            .filter(|&u| !can[u])
            .min_by_key(|&u| nodes[u].depth);
        if let Some(u) = stuck {
            let state = visited
                .iter()
                .find(|&(_, &v)| v == u as u32)
                .map(|(s, _)| s.clone())
                .expect("every node has a stored state");
            let v = Viol::new(
                rules::MC_LOST_WAKEUP,
                None,
                machine.stuck_msg(&state, "no schedule from this state completes the barrier"),
            );
            sink.report(program, v, &path_to(&nodes, u as u32));
        }
    }
    report.diagnostics = sink.into_diags();
    report
}
