//! Diagnostics: what the verifier reports and how severe it is.

use std::fmt;

/// How bad a finding is.
///
/// Ordered: `Info < Warning < Error`, so callers can gate on
/// `severity >= Severity::Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or likely-harmless (dead stores).
    Info,
    /// Suspicious but not provably wrong (unreachable code, possible
    /// uninitialized reads).
    Warning,
    /// A contract violation: the program can crash, hang or synchronize
    /// incorrectly.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable rule identifiers. Every diagnostic carries exactly one of
/// these; tests and CI match on them rather than on message text.
pub mod rules {
    /// A branch or `jal` targets an address outside the code image or not
    /// on an instruction boundary.
    pub const CFG_TARGET: &str = "R-CFG-TARGET";
    /// Execution can fall off the end of the code image (a path reaches
    /// the last instruction and falls through).
    pub const CFG_FALLOFF: &str = "R-CFG-FALLOFF";
    /// A non-padding instruction is unreachable from every entry point.
    pub const CFG_UNREACHABLE: &str = "R-CFG-UNREACHABLE";
    /// A register is read but written on no path from any entry point.
    pub const DF_UNINIT: &str = "R-DF-UNINIT";
    /// A register write is never observed: overwritten or dead on every
    /// path onward.
    pub const DF_DEADSTORE: &str = "R-DF-DEADSTORE";
    /// A barrier's entry label is missing from the program image.
    pub const BARRIER_ENTRY: &str = "R-BARRIER-ENTRY";
    /// A filter barrier routine does not begin with `sync` (arrival must
    /// publish all prior stores), or a D-filter lacks the post-fetch
    /// `sync` (the release fence).
    pub const BARRIER_SYNC: &str = "R-BARRIER-SYNC";
    /// An arrival-line invalidate (`dcbi`/`icbi`) is not followed on every
    /// path by a fetch of that same line — the thread would signal arrival
    /// but never stall for the release.
    pub const BARRIER_DCBI_FETCH: &str = "R-BARRIER-DCBI-FETCH";
    /// The arrival invalidate can reach its fetch without an intervening
    /// `isync` — prefetched stale instructions/data could satisfy the
    /// fetch before the invalidate takes effect.
    pub const BARRIER_ISYNC: &str = "R-BARRIER-ISYNC";
    /// An entry/exit filter routine can return without invalidating its
    /// exit line, leaving the next episode's state machine stuck.
    pub const BARRIER_EXIT: &str = "R-BARRIER-EXIT";
    /// A ping-pong routine does not alternate between both arrival
    /// ranges.
    pub const BARRIER_PINGPONG: &str = "R-BARRIER-PINGPONG";
    /// A sense-reversing routine never toggles its TLS sense flag.
    pub const BARRIER_SENSE: &str = "R-BARRIER-SENSE";
    /// A dedicated-network routine does not consist of exactly one
    /// `hwbar` with the registered id (and no memory traffic).
    pub const BARRIER_HWBAR: &str = "R-BARRIER-HWBAR";
    /// A load-linked is not followed by a matching store-conditional with
    /// a retry loop back to the `ll`.
    pub const BARRIER_LLSC: &str = "R-BARRIER-LLSC";
    /// The model checker reached a state where some thread has not
    /// finished its episodes and no thread can take a step (every
    /// unfinished thread is parked on a fill or blocked at a `hwbar` that
    /// can never fire).
    pub const MC_DEADLOCK: &str = "R-MC-DEADLOCK";
    /// The model checker reached a state from which the barrier can never
    /// complete even though threads keep running: a spinner's release
    /// word can no longer be written, or a parked fill can no longer be
    /// serviced (including a fill issued while the filter still believed
    /// the thread had not arrived).
    pub const MC_LOST_WAKEUP: &str = "R-MC-LOST-WAKEUP";
    /// Episode atomicity: a thread left episode *k*'s barrier (returned,
    /// or invalidated its exit line) on a schedule where some peer had not
    /// yet entered episode *k* — the episodes are not serialized.
    pub const MC_EPISODE_ATOMIC: &str = "R-MC-EPISODE-ATOMIC";
    /// Sense-reversal soundness: on some schedule a thread's TLS sense
    /// slot does not alternate once per completed episode.
    pub const MC_SENSE: &str = "R-MC-SENSE";
    /// Dedicated-network arm/fire pairing: a thread executed `hwbar` with
    /// an id that is not the barrier's armed group (or the barrier has no
    /// dedicated group at all).
    pub const MC_HW_PAIRING: &str = "R-MC-HW-PAIRING";
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How severe the finding is.
    pub severity: Severity,
    /// Program counter the finding anchors to, when it has one.
    pub pc: Option<u64>,
    /// Stable rule id from [`rules`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic anchored at `pc`.
    pub fn at(severity: Severity, pc: u64, rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            pc: Some(pc),
            rule,
            message: message.into(),
        }
    }

    /// Build a program-wide diagnostic.
    pub fn global(severity: Severity, rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            pc: None,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(
                f,
                "{}: {pc:#x}: [{}] {}",
                self.severity, self.rule, self.message
            ),
            None => write!(f, "{}: [{}] {}", self.severity, self.rule, self.message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::at(Severity::Error, 0x1_0004, rules::CFG_TARGET, "bad target");
        assert_eq!(d.to_string(), "error: 0x10004: [R-CFG-TARGET] bad target");
        let g = Diagnostic::global(Severity::Warning, rules::DF_UNINIT, "x");
        assert_eq!(g.to_string(), "warning: [R-DF-UNINIT] x");
    }
}
