//! Model-checker acceptance sweep and anti-rot wiring guard.
//!
//! Every shipped mechanism's emitted routine, explored exhaustively at
//! 2–4 cores with and without an injected fault, must satisfy all
//! `R-MC-*` properties. The anti-rot test pins the contract that adding
//! a [`BarrierMechanism`] without a protocol spec, a mechanism-specific
//! lint rule, and a model-checker run is a test failure.

use analyze::{mechanism_rules, model_check, McConfig};
use barrier_filter::{BarrierMechanism, BarrierSystem, ProtocolSpec};
use cmp_sim::{AddressSpace, SimConfig};
use sim_isa::{Asm, Program};

/// Emit `mechanism` for `threads` cores through the real registration
/// path. `None` when the flat topology cannot host the mechanism (the
/// hierarchical pair needs a power-of-two cluster split, so it falls
/// back at 3 cores).
fn emitted(mechanism: BarrierMechanism, threads: usize) -> Option<(Program, ProtocolSpec)> {
    let config = SimConfig::with_cores(threads);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
    // A topology that cannot host the mechanism surfaces either as a
    // registration error (hierarchical split of a non-power-of-two
    // cluster) or as a fallback barrier.
    let barrier = sys
        .create_barrier(&mut asm, &mut space, mechanism, threads)
        .ok()?;
    if barrier.is_fallback() {
        return None;
    }
    asm.label("entry").unwrap();
    barrier.emit_call(&mut asm);
    asm.halt();
    let spec = barrier.protocol().clone();
    Some((asm.assemble().unwrap(), spec))
}

#[test]
fn every_mechanism_passes_the_model_checker_at_2_to_4_cores() {
    for &mechanism in BarrierMechanism::EXTENDED.iter() {
        for threads in [2usize, 3, 4] {
            let Some((program, spec)) = emitted(mechanism, threads) else {
                continue; // topology cannot host this mechanism
            };
            for fault in [false, true] {
                let cfg = McConfig {
                    fault,
                    ..McConfig::default()
                };
                let report = model_check(&program, &spec, &cfg);
                assert!(
                    !report.truncated,
                    "{mechanism} x{threads} fault={fault}: exploration truncated \
                     at {} states",
                    report.states
                );
                assert!(
                    report.clean(),
                    "{mechanism} x{threads} fault={fault}: {:#?}",
                    report.diagnostics
                );
                assert!(
                    report.states > 1,
                    "{mechanism} x{threads}: explored nothing"
                );
            }
        }
    }
}

#[test]
fn every_mechanism_is_fully_wired() {
    for &mechanism in BarrierMechanism::EXTENDED.iter() {
        // 1. Registration must produce a usable protocol spec: sync
        //    regions for anything memory-based, a dedicated group id
        //    otherwise.
        let (program, spec) =
            emitted(mechanism, 4).expect("every mechanism must register on a flat 4-core machine");
        assert!(
            !spec.regions.is_empty() || spec.hw_id.is_some(),
            "{mechanism}: protocol spec has neither sync regions nor a hw group"
        );
        // 2. At least one mechanism-specific lint rule must be wired.
        assert!(
            !mechanism_rules(mechanism).is_empty(),
            "{mechanism}: no protocol lint rule registered"
        );
        // 3. The model checker must be able to run the emitted routine.
        let report = model_check(&program, &spec, &McConfig::default());
        assert!(
            report.states > 1,
            "{mechanism}: model checker explored nothing"
        );
        assert!(report.clean(), "{mechanism}: {:#?}", report.diagnostics);
    }
}

#[test]
fn software_specs_expose_episode_counter_and_wake_words() {
    // The lost-wakeup classifier needs to know which words can wake a
    // spinner; every software (LL/SC + spin) mechanism must export them.
    for mechanism in [
        BarrierMechanism::SwCentral,
        BarrierMechanism::SwTree,
        BarrierMechanism::SwHier,
    ] {
        let (_, spec) = emitted(mechanism, 4).unwrap();
        assert!(
            spec.episode_counter.is_some(),
            "{mechanism}: no episode counter registered"
        );
        assert!(
            !spec.wake_addrs.is_empty(),
            "{mechanism}: no wake words registered"
        );
    }
}
