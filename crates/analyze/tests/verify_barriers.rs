//! Static-verifier acceptance and rejection tests.
//!
//! Acceptance: every shipped barrier mechanism's emitted routine, checked
//! against the [`ProtocolSpec`] its own [`BarrierSystem`] registration
//! produced, must come back with nothing worse than `Info` (the discarded
//! arrival-fetch value is a deliberate dead store).
//!
//! Rejection: hand-assembled routines with one protocol mistake each —
//! a missing `isync`, a path that skips the fetch, no exit invalidate,
//! and so on — must be flagged with exactly the expected rule id.

use analyze::{analyze_program, has_errors, rules, Severity};
use barrier_filter::{BarrierMechanism, BarrierSystem, ProtocolSpec, RegionKind, SyncRegion};
use cmp_sim::{AddressSpace, SimConfig};
use sim_isa::{Asm, Program, Reg};

const THREADS: usize = 4;

/// Emit a barrier via the real system plus a trivial caller kernel, and
/// return the assembled program with the registered protocol spec.
fn emitted(mechanism: BarrierMechanism) -> (Program, ProtocolSpec) {
    let config = SimConfig::with_cores(THREADS);
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, THREADS, &mut space).unwrap();
    let barrier = sys
        .create_barrier(&mut asm, &mut space, mechanism, THREADS)
        .unwrap();
    assert!(!barrier.is_fallback());
    asm.label("entry").unwrap();
    barrier.emit_call(&mut asm);
    asm.halt();
    let spec = barrier.protocol().clone();
    (asm.assemble().unwrap(), spec)
}

fn assert_clean(mechanism: BarrierMechanism) {
    let (program, spec) = emitted(mechanism);
    let diags = analyze_program(&program, &[spec]);
    let bad: Vec<_> = diags
        .iter()
        .filter(|d| d.severity > Severity::Info)
        .collect();
    assert!(
        bad.is_empty(),
        "{mechanism} routine must verify clean, got: {bad:#?}"
    );
}

#[test]
fn sw_central_verifies_clean() {
    assert_clean(BarrierMechanism::SwCentral);
}

#[test]
fn sw_tree_verifies_clean() {
    assert_clean(BarrierMechanism::SwTree);
}

#[test]
fn filter_d_verifies_clean() {
    assert_clean(BarrierMechanism::FilterD);
}

#[test]
fn filter_d_ping_pong_verifies_clean() {
    assert_clean(BarrierMechanism::FilterDPingPong);
}

#[test]
fn filter_i_verifies_clean() {
    assert_clean(BarrierMechanism::FilterI);
}

#[test]
fn filter_i_ping_pong_verifies_clean() {
    assert_clean(BarrierMechanism::FilterIPingPong);
}

#[test]
fn hw_dedicated_verifies_clean() {
    assert_clean(BarrierMechanism::HwDedicated);
}

#[test]
fn sw_hier_verifies_clean() {
    assert_clean(BarrierMechanism::SwHier);
}

#[test]
fn filter_d_hier_verifies_clean() {
    assert_clean(BarrierMechanism::FilterDHier);
}

#[test]
fn hier_routines_verify_clean_on_a_clustered_machine() {
    // The clustered registration exercises the `tid >> k` addressing the
    // leaders use for the global phase, which the flat 4-core degenerate
    // form never emits.
    for mechanism in [BarrierMechanism::SwHier, BarrierMechanism::FilterDHier] {
        let config = SimConfig::clustered(64, 4);
        let mut space = AddressSpace::new(&config);
        let mut asm = Asm::new();
        let mut sys = BarrierSystem::new(&config, 64, &mut space).unwrap();
        let barrier = sys
            .create_barrier(&mut asm, &mut space, mechanism, 64)
            .unwrap();
        assert!(!barrier.is_fallback());
        asm.label("entry").unwrap();
        barrier.emit_call(&mut asm);
        asm.halt();
        let spec = barrier.protocol().clone();
        let program = asm.assemble().unwrap();
        let diags = analyze_program(&program, &[spec]);
        let bad: Vec<_> = diags
            .iter()
            .filter(|d| d.severity > Severity::Info)
            .collect();
        assert!(
            bad.is_empty(),
            "{mechanism} on the clustered machine must verify clean, got: {bad:#?}"
        );
    }
}

// ---------------------------------------------------------------------
// Broken fixtures
// ---------------------------------------------------------------------

const A_BASE: u64 = 0x2_0000;
const E_BASE: u64 = 0x2_0800;

fn filter_spec() -> ProtocolSpec {
    ProtocolSpec {
        mechanism: BarrierMechanism::FilterD,
        entry: "bar".into(),
        threads: THREADS,
        regions: vec![
            SyncRegion {
                kind: RegionKind::Arrival,
                base: A_BASE,
                bytes: THREADS as u64 * 64,
            },
            SyncRegion {
                kind: RegionKind::Exit,
                base: E_BASE,
                bytes: THREADS as u64 * 64,
            },
        ],
        tls_offset: None,
        hw_id: None,
        episode_counter: None,
        wake_addrs: Vec::new(),
    }
}

/// `k0 = base + tid * 64`.
fn per_thread_line(a: &mut Asm, base: u64) {
    a.li(Reg::K0, base as i64);
    a.slli(Reg::K1, Reg::TID, 6);
    a.add(Reg::K0, Reg::K0, Reg::K1);
}

fn diags_for(spec: &ProtocolSpec, build: impl FnOnce(&mut Asm)) -> Vec<analyze::Diagnostic> {
    let mut a = Asm::new();
    build(&mut a);
    let program = a.assemble().unwrap();
    analyze_program(&program, std::slice::from_ref(spec))
}

fn assert_flags(diags: &[analyze::Diagnostic], rule: &str) {
    assert!(
        diags
            .iter()
            .any(|d| d.rule == rule && d.severity == Severity::Error),
        "expected an Error with rule {rule}, got: {diags:#?}"
    );
}

#[test]
fn missing_isync_is_flagged() {
    let spec = filter_spec();
    let diags = diags_for(&spec, |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.ldd(Reg::K1, Reg::K0, 0); // fetch with no isync in between
        a.sync();
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert_flags(&diags, rules::BARRIER_ISYNC);
}

#[test]
fn missing_fetch_is_flagged() {
    let spec = filter_spec();
    let diags = diags_for(&spec, |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        // never loads the arrival line: the thread would sail through
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert_flags(&diags, rules::BARRIER_DCBI_FETCH);
}

#[test]
fn path_skipping_the_fetch_is_flagged() {
    let spec = filter_spec();
    let diags = diags_for(&spec, |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.beq(Reg::TID, Reg::ZERO, "skip_fetch"); // thread 0 skips the stall
        a.ldd(Reg::K1, Reg::K0, 0);
        a.label("skip_fetch").unwrap();
        a.sync();
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert_flags(&diags, rules::BARRIER_DCBI_FETCH);
}

#[test]
fn missing_exit_invalidate_is_flagged() {
    let spec = filter_spec();
    let diags = diags_for(&spec, |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        a.ret(); // exit line never reset
    });
    assert_flags(&diags, rules::BARRIER_EXIT);
}

#[test]
fn missing_entry_sync_is_flagged() {
    let spec = filter_spec();
    let diags = diags_for(&spec, |a| {
        a.label("bar").unwrap();
        per_thread_line(a, A_BASE); // no `sync`: prior stores unpublished
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert_flags(&diags, rules::BARRIER_SYNC);
}

#[test]
fn missing_release_fence_is_flagged() {
    let spec = filter_spec();
    let diags = diags_for(&spec, |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        // no post-fetch `sync`
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert_flags(&diags, rules::BARRIER_SYNC);
}

#[test]
fn missing_entry_label_is_flagged() {
    let spec = filter_spec();
    let diags = diags_for(&spec, |a| {
        a.label("not_bar").unwrap();
        a.halt();
    });
    assert_flags(&diags, rules::BARRIER_ENTRY);
}

#[test]
fn ping_pong_stuck_on_one_range_is_flagged() {
    let mut spec = filter_spec();
    spec.mechanism = BarrierMechanism::FilterDPingPong;
    spec.regions = vec![
        SyncRegion {
            kind: RegionKind::Arrival,
            base: A_BASE,
            bytes: THREADS as u64 * 64,
        },
        SyncRegion {
            kind: RegionKind::ArrivalAlt,
            base: E_BASE,
            bytes: THREADS as u64 * 64,
        },
    ];
    spec.tls_offset = Some(0);
    let diags = diags_for(&spec, |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE); // always range A: no alternation
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        a.ret();
    });
    assert_flags(&diags, rules::BARRIER_PINGPONG);
    // ... and it never toggles its sense flag either.
    assert_flags(&diags, rules::BARRIER_SENSE);
}

#[test]
fn sc_without_retry_is_flagged() {
    let mut spec = filter_spec();
    spec.mechanism = BarrierMechanism::SwCentral;
    spec.regions = vec![SyncRegion {
        kind: RegionKind::Counter,
        base: A_BASE,
        bytes: 64,
    }];
    spec.tls_offset = Some(0);
    let diags = diags_for(&spec, |a| {
        a.label("bar").unwrap();
        a.ldd(Reg::T8, Reg::TLS, 0);
        a.xori(Reg::T8, Reg::T8, 1);
        a.std(Reg::T8, Reg::TLS, 0);
        a.li(Reg::K0, A_BASE as i64);
        a.ll(Reg::T9, Reg::K0, 0);
        a.addi(Reg::T9, Reg::T9, 1);
        a.sc(Reg::K1, Reg::T9, Reg::K0, 0);
        // no `beq k1, zero, retry`: a failed sc silently loses the arrival
        a.ret();
    });
    assert_flags(&diags, rules::BARRIER_LLSC);
}

#[test]
fn hwbar_with_wrong_id_or_memory_traffic_is_flagged() {
    let mut spec = filter_spec();
    spec.mechanism = BarrierMechanism::HwDedicated;
    spec.regions = Vec::new();
    spec.hw_id = Some(3);
    let diags = diags_for(&spec, |a| {
        a.label("bar").unwrap();
        a.hwbar(9); // not the registered group
        a.std(Reg::T0, Reg::SP, 0); // and it touches memory
        a.ret();
    });
    let hw: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == rules::BARRIER_HWBAR && d.severity == Severity::Error)
        .collect();
    assert_eq!(hw.len(), 2, "wrong id and memory traffic: {diags:#?}");
}

#[test]
fn structural_defects_surface_through_the_full_pipeline() {
    let mut a = Asm::new();
    a.label("bar").unwrap();
    a.beq(Reg::T0, Reg::ZERO, 0xdead_0000u64); // bogus target
    a.li(Reg::T1, 1); // last instr falls off the end
    let program = a.assemble().unwrap();
    let diags = analyze_program(&program, &[]);
    assert!(has_errors(&diags));
    assert!(diags.iter().any(|d| d.rule == rules::CFG_TARGET));
    assert!(diags.iter().any(|d| d.rule == rules::CFG_FALLOFF));
}
