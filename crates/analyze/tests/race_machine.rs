//! End-to-end race detection on the real simulator.
//!
//! A deliberately racy two-thread kernel (both threads store to the same
//! line with no synchronization) must be caught, and a neighbour-exchange
//! kernel separated by a barrier must come back race-free under every
//! mechanism — the cross-core happens-before edges all flow through the
//! barrier events the machine emits.

use analyze::{RaceDetectorSink, RaceReport};
use barrier_filter::{BarrierMechanism, BarrierSystem};
use cmp_sim::{AddressSpace, MachineBuilder, SimConfig};
use sim_isa::{Asm, Reg};

#[test]
fn unsynchronized_kernel_is_caught() {
    let config = SimConfig::with_cores(2);
    let mut space = AddressSpace::new(&config);
    let target = space.alloc_lines(1).unwrap();
    let mut a = Asm::new();
    a.label("entry").unwrap();
    a.li(Reg::T0, target as i64);
    a.std(Reg::TID, Reg::T0, 0); // both threads write the same granule
    a.halt();
    let program = a.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).unwrap();
    mb.add_thread(entry);
    mb.add_thread(entry);
    let sink = RaceDetectorSink::new([]);
    let handle = sink.handle();
    mb.with_trace_sink(Box::new(sink));
    let mut m = mb.build().unwrap();
    m.run().unwrap();
    let report = handle.report();
    assert!(report.racy(), "conflicting stores must be detected");
    assert_eq!(report.races[0].addr & !63, target);
}

/// Each thread publishes to its own line, crosses the barrier, then reads
/// its neighbour's line — safe if and only if the barrier orders them.
fn neighbour_exchange(mechanism: BarrierMechanism) -> RaceReport {
    neighbour_exchange_on(SimConfig::with_cores(4), mechanism, 4)
}

fn neighbour_exchange_on(
    config: SimConfig,
    mechanism: BarrierMechanism,
    threads: usize,
) -> RaceReport {
    let mut space = AddressSpace::new(&config);
    let mut asm = Asm::new();
    let mut sys = BarrierSystem::new(&config, threads, &mut space).unwrap();
    let barrier = sys
        .create_barrier(&mut asm, &mut space, mechanism, threads)
        .unwrap();
    assert!(!barrier.is_fallback());
    let slots = space.alloc_lines(threads as u64).unwrap();
    asm.label("entry").unwrap();
    asm.li(Reg::S0, slots as i64);
    asm.slli(Reg::T0, Reg::TID, 6);
    asm.add(Reg::T0, Reg::S0, Reg::T0);
    asm.std(Reg::TID, Reg::T0, 0);
    barrier.emit_call(&mut asm);
    // neighbour = (tid + 1) % threads
    asm.addi(Reg::T1, Reg::TID, 1);
    asm.blt(Reg::T1, Reg::NTID, "in_range");
    asm.li(Reg::T1, 0);
    asm.label("in_range").unwrap();
    asm.slli(Reg::T1, Reg::T1, 6);
    asm.add(Reg::T1, Reg::S0, Reg::T1);
    asm.ldd(Reg::T2, Reg::T1, 0);
    asm.halt();
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).unwrap();
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    sys.install(&mut mb).unwrap();
    let sink = RaceDetectorSink::new([barrier.protocol()]);
    let handle = sink.handle();
    mb.with_trace_sink(Box::new(sink));
    let mut m = mb.build().unwrap();
    m.run()
        .unwrap_or_else(|e| panic!("{mechanism} run failed: {e}"));
    handle.report()
}

fn assert_race_free(mechanism: BarrierMechanism) {
    let report = neighbour_exchange(mechanism);
    assert!(
        !report.racy(),
        "{mechanism} must order the exchange, found: {:?}",
        report.races
    );
    assert!(report.reads_checked > 0 && report.writes_checked > 0);
}

#[test]
fn sw_central_orders_the_exchange() {
    assert_race_free(BarrierMechanism::SwCentral);
}

#[test]
fn sw_tree_orders_the_exchange() {
    assert_race_free(BarrierMechanism::SwTree);
}

#[test]
fn filter_d_orders_the_exchange() {
    assert_race_free(BarrierMechanism::FilterD);
}

#[test]
fn filter_d_ping_pong_orders_the_exchange() {
    assert_race_free(BarrierMechanism::FilterDPingPong);
}

#[test]
fn filter_i_orders_the_exchange() {
    assert_race_free(BarrierMechanism::FilterI);
}

#[test]
fn filter_i_ping_pong_orders_the_exchange() {
    assert_race_free(BarrierMechanism::FilterIPingPong);
}

#[test]
fn hw_dedicated_orders_the_exchange() {
    assert_race_free(BarrierMechanism::HwDedicated);
}

#[test]
fn sw_hier_orders_the_exchange() {
    assert_race_free(BarrierMechanism::SwHier);
}

#[test]
fn filter_d_hier_orders_the_exchange() {
    assert_race_free(BarrierMechanism::FilterDHier);
}

#[test]
fn hier_mechanisms_order_the_exchange_on_a_clustered_machine() {
    // Cross-cluster edges: a thread reads its neighbour's line, and at the
    // cluster boundaries that neighbour combined through a different local
    // phase, so the happens-before path runs through the global level.
    for mechanism in [BarrierMechanism::SwHier, BarrierMechanism::FilterDHier] {
        let report = neighbour_exchange_on(SimConfig::clustered(64, 4), mechanism, 64);
        assert!(
            !report.racy(),
            "{mechanism} must order the clustered exchange, found: {:?}",
            report.races
        );
    }
}

#[test]
fn skipping_the_barrier_in_the_same_kernel_races() {
    // Identical shape to `neighbour_exchange`, minus the barrier call:
    // the detector must now see the conflict the barrier was hiding.
    let threads = 2;
    let config = SimConfig::with_cores(threads);
    let mut space = AddressSpace::new(&config);
    let slots = space.alloc_lines(threads as u64).unwrap();
    let mut asm = Asm::new();
    asm.label("entry").unwrap();
    asm.li(Reg::S0, slots as i64);
    asm.slli(Reg::T0, Reg::TID, 6);
    asm.add(Reg::T0, Reg::S0, Reg::T0);
    asm.std(Reg::TID, Reg::T0, 0);
    asm.addi(Reg::T1, Reg::TID, 1);
    asm.blt(Reg::T1, Reg::NTID, "in_range");
    asm.li(Reg::T1, 0);
    asm.label("in_range").unwrap();
    asm.slli(Reg::T1, Reg::T1, 6);
    asm.add(Reg::T1, Reg::S0, Reg::T1);
    asm.ldd(Reg::T2, Reg::T1, 0);
    asm.halt();
    let program = asm.assemble().unwrap();
    let entry = program.require_symbol("entry").unwrap();
    let mut mb = MachineBuilder::new(config, program).unwrap();
    for _ in 0..threads {
        mb.add_thread(entry);
    }
    let sink = RaceDetectorSink::new([]);
    let handle = sink.handle();
    mb.with_trace_sink(Box::new(sink));
    let mut m = mb.build().unwrap();
    m.run().unwrap();
    assert!(handle.report().racy(), "unordered exchange must race");
}
