//! Model-checker rejection tests: seeded protocol mutations.
//!
//! Each fixture is a hand-assembled barrier routine with exactly one
//! mistake a real port could make — a dropped `isync`, an off-by-one
//! arrival threshold, a forgotten counter reset. The model checker must
//! catch every one with the expected `R-MC-*` rule and attach a concrete
//! interleaving (the `schedule:` suffix) to the counterexample.
//!
//! Several of these mutants pass the *static* lints (the instruction
//! sequence looks right) and are only caught by exploring interleavings —
//! that is the point of having the checker.

use analyze::{model_check, rules, McConfig, McReport};
use barrier_filter::{BarrierMechanism, ProtocolSpec, RegionKind, SyncRegion};
use sim_isa::{Asm, Reg, LINE_BYTES};

const THREADS: usize = 2;
const CTR: u64 = 0x3_0000;
const FLG: u64 = 0x3_0040;
const A_BASE: u64 = 0x2_0000;
const E_BASE: u64 = 0x2_0800;

fn sw_spec() -> ProtocolSpec {
    ProtocolSpec {
        mechanism: BarrierMechanism::SwCentral,
        entry: "bar".into(),
        threads: THREADS,
        regions: vec![
            SyncRegion {
                kind: RegionKind::Counter,
                base: CTR,
                bytes: LINE_BYTES,
            },
            SyncRegion {
                kind: RegionKind::Flag,
                base: FLG,
                bytes: LINE_BYTES,
            },
        ],
        tls_offset: Some(0),
        hw_id: None,
        episode_counter: Some(CTR),
        wake_addrs: vec![FLG],
    }
}

fn filter_spec() -> ProtocolSpec {
    ProtocolSpec {
        mechanism: BarrierMechanism::FilterD,
        entry: "bar".into(),
        threads: THREADS,
        regions: vec![
            SyncRegion {
                kind: RegionKind::Arrival,
                base: A_BASE,
                bytes: THREADS as u64 * LINE_BYTES,
            },
            SyncRegion {
                kind: RegionKind::Exit,
                base: E_BASE,
                bytes: THREADS as u64 * LINE_BYTES,
            },
        ],
        tls_offset: None,
        hw_id: None,
        episode_counter: None,
        wake_addrs: Vec::new(),
    }
}

/// `k0 = base + tid * 64`.
fn per_thread_line(a: &mut Asm, base: u64) {
    a.li(Reg::K0, base as i64);
    a.slli(Reg::K1, Reg::TID, 6);
    a.add(Reg::K0, Reg::K0, Reg::K1);
}

fn check(spec: &ProtocolSpec, cfg: &McConfig, build: impl FnOnce(&mut Asm)) -> McReport {
    let mut a = Asm::new();
    build(&mut a);
    model_check(&a.assemble().unwrap(), spec, cfg)
}

/// Assert the report's violations are exactly `rules` (order-free), and
/// that every one carries a concrete schedule.
fn assert_caught(report: &McReport, expect: &[&str]) {
    let mut got: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    got.sort_unstable();
    let mut expect: Vec<&str> = expect.to_vec();
    expect.sort_unstable();
    assert_eq!(got, expect, "rules mismatch: {:#?}", report.diagnostics);
    for d in &report.diagnostics {
        assert!(
            d.message.contains("schedule:"),
            "counterexample without a schedule: {d}"
        );
    }
}

/// The correct centralized barrier, with one labeled splice point per
/// mutant: sense toggle, LL/SC fetch-and-increment with retry, last
/// thread resets the counter and toggles the flag, others spin.
struct SwCentral {
    toggle_sense: bool,
    retry_on_sc_failure: bool,
    reset_counter: bool,
    write_flag: bool,
    threshold_off_by_one: bool,
}

impl Default for SwCentral {
    fn default() -> SwCentral {
        SwCentral {
            toggle_sense: true,
            retry_on_sc_failure: true,
            reset_counter: true,
            write_flag: true,
            threshold_off_by_one: false,
        }
    }
}

impl SwCentral {
    fn build(&self, a: &mut Asm) {
        a.label("bar").unwrap();
        a.ldd(Reg::T8, Reg::TLS, 0);
        if self.toggle_sense {
            a.xori(Reg::T8, Reg::T8, 1);
            a.std(Reg::T8, Reg::TLS, 0);
        }
        a.li(Reg::K0, CTR as i64);
        a.label("retry").unwrap();
        a.ll(Reg::T9, Reg::K0, 0);
        a.addi(Reg::T9, Reg::T9, 1);
        a.sc(Reg::K1, Reg::T9, Reg::K0, 0);
        if self.retry_on_sc_failure {
            a.beq(Reg::K1, Reg::ZERO, "retry");
        }
        if self.threshold_off_by_one {
            a.addi(Reg::T7, Reg::NTID, -1);
            a.bne(Reg::T9, Reg::T7, "wait");
        } else {
            a.bne(Reg::T9, Reg::NTID, "wait");
        }
        if self.reset_counter {
            a.std(Reg::ZERO, Reg::K0, 0);
        }
        if self.write_flag {
            a.li(Reg::K0, FLG as i64);
            a.std(Reg::T8, Reg::K0, 0);
        }
        a.ret();
        a.label("wait").unwrap();
        a.li(Reg::K0, FLG as i64);
        a.label("spin").unwrap();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.bne(Reg::K1, Reg::T8, "spin");
        a.ret();
    }
}

#[test]
fn unmutated_fixtures_pass() {
    // The mutants below must fail because of their seeded mistake, not
    // because the hand-written baseline is broken.
    let report = check(&sw_spec(), &McConfig::default(), |a| {
        SwCentral::default().build(a)
    });
    assert!(report.clean(), "{:#?}", report.diagnostics);

    let report = check(&filter_spec(), &McConfig::default(), |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert!(report.clean(), "{:#?}", report.diagnostics);
}

#[test]
fn mutant_arrival_threshold_off_by_one() {
    // Releasing at NTID-1 arrivals lets one thread finish an episode a
    // peer has not entered. The instruction *shape* is identical to the
    // correct routine — only exploration catches this.
    let mutant = SwCentral {
        threshold_off_by_one: true,
        ..SwCentral::default()
    };
    let report = check(&sw_spec(), &McConfig::default(), |a| mutant.build(a));
    assert_caught(&report, &[rules::MC_EPISODE_ATOMIC]);
}

#[test]
fn mutant_missing_sense_toggle() {
    let mutant = SwCentral {
        toggle_sense: false,
        ..SwCentral::default()
    };
    let report = check(&sw_spec(), &McConfig::default(), |a| mutant.build(a));
    assert_caught(&report, &[rules::MC_SENSE]);
}

#[test]
fn mutant_sc_without_retry_loses_an_arrival() {
    // When both threads LL the counter, one SC fails; without the retry
    // loop that arrival is silently dropped and nobody ever becomes the
    // last thread — the flag can no longer be written.
    let mutant = SwCentral {
        retry_on_sc_failure: false,
        ..SwCentral::default()
    };
    let report = check(&sw_spec(), &McConfig::default(), |a| mutant.build(a));
    assert_caught(&report, &[rules::MC_LOST_WAKEUP]);
    let d = &report.diagnostics[0];
    assert!(
        d.message.contains("release word"),
        "lost wakeup should sample the wake words: {d}"
    );
}

#[test]
fn mutant_counter_never_reset() {
    // Episode 1 completes; episode 2's increments start from NTID and
    // never hit the threshold again.
    let mutant = SwCentral {
        reset_counter: false,
        ..SwCentral::default()
    };
    let report = check(&sw_spec(), &McConfig::default(), |a| mutant.build(a));
    assert_caught(&report, &[rules::MC_LOST_WAKEUP]);
}

#[test]
fn mutant_release_flag_never_written() {
    // The last thread resets the counter but forgets the release store.
    // The deepest consequence is not the stuck spinner: with the flag
    // frozen at 0, the last thread's *second* episode spin (sense back
    // to 0) falls through instantly, so it finishes episode 2 while the
    // peer still spins in episode 1 — caught as an atomicity violation.
    let mutant = SwCentral {
        write_flag: false,
        ..SwCentral::default()
    };
    let report = check(&sw_spec(), &McConfig::default(), |a| mutant.build(a));
    assert_caught(&report, &[rules::MC_EPISODE_ATOMIC]);
}

#[test]
fn mutant_filter_missing_isync() {
    // Without `isync` between the arrival invalidate and the fetch, a
    // stale prefetched copy can satisfy the fetch: the thread sails into
    // the exit invalidate while its filter slot is still Blocking. The
    // static lint sees this too (R-BARRIER-ISYNC); the checker proves it
    // breaks episode atomicity with a concrete schedule.
    let report = check(&filter_spec(), &McConfig::default(), |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        // isync dropped
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert_caught(&report, &[rules::MC_EPISODE_ATOMIC]);
    assert!(
        report.diagnostics[0].message.contains("(stale)"),
        "the schedule should show the stale-satisfied fetch: {}",
        report.diagnostics[0]
    );
}

#[test]
fn mutant_filter_missing_fetch() {
    // Signalling arrival without stalling on the fill: the thread
    // invalidates its exit line while the episode is still open.
    let report = check(&filter_spec(), &McConfig::default(), |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        // fetch dropped
        a.sync();
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert_caught(&report, &[rules::MC_EPISODE_ATOMIC]);
}

#[test]
fn mutant_filter_missing_exit_invalidate() {
    // Episode 1 is fine; the slot is left in Servicing, so episode 2's
    // arrival invalidate hits a state the filter FSM rejects.
    let report = check(&filter_spec(), &McConfig::default(), |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        // exit invalidate dropped
        a.ret();
    });
    assert_caught(&report, &[rules::MC_EPISODE_ATOMIC]);
}

#[test]
fn mutant_ping_pong_stuck_on_one_range() {
    // A ping-pong routine that reuses the primary range every episode:
    // episode 1 completes, episode 2 invalidates a Servicing slot.
    let mut spec = filter_spec();
    spec.mechanism = BarrierMechanism::FilterDPingPong;
    spec.regions = vec![
        SyncRegion {
            kind: RegionKind::Arrival,
            base: A_BASE,
            bytes: THREADS as u64 * LINE_BYTES,
        },
        SyncRegion {
            kind: RegionKind::ArrivalAlt,
            base: E_BASE,
            bytes: THREADS as u64 * LINE_BYTES,
        },
    ];
    spec.tls_offset = Some(0);
    let report = check(&spec, &McConfig::default(), |a| {
        a.label("bar").unwrap();
        a.sync();
        // sense ^= 1 (kept correct so only the range bug is seeded)
        a.ldd(Reg::T8, Reg::TLS, 0);
        a.xori(Reg::T8, Reg::T8, 1);
        a.std(Reg::T8, Reg::TLS, 0);
        per_thread_line(a, A_BASE); // always the primary range
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        a.ret();
    });
    assert_caught(&report, &[rules::MC_EPISODE_ATOMIC]);
}

#[test]
fn mutant_hwbar_with_wrong_group() {
    let mut spec = filter_spec();
    spec.mechanism = BarrierMechanism::HwDedicated;
    spec.regions = Vec::new();
    spec.hw_id = Some(3);
    let report = check(&spec, &McConfig::default(), |a| {
        a.label("bar").unwrap();
        a.hwbar(9); // not the armed group
        a.ret();
    });
    assert_caught(&report, &[rules::MC_HW_PAIRING]);
}

#[test]
fn mutant_deserter_thread_deadlocks_the_filter() {
    // Thread 1 skips the barrier body entirely: thread 0 parks on its
    // fill, slot 1 never blocks, the table never opens, and once thread
    // 1 retires nobody can take a step.
    let cfg = McConfig {
        episodes: 1,
        ..McConfig::default()
    };
    let report = check(&filter_spec(), &cfg, |a| {
        a.label("bar").unwrap();
        a.sync();
        a.bne(Reg::TID, Reg::ZERO, "out"); // thread 1 deserts
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.label("out").unwrap();
        a.ret();
    });
    assert_caught(&report, &[rules::MC_DEADLOCK]);
    assert!(
        report.diagnostics[0].message.contains("parked on a fill"),
        "{}",
        report.diagnostics[0]
    );
}

#[test]
fn fault_injection_unparks_and_recovers_a_correct_filter() {
    // §3.3.3: a switched-out thread's parked fill is cancelled and
    // re-issued when it runs again. The correct routine must survive the
    // fault on every schedule...
    let cfg = McConfig {
        fault: true,
        ..McConfig::default()
    };
    let report = check(&filter_spec(), &cfg, |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert!(report.clean(), "{:#?}", report.diagnostics);

    // ...and the fault dimension must add schedules, not replace them.
    let base = check(&filter_spec(), &McConfig::default(), |a| {
        a.label("bar").unwrap();
        a.sync();
        per_thread_line(a, A_BASE);
        a.dcbi(Reg::K0, 0);
        a.isync();
        a.ldd(Reg::K1, Reg::K0, 0);
        a.sync();
        per_thread_line(a, E_BASE);
        a.dcbi(Reg::K0, 0);
        a.ret();
    });
    assert!(report.states > base.states);
}
