//! A fast, deterministic, std-only hasher for the engine's hot-path maps.
//!
//! The default `HashMap` hasher (SipHash-1-3 with a per-process random key)
//! showed up as ~15% of simulator runtime in profiles: the critical path
//! hashes a `u64` line address on every directory lookup and every per-line
//! serialization-point acquire. Those keys are trusted simulator-internal
//! values (no DoS surface), so an FxHash-style multiply-xor hash is both
//! sufficient and ~10× cheaper. It is also *deterministic across runs*,
//! which removes a whole class of accidental iteration-order dependence.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by trusted simulator-internal values (line addresses,
/// page numbers), using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Multiply-xor hasher in the style of rustc's FxHash (std-only rewrite,
/// not a copy): each word is folded in with a rotate, xor and an odd
/// multiplicative constant derived from the golden ratio.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(26) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_lines_hash_distinctly() {
        // Line addresses differ in their low-ish bits; the multiply must
        // spread them across the full word.
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        let hashes: Vec<u64> = (0..1024u64).map(|i| h(0x2000_0000 + i * 64)).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len(), "no collisions on a line stride");
        // Determinism: same input, same hash, every time.
        assert_eq!(h(0x2000_0040), h(0x2000_0040));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(42 * 64)), Some(&42));
    }
}
