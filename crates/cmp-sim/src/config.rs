//! Machine configuration. Defaults reproduce Table 2 of the paper.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles (tag + data).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of 64-byte lines this cache holds.
    pub fn lines(&self) -> u64 {
        self.size_bytes / sim_isa::LINE_BYTES
    }

    /// Number of sets (lines / ways).
    pub fn sets(&self) -> u64 {
        (self.lines() / self.ways as u64).max(1)
    }
}

/// Shared-bus model parameters.
///
/// A single address/command + data bus connects all private L1 caches to the
/// shared L2 banks; it is the resource whose saturation bends the Figure 4
/// curves beyond 16 cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Cycles of bus occupancy for a command (request, invalidation, ack).
    pub cmd_cycles: u64,
    /// Cycles of bus occupancy to move one 64-byte line.
    pub data_cycles: u64,
}

/// Per-class instruction latencies for the in-order core timing model.
///
/// The paper simulated 4-wide out-of-order cores (Table 2). Reproducing a
/// full out-of-order pipeline is out of scope (see DESIGN.md §1); these
/// latencies are chosen so that scalar loop bodies retire at roughly the
/// IPC an out-of-order core would sustain on them, keeping the ratio of
/// compute time to barrier time — which is what the paper's crossover plots
/// measure — in the same regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreTiming {
    /// Simple integer ALU op.
    pub int_op: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// FP add/sub/mul/fma/compare/convert.
    pub fp_op: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Not-taken branch (taken adds `branch_taken_penalty`).
    pub branch: u64,
    /// Extra cycles for a taken branch or jump.
    pub branch_taken_penalty: u64,
    /// Base cost of a load that hits in the L1 (Table 2: 1 cycle).
    pub load: u64,
    /// Cost to place a store into the store buffer.
    pub store_issue: u64,
    /// Base cost of `sync` once the store buffer has drained.
    pub fence: u64,
    /// Cost of `isync` (pipeline + prefetch discard).
    pub isync: u64,
    /// Issue cost of `icbi`/`dcbi` before bus arbitration.
    pub invalidate_issue: u64,
    /// Superscalar issue width approximation. The paper's cores are 4-wide
    /// fetch / 3-issue out-of-order (Table 2); a full out-of-order pipeline
    /// is out of scope, so simple ALU/FP instructions retire at up to
    /// `issue_width` per cycle (fractional-cycle accounting), and cache-hit
    /// memory operations at up to [`mem_ports`](CoreTiming::mem_ports) per
    /// cycle. Branches, misses, fences and cache-management instructions
    /// pay their full latency.
    pub issue_width: u64,
    /// Cache-hit loads/stores retired per cycle (load/store ports).
    pub mem_ports: u64,
}

impl Default for CoreTiming {
    fn default() -> CoreTiming {
        CoreTiming {
            int_op: 1,
            mul: 3,
            div: 20,
            fp_op: 2,
            fp_div: 20,
            branch: 1,
            // The modeled cores stand in for out-of-order cores with branch
            // prediction: taken branches carry no extra penalty by default.
            branch_taken_penalty: 0,
            load: 1,
            store_issue: 1,
            fence: 3,
            isync: 5,
            invalidate_issue: 1,
            issue_width: 3,
            mem_ports: 2,
        }
    }
}

/// Per-hop latencies of the hierarchical interconnect.
///
/// Every transaction pays one `intra_tile` hop at its core-side endpoint
/// and one `intra_cluster` hop per cluster bus it crosses; a transaction
/// that leaves its cluster additionally pays `cross_cluster` on the way to
/// the global segment and again on the way back down. The flat Table-2
/// machine is the degenerate case where every hop is zero, which makes
/// the hierarchical cost formulas collapse to the original single-bus
/// arithmetic bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopLatency {
    /// Core ↔ tile junction latency (cycles).
    pub intra_tile: u64,
    /// Tile junction ↔ cluster bus/bank latency (cycles).
    pub intra_cluster: u64,
    /// Cluster ↔ global segment latency (cycles, each direction).
    pub cross_cluster: u64,
}

impl HopLatency {
    /// All hops free — the flat shared-bus machine.
    pub const fn flat() -> HopLatency {
        HopLatency {
            intra_tile: 0,
            intra_cluster: 0,
            cross_cluster: 0,
        }
    }
}

/// Hierarchical machine topology: cores are grouped into tiles, tiles into
/// clusters. Each cluster owns a slice of the L2 banks (round-robin:
/// bank `b` belongs to cluster `b % clusters`) and a local address/data
/// bus pair; clusters communicate over a shared global segment.
///
/// Core `c` belongs to cluster `c / (num_cores / clusters)` — cores are
/// numbered cluster-contiguously, so barrier code can derive a thread's
/// cluster with a single shift when cores-per-cluster is a power of two.
///
/// [`Topology::flat`] (one cluster, one tile, zero hop latencies) is the
/// degenerate case that reproduces the paper's flat Table-2 machine
/// exactly: the pinned stats digests are bit-identical through this path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of clusters (1 = the flat machine).
    pub clusters: usize,
    /// Tiles per cluster (validation/divisibility layer; tile membership
    /// only affects timing through [`HopLatency::intra_tile`]).
    pub tiles_per_cluster: usize,
    /// Per-hop interconnect latencies.
    pub hop: HopLatency,
}

impl Topology {
    /// The degenerate single-cluster topology of the flat Table-2 machine.
    pub const fn flat() -> Topology {
        Topology {
            clusters: 1,
            tiles_per_cluster: 1,
            hop: HopLatency::flat(),
        }
    }
}

impl Default for Topology {
    fn default() -> Topology {
        Topology::flat()
    }
}

/// Hard ceiling on `num_cores` (directory sharer sets and the scale sweep
/// are sized for this).
pub const MAX_CORES: usize = 1024;

/// Dedicated barrier-network model (the aggressive Beckmann &
/// Polychronopoulos baseline of §4): wire latency to and from the global
/// combining logic, and the cost of checking/resetting the local status
/// register on release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwBarrierConfig {
    /// Cycles from a core to the global logic ("two cycle latency to and
    /// from the global logic").
    pub wire_to: u64,
    /// Cycles from the global logic back to a core.
    pub wire_from: u64,
    /// Cost of checking and resetting the local status register.
    pub local_check: u64,
}

impl Default for HwBarrierConfig {
    fn default() -> HwBarrierConfig {
        HwBarrierConfig {
            wire_to: 2,
            wire_from: 2,
            local_check: 1,
        }
    }
}

/// Full machine configuration.
///
/// [`SimConfig::default`] reproduces Table 2 of the paper for a 16-core CMP:
/// 64 KB 2-way 1-cycle private L1 I/D caches, a 512 KB 2-way 14-cycle shared
/// banked L2, a 4 MB 2-way 38-cycle shared L3, 138-cycle memory, and a
/// filter/hook port that accepts one request per cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of cores; the paper runs one thread per core.
    pub num_cores: usize,
    /// Private L1 data cache (per core).
    pub l1d: CacheConfig,
    /// Private L1 instruction cache (per core).
    pub l1i: CacheConfig,
    /// Shared unified L2 (total across banks).
    pub l2: CacheConfig,
    /// Number of L2 banks.
    pub l2_banks: usize,
    /// log2 of the bank-interleave granule in bytes. Lines within one
    /// granule map to the same bank, which is how the OS guarantees all of
    /// a barrier's arrival/exit lines reach the same filter (§3.3.2).
    pub bank_granule_log2: u32,
    /// Shared unified L3.
    pub l3: CacheConfig,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// Shared bus parameters.
    pub bus: BusConfig,
    /// Requests per cycle accepted by an L2 bank hook (Table 2: "Filter —
    /// 1 request per cycle"). Expressed as cycles per request.
    pub hook_cycles_per_request: u64,
    /// Cycles an S→M upgrade holds a line's coherence-serialization point
    /// (full ownership transfers hold it for the L2 latency instead). This
    /// is what a contended read-modify-write line costs per writer.
    pub upgrade_busy: u64,
    /// Miss-status holding registers per core (§3.2.1).
    pub mshrs_per_core: usize,
    /// Store-buffer entries per core.
    pub store_buffer_entries: usize,
    /// Instruction timing classes.
    pub timing: CoreTiming,
    /// Dedicated barrier network timing (baseline mechanism).
    pub hw_barrier: HwBarrierConfig,
    /// Abort the simulation if it exceeds this many cycles (deadlock guard
    /// for tests and the harness).
    pub cycle_limit: u64,
    /// Core-step burst budget: the maximum number of consecutive
    /// instructions one core may retire back-to-back without re-enqueueing
    /// itself on the event queue, taken only while every queued event lies
    /// strictly later than the core's next ready cycle (see
    /// `Machine::run_until`). This is a host-side fast path: simulated
    /// behaviour — cycle counts, event order, every stats counter and the
    /// [`MachineStats::digest`](crate::MachineStats::digest) — is
    /// bit-identical at any budget. `0` disables the fast path (every
    /// instruction round-trips the queue, the pre-burst engine behaviour).
    pub burst_budget: u32,
    /// Decoded-superblock cache toggle. When on (the default), the engine
    /// retires instructions out of pre-decoded blocks with pre-scaled issue
    /// costs instead of fetching and decoding from the [`sim_isa::Program`]
    /// image each step. Like `burst_budget`, this is a host-side fast path:
    /// simulated behaviour and the
    /// [`MachineStats::digest`](crate::MachineStats::digest) are
    /// bit-identical either way; only the host-side
    /// [`DecodeCacheStats`](crate::DecodeCacheStats) counters differ. The
    /// default honours the `FASTBAR_DECODE_CACHE` environment variable
    /// (read once per process; `0` disables) so CI can smoke the
    /// interpreter path without code changes.
    pub decode_cache: bool,
    /// Sharded event scheduling toggle. When on, the engine runs on
    /// per-core event-queue lanes plus one shared bank/hook lane
    /// (`ShardedQueue` in `event_queue` — per-cycle cohort of lane
    /// heads, rebuilt once per drained cycle) instead of the single
    /// calendar queue. Like `burst_budget` and `decode_cache`, this is a
    /// host-side fast path: both queues drain in the identical
    /// `(cycle, seq)` total order, so simulated behaviour and the
    /// [`MachineStats::digest`](crate::MachineStats::digest) are
    /// bit-identical either way; only the host-side
    /// [`EventQueueStats`](crate::EventQueueStats) counters differ.
    ///
    /// **Off by default**: measured on the fig4 reference workload, the
    /// sharded drain costs ~10-15 ns/instr over the calendar queue (the
    /// calendar's time-indexed buckets give O(1) ordering regardless of
    /// core count, while any lane-decomposed queue pays a cross-lane
    /// minimum per drained cycle) — see `EXPERIMENTS.md`. The lane
    /// structure stays selectable for scheduling experiments and for the
    /// digest-invariance matrix. The default honours the
    /// `FASTBAR_EVENT_SHARDS` environment variable (read once per
    /// process; `1` enables, `0` forces off).
    pub event_shards: bool,
    /// Memory-op-fused decoded executor toggle. When on (the default) and
    /// the decode cache is active, loads and stores inside a decoded
    /// superblock carry a pre-resolved memory-op descriptor
    /// (`MemClass` in `decode`) baked into the op arena at decode
    /// time, so the decoded loop retires hitting memory ops through a
    /// fused hit path (per-core L1D line memo, no per-access set walk)
    /// and falls back to the generic miss machinery otherwise. The fused
    /// path performs exactly the simulated mutations the interpreter
    /// would — same LRU updates, same hit/miss counters, same event
    /// pushes, in the same order at the same cycles — so the digest is
    /// bit-identical either way; only the host-side
    /// [`FusedMemStats`](crate::FusedMemStats) counters differ.
    /// Invalidation rides the decode cache's existing
    /// (pc, code digest) + `icbi` machinery: a dropped block drops its
    /// fused descriptors with it. The default honours the
    /// `FASTBAR_FUSED_MEMORY` environment variable (read once per
    /// process; `0` disables). No effect while `decode_cache` is off.
    pub fused_memory: bool,
    /// Trace-sink selection: where memory-system trace events stream to
    /// (off by default; sinks are observers and never change simulated
    /// behaviour).
    pub trace: crate::trace::TraceConfig,
    /// Hierarchical cluster topology. The default ([`Topology::flat`])
    /// reproduces the paper's flat shared-bus machine bit-identically.
    pub topology: Topology,
}

impl SimConfig {
    /// Table 2 configuration with `num_cores` cores.
    pub fn with_cores(num_cores: usize) -> SimConfig {
        SimConfig {
            num_cores,
            ..SimConfig::default()
        }
    }

    /// A clustered many-core preset scaled from the Table-2 baseline:
    /// `clusters` clusters of `num_cores / clusters` cores, L2/L3 capacity
    /// scaled with the core count, one bank-interleave granule per
    /// cluster-slice of filter lines (`cores_per_cluster * 64` bytes), and
    /// non-zero hop latencies (tile 1, cluster 2, cross-cluster 8).
    /// `clusters == 1` returns the flat Table-2 config unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the resulting config does not validate (caller supplied a
    /// non-power-of-two split); use [`SimConfig::validate`] on hand-built
    /// configs instead.
    pub fn clustered(num_cores: usize, clusters: usize) -> SimConfig {
        if clusters <= 1 {
            return SimConfig::with_cores(num_cores);
        }
        let cpc = num_cores / clusters.max(1);
        let scale = (num_cores / 16).max(1) as u64;
        let mut c = SimConfig::with_cores(num_cores);
        c.topology = Topology {
            clusters,
            tiles_per_cluster: cpc.min(4),
            hop: HopLatency {
                intra_tile: 1,
                intra_cluster: 2,
                cross_cluster: 8,
            },
        };
        c.l2.size_bytes *= scale;
        c.l3.size_bytes *= scale;
        // One granule = one cluster-slice of line-per-thread filter lines,
        // so a contiguous arrival range stripes cluster k's slice into a
        // cluster-k bank (banks are round-robin across clusters).
        c.bank_granule_log2 = (cpc as u64 * sim_isa::LINE_BYTES).trailing_zeros();
        c.l2_banks = if clusters * 4 <= 64 {
            clusters * 4
        } else {
            clusters
        };
        if let Err(e) = c.validate() {
            panic!("SimConfig::clustered({num_cores}, {clusters}): {e}");
        }
        c
    }

    /// The L2 bank index servicing `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr >> self.bank_granule_log2) % self.l2_banks as u64) as usize
    }

    /// Size in bytes of one bank-interleave granule.
    pub fn bank_granule(&self) -> u64 {
        1 << self.bank_granule_log2
    }

    /// Cores in each cluster.
    pub fn cores_per_cluster(&self) -> usize {
        self.num_cores / self.topology.clusters.max(1)
    }

    /// The cluster that owns core `core` (cores are numbered
    /// cluster-contiguously).
    pub fn cluster_of_core(&self, core: usize) -> usize {
        core / self.cores_per_cluster().max(1)
    }

    /// The cluster that owns L2 bank `bank` (round-robin interleave).
    pub fn cluster_of_bank(&self, bank: usize) -> usize {
        bank % self.topology.clusters.max(1)
    }

    /// Validate internal consistency (power-of-two geometries, nonzero
    /// sizes, topology divisibility).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be nonzero".into());
        }
        if self.num_cores > MAX_CORES {
            return Err(format!(
                "topology supports at most {MAX_CORES} cores (got {})",
                self.num_cores
            ));
        }
        let t = &self.topology;
        if t.clusters == 0 || t.tiles_per_cluster == 0 {
            return Err("topology: clusters and tiles_per_cluster must be nonzero".into());
        }
        if !self.num_cores.is_multiple_of(t.clusters) {
            return Err(format!(
                "topology: clusters ({}) must divide num_cores ({})",
                t.clusters, self.num_cores
            ));
        }
        let cpc = self.num_cores / t.clusters;
        if t.clusters > 1 && !(t.clusters.is_power_of_two() && cpc.is_power_of_two()) {
            return Err(format!(
                "topology: clusters ({}) and cores per cluster ({cpc}) must be \
                 powers of two so barrier code can derive a thread's cluster \
                 with a shift",
                t.clusters
            ));
        }
        if !cpc.is_multiple_of(t.tiles_per_cluster) {
            return Err(format!(
                "topology: tiles_per_cluster ({}) must divide cores per cluster ({cpc})",
                t.tiles_per_cluster
            ));
        }
        if self.l2_banks == 0 || !self.l2_banks.is_power_of_two() {
            return Err("l2_banks must be a nonzero power of two".into());
        }
        if !self.l2_banks.is_multiple_of(t.clusters) {
            return Err(format!(
                "topology: l2_banks ({}) must be a multiple of clusters ({}) \
                 so every cluster owns the same number of banks",
                self.l2_banks, t.clusters
            ));
        }
        for (name, c) in [
            ("l1d", &self.l1d),
            ("l1i", &self.l1i),
            ("l2", &self.l2),
            ("l3", &self.l3),
        ] {
            if c.size_bytes == 0 || c.ways == 0 {
                return Err(format!("{name}: zero size or associativity"));
            }
            if c.lines() % c.ways as u64 != 0 || !c.sets().is_power_of_two() {
                return Err(format!("{name}: sets must be a power of two"));
            }
        }
        if self.bank_granule() < sim_isa::LINE_BYTES {
            return Err("bank granule smaller than a cache line".into());
        }
        if self.mshrs_per_core < 2 {
            return Err("need at least 2 MSHRs per core (load + store drain)".into());
        }
        if self.store_buffer_entries == 0 {
            return Err("store buffer must have at least one entry".into());
        }
        Ok(())
    }
}

/// Process-wide default for [`SimConfig::decode_cache`]: on unless
/// `FASTBAR_DECODE_CACHE=0`. Read once so every machine in a process (and
/// both sides of an in-process A/B comparison that sets the field
/// explicitly) sees a stable default.
fn decode_cache_env_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var("FASTBAR_DECODE_CACHE").map_or(true, |v| v != "0"))
}

/// Process-wide default for [`SimConfig::event_shards`]: off unless
/// `FASTBAR_EVENT_SHARDS` is set to anything other than `0` (the calendar
/// queue measures faster at every scale tried — see the field docs). Read
/// once, like [`decode_cache_env_default`].
fn event_shards_env_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var("FASTBAR_EVENT_SHARDS").is_ok_and(|v| v != "0"))
}

/// Process-wide default for [`SimConfig::fused_memory`]: on unless
/// `FASTBAR_FUSED_MEMORY=0`. Read once, like
/// [`decode_cache_env_default`].
fn fused_memory_env_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var("FASTBAR_FUSED_MEMORY").map_or(true, |v| v != "0"))
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            num_cores: 16,
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                latency: 1,
            },
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 2,
                latency: 14,
            },
            l2_banks: 4,
            bank_granule_log2: 14,
            l3: CacheConfig {
                size_bytes: 4096 * 1024,
                ways: 2,
                latency: 38,
            },
            mem_latency: 138,
            bus: BusConfig {
                cmd_cycles: 1,
                data_cycles: 2,
            },
            hook_cycles_per_request: 1,
            upgrade_busy: 6,
            mshrs_per_core: 8,
            store_buffer_entries: 8,
            timing: CoreTiming::default(),
            hw_barrier: HwBarrierConfig::default(),
            cycle_limit: u64::MAX,
            burst_budget: 64,
            decode_cache: decode_cache_env_default(),
            event_shards: event_shards_env_default(),
            fused_memory: fused_memory_env_default(),
            trace: crate::trace::TraceConfig::Off,
            topology: Topology::flat(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = SimConfig::default();
        assert_eq!(c.num_cores, 16);
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 2);
        assert_eq!(c.l1d.latency, 1);
        assert_eq!(c.l1i.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.latency, 14);
        assert_eq!(c.l3.size_bytes, 4096 * 1024);
        assert_eq!(c.l3.latency, 38);
        assert_eq!(c.mem_latency, 138);
        assert_eq!(c.hook_cycles_per_request, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bank_mapping_keeps_granule_together() {
        let c = SimConfig::default();
        let base = 0x2000_0000;
        let granule = c.bank_granule();
        let b0 = c.bank_of(base);
        // every line inside the same granule maps to the same bank
        for off in (0..granule).step_by(64) {
            assert_eq!(c.bank_of(base + off), b0);
        }
        // the next granule maps to a different bank (4 banks)
        assert_ne!(c.bank_of(base + granule), b0);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = SimConfig {
            num_cores: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            l2_banks: 3,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.l1d.size_bytes = 48 * 1024; // 768 lines / 2 ways = 384 sets: not a power of two
        assert!(c.validate().is_err());

        let c = SimConfig {
            mshrs_per_core: 1,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn core_counts_beyond_64_are_legal_up_to_the_topology_ceiling() {
        // The old directory bitmask hard-rejected > 64 cores; the widened
        // directory lifts that to the documented topology ceiling.
        assert!(SimConfig::with_cores(65).validate().is_ok());
        assert!(SimConfig::with_cores(MAX_CORES).validate().is_ok());
        let err = SimConfig::with_cores(MAX_CORES + 1).validate().unwrap_err();
        assert!(err.contains("at most 1024 cores"), "{err}");
    }

    #[test]
    fn topology_validation_messages() {
        let mut c = SimConfig::with_cores(64);
        c.topology.clusters = 0;
        assert!(c.validate().unwrap_err().contains("nonzero"));

        let mut c = SimConfig::with_cores(60);
        c.topology.clusters = 8;
        let err = c.validate().unwrap_err();
        assert!(err.contains("must divide num_cores"), "{err}");

        let mut c = SimConfig::with_cores(96);
        c.topology.clusters = 4; // cores per cluster = 24: not a power of two
        let err = c.validate().unwrap_err();
        assert!(err.contains("powers of two"), "{err}");

        let mut c = SimConfig::with_cores(64);
        c.topology.clusters = 4;
        c.topology.tiles_per_cluster = 3;
        let err = c.validate().unwrap_err();
        assert!(err.contains("tiles_per_cluster"), "{err}");

        let mut c = SimConfig::with_cores(64);
        c.topology.clusters = 8; // default 4 banks: not a multiple of 8
        let err = c.validate().unwrap_err();
        assert!(err.contains("multiple of clusters"), "{err}");
    }

    #[test]
    fn clustered_presets_validate_and_flat_is_degenerate() {
        assert_eq!(SimConfig::clustered(16, 1), SimConfig::with_cores(16));
        for (cores, clusters) in [(64, 4), (256, 16), (1024, 16)] {
            let c = SimConfig::clustered(cores, clusters);
            assert!(c.validate().is_ok(), "{cores}x{clusters}");
            assert_eq!(c.cores_per_cluster(), cores / clusters);
            assert_eq!(c.bank_granule(), (cores / clusters) as u64 * 64);
            assert_eq!(c.l2_banks % clusters, 0);
            // cluster k's slice of a bank-aligned granule run homes in a
            // cluster-k bank (the contiguous-arrival-range invariant).
            for k in 0..clusters {
                let bank = (c.bank_of(0x2000_0000) + k) % c.l2_banks;
                assert_eq!(c.cluster_of_bank(bank), k % clusters);
            }
        }
    }

    #[test]
    fn core_to_cluster_mapping_is_contiguous() {
        let c = SimConfig::clustered(64, 4);
        assert_eq!(c.cluster_of_core(0), 0);
        assert_eq!(c.cluster_of_core(15), 0);
        assert_eq!(c.cluster_of_core(16), 1);
        assert_eq!(c.cluster_of_core(63), 3);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 2,
            latency: 1,
        };
        assert_eq!(c.lines(), 1024);
        assert_eq!(c.sets(), 512);
    }
}
