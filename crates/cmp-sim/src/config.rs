//! Machine configuration. Defaults reproduce Table 2 of the paper.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles (tag + data).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of 64-byte lines this cache holds.
    pub fn lines(&self) -> u64 {
        self.size_bytes / sim_isa::LINE_BYTES
    }

    /// Number of sets (lines / ways).
    pub fn sets(&self) -> u64 {
        (self.lines() / self.ways as u64).max(1)
    }
}

/// Shared-bus model parameters.
///
/// A single address/command + data bus connects all private L1 caches to the
/// shared L2 banks; it is the resource whose saturation bends the Figure 4
/// curves beyond 16 cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Cycles of bus occupancy for a command (request, invalidation, ack).
    pub cmd_cycles: u64,
    /// Cycles of bus occupancy to move one 64-byte line.
    pub data_cycles: u64,
}

/// Per-class instruction latencies for the in-order core timing model.
///
/// The paper simulated 4-wide out-of-order cores (Table 2). Reproducing a
/// full out-of-order pipeline is out of scope (see DESIGN.md §1); these
/// latencies are chosen so that scalar loop bodies retire at roughly the
/// IPC an out-of-order core would sustain on them, keeping the ratio of
/// compute time to barrier time — which is what the paper's crossover plots
/// measure — in the same regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreTiming {
    /// Simple integer ALU op.
    pub int_op: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// FP add/sub/mul/fma/compare/convert.
    pub fp_op: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Not-taken branch (taken adds `branch_taken_penalty`).
    pub branch: u64,
    /// Extra cycles for a taken branch or jump.
    pub branch_taken_penalty: u64,
    /// Base cost of a load that hits in the L1 (Table 2: 1 cycle).
    pub load: u64,
    /// Cost to place a store into the store buffer.
    pub store_issue: u64,
    /// Base cost of `sync` once the store buffer has drained.
    pub fence: u64,
    /// Cost of `isync` (pipeline + prefetch discard).
    pub isync: u64,
    /// Issue cost of `icbi`/`dcbi` before bus arbitration.
    pub invalidate_issue: u64,
    /// Superscalar issue width approximation. The paper's cores are 4-wide
    /// fetch / 3-issue out-of-order (Table 2); a full out-of-order pipeline
    /// is out of scope, so simple ALU/FP instructions retire at up to
    /// `issue_width` per cycle (fractional-cycle accounting), and cache-hit
    /// memory operations at up to [`mem_ports`](CoreTiming::mem_ports) per
    /// cycle. Branches, misses, fences and cache-management instructions
    /// pay their full latency.
    pub issue_width: u64,
    /// Cache-hit loads/stores retired per cycle (load/store ports).
    pub mem_ports: u64,
}

impl Default for CoreTiming {
    fn default() -> CoreTiming {
        CoreTiming {
            int_op: 1,
            mul: 3,
            div: 20,
            fp_op: 2,
            fp_div: 20,
            branch: 1,
            // The modeled cores stand in for out-of-order cores with branch
            // prediction: taken branches carry no extra penalty by default.
            branch_taken_penalty: 0,
            load: 1,
            store_issue: 1,
            fence: 3,
            isync: 5,
            invalidate_issue: 1,
            issue_width: 3,
            mem_ports: 2,
        }
    }
}

/// Dedicated barrier-network model (the aggressive Beckmann &
/// Polychronopoulos baseline of §4): wire latency to and from the global
/// combining logic, and the cost of checking/resetting the local status
/// register on release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwBarrierConfig {
    /// Cycles from a core to the global logic ("two cycle latency to and
    /// from the global logic").
    pub wire_to: u64,
    /// Cycles from the global logic back to a core.
    pub wire_from: u64,
    /// Cost of checking and resetting the local status register.
    pub local_check: u64,
}

impl Default for HwBarrierConfig {
    fn default() -> HwBarrierConfig {
        HwBarrierConfig {
            wire_to: 2,
            wire_from: 2,
            local_check: 1,
        }
    }
}

/// Full machine configuration.
///
/// [`SimConfig::default`] reproduces Table 2 of the paper for a 16-core CMP:
/// 64 KB 2-way 1-cycle private L1 I/D caches, a 512 KB 2-way 14-cycle shared
/// banked L2, a 4 MB 2-way 38-cycle shared L3, 138-cycle memory, and a
/// filter/hook port that accepts one request per cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of cores; the paper runs one thread per core.
    pub num_cores: usize,
    /// Private L1 data cache (per core).
    pub l1d: CacheConfig,
    /// Private L1 instruction cache (per core).
    pub l1i: CacheConfig,
    /// Shared unified L2 (total across banks).
    pub l2: CacheConfig,
    /// Number of L2 banks.
    pub l2_banks: usize,
    /// log2 of the bank-interleave granule in bytes. Lines within one
    /// granule map to the same bank, which is how the OS guarantees all of
    /// a barrier's arrival/exit lines reach the same filter (§3.3.2).
    pub bank_granule_log2: u32,
    /// Shared unified L3.
    pub l3: CacheConfig,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// Shared bus parameters.
    pub bus: BusConfig,
    /// Requests per cycle accepted by an L2 bank hook (Table 2: "Filter —
    /// 1 request per cycle"). Expressed as cycles per request.
    pub hook_cycles_per_request: u64,
    /// Cycles an S→M upgrade holds a line's coherence-serialization point
    /// (full ownership transfers hold it for the L2 latency instead). This
    /// is what a contended read-modify-write line costs per writer.
    pub upgrade_busy: u64,
    /// Miss-status holding registers per core (§3.2.1).
    pub mshrs_per_core: usize,
    /// Store-buffer entries per core.
    pub store_buffer_entries: usize,
    /// Instruction timing classes.
    pub timing: CoreTiming,
    /// Dedicated barrier network timing (baseline mechanism).
    pub hw_barrier: HwBarrierConfig,
    /// Abort the simulation if it exceeds this many cycles (deadlock guard
    /// for tests and the harness).
    pub cycle_limit: u64,
    /// Core-step burst budget: the maximum number of consecutive
    /// instructions one core may retire back-to-back without re-enqueueing
    /// itself on the event queue, taken only while every queued event lies
    /// strictly later than the core's next ready cycle (see
    /// `Machine::run_until`). This is a host-side fast path: simulated
    /// behaviour — cycle counts, event order, every stats counter and the
    /// [`MachineStats::digest`](crate::MachineStats::digest) — is
    /// bit-identical at any budget. `0` disables the fast path (every
    /// instruction round-trips the queue, the pre-burst engine behaviour).
    pub burst_budget: u32,
    /// Decoded-superblock cache toggle. When on (the default), the engine
    /// retires instructions out of pre-decoded blocks with pre-scaled issue
    /// costs instead of fetching and decoding from the [`sim_isa::Program`]
    /// image each step. Like `burst_budget`, this is a host-side fast path:
    /// simulated behaviour and the
    /// [`MachineStats::digest`](crate::MachineStats::digest) are
    /// bit-identical either way; only the host-side
    /// [`DecodeCacheStats`](crate::DecodeCacheStats) counters differ. The
    /// default honours the `FASTBAR_DECODE_CACHE` environment variable
    /// (read once per process; `0` disables) so CI can smoke the
    /// interpreter path without code changes.
    pub decode_cache: bool,
    /// Trace-sink selection: where memory-system trace events stream to
    /// (off by default; sinks are observers and never change simulated
    /// behaviour).
    pub trace: crate::trace::TraceConfig,
}

impl SimConfig {
    /// Table 2 configuration with `num_cores` cores.
    pub fn with_cores(num_cores: usize) -> SimConfig {
        SimConfig {
            num_cores,
            ..SimConfig::default()
        }
    }

    /// The L2 bank index servicing `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr >> self.bank_granule_log2) % self.l2_banks as u64) as usize
    }

    /// Size in bytes of one bank-interleave granule.
    pub fn bank_granule(&self) -> u64 {
        1 << self.bank_granule_log2
    }

    /// Validate internal consistency (power-of-two geometries, nonzero
    /// sizes).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be nonzero".into());
        }
        if self.num_cores > 64 {
            return Err("directory bitmask limits the model to 64 cores".into());
        }
        if self.l2_banks == 0 || !self.l2_banks.is_power_of_two() {
            return Err("l2_banks must be a nonzero power of two".into());
        }
        for (name, c) in [
            ("l1d", &self.l1d),
            ("l1i", &self.l1i),
            ("l2", &self.l2),
            ("l3", &self.l3),
        ] {
            if c.size_bytes == 0 || c.ways == 0 {
                return Err(format!("{name}: zero size or associativity"));
            }
            if c.lines() % c.ways as u64 != 0 || !c.sets().is_power_of_two() {
                return Err(format!("{name}: sets must be a power of two"));
            }
        }
        if self.bank_granule() < sim_isa::LINE_BYTES {
            return Err("bank granule smaller than a cache line".into());
        }
        if self.mshrs_per_core < 2 {
            return Err("need at least 2 MSHRs per core (load + store drain)".into());
        }
        if self.store_buffer_entries == 0 {
            return Err("store buffer must have at least one entry".into());
        }
        Ok(())
    }
}

/// Process-wide default for [`SimConfig::decode_cache`]: on unless
/// `FASTBAR_DECODE_CACHE=0`. Read once so every machine in a process (and
/// both sides of an in-process A/B comparison that sets the field
/// explicitly) sees a stable default.
fn decode_cache_env_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| std::env::var("FASTBAR_DECODE_CACHE").map_or(true, |v| v != "0"))
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            num_cores: 16,
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                latency: 1,
            },
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 2,
                latency: 14,
            },
            l2_banks: 4,
            bank_granule_log2: 14,
            l3: CacheConfig {
                size_bytes: 4096 * 1024,
                ways: 2,
                latency: 38,
            },
            mem_latency: 138,
            bus: BusConfig {
                cmd_cycles: 1,
                data_cycles: 2,
            },
            hook_cycles_per_request: 1,
            upgrade_busy: 6,
            mshrs_per_core: 8,
            store_buffer_entries: 8,
            timing: CoreTiming::default(),
            hw_barrier: HwBarrierConfig::default(),
            cycle_limit: u64::MAX,
            burst_budget: 64,
            decode_cache: decode_cache_env_default(),
            trace: crate::trace::TraceConfig::Off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = SimConfig::default();
        assert_eq!(c.num_cores, 16);
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 2);
        assert_eq!(c.l1d.latency, 1);
        assert_eq!(c.l1i.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.latency, 14);
        assert_eq!(c.l3.size_bytes, 4096 * 1024);
        assert_eq!(c.l3.latency, 38);
        assert_eq!(c.mem_latency, 138);
        assert_eq!(c.hook_cycles_per_request, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bank_mapping_keeps_granule_together() {
        let c = SimConfig::default();
        let base = 0x2000_0000;
        let granule = c.bank_granule();
        let b0 = c.bank_of(base);
        // every line inside the same granule maps to the same bank
        for off in (0..granule).step_by(64) {
            assert_eq!(c.bank_of(base + off), b0);
        }
        // the next granule maps to a different bank (4 banks)
        assert_ne!(c.bank_of(base + granule), b0);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = SimConfig {
            num_cores: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            num_cores: 65,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            l2_banks: 3,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.l1d.size_bytes = 48 * 1024; // 768 lines / 2 ways = 384 sets: not a power of two
        assert!(c.validate().is_err());

        let c = SimConfig {
            mshrs_per_core: 1,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 2,
            latency: 1,
        };
        assert_eq!(c.lines(), 1024);
        assert_eq!(c.sets(), 512);
    }
}
