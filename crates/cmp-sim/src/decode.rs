//! Decoded-superblock cache: the direct-threaded execution layer.
//!
//! The interpreter's hot path used to pay a [`Program::fetch`] (bounds
//! check, alignment check, index) plus a cost-table lookup for every retired
//! instruction. This module caches *superblocks* — straight-line runs of
//! pre-decoded instructions with their issue costs pre-scaled — so the
//! engine's burst loop retires instructions directly out of a flat decoded
//! array and touches neither the program image nor the timing tables.
//!
//! ## Keying and invalidation
//!
//! The cache is keyed by `(pc, code digest)`: a per-pc block table maps an
//! entry pc to a `(start, end)` run in the op arena, and the whole cache is
//! flushed (generation bump) whenever [`Program::code_digest`] no longer
//! matches the digest the blocks were built against. Blocks end at control
//! flow, barrier/sync instructions (`sync`, `isync`, `icbi`, `dcbi`,
//! `hwbar`, `sc`, `halt` — see [`Instr::ends_decode_block`]), code-line
//! boundaries, and the end of the image, so a block never spans two
//! instruction-cache lines. An `icbi` broadcast that overlaps the code
//! region drops exactly the blocks of that line (the same event applies any
//! staged self-modifying-code patches and resets each core's
//! `ifetch_lo`/`ifetch_hi` window, which also resets its decoded-block
//! cursor), and core migration or an `isync` clears the cursor through the
//! same window reset.
//!
//! ## Digest neutrality
//!
//! Everything here is host-side bookkeeping: serving an instruction from a
//! decoded block performs exactly the simulated actions (cache lookups, bus
//! acquisitions, event pushes) the interpreter would, in the same order at
//! the same cycles, so [`MachineStats::digest`](crate::MachineStats::digest)
//! is bit-identical with the cache on or off. The hit/build/invalidation
//! counters are therefore *excluded* from the digest, like `burst_retired`.

use sim_isa::{line_of, FReg, Instr, MemWidth, Program, Reg, CODE_BASE, INSTR_BYTES};

use crate::machine::ScaledCosts;

/// Pre-resolved memory-op descriptor, baked into the op arena at decode
/// time (the memory-op-fused executor,
/// [`SimConfig::fused_memory`](crate::SimConfig::fused_memory)). The
/// decoded loop dispatches on this small tag instead of re-matching the
/// full [`Instr`], and runs the cache-hit path fused (per-core line memo);
/// the class's operand fields are exactly the instruction's, so the fused
/// executor computes the same address, performs the same alignment check,
/// and falls into the same miss machinery the interpreter would.
/// Classification is static, so invalidation needs nothing new: a block
/// drop or arena flush discards the descriptors with their ops. `Sc` stays
/// [`MemClass::Other`] — its retire path is event-driven either way.
/// Displacements are stored as `i32` to keep [`DecodedOp`] at 32 bytes
/// (two ops per cache line); an instruction whose immediate does not fit
/// (unreachable from the assembler, possible only for hand-built images)
/// simply classifies as [`MemClass::Other`] and retires through the
/// interpreter arm — identical simulated behaviour, just unfused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum MemClass {
    /// Not a fuseable memory op (or fusion is disabled for this machine).
    Other,
    /// `Ld`/`Ll`: integer load, `link` for the load-linked variant.
    Load {
        rd: Reg,
        base: Reg,
        off: i32,
        width: MemWidth,
        link: bool,
    },
    /// `Fld`.
    FLoad { fd: FReg, base: Reg, off: i32 },
    /// `St`.
    Store {
        src: Reg,
        base: Reg,
        off: i32,
        width: MemWidth,
    },
    /// `Fst`.
    FStore { fs: FReg, base: Reg, off: i32 },
}

impl MemClass {
    /// Classify `instr`, or [`MemClass::Other`] when fusion is off.
    fn of(instr: &Instr, fused: bool) -> MemClass {
        if !fused {
            return MemClass::Other;
        }
        let narrow = |off: i64| i32::try_from(off).ok();
        match *instr {
            Instr::Ld(rd, base, off, width) => match narrow(off) {
                Some(off) => MemClass::Load {
                    rd,
                    base,
                    off,
                    width,
                    link: false,
                },
                None => MemClass::Other,
            },
            Instr::Ll(rd, base, off) => match narrow(off) {
                Some(off) => MemClass::Load {
                    rd,
                    base,
                    off,
                    width: MemWidth::D,
                    link: true,
                },
                None => MemClass::Other,
            },
            Instr::Fld(fd, base, off) => match narrow(off) {
                Some(off) => MemClass::FLoad { fd, base, off },
                None => MemClass::Other,
            },
            Instr::St(src, base, off, width) => match narrow(off) {
                Some(off) => MemClass::Store {
                    src,
                    base,
                    off,
                    width,
                },
                None => MemClass::Other,
            },
            Instr::Fst(fs, base, off) => match narrow(off) {
                Some(off) => MemClass::FStore { fs, base, off },
                None => MemClass::Other,
            },
            _ => MemClass::Other,
        }
    }
}

/// Host-side counters for the memory-op-fused decoded executor.
///
/// Engine metrics in the same family as [`DecodeCacheStats`]: they vary
/// with [`SimConfig::fused_memory`](crate::SimConfig::fused_memory) while
/// every simulated number stays bit-identical, so they are deliberately
/// not part of [`MachineStats`](crate::MachineStats) or its digest. Tests
/// use them to prove the fused paths actually engaged.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FusedMemStats {
    /// Loads retired through the fused path (hit or miss).
    pub loads: u64,
    /// Stores retired through the fused path.
    pub stores: u64,
    /// Fused load hits served off the per-core L1D line memo — no set
    /// walk, just the identical LRU/hit-counter mutations.
    pub memo_hits: u64,
}

/// Op-arena size (in decoded ops) at which the cache is flushed wholesale.
/// Invalidating a line only unlinks its blocks from the table (the arena
/// entries leak until the next flush); the cap bounds that leak for
/// pathological self-modifying workloads. Real kernels decode a few hundred
/// ops, so the cap is never reached in practice.
const ARENA_CAP: usize = 1 << 18;

/// Sentinel for an empty block-table slot.
const EMPTY: (u32, u32) = (u32::MAX, u32::MAX);

/// One pre-decoded instruction: the fetched [`Instr`] plus its issue cost
/// pre-scaled to twelfths of a cycle (the quantity the engine's
/// fractional-cycle retire path accumulates), so executing it performs no
/// fetch and no cost-table lookup.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedOp {
    /// The decoded instruction.
    pub instr: Instr,
    /// Pre-scaled issue cost in twelfths for ALU-class instructions and
    /// cache-hit memory operations; unused by classes that retire through
    /// whole-cycle or event-driven paths. `u32` keeps the op at 32 bytes;
    /// per-instruction costs are table entries far below the range limit.
    pub units: u32,
    /// Pre-resolved memory class ([`MemClass::Other`] for every op when the
    /// machine was built with fused memory disabled, so the decoded loop
    /// never branches on the knob itself).
    pub mem: MemClass,
}

/// Host-side counters for the decoded-superblock cache.
///
/// Like [`Machine::burst_retired`](crate::Machine::burst_retired), these are
/// engine metrics, not simulated behaviour: they vary with
/// [`SimConfig::decode_cache`](crate::SimConfig::decode_cache) while every
/// simulated number stays bit-identical, so they are deliberately not part
/// of [`MachineStats`](crate::MachineStats) or its digest.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Block-table lookups that found an already-decoded block.
    pub hits: u64,
    /// Blocks decoded and installed in the table.
    pub builds: u64,
    /// Invalidation events: `icbi` broadcasts overlapping the code region
    /// (per-line block drops) plus wholesale flushes (code-digest change or
    /// arena-cap overflow).
    pub invalidations: u64,
}

/// The per-machine decoded-superblock cache (see the module docs).
#[derive(Debug)]
pub(crate) struct DecodeCache {
    /// Flat op arena; blocks are contiguous runs.
    ops: Vec<DecodedOp>,
    /// Block table indexed by instruction slot (`(pc - CODE_BASE) / 4`):
    /// the `(start, end)` arena run of the block *starting* at that pc, or
    /// [`EMPTY`].
    blocks: Vec<(u32, u32)>,
    /// Bumped on every wholesale flush; cores stamp their block cursor with
    /// it so a flush invalidates every cursor at once.
    pub gen: u64,
    /// The [`Program::code_digest`] the current contents were built
    /// against.
    built_digest: u64,
    /// Whether [`block_at`](DecodeCache::block_at) bakes real [`MemClass`]
    /// descriptors (fused-memory executor) or `Other` everywhere.
    fused: bool,
    stats: DecodeCacheStats,
}

impl DecodeCache {
    pub fn new(program: &Program, fused: bool) -> DecodeCache {
        DecodeCache {
            ops: Vec::new(),
            blocks: vec![EMPTY; program.len()],
            gen: 0,
            built_digest: program.code_digest(),
            fused,
            stats: DecodeCacheStats::default(),
        }
    }

    pub fn stats(&self) -> DecodeCacheStats {
        self.stats
    }

    /// Read the decoded op at arena position `pos`.
    #[inline]
    pub fn op(&self, pos: u32) -> DecodedOp {
        self.ops[pos as usize]
    }

    /// The `(start, end)` arena run of the block starting at `pc`, decoding
    /// it first if necessary. Returns `None` exactly when
    /// [`Program::fetch`] would (pc outside the code region or misaligned),
    /// so the caller reports the same illegal-pc error the interpreter
    /// does.
    pub fn block_at(
        &mut self,
        pc: u64,
        program: &Program,
        costs: &ScaledCosts,
    ) -> Option<(u32, u32)> {
        if program.code_digest() != self.built_digest || self.ops.len() >= ARENA_CAP {
            self.flush(program);
        }
        if pc < CODE_BASE || !(pc - CODE_BASE).is_multiple_of(INSTR_BYTES) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / INSTR_BYTES) as usize;
        let slot = *self.blocks.get(idx)?;
        if slot != EMPTY {
            self.stats.hits += 1;
            return Some(slot);
        }
        let start = self.ops.len() as u32;
        let mut p = pc;
        loop {
            let instr = program.fetch(p)?;
            let units = costs.units_of(&instr);
            self.ops.push(DecodedOp {
                instr,
                units: u32::try_from(units).expect("issue cost fits u32"),
                mem: MemClass::of(&instr, self.fused),
            });
            let next = p + INSTR_BYTES;
            // Stop after block enders, at line boundaries (a block never
            // spans two I-cache lines, which is what makes one fetch-window
            // check per block entry exact), and at the end of the image.
            if instr.ends_decode_block()
                || line_of(next) != line_of(pc)
                || program.fetch(next).is_none()
            {
                break;
            }
            p = next;
        }
        let end = self.ops.len() as u32;
        self.blocks[idx] = (start, end);
        self.stats.builds += 1;
        Some((start, end))
    }

    /// Drop every block starting on `line` (a line-aligned byte address).
    /// Called for `icbi` broadcasts that overlap the code region — the same
    /// event that applies staged code patches, so no block can survive with
    /// pre-patch instruction values.
    pub fn invalidate_line(&mut self, line: u64) {
        self.stats.invalidations += 1;
        let first = (line.saturating_sub(CODE_BASE) / INSTR_BYTES) as usize;
        let count = (sim_isa::LINE_BYTES / INSTR_BYTES) as usize;
        let hi = self.blocks.len().min(first + count);
        if line >= CODE_BASE {
            for slot in &mut self.blocks[first.min(hi)..hi] {
                *slot = EMPTY;
            }
        }
    }

    /// Record that `line`'s code just changed under an `icbi` broadcast:
    /// drop its blocks and adopt the program's new digest. Sound at line
    /// granularity because the caller patches only pcs on `line` — every
    /// other block still decodes identically from the new image.
    pub fn note_patched_line(&mut self, line: u64, program: &Program) {
        self.invalidate_line(line);
        self.built_digest = program.code_digest();
    }

    fn flush(&mut self, program: &Program) {
        self.ops.clear();
        self.blocks.fill(EMPTY);
        self.gen += 1;
        self.built_digest = program.code_digest();
        self.stats.invalidations += 1;
    }
}
