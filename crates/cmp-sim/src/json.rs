//! A small tolerant JSON reader (std-only, no dependencies).
//!
//! The repo's report writers hand-roll their JSON output; this is the
//! matching *input* side, added for the `fastbar-serve` wire protocol and
//! the on-disk result cache. It is deliberately tolerant where a wire
//! peer can reasonably vary — insignificant whitespace, object keys in
//! any order, trailing commas, unknown fields — and deliberately strict
//! where correctness demands it (strings must be properly escaped,
//! numbers must be numbers).
//!
//! Numbers are kept as their raw source token ([`Json::Num`]) rather than
//! eagerly converted to `f64`: the simulator traffics in full-width `u64`
//! cycle counts and digests, which `f64` would silently round. Convert at
//! the access site with [`Json::as_u64`] / [`Json::as_f64`].

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source token (see module docs).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs (duplicate keys
    /// keep the first occurrence on lookup).
    Obj(Vec<(String, Json)>),
}

/// A parse or access error, with a short human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Parse one JSON value from `src`. Trailing whitespace is allowed;
    /// any other trailing content is an error (the wire protocol is one
    /// value per line).
    ///
    /// # Errors
    ///
    /// Malformed JSON, with a byte offset in the message.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first occurrence). `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, or an empty slice for non-arrays.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a `u64`: a non-negative integer number token, or a
    /// string holding a decimal or `0x`-prefixed hex integer (the repo's
    /// reports emit digests and seeds as hex strings).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            Json::Str(s) => parse_u64_flex(s),
            _ => None,
        }
    }

    /// [`as_u64`](Json::as_u64) narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// This value as an `f64` (number tokens only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize back to compact JSON (keys in stored order, numbers as
    /// their original tokens). `parse(dump(v)) == v`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_into(&mut out);
        out
    }

    fn dump_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(tok) => out.push_str(tok),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&crate::json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.dump_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&crate::json_escape(k));
                    out.push_str("\":");
                    v.dump_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse a `u64` written as decimal or `0x`-prefixed hex (the repo's
/// reports and CLIs accept both spellings for seeds and digests).
pub fn parse_u64_flex(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The 64-bit FNV-1a hash of `bytes` — the content-addressing hash for
/// the serve result cache (same family as the engine's stats digests;
/// std-only and stable across platforms and releases).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
            *pos += 1;
        } else {
            break;
        }
    }
    let tok = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
    if tok.is_empty() || tok.parse::<f64>().is_err() {
        return err(format!("malformed number at byte {start}"));
    }
    Ok(Json::Num(tok.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| JsonError("invalid utf-8".into()));
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| JsonError("unterminated escape".into()))?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| JsonError("bad \\u".into()))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError(format!("bad \\u escape `{hex}`")))?;
                        *pos += 4;
                        // Basic-plane only; the repo's own writers never
                        // emit surrogate pairs.
                        let ch = char::from_u32(cp)
                            .ok_or_else(|| JsonError(format!("invalid code point {cp:#x}")))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return err(format!("unknown escape `\\{}`", *other as char)),
                }
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    loop {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => return err("unterminated array"),
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1, // tolerant: allows a trailing comma
                    Some(b']') => {}
                    _ => return err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    loop {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => return err("unterminated object"),
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            Some(b'"') => {
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return err(format!("expected `:` at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1, // tolerant: allows a trailing comma
                    Some(b'}') => {}
                    _ => return err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
            _ => return err(format!("expected a key at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_repo_report_shapes() {
        let j = Json::parse(
            r#"{ "schema": "fastbar-throughput/v4", "jobs": 2,
                 "samples": [ {"workload": "w1", "stats_digest": "0x0546812ccc90cd5e",
                               "wall": 0.5, "ok": true, "note": null}, ] }"#,
        )
        .expect("parses");
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("fastbar-throughput/v4")
        );
        assert_eq!(j.get("jobs").and_then(Json::as_u64), Some(2));
        let s = &j.get("samples").expect("samples").items()[0];
        assert_eq!(
            s.get("stats_digest").and_then(Json::as_u64),
            Some(0x0546_812c_cc90_cd5e),
            "hex digest strings round-trip at full width"
        );
        assert_eq!(s.get("wall").and_then(Json::as_f64), Some(0.5));
        assert_eq!(s.get("ok").and_then(Json::as_bool), Some(true));
        assert!(s.get("note").expect("note").is_null());
        assert!(s.get("missing").is_none());
    }

    #[test]
    fn full_width_u64_survives_where_f64_would_round() {
        let j = Json::parse("18446744073709551615").expect("u64::MAX");
        assert_eq!(j.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn strings_unescape_and_dump_round_trips() {
        let src = r#"{"s": "a\"b\\c\nd", "n": [1, -2.5e3], "b": false}"#;
        let j = Json::parse(src).expect("parses");
        assert_eq!(j.get("s").and_then(Json::as_str), Some("a\"b\\c\nd"));
        let dumped = j.dump();
        assert_eq!(Json::parse(&dumped).expect("dump re-parses"), j);
    }

    #[test]
    fn tolerant_of_whitespace_order_and_trailing_commas() {
        let a = Json::parse("{\"x\":1,\"y\":2}").expect("a");
        let b = Json::parse(" {\n \"y\" : 2 ,\n \"x\" : 1 , }\n").expect("b");
        assert_eq!(a.get("x"), b.get("x"));
        assert_eq!(a.get("y"), b.get("y"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1", "\"abc", "{\"k\" 1}", "nul", "1 2", "{'k':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn fnv_matches_the_digest_chain_parameters() {
        // Same FNV-1a offset/prime the engine's digest chain uses.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_eq!(parse_u64_flex("0x2a"), Some(42));
        assert_eq!(parse_u64_flex("42"), Some(42));
        assert_eq!(parse_u64_flex("zz"), None);
    }
}
