//! Streaming trace sinks and per-barrier-episode metrics.
//!
//! The paper's entire argument rests on seeing *inside* barrier episodes:
//! Figure 4 is a latency decomposition and Table 1 an event-cost budget,
//! both observability artifacts. This module supplies that layer for the
//! simulator, replacing the original grow-forever `Vec<TraceEvent>` test
//! buffer with a streaming [`TraceSink`] the engine pushes events through:
//!
//! * [`NullSink`] — discard everything (tracing disabled);
//! * [`RingSink`] — keep the last *N* events in memory (bounded, for
//!   tests and post-mortem inspection of long runs);
//! * [`MetricsSink`] — count events by kind ([`TraceMetrics`]) without
//!   storing them;
//! * [`ChromeTraceSink`] — stream Chrome/Perfetto trace-event JSON to a
//!   file, viewable in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Independently of any sink, the engine aggregates a per-barrier-episode
//! metrics layer ([`EpisodeStats`]): arrival spread, park/release/service
//! counts, release fan-out latency and invalidation traffic, per episode
//! and in aggregate. Sinks and episode accounting are pure observers: they
//! never touch a simulated resource, so enabling them cannot change a
//! cycle count or a [`MachineStats`](crate::MachineStats) digest — the
//! determinism suite enforces exactly that.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};

use crate::fastmap::FxHashMap;

/// Memory-system and barrier trace events, streamed to the configured
/// [`TraceSink`] when tracing is enabled. Used by tests to assert
/// *mechanisms* (e.g. "spinning generates no bus traffic", "the filter
/// parked exactly one fill per thread per barrier") and by the Chrome
/// sink to render timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A data-side miss left core `core` for `line`.
    DMiss {
        /// Requesting core.
        core: usize,
        /// Line address.
        line: u64,
    },
    /// An instruction-side miss left core `core` for `line`.
    IMiss {
        /// Requesting core.
        core: usize,
        /// Line address.
        line: u64,
    },
    /// An `icbi`/`dcbi` invalidation message was sent for `line`.
    Invalidate {
        /// Issuing core.
        core: usize,
        /// Line address.
        line: u64,
        /// True for `icbi`.
        icache: bool,
    },
    /// A fill was parked at a bank hook.
    Parked {
        /// Requesting core.
        core: usize,
        /// Line address.
        line: u64,
    },
    /// A parked fill was released (serviced) by a bank hook.
    Released {
        /// Requesting core.
        core: usize,
        /// Line address.
        line: u64,
    },
    /// A parked fill was completed with the §3.3.4 error sentinel (the
    /// hardware-timeout path) instead of data.
    Errored {
        /// Requesting core.
        core: usize,
        /// Line address.
        line: u64,
    },
    /// An upgrade invalidated `copies` shared copies of `line`.
    Upgrade {
        /// Writing core.
        core: usize,
        /// Line address.
        line: u64,
        /// Number of remote copies invalidated.
        copies: u32,
    },
    /// A miss was satisfied by a remote dirty L1 (cache-to-cache
    /// transfer through the shared controller).
    CacheToCache {
        /// Requesting core.
        core: usize,
        /// Core that supplied the dirty line.
        owner: usize,
        /// Line address.
        line: u64,
    },
    /// A data value was read from memory (load, `fld` or `ll` retiring,
    /// whether it hit or came back from a miss). Carries the byte address
    /// and width so the race detector can compare overlapping accesses.
    DataRead {
        /// Reading core.
        core: usize,
        /// Byte address of the access.
        addr: u64,
        /// Access width in bytes.
        bytes: u64,
    },
    /// A data value was written to memory (store, `fst`, or a successful
    /// `sc`).
    DataWrite {
        /// Writing core.
        core: usize,
        /// Byte address of the access.
        addr: u64,
        /// Access width in bytes.
        bytes: u64,
    },
    /// A fill arrived at an open bank hook and was serviced straight
    /// through without parking (typically the last arriver of an episode).
    Serviced {
        /// Requesting core.
        core: usize,
        /// Line address.
        line: u64,
    },
    /// A core signalled the dedicated barrier network (`hwbar`).
    HwBarArrive {
        /// Arriving core.
        core: usize,
        /// Barrier group id.
        id: u16,
    },
    /// The dedicated barrier network released a stalled core (all members
    /// of group `id` had arrived).
    HwBarRelease {
        /// Resumed core.
        core: usize,
        /// Barrier group id.
        id: u16,
    },
    /// A barrier episode completed (at a filter bank or the dedicated
    /// network). Carries the full per-episode decomposition; the same
    /// numbers feed the [`EpisodeStats`] aggregate.
    EpisodeEnd {
        /// L2 bank of the hook that ran the episode, or `None` for the
        /// dedicated hardware network.
        bank: Option<usize>,
        /// Cycle the episode opened (first parked fill / first `hwbar`
        /// arrival).
        opened: u64,
        /// Cycle of the event that released the episode (last arrival).
        closed: u64,
        /// Fills parked during the episode.
        parks: u32,
        /// Parked fills released by the closing burst (or cores resumed,
        /// for the dedicated network).
        releases: u32,
        /// Parked fills completed with the error sentinel (timeouts).
        errors: u32,
        /// Invalidation messages the hook observed while the episode was
        /// open.
        invalidations: u32,
        /// Cycles from `closed` until the last released fill (or resumed
        /// core) was delivered — the release fan-out latency.
        fanout: u64,
    },
}

/// Sink selection, carried by [`SimConfig`](crate::SimConfig). The default
/// is [`TraceConfig::Off`]; everything else is an opt-in observer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub enum TraceConfig {
    /// No tracing (a [`NullSink`]); the hot path skips event construction
    /// entirely.
    #[default]
    Off,
    /// Keep the most recent `capacity` events in a [`RingSink`]. This is
    /// the bounded replacement for the old grow-forever test buffer:
    /// long traced runs now use O(capacity) memory, not O(events).
    Ring {
        /// Maximum events retained (oldest dropped first).
        capacity: usize,
    },
    /// Count events by kind in a [`MetricsSink`]; nothing is stored.
    Metrics,
    /// Stream Chrome trace-event JSON to the file at `path`
    /// ([`ChromeTraceSink`]).
    ChromeJson {
        /// Output path, created (truncated) at machine build time.
        path: String,
    },
}

impl TraceConfig {
    /// Default ring capacity used by [`TraceConfig::ring`] — roomy enough
    /// for every unit test while keeping worst-case memory bounded.
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// A ring sink with the default capacity (what tests use where they
    /// previously set the old `trace: bool` flag).
    pub fn ring() -> TraceConfig {
        TraceConfig::Ring {
            capacity: TraceConfig::DEFAULT_RING_CAPACITY,
        }
    }

    /// Whether this configuration records anything at all.
    pub fn is_off(&self) -> bool {
        matches!(self, TraceConfig::Off)
    }
}

/// A streaming consumer of [`TraceEvent`]s.
///
/// Sinks are observers only: a `record` implementation must not fail and
/// must not feed anything back into the simulation. The engine calls
/// `record` once per event with the current cycle; it never buffers on
/// the sink's behalf.
pub trait TraceSink {
    /// Consume one event recorded at `cycle`.
    fn record(&mut self, cycle: u64, ev: &TraceEvent);

    /// The retained events, oldest first, for sinks that store any (the
    /// default stores none). Borrows instead of cloning: inspecting a
    /// long traced run costs nothing. Takes `&mut self` so ring-buffer
    /// sinks may linearize their storage in place.
    fn snapshot(&mut self) -> &[(u64, TraceEvent)] {
        &[]
    }

    /// The event-count metrics, for sinks that keep them.
    fn metrics(&self) -> Option<TraceMetrics> {
        None
    }

    /// Flush any buffered output (file sinks).
    fn flush(&mut self) {}
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _cycle: u64, _ev: &TraceEvent) {}
}

/// Bounded in-memory sink: keeps the most recent `capacity` events and
/// counts how many were dropped. The replacement for the unbounded
/// `Vec<TraceEvent>` the machine used to carry.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<(u64, TraceEvent)>,
    dropped: u64,
}

impl RingSink {
    /// A ring retaining at most `capacity` events (at least one).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, cycle: u64, ev: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((cycle, *ev));
    }

    fn snapshot(&mut self) -> &[(u64, TraceEvent)] {
        self.buf.make_contiguous()
    }
}

/// Event counts by kind, kept by [`MetricsSink`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceMetrics {
    /// Data-side misses.
    pub d_misses: u64,
    /// Instruction-side misses.
    pub i_misses: u64,
    /// `icbi`/`dcbi` invalidation messages.
    pub invalidates: u64,
    /// Fills parked at bank hooks.
    pub parks: u64,
    /// Parked fills released.
    pub releases: u64,
    /// Parked fills completed with the error sentinel.
    pub errors: u64,
    /// Upgrade invalidation rounds.
    pub upgrades: u64,
    /// Cache-to-cache dirty transfers.
    pub cache_to_cache: u64,
    /// Dedicated-network arrival signals.
    pub hw_arrivals: u64,
    /// Dedicated-network core releases.
    pub hw_releases: u64,
    /// Barrier episodes completed.
    pub episodes: u64,
    /// Data values read from memory.
    pub data_reads: u64,
    /// Data values written to memory.
    pub data_writes: u64,
    /// Fills serviced straight through an open hook without parking.
    pub serviced: u64,
}

impl TraceMetrics {
    /// Total events consumed.
    pub fn total(&self) -> u64 {
        self.d_misses
            + self.i_misses
            + self.invalidates
            + self.parks
            + self.releases
            + self.errors
            + self.upgrades
            + self.cache_to_cache
            + self.hw_arrivals
            + self.hw_releases
            + self.episodes
            + self.data_reads
            + self.data_writes
            + self.serviced
    }
}

/// Counting sink: O(1) memory, no storage.
#[derive(Debug, Default)]
pub struct MetricsSink {
    metrics: TraceMetrics,
}

impl MetricsSink {
    /// A sink with zeroed counters.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, _cycle: u64, ev: &TraceEvent) {
        let m = &mut self.metrics;
        match ev {
            TraceEvent::DMiss { .. } => m.d_misses += 1,
            TraceEvent::IMiss { .. } => m.i_misses += 1,
            TraceEvent::Invalidate { .. } => m.invalidates += 1,
            TraceEvent::Parked { .. } => m.parks += 1,
            TraceEvent::Released { .. } => m.releases += 1,
            TraceEvent::Errored { .. } => m.errors += 1,
            TraceEvent::Upgrade { .. } => m.upgrades += 1,
            TraceEvent::CacheToCache { .. } => m.cache_to_cache += 1,
            TraceEvent::HwBarArrive { .. } => m.hw_arrivals += 1,
            TraceEvent::HwBarRelease { .. } => m.hw_releases += 1,
            TraceEvent::EpisodeEnd { .. } => m.episodes += 1,
            TraceEvent::DataRead { .. } => m.data_reads += 1,
            TraceEvent::DataWrite { .. } => m.data_writes += 1,
            TraceEvent::Serviced { .. } => m.serviced += 1,
        }
    }

    fn metrics(&self) -> Option<TraceMetrics> {
        Some(self.metrics)
    }
}

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes and control characters; everything else passes through).
/// Shared by the Chrome sink and the hand-rolled benchmark JSON writers —
/// the workspace builds with no registry access, so there is no serde.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Streams events as Chrome trace-event JSON (the "JSON Array Format"),
/// loadable in `chrome://tracing` and Perfetto. One simulated cycle is
/// rendered as one microsecond of trace time.
///
/// Most events become instant events (`ph: "i"`) on the issuing core's
/// row (pid 0); [`TraceEvent::EpisodeEnd`] becomes a duration event
/// (`ph: "X"`) spanning open → last delivery on a per-bank row of the
/// "barrier episodes" process (pid 1). The array is closed on drop; the
/// format explicitly tolerates a missing `]`, so a trace cut short by a
/// panic still loads.
pub struct ChromeTraceSink {
    w: BufWriter<File>,
    events: u64,
}

impl std::fmt::Debug for ChromeTraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeTraceSink")
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

/// Process id used for per-core instant events.
const PID_CORES: u32 = 0;
/// Process id used for barrier-episode duration events.
const PID_EPISODES: u32 = 1;
/// Thread row for dedicated-network episodes under [`PID_EPISODES`].
const TID_HW_NETWORK: u32 = 999;

impl ChromeTraceSink {
    /// Create (truncate) `path` and write the trace header.
    ///
    /// # Errors
    ///
    /// File creation or write failures.
    pub fn create(path: &str) -> io::Result<ChromeTraceSink> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(b"[\n")?;
        for (pid, name) in [(PID_CORES, "cores"), (PID_EPISODES, "barrier episodes")] {
            writeln!(
                w,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}},",
                json_escape(name)
            )?;
        }
        Ok(ChromeTraceSink { w, events: 0 })
    }

    fn instant(&mut self, cycle: u64, name: &str, tid: usize, args: &str) {
        // Ignore write errors: a sink must never fail the simulation; a
        // torn tail is recovered by the format's missing-`]` tolerance.
        let _ = writeln!(
            self.w,
            "{{\"name\":\"{name}\",\"cat\":\"mem\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{cycle},\
             \"pid\":{PID_CORES},\"tid\":{tid},\"args\":{{{args}}}}},"
        );
        self.events += 1;
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, cycle: u64, ev: &TraceEvent) {
        match *ev {
            TraceEvent::DMiss { core, line } => {
                self.instant(cycle, "d-miss", core, &format!("\"line\":\"{line:#x}\""));
            }
            TraceEvent::IMiss { core, line } => {
                self.instant(cycle, "i-miss", core, &format!("\"line\":\"{line:#x}\""));
            }
            TraceEvent::Invalidate { core, line, icache } => {
                let name = if icache { "icbi" } else { "dcbi" };
                self.instant(cycle, name, core, &format!("\"line\":\"{line:#x}\""));
            }
            TraceEvent::Parked { core, line } => {
                self.instant(cycle, "park", core, &format!("\"line\":\"{line:#x}\""));
            }
            TraceEvent::Released { core, line } => {
                self.instant(cycle, "release", core, &format!("\"line\":\"{line:#x}\""));
            }
            TraceEvent::Errored { core, line } => {
                self.instant(
                    cycle,
                    "fill-error",
                    core,
                    &format!("\"line\":\"{line:#x}\""),
                );
            }
            TraceEvent::Upgrade { core, line, copies } => {
                self.instant(
                    cycle,
                    "upgrade",
                    core,
                    &format!("\"line\":\"{line:#x}\",\"copies\":{copies}"),
                );
            }
            TraceEvent::CacheToCache { core, owner, line } => {
                self.instant(
                    cycle,
                    "c2c-transfer",
                    core,
                    &format!("\"line\":\"{line:#x}\",\"owner\":{owner}"),
                );
            }
            TraceEvent::HwBarArrive { core, id } => {
                self.instant(cycle, "hwbar-arrive", core, &format!("\"group\":{id}"));
            }
            TraceEvent::HwBarRelease { core, id } => {
                self.instant(cycle, "hwbar-release", core, &format!("\"group\":{id}"));
            }
            TraceEvent::DataRead { core, addr, bytes } => {
                self.instant(
                    cycle,
                    "data-read",
                    core,
                    &format!("\"addr\":\"{addr:#x}\",\"bytes\":{bytes}"),
                );
            }
            TraceEvent::DataWrite { core, addr, bytes } => {
                self.instant(
                    cycle,
                    "data-write",
                    core,
                    &format!("\"addr\":\"{addr:#x}\",\"bytes\":{bytes}"),
                );
            }
            TraceEvent::Serviced { core, line } => {
                self.instant(cycle, "serviced", core, &format!("\"line\":\"{line:#x}\""));
            }
            TraceEvent::EpisodeEnd {
                bank,
                opened,
                closed,
                parks,
                releases,
                errors,
                invalidations,
                fanout,
            } => {
                let tid = bank.map_or(TID_HW_NETWORK, |b| b as u32);
                let dur = (closed - opened) + fanout;
                let _ = writeln!(
                    self.w,
                    "{{\"name\":\"barrier episode\",\"cat\":\"barrier\",\"ph\":\"X\",\
                     \"ts\":{opened},\"dur\":{dur},\"pid\":{PID_EPISODES},\"tid\":{tid},\
                     \"args\":{{\"parks\":{parks},\"releases\":{releases},\
                     \"errors\":{errors},\"invalidations\":{invalidations},\
                     \"arrival_spread\":{spread},\"release_fanout\":{fanout}}}}},",
                    spread = closed - opened,
                );
                self.events += 1;
            }
        }
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        // Close the JSON array. The format tolerates a missing bracket,
        // so failure here only costs cosmetics.
        let _ = self.w.write_all(b"{}\n]\n");
        let _ = self.w.flush();
    }
}

/// Build the sink selected by `config`.
///
/// # Errors
///
/// File-creation failures for [`TraceConfig::ChromeJson`].
pub(crate) fn build_sink(config: &TraceConfig) -> io::Result<Box<dyn TraceSink>> {
    Ok(match config {
        TraceConfig::Off => Box::new(NullSink),
        TraceConfig::Ring { capacity } => Box::new(RingSink::new(*capacity)),
        TraceConfig::Metrics => Box::new(MetricsSink::new()),
        TraceConfig::ChromeJson { path } => Box::new(ChromeTraceSink::create(path)?),
    })
}

// ---------------------------------------------------------------------
// Per-barrier-episode metrics
// ---------------------------------------------------------------------

/// Aggregate per-barrier-episode metrics, exposed through
/// [`MachineStats`](crate::MachineStats) (and from there through the
/// kernel harness). Always collected — episode-path events are rare next
/// to instruction retirement, so this costs nothing measurable — and
/// deliberately **excluded from [`MachineStats::digest`](crate::MachineStats::digest)**, so growing
/// this layer never invalidates historical digests.
///
/// An *episode* is one pass of a barrier: at a filter bank it opens with
/// the first parked fill and closes with the hook burst that releases
/// (or times out) the parked set; at the dedicated network it spans the
/// first to the last `hwbar` arrival of a group.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeStats {
    /// Episodes completed (filter banks + dedicated network).
    pub episodes: u64,
    /// Fills parked at hooks (arrivals that blocked).
    pub parks: u64,
    /// Parked fills released with data / cores resumed by the network.
    pub releases: u64,
    /// Parked fills completed with the §3.3.4 error sentinel.
    pub errors: u64,
    /// Fills a hook serviced directly without parking (a thread whose
    /// fill arrived after its episode had already opened the barrier —
    /// typically the last arriver of every episode).
    pub serviced: u64,
    /// Invalidation messages observed by hooks (arrival + exit signals).
    pub invalidations: u64,
    /// Sum over episodes of the arrival spread (open → close cycles).
    pub arrival_spread_total: u64,
    /// Largest single-episode arrival spread.
    pub arrival_spread_max: u64,
    /// Sum over episodes of the release fan-out (close → last delivery).
    pub release_fanout_total: u64,
    /// Largest single-episode release fan-out.
    pub release_fanout_max: u64,
    /// Parked fills cancelled by a context-switch-out (§3.3.3 recovery).
    /// Invariant for timeout-free filter runs: `parks == releases +
    /// cancellations` (the dedicated network counts releases with no
    /// parks, so whole-machine stats only satisfy it when every release
    /// came from a filter).
    pub cancellations: u64,
    /// Resumed threads whose re-issued arrival fill parked again (the
    /// barrier was still closed when the thread was switched back in).
    pub reparks: u64,
    /// Resumed threads whose re-issued arrival fill was serviced
    /// immediately (the barrier released while they were switched out).
    pub resumes_after_release: u64,
}

impl EpisodeStats {
    /// Fold `other` into this aggregate (sums sum, maxima take the max) —
    /// for combining episode stats across machines of one workload.
    pub fn merge(&mut self, other: &EpisodeStats) {
        self.episodes += other.episodes;
        self.parks += other.parks;
        self.releases += other.releases;
        self.errors += other.errors;
        self.serviced += other.serviced;
        self.invalidations += other.invalidations;
        self.arrival_spread_total += other.arrival_spread_total;
        self.arrival_spread_max = self.arrival_spread_max.max(other.arrival_spread_max);
        self.release_fanout_total += other.release_fanout_total;
        self.release_fanout_max = self.release_fanout_max.max(other.release_fanout_max);
        self.cancellations += other.cancellations;
        self.reparks += other.reparks;
        self.resumes_after_release += other.resumes_after_release;
    }

    /// Mean arrival spread per episode (first arrival to the releasing
    /// event), in cycles.
    pub fn mean_arrival_spread(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.arrival_spread_total as f64 / self.episodes as f64
        }
    }

    /// Mean release fan-out per episode (release trigger to last
    /// delivery), in cycles.
    pub fn mean_release_fanout(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.release_fanout_total as f64 / self.episodes as f64
        }
    }
}

/// An episode a bank hook currently has open.
#[derive(Debug, Clone, Copy)]
struct OpenEpisode {
    opened: u64,
    parks: u32,
    invalidations: u32,
}

/// A dedicated-network episode currently accumulating arrivals.
#[derive(Debug, Clone, Copy)]
struct HwOpen {
    opened: u64,
    arrivals: u32,
}

/// Engine-side episode accounting: per-bank open-episode state, the
/// dedicated network's in-flight groups, and the running aggregate.
#[derive(Debug)]
pub(crate) struct EpisodeTracker {
    banks: Vec<Option<OpenEpisode>>,
    hw: FxHashMap<u16, HwOpen>,
    agg: EpisodeStats,
}

impl EpisodeTracker {
    pub(crate) fn new(banks: usize) -> EpisodeTracker {
        EpisodeTracker {
            banks: vec![None; banks],
            hw: FxHashMap::default(),
            agg: EpisodeStats::default(),
        }
    }

    /// An invalidation message reached a bank that has a hook.
    pub(crate) fn note_invalidate(&mut self, bank: usize) {
        self.agg.invalidations += 1;
        if let Some(e) = self.banks[bank].as_mut() {
            e.invalidations += 1;
        }
    }

    /// A fill parked at `bank`'s hook at cycle `now`; opens an episode if
    /// none is in flight.
    pub(crate) fn note_park(&mut self, bank: usize, now: u64) {
        self.agg.parks += 1;
        let e = self.banks[bank].get_or_insert(OpenEpisode {
            opened: now,
            parks: 0,
            invalidations: 0,
        });
        e.parks += 1;
    }

    /// A hook serviced a fill directly (no park).
    pub(crate) fn note_serviced(&mut self) {
        self.agg.serviced += 1;
    }

    /// A parked fill was cancelled by a context-switch-out (§3.3.3).
    pub(crate) fn note_cancel(&mut self) {
        self.agg.cancellations += 1;
    }

    /// A resumed thread's re-issued arrival fill parked again.
    pub(crate) fn note_repark(&mut self) {
        self.agg.reparks += 1;
    }

    /// A resumed thread's re-issued arrival fill was serviced immediately
    /// because its barrier had released while it was switched out.
    pub(crate) fn note_resume_after_release(&mut self) {
        self.agg.resumes_after_release += 1;
    }

    /// A hook burst released and/or errored parked fills at cycle `closed`,
    /// with the last response delivered at `last_delivery`. Closes the
    /// bank's open episode (or synthesizes a zero-length one, e.g. for a
    /// timeout burst whose parks were cancelled) and returns the
    /// per-episode record for the trace stream.
    pub(crate) fn close_bank(
        &mut self,
        bank: usize,
        closed: u64,
        releases: u32,
        errors: u32,
        last_delivery: u64,
    ) -> TraceEvent {
        let open = self.banks[bank].take().unwrap_or(OpenEpisode {
            opened: closed,
            parks: 0,
            invalidations: 0,
        });
        let spread = closed.saturating_sub(open.opened);
        let fanout = last_delivery.saturating_sub(closed);
        self.agg.episodes += 1;
        self.agg.releases += releases as u64;
        self.agg.errors += errors as u64;
        self.agg.arrival_spread_total += spread;
        self.agg.arrival_spread_max = self.agg.arrival_spread_max.max(spread);
        self.agg.release_fanout_total += fanout;
        self.agg.release_fanout_max = self.agg.release_fanout_max.max(fanout);
        TraceEvent::EpisodeEnd {
            bank: Some(bank),
            opened: open.opened,
            closed,
            parks: open.parks,
            releases,
            errors,
            invalidations: open.invalidations,
            fanout,
        }
    }

    /// A core signalled dedicated-network group `id` at cycle `now`.
    pub(crate) fn note_hw_arrival(&mut self, id: u16, now: u64) {
        let e = self.hw.entry(id).or_insert(HwOpen {
            opened: now,
            arrivals: 0,
        });
        e.arrivals += 1;
    }

    /// The last member of group `id` arrived at cycle `closed`; every
    /// member resumes at `resume`.
    pub(crate) fn close_hw(&mut self, id: u16, closed: u64, resume: u64) -> TraceEvent {
        let open = self.hw.remove(&id).unwrap_or(HwOpen {
            opened: closed,
            arrivals: 0,
        });
        let spread = closed.saturating_sub(open.opened);
        let fanout = resume.saturating_sub(closed);
        self.agg.episodes += 1;
        self.agg.releases += open.arrivals as u64;
        self.agg.arrival_spread_total += spread;
        self.agg.arrival_spread_max = self.agg.arrival_spread_max.max(spread);
        self.agg.release_fanout_total += fanout;
        self.agg.release_fanout_max = self.agg.release_fanout_max.max(fanout);
        TraceEvent::EpisodeEnd {
            bank: None,
            opened: open.opened,
            closed,
            parks: 0,
            releases: open.arrivals,
            errors: 0,
            invalidations: 0,
            fanout,
        }
    }

    pub(crate) fn stats(&self) -> EpisodeStats {
        self.agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EV: TraceEvent = TraceEvent::Parked {
        core: 0,
        line: 0x40,
    };

    #[test]
    fn ring_sink_is_bounded_and_drops_oldest() {
        let mut r = RingSink::new(3);
        for cycle in 0..10u64 {
            r.record(cycle, &EV);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let cycles: Vec<u64> = r.snapshot().iter().map(|&(c, _)| c).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn metrics_sink_counts_by_kind() {
        let mut m = MetricsSink::new();
        m.record(1, &EV);
        m.record(2, &EV);
        m.record(3, &TraceEvent::DMiss { core: 1, line: 0 });
        let got = m.metrics().unwrap();
        assert_eq!(got.parks, 2);
        assert_eq!(got.d_misses, 1);
        assert_eq!(got.total(), 3);
        assert!(m.snapshot().is_empty(), "metrics sink stores nothing");
    }

    #[test]
    fn null_sink_stores_nothing() {
        let mut n = NullSink;
        n.record(0, &EV);
        assert!(n.snapshot().is_empty());
        assert!(n.metrics().is_none());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("l1\nl2\t"), "l1\\nl2\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn episode_tracker_aggregates_bank_episodes() {
        let mut t = EpisodeTracker::new(2);
        t.note_park(0, 100);
        t.note_invalidate(0);
        t.note_park(0, 110);
        t.note_invalidate(0);
        t.note_serviced();
        let ev = t.close_bank(0, 130, 2, 0, 145);
        match ev {
            TraceEvent::EpisodeEnd {
                bank,
                opened,
                closed,
                parks,
                releases,
                invalidations,
                fanout,
                ..
            } => {
                assert_eq!(bank, Some(0));
                assert_eq!((opened, closed), (100, 130));
                assert_eq!((parks, releases, invalidations), (2, 2, 2));
                assert_eq!(fanout, 15);
            }
            other => panic!("expected EpisodeEnd, got {other:?}"),
        }
        let s = t.stats();
        assert_eq!(s.episodes, 1);
        assert_eq!(s.parks, 2);
        assert_eq!(s.releases, 2);
        assert_eq!(s.serviced, 1);
        assert_eq!(s.arrival_spread_total, 30);
        assert_eq!(s.arrival_spread_max, 30);
        assert_eq!(s.release_fanout_max, 15);
        assert_eq!(s.mean_arrival_spread(), 30.0);
        assert_eq!(s.mean_release_fanout(), 15.0);
    }

    #[test]
    fn episode_tracker_handles_hw_network_groups() {
        let mut t = EpisodeTracker::new(1);
        t.note_hw_arrival(3, 50);
        t.note_hw_arrival(3, 60);
        t.note_hw_arrival(3, 70);
        let ev = t.close_hw(3, 70, 75);
        match ev {
            TraceEvent::EpisodeEnd {
                bank,
                opened,
                closed,
                releases,
                fanout,
                ..
            } => {
                assert_eq!(bank, None);
                assert_eq!((opened, closed), (50, 70));
                assert_eq!(releases, 3);
                assert_eq!(fanout, 5);
            }
            other => panic!("expected EpisodeEnd, got {other:?}"),
        }
        assert_eq!(t.stats().episodes, 1);
        assert_eq!(t.stats().releases, 3);
    }

    #[test]
    fn chrome_sink_writes_loadable_json() {
        let path = std::env::temp_dir().join("cmp_sim_trace_unit_test.json");
        let path_s = path.to_str().unwrap().to_string();
        {
            let mut s = ChromeTraceSink::create(&path_s).unwrap();
            s.record(5, &EV);
            s.record(
                9,
                &TraceEvent::EpisodeEnd {
                    bank: Some(1),
                    opened: 2,
                    closed: 9,
                    parks: 3,
                    releases: 3,
                    errors: 0,
                    invalidations: 4,
                    fanout: 6,
                },
            );
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"arrival_spread\":7"));
        // every non-bracket line is one JSON object followed by a comma
        for line in text.lines() {
            if line == "[" || line == "]" || line == "{}" {
                continue;
            }
            assert!(
                line.starts_with('{') && (line.ends_with("},") || line.ends_with('}')),
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn trace_config_default_is_off() {
        assert!(TraceConfig::default().is_off());
        assert!(!TraceConfig::ring().is_off());
        let r = TraceConfig::ring();
        assert_eq!(
            r,
            TraceConfig::Ring {
                capacity: TraceConfig::DEFAULT_RING_CAPACITY
            }
        );
    }
}
