//! Physical address-space layout and allocation.
//!
//! The "operating system" responsibilities of §3.3 that concern addresses
//! live here: handing out data arrays, per-thread stacks/TLS, and — most
//! importantly — *bank-homed* line ranges for barrier arrival/exit
//! addresses, which must all map to the same L2 bank so one filter sees
//! every signal of a barrier (§3.3.2).

use std::fmt;

use sim_isa::LINE_BYTES;

use crate::config::SimConfig;

/// Base of the general data region (arrays, stacks, TLS).
pub const DATA_BASE: u64 = 0x1000_0000;

/// Base of the barrier-address region (bank-homed allocations).
pub const BARRIER_BASE: u64 = 0x2000_0000;

/// End of the barrier-address region.
pub const BARRIER_END: u64 = 0x3000_0000;

/// Allocation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A bank-homed request wanted more contiguous lines than fit in one
    /// bank-interleave granule.
    RequestExceedsGranule {
        /// Lines requested.
        lines: u64,
        /// Lines per granule.
        granule_lines: u64,
    },
    /// The barrier region is exhausted.
    BarrierRegionFull,
    /// The data region collided with the barrier region.
    DataRegionFull,
    /// A granule run needs the first granule homed at a bank index that is
    /// a multiple of the run length, which requires the run length to
    /// divide the bank count.
    GranuleRunUnmappable {
        /// Granules requested.
        granules: u64,
        /// Banks in the machine.
        banks: u64,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::RequestExceedsGranule {
                lines,
                granule_lines,
            } => write!(
                f,
                "requested {lines} contiguous same-bank lines but a bank granule holds {granule_lines}"
            ),
            LayoutError::BarrierRegionFull => f.write_str("barrier address region exhausted"),
            LayoutError::DataRegionFull => f.write_str("data address region exhausted"),
            LayoutError::GranuleRunUnmappable { granules, banks } => write!(
                f,
                "a run of {granules} consecutive bank granules cannot start bank-aligned: \
                 {granules} does not divide the bank count {banks}"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Bump allocator over the machine's physical address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    banks: u64,
    granule: u64,
    data_cursor: u64,
    /// Next untouched granule index in the barrier region.
    barrier_granule_cursor: u64,
    /// Per-bank partially-used granule: (next line addr, lines remaining).
    bank_open: Vec<Option<(u64, u64)>>,
}

impl AddressSpace {
    /// Allocator matching `config`'s bank interleave.
    pub fn new(config: &SimConfig) -> AddressSpace {
        AddressSpace {
            banks: config.l2_banks as u64,
            granule: config.bank_granule(),
            data_cursor: DATA_BASE,
            barrier_granule_cursor: 0,
            bank_open: vec![None; config.l2_banks],
        }
    }

    /// Allocate `bytes` bytes with the given alignment in the data region.
    ///
    /// # Errors
    ///
    /// [`LayoutError::DataRegionFull`] if the data region is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Result<u64, LayoutError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.data_cursor + align - 1) & !(align - 1);
        let end = base.checked_add(bytes).ok_or(LayoutError::DataRegionFull)?;
        if end > BARRIER_BASE {
            return Err(LayoutError::DataRegionFull);
        }
        self.data_cursor = end;
        Ok(base)
    }

    /// Allocate a cache-line-aligned array of `count` f64 values.
    ///
    /// Line alignment keeps independently-owned arrays from false sharing,
    /// matching the paper's care to "place shared variables in separate
    /// cache lines to avoid generating useless coherence traffic" (§4).
    ///
    /// # Errors
    ///
    /// [`LayoutError::DataRegionFull`] if the data region is exhausted.
    pub fn alloc_f64(&mut self, count: u64) -> Result<u64, LayoutError> {
        self.alloc(count * 8, LINE_BYTES)
    }

    /// Allocate a cache-line-aligned array of `count` u64 values.
    ///
    /// # Errors
    ///
    /// [`LayoutError::DataRegionFull`] if the data region is exhausted.
    pub fn alloc_u64(&mut self, count: u64) -> Result<u64, LayoutError> {
        self.alloc(count * 8, LINE_BYTES)
    }

    /// Allocate `count` whole cache lines (returns a line-aligned address).
    ///
    /// # Errors
    ///
    /// [`LayoutError::DataRegionFull`] if the data region is exhausted.
    pub fn alloc_lines(&mut self, count: u64) -> Result<u64, LayoutError> {
        self.alloc(count * LINE_BYTES, LINE_BYTES)
    }

    /// The bank an address in the barrier region maps to, given granule `g`.
    fn granule_base(&self, granule_index: u64) -> u64 {
        BARRIER_BASE + granule_index * self.granule
    }

    /// Allocate `lines` contiguous cache lines that all map to L2 bank
    /// `bank`. This is the allocation the OS performs for a barrier's
    /// arrival (or exit) addresses: line `base + tid * 64` belongs to
    /// thread `tid`, and the whole range is observed by a single filter.
    ///
    /// # Errors
    ///
    /// * [`LayoutError::RequestExceedsGranule`] if `lines` cannot fit in one
    ///   bank-interleave granule (the architectural contiguity limit).
    /// * [`LayoutError::BarrierRegionFull`] if the region is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or `lines` is zero.
    pub fn alloc_bank_lines(&mut self, bank: usize, lines: u64) -> Result<u64, LayoutError> {
        assert!(bank < self.bank_open.len(), "bank index out of range");
        assert!(lines > 0, "must allocate at least one line");
        let granule_lines = self.granule / LINE_BYTES;
        if lines > granule_lines {
            return Err(LayoutError::RequestExceedsGranule {
                lines,
                granule_lines,
            });
        }
        if let Some((addr, remaining)) = self.bank_open[bank] {
            if remaining >= lines {
                self.bank_open[bank] = Some((addr + lines * LINE_BYTES, remaining - lines));
                return Ok(addr);
            }
        }
        // Open a fresh granule homed at `bank`: granule index g maps to bank
        // (BARRIER_BASE/granule + g) % banks.
        let base_granule = BARRIER_BASE / self.granule;
        let mut g = self.barrier_granule_cursor;
        loop {
            let addr = self.granule_base(g);
            if addr + self.granule > BARRIER_END {
                return Err(LayoutError::BarrierRegionFull);
            }
            if (base_granule + g) % self.banks == bank as u64 {
                self.barrier_granule_cursor = g + 1;
                self.bank_open[bank] = Some((addr + lines * LINE_BYTES, granule_lines - lines));
                return Ok(addr);
            }
            g += 1;
        }
    }

    /// Allocate `granules` *consecutive* whole bank-interleave granules
    /// from the barrier region, starting at a granule homed at bank 0 —
    /// so granule `k` of the run is homed at bank `k`, for every run.
    ///
    /// This is the allocation a hierarchical filter barrier performs: with
    /// banks striped round-robin across clusters (`bank % clusters`) and a
    /// granule of `cores_per_cluster * 64` bytes, granule `k` of the run
    /// lands in a cluster-`k` bank — one contiguous `base + tid * 64`
    /// arrival range whose per-cluster slices are each watched by a single
    /// local filter. Because every run starts at bank 0, slice `k` of an
    /// arrival run and slice `k` of a matching exit run share a bank, the
    /// §3.3.2 requirement that one filter observe both signals.
    ///
    /// # Errors
    ///
    /// * [`LayoutError::GranuleRunUnmappable`] if `granules` exceeds the
    ///   bank count (the run would wrap past bank 0).
    /// * [`LayoutError::BarrierRegionFull`] if the region is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `granules` is zero.
    pub fn alloc_granule_run(&mut self, granules: u64) -> Result<u64, LayoutError> {
        assert!(granules > 0, "must allocate at least one granule");
        if granules > self.banks {
            return Err(LayoutError::GranuleRunUnmappable {
                granules,
                banks: self.banks,
            });
        }
        let base_granule = BARRIER_BASE / self.granule;
        let mut g = self.barrier_granule_cursor;
        loop {
            let addr = self.granule_base(g);
            if addr + granules * self.granule > BARRIER_END {
                return Err(LayoutError::BarrierRegionFull);
            }
            if (base_granule + g).is_multiple_of(self.banks) {
                self.barrier_granule_cursor = g + granules;
                return Ok(addr);
            }
            g += 1;
        }
    }

    /// First unused data-region address (diagnostics).
    pub fn data_watermark(&self) -> u64 {
        self.data_cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(&SimConfig::default())
    }

    #[test]
    fn data_allocations_are_aligned_and_disjoint() {
        let mut s = space();
        let a = s.alloc(100, 64).unwrap();
        let b = s.alloc(8, 8).unwrap();
        assert_eq!(a % 64, 0);
        assert!(b >= a + 100);
        let c = s.alloc_f64(3).unwrap();
        assert_eq!(c % 64, 0);
        assert!(c >= b + 8);
    }

    #[test]
    fn bank_homed_lines_all_map_to_requested_bank() {
        let cfg = SimConfig::default();
        let mut s = AddressSpace::new(&cfg);
        for bank in 0..cfg.l2_banks {
            let base = s.alloc_bank_lines(bank, 16).unwrap();
            for i in 0..16u64 {
                assert_eq!(cfg.bank_of(base + i * 64), bank, "line {i} in bank {bank}");
            }
        }
    }

    #[test]
    fn sequential_same_bank_allocations_share_granules() {
        let cfg = SimConfig::default();
        let mut s = AddressSpace::new(&cfg);
        let a = s.alloc_bank_lines(0, 4).unwrap();
        let b = s.alloc_bank_lines(0, 4).unwrap();
        assert_eq!(b, a + 4 * 64, "second allocation packs into the granule");
    }

    #[test]
    fn oversized_bank_request_rejected() {
        let cfg = SimConfig::default();
        let granule_lines = cfg.bank_granule() / 64;
        let mut s = AddressSpace::new(&cfg);
        let err = s.alloc_bank_lines(0, granule_lines + 1).unwrap_err();
        assert!(matches!(err, LayoutError::RequestExceedsGranule { .. }));
    }

    #[test]
    fn granule_runs_stripe_consecutive_clusters() {
        let cfg = SimConfig::clustered(64, 4);
        let clusters = cfg.topology.clusters as u64;
        let mut s = AddressSpace::new(&cfg);
        let base = s.alloc_granule_run(clusters).unwrap();
        let granule = cfg.bank_granule();
        for k in 0..clusters {
            let bank = cfg.bank_of(base + k * granule);
            assert_eq!(
                cfg.cluster_of_bank(bank),
                k as usize,
                "granule {k} of the run is watched by a cluster-{k} bank"
            );
            // Every line of the granule shares that bank.
            for line in 0..granule / 64 {
                assert_eq!(cfg.bank_of(base + k * granule + line * 64), bank);
            }
        }
        // A second run starts at bank 0 again, so slice k of both runs
        // shares a bank (arrival/exit pairing).
        let next = s.alloc_granule_run(clusters).unwrap();
        assert!(next >= base + clusters * granule);
        for k in 0..clusters {
            assert_eq!(
                cfg.bank_of(next + k * granule),
                cfg.bank_of(base + k * granule),
                "slice {k} of paired runs shares its bank"
            );
        }
    }

    #[test]
    fn granule_run_longer_than_the_banks_is_rejected() {
        let cfg = SimConfig::default();
        let mut s = AddressSpace::new(&cfg);
        let banks = cfg.l2_banks as u64;
        let err = s.alloc_granule_run(banks + 1).unwrap_err();
        assert!(matches!(err, LayoutError::GranuleRunUnmappable { .. }));
    }

    #[test]
    fn data_region_exhaustion_detected() {
        let mut s = space();
        let err = s.alloc(BARRIER_BASE, 64).unwrap_err();
        assert_eq!(err, LayoutError::DataRegionFull);
    }

    #[test]
    fn granule_cursor_skips_other_banks() {
        let cfg = SimConfig::default();
        let mut s = AddressSpace::new(&cfg);
        let a = s.alloc_bank_lines(1, 1).unwrap();
        let b = s.alloc_bank_lines(2, 1).unwrap();
        assert_eq!(cfg.bank_of(a), 1);
        assert_eq!(cfg.bank_of(b), 2);
        assert_ne!(a, b);
    }
}
