//! The event-driven cycle-level machine.
//!
//! A single global event queue, ordered by `(cycle, sequence)`, drives every
//! core; shared resources (address and data buses, bank ports, hook ports,
//! L3 port) are
//! FIFO next-free-cycle arbiters ([`Resource`]). The engine is fully
//! deterministic: two runs of the same machine produce identical cycle
//! counts and identical memory images.
//!
//! ## Ordering guarantees relied on by the barrier filter
//!
//! Invalidation messages (`icbi`/`dcbi`) and fill requests travel the same
//! bus in grant order, and an invalidation reaches its L2 bank hook strictly
//! before any fill request the same core issues afterwards. This is the
//! property §3.4 of the paper depends on: the filter must see a thread's
//! arrival invalidate before that thread's (to-be-starved) fill request.
//!
//! ## Event-ordering audit
//!
//! Events are totally ordered by `(cycle, sequence)`: the sequence number
//! is unique per scheduled event, so ties at equal `(cycle, seq)` cannot
//! exist and no comparison in the engine is order-unstable. The calendar
//! queue ([`crate::event_queue`]) preserves this exact drain order (it was
//! verified by a bit-identical stats digest on the Figure 4 workload when
//! it replaced the original `BinaryHeap<Reverse<Scheduled>>`). The
//! deadlock detector below fires only when the queue is *empty*, so it has
//! no ordering dependence at all: its report iterates cores by index.

use sim_isa::{line_of, FReg, Instr, MemWidth, Program, Reg};

use crate::bus::{Interconnect, Resource};
use crate::cache::{Cache, LineState};
use crate::coherence::{Directory, ReadOutcome};
use crate::core::{Continuation, Core, Waiting};
use crate::decode::{DecodeCache, DecodeCacheStats, FusedMemStats, MemClass};
use crate::error::SimError;
use crate::event_queue::{EngineQueue, EventQueueStats};
use crate::fastmap::FxHashMap;
use crate::hook::{
    BankHook, FillDecision, HookOutcome, HookViolation, ParkToken, FILL_ERROR_SENTINEL,
};
use crate::hwnet::{DedicatedNetwork, HwBarResult};
use crate::mem::Memory;
use crate::stats::{MachineStats, RunSummary};
use crate::trace::{EpisodeTracker, TraceEvent, TraceMetrics, TraceSink};
use crate::SimConfig;

/// Outcome of `Machine::run_until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Every core has halted.
    Finished(RunSummary),
    /// The pause cycle was reached with work still pending.
    Paused,
}

/// An engine event. Core and bank indices are `u32` so the whole enum
/// packs into 16 bytes — the queue moves one of these per simulated
/// instruction, so entry size is host-bandwidth that matters.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// Execute the next instruction on a core.
    CoreReady(u32),
    /// The head of a core's store buffer finished draining.
    StoreRetire(u32),
    /// A fill's data became available at its source (L2/L3/memory, a
    /// remote owner, or the bank hook): acquire the response bus and
    /// deliver it.
    FillReady {
        core: u32,
        line: u64,
        kind: AccessKind,
        purpose: FillPurpose,
    },
    /// An outstanding fill completed (delivered, or released/errored by a
    /// bank hook).
    FillDone { core: u32, line: u64, error: bool },
    /// An invalidation message reached an L2 bank's hook.
    HookInvalidate { bank: u32, line: u64 },
    /// A hook-requested deadline arrived.
    HookDeadline { bank: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    DRead,
    DWrite,
    IFetch,
}

/// Who is waiting on a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillPurpose {
    /// The core is blocked; completion goes through `FillDone` and the
    /// core's continuation.
    Resume,
    /// A store-buffer drain; completion retires the buffer head.
    StoreDrain,
}

#[derive(Debug, Clone, Copy)]
enum Access {
    /// The request phase completed; a `FillReady` event will deliver the
    /// data when it is available. Misses are two-phase so that a slow fill
    /// (e.g. a full memory-latency round trip) does not reserve the shared
    /// bus ahead of time and head-of-line-block every intervening request.
    Pending,
    /// The fill was parked at a bank hook; a `FillDone` event will arrive
    /// once the hook releases it.
    Parked,
}

/// Outcome of the store path.
#[derive(Debug, Clone, Copy)]
enum StoreOutcome {
    /// Globally performed at the given cycle.
    Done(u64),
    /// A write-allocate fill is in flight (`FillReady` chain).
    Pending,
}

#[derive(Debug, Clone, Copy)]
struct ParkedFill {
    core: usize,
    line: u64,
}

/// Fills parked at bank hooks, indexed both ways in O(1).
///
/// At most one fill is parked per core (a parked core is blocked), so the
/// core side is a dense per-core slot array; the hook side resolves its
/// [`ParkToken`]s through a map. The `Vec` scan this replaces was O(n) per
/// release — quadratic across a barrier episode at 1024 cores. The map is
/// only ever probed by exact key (never iterated), so hash order cannot
/// leak into simulated behaviour.
#[derive(Debug, Default)]
struct ParkedSet {
    /// `slot[core] = (token, line)` while that core's fill is parked.
    slot: Vec<Option<(ParkToken, u64)>>,
    /// Token → core, for hook-side release/err resolution.
    by_token: FxHashMap<u64, usize>,
    len: usize,
}

impl ParkedSet {
    fn new(cores: usize) -> ParkedSet {
        ParkedSet {
            slot: vec![None; cores],
            by_token: FxHashMap::default(),
            len: 0,
        }
    }

    fn insert(&mut self, token: ParkToken, core: usize, line: u64) {
        debug_assert!(self.slot[core].is_none(), "one parked fill per core");
        self.slot[core] = Some((token, line));
        self.by_token.insert(token.0, core);
        self.len += 1;
    }

    /// Remove the parked fill of `core`, if any, returning its token.
    fn remove_by_core(&mut self, core: usize) -> Option<ParkToken> {
        let (token, _) = self.slot[core].take()?;
        self.by_token.remove(&token.0);
        self.len -= 1;
        Some(token)
    }

    /// Resolve and remove a hook-released token.
    fn remove_by_token(&mut self, token: ParkToken) -> Option<ParkedFill> {
        let core = self.by_token.remove(&token.0)?;
        let (_, line) = self.slot[core].take().expect("slot tracks by_token");
        self.len -= 1;
        Some(ParkedFill { core, line })
    }

    fn contains_core(&self, core: usize) -> bool {
        self.slot[core].is_some()
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Per-instruction-class issue costs, pre-scaled to twelfths of a cycle
/// (`cost * 12 / width`, the quantity `finish_units` accumulates). Computed
/// once at build time so the retire path performs no division.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScaledCosts {
    int_op: u64,
    mul: u64,
    div: u64,
    fp_op: u64,
    fp_div: u64,
    /// Load hit cost (`max(load, L1D latency)`) over the memory ports.
    load: u64,
    /// Store issue cost over the memory ports.
    store_issue: u64,
}

impl ScaledCosts {
    fn new(config: &SimConfig) -> ScaledCosts {
        let t = config.timing;
        let issue = |cost: u64| cost * 12 / t.issue_width.max(1);
        let mem = |cost: u64| cost * 12 / t.mem_ports.max(1);
        ScaledCosts {
            int_op: issue(t.int_op),
            mul: issue(t.mul),
            div: issue(t.div),
            fp_op: issue(t.fp_op),
            fp_div: issue(t.fp_div),
            load: mem(t.load.max(config.l1d.latency)),
            store_issue: mem(t.store_issue),
        }
    }

    /// The pre-scaled issue cost the retire path charges for `instr` (its
    /// `finish_units` argument). Instructions whose cost is decided
    /// elsewhere — control flow, fences, barriers, `sc`, `halt`, `nop` —
    /// retire through whole-cycle paths and map to 0 here; the decoded
    /// executor never reads the field for them.
    pub(crate) fn units_of(&self, instr: &Instr) -> u64 {
        use Instr::*;
        match instr {
            Add(..) | Sub(..) | And(..) | Or(..) | Xor(..) | Sll(..) | Srl(..) | Sra(..)
            | Slt(..) | Sltu(..) | Min(..) | Max(..) | Addi(..) | Andi(..) | Ori(..) | Xori(..)
            | Slli(..) | Srli(..) | Srai(..) | Slti(..) | Li(..) | Fmov(..) | Fli(..) => {
                self.int_op
            }
            Mul(..) => self.mul,
            Div(..) | Rem(..) => self.div,
            Fadd(..) | Fsub(..) | Fmul(..) | Fmadd(..) | Fneg(..) | Fcvtif(..) | Fcvtfi(..)
            | Feq(..) | Flt(..) | Fle(..) => self.fp_op,
            Fdiv(..) => self.fp_div,
            Ld(..) | Ll(..) | Fld(..) => self.load,
            St(..) | Fst(..) => self.store_issue,
            _ => 0,
        }
    }
}

/// The simulated chip multiprocessor.
///
/// Build one with [`MachineBuilder`](crate::MachineBuilder), run it with
/// [`run`](Machine::run), then inspect results through the memory accessors
/// and [`stats`](Machine::stats).
pub struct Machine {
    config: SimConfig,
    program: Program,
    mem: Memory,
    cores: Vec<Core>,
    l1d: Vec<Cache>,
    l1i: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    dir: Directory,
    /// The interconnect: per-cluster address/data bus pairs plus a global
    /// segment, carrying requests, invalidations, upgrades and line
    /// transfers. On the flat (one-cluster) topology it degenerates to the
    /// original single shared bus pair.
    net: Interconnect,
    bank_ports: Vec<Resource>,
    hook_ports: Vec<Resource>,
    l3_port: Resource,
    hooks: Vec<Option<Box<dyn BankHook>>>,
    hwnet: DedicatedNetwork,
    /// The event queue: per-core lanes + a shared lane
    /// ([`SimConfig::event_shards`]) or the single calendar queue. Lane
    /// routing lives in [`schedule`](Machine::schedule).
    events: EngineQueue<Ev>,
    now: u64,
    /// Fills parked at bank hooks (O(1) by core and by token; see
    /// [`ParkedSet`]).
    parked: ParkedSet,
    next_token: u64,
    /// Per-line coherence-serialization point: successive ownership
    /// transfers (dirty cache-to-cache reads, upgrades, exclusive fetches)
    /// of the same line queue here, modelling the directory's pending-
    /// transaction serialization. This is what makes a contended LL/SC
    /// line cost a round trip per successful read-modify-write.
    line_busy: FxHashMap<u64, u64>,
    scheduled_deadlines: Vec<Option<u64>>,
    /// Streaming trace consumer ([`SimConfig::trace`] selects which).
    /// Sinks are pure observers: they never acquire a simulated resource,
    /// so enabling one cannot change cycle counts or the stats digest.
    sink: Box<dyn TraceSink>,
    /// Cached `!config.trace.is_off()` so the hot path pays one branch.
    trace_on: bool,
    /// Always-on per-barrier-episode accounting (events on the barrier
    /// path are rare next to instruction retirement).
    tracker: EpisodeTracker,
    scaled: ScaledCosts,
    /// Cores not yet halted (so the run loop's are-we-done check is O(1)).
    live_cores: usize,
    /// Core currently executing a burst ([`usize::MAX`] = none). While set,
    /// [`finish`](Machine::finish) records that core's next ready cycle in
    /// `burst_ready` instead of enqueueing a `CoreReady` event — the burst
    /// loop in [`run_until`](Machine::run_until) either consumes it in
    /// place or flushes it to the queue.
    burst_core: usize,
    /// The bursting core's deferred ready cycle, if its last instruction
    /// retired through the deferring path.
    burst_ready: Option<u64>,
    /// Instructions retired via the burst fast path (host-side metric:
    /// deliberately not part of [`MachineStats`], which fingerprints
    /// simulated behaviour only).
    burst_retired: u64,
    /// Decoded-superblock cache (see [`crate::decode`]): pre-decoded
    /// straight-line runs with pre-scaled issue costs, so the hot path
    /// skips `Program::fetch` and the cost tables entirely.
    decode: DecodeCache,
    /// Cached [`SimConfig::decode_cache`]: routes `CoreReady` stepping
    /// through the decoded executor or the reference interpreter.
    decode_on: bool,
    /// Memory-op-fused executor counters (host-side; see
    /// [`FusedMemStats`]).
    fused: FusedMemStats,
    /// Cores currently holding a LL reservation; lets the per-store
    /// [`clear_links`](Machine::clear_links) broadcast skip its all-cores
    /// scan in the (overwhelmingly common) no-reservation case.
    live_links: u32,
    /// Self-modifying-code patches staged by [`Machine::patch_code`],
    /// deduplicated by pc. A patch lands in the program image only when an
    /// `icbi` broadcast covers its line — until then every fetch
    /// (windowed, decoded, or cold) architecturally sees the old word, so
    /// the stale-fetch window is deterministic and identical with the
    /// decode cache on or off.
    pending_patches: Vec<(u64, Instr)>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.now)
            .field("cores", &self.cores.len())
            .field("pending_events", &self.events.len())
            .field("parked_fills", &self.parked.len())
            .field("clusters", &self.config.topology.clusters)
            .finish_non_exhaustive()
    }
}

impl Machine {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_builder(
        config: SimConfig,
        program: Program,
        mem: Memory,
        cores: Vec<Core>,
        hooks: Vec<Option<Box<dyn BankHook>>>,
        hwnet: DedicatedNetwork,
        sink: Box<dyn TraceSink>,
        trace_on: bool,
    ) -> Machine {
        let n = config.num_cores;
        let banks = config.l2_banks;
        let per_bank = crate::config::CacheConfig {
            size_bytes: config.l2.size_bytes / banks as u64,
            ways: config.l2.ways,
            latency: config.l2.latency,
        };
        let mut m = Machine {
            l1d: (0..n).map(|_| Cache::new(config.l1d)).collect(),
            l1i: (0..n).map(|_| Cache::new(config.l1i)).collect(),
            l2: (0..banks).map(|_| Cache::new(per_bank)).collect(),
            l3: Cache::new(config.l3),
            dir: Directory::new(),
            net: Interconnect::new(config.topology.clusters, config.topology.hop, config.bus),
            bank_ports: (0..banks).map(|_| Resource::new()).collect(),
            hook_ports: (0..banks).map(|_| Resource::new()).collect(),
            l3_port: Resource::new(),
            hooks,
            hwnet,
            events: EngineQueue::new(config.event_shards, n),
            now: 0,
            parked: ParkedSet::new(n),
            next_token: 0,
            line_busy: FxHashMap::default(),
            scheduled_deadlines: vec![None; banks],
            sink,
            trace_on,
            tracker: EpisodeTracker::new(banks),
            scaled: ScaledCosts::new(&config),
            live_cores: cores.iter().filter(|c| !c.halted).count(),
            burst_core: usize::MAX,
            burst_ready: None,
            burst_retired: 0,
            decode: DecodeCache::new(&program, config.decode_cache && config.fused_memory),
            decode_on: config.decode_cache,
            fused: FusedMemStats::default(),
            live_links: 0,
            pending_patches: Vec::new(),
            config,
            program,
            mem,
            cores,
        };
        for c in 0..m.cores.len() {
            if !m.cores[c].halted {
                m.schedule(0, Ev::CoreReady(c as u32));
            }
        }
        m
    }

    /// Enqueue an event, routing it to its queue lane: core-addressed
    /// events (ready, store retire, fills) go to that core's lane, bank
    /// hook traffic to the shared lane. Routing is pure dispatch — the
    /// drain order is the same total `(cycle, seq)` order either way.
    fn schedule(&mut self, cycle: u64, ev: Ev) {
        let lane = match ev {
            Ev::CoreReady(c) | Ev::StoreRetire(c) => c as usize,
            Ev::FillReady { core, .. } | Ev::FillDone { core, .. } => core as usize,
            Ev::HookInvalidate { .. } | Ev::HookDeadline { .. } => self.cores.len(),
        };
        self.events.push(lane, cycle, ev);
    }

    fn trace(&mut self, ev: TraceEvent) {
        if self.trace_on {
            self.sink.record(self.now, &ev);
        }
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Run until every core halts.
    ///
    /// # Errors
    ///
    /// Any [`SimError`], including [`SimError::Deadlock`] if cores remain
    /// blocked with no pending events, and
    /// [`SimError::CycleLimitExceeded`] past
    /// [`SimConfig::cycle_limit`](crate::SimConfig::cycle_limit).
    pub fn run(&mut self) -> Result<RunSummary, SimError> {
        match self.run_until(u64::MAX)? {
            RunState::Finished(s) => Ok(s),
            RunState::Paused => unreachable!("run_until(u64::MAX) cannot pause"),
        }
    }

    /// Run until every core halts or the simulation clock reaches
    /// `pause_at`, whichever comes first. Used by tests that intervene
    /// mid-run (e.g. the context-switch model of §3.3.3).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Machine::run).
    pub fn run_until(&mut self, pause_at: u64) -> Result<RunState, SimError> {
        loop {
            if self.live_cores == 0 {
                return Ok(RunState::Finished(self.summary()));
            }
            let Some(head_cycle) = self.events.next_cycle() else {
                // With no events pending, a machine is quiescent — not
                // deadlocked — if only the OS (the caller) can make
                // progress: every unfinished thread is context-switched
                // out, or parked behind a bank hook waiting on a barrier
                // that a switched-out thread still has to arrive at.
                // Without a switched-out thread to resume, parked-only is
                // a true deadlock (nothing can ever release the fills).
                let any_switched_out = self
                    .cores
                    .iter()
                    .any(|c| matches!(c.waiting, Waiting::SwitchedOut { .. }));
                let os_resumable = self.cores.iter().all(|c| {
                    c.halted
                        || matches!(
                            c.waiting,
                            Waiting::SwitchedOut { .. } | Waiting::Fill { parked: true, .. }
                        )
                });
                if any_switched_out && os_resumable {
                    // The machine idles until the OS's next intervention:
                    // advance the clock to the requested pause point so a
                    // resume scheduled for cycle T happens at cycle T,
                    // not at whatever cycle the machine went quiescent.
                    if pause_at != u64::MAX {
                        self.now = self.now.max(pause_at);
                    }
                    return Ok(RunState::Paused);
                }
                return Err(self.deadlock());
            };
            if head_cycle >= pause_at {
                self.now = self.now.max(pause_at);
                return Ok(RunState::Paused);
            }
            if head_cycle > self.config.cycle_limit {
                return Err(SimError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            }
            // Same-cycle cohort drain. Every event in the cohort shares
            // `head_cycle`, so the pause and cycle-limit gates above hold
            // for all of them and are checked once instead of per event;
            // only what an event can actually change — core liveness, and
            // the queue head via pushes — is re-checked inside. Events
            // pushed *at* `head_cycle` mid-cohort (store retires chaining
            // at `now`, hw-barrier releases) join the cohort in `seq`
            // order, exactly as a pop-one-reconsider loop would drain
            // them.
            self.now = self.now.max(head_cycle);
            while let Some(ev) = self.events.pop_at(head_cycle) {
                match ev {
                    Ev::CoreReady(c) if self.events.all_later_than(self.now) => {
                        self.core_ready_burst(c as usize, pause_at)?;
                    }
                    // With another event pending at `now`, the burst gate
                    // would fail after one step no matter what the step
                    // does (its deferred ready lies at `>= now`), so skip
                    // the defer/flush frame: `finish` is every deferring
                    // path's last event push, so pushing the `CoreReady`
                    // there directly assigns the identical `seq` the
                    // flush would have.
                    Ev::CoreReady(c) => self.step_once(c as usize)?,
                    ev => self.dispatch(ev)?,
                }
                if self.live_cores == 0 {
                    return Ok(RunState::Finished(self.summary()));
                }
            }
        }
    }

    /// Dispatch a popped `CoreReady` with the core-step burst fast path.
    ///
    /// After an instruction retires through [`finish`](Machine::finish),
    /// the engine's only pending obligation for this core is a `CoreReady`
    /// at the instruction's completion cycle `at`. If every queued event
    /// lies *strictly* after `at` (and `at` clears the pause/cycle-limit
    /// gates the run loop would apply), that event would be pushed and
    /// immediately popped as the unique queue minimum — so the next
    /// instruction executes in place instead, skipping the round trip.
    ///
    /// Bit-identity argument: the loop advances `now` exactly as the pop
    /// would (`at >= now` always), every other side effect (cache, bus,
    /// directory, memory, event pushes from store/miss paths) happens in
    /// the same order at the same cycles, and the skipped `CoreReady` can
    /// never tie with another event — events already queued are strictly
    /// later by the precondition, and events pushed afterwards would have
    /// carried larger sequence numbers (thus drained after it) anyway.
    /// The burst drains back to the queue the moment the core blocks or
    /// halts (no deferred ready), an instruction retires through a
    /// non-deferring path (`finish_at`, hw-barrier release), the strictly-
    /// later precondition fails, or the budget expires.
    fn core_ready_burst(&mut self, c: usize, pause_at: u64) -> Result<(), SimError> {
        let budget = self.config.burst_budget;
        if budget == 0 {
            return self.step_once(c);
        }
        self.burst_core = c;
        let mut left = budget;
        let result = loop {
            debug_assert!(self.burst_ready.is_none());
            if let Err(e) = self.step_once(c) {
                break Err(e);
            }
            let Some(at) = self.burst_ready.take() else {
                // Blocked, halted, or scheduled through a non-deferring
                // path: the queue already holds whatever comes next.
                break Ok(());
            };
            left -= 1;
            let burst_on = left > 0
                && at < pause_at
                && at <= self.config.cycle_limit
                && self.events.all_later_than(at);
            if !burst_on {
                self.schedule(at, Ev::CoreReady(c as u32));
                break Ok(());
            }
            self.burst_retired += 1;
            self.now = at;
        };
        self.burst_core = usize::MAX;
        result
    }

    fn summary(&self) -> RunSummary {
        // Monotone with `Machine::now()`: trailing events that drain after
        // the last core halts (bank-hook timers, delayed fault resumes,
        // quiescent-advance pauses) still advance `now`, and the reported
        // cycle count must not roll backwards past them to the halt cycle.
        RunSummary {
            cycles: self
                .cores
                .iter()
                .filter_map(|c| c.stats.halt_cycle)
                .max()
                .map_or(self.now, |h| h.max(self.now)),
            instructions: self.cores.iter().map(|c| c.stats.instructions).sum(),
        }
    }

    fn deadlock(&self) -> SimError {
        SimError::Deadlock {
            cycle: self.now,
            blocked: self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.halted)
                .map(|(i, c)| (i, c.blocked_reason()))
                .collect(),
        }
    }

    /// Current simulation cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The program this machine executes (for post-run static analysis).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Instructions retired via the core-step burst fast path so far.
    ///
    /// A host-side engine metric: it varies with
    /// [`SimConfig::burst_budget`](crate::SimConfig::burst_budget) while
    /// every simulated number stays bit-identical, so it is deliberately
    /// not part of [`MachineStats`]. Tests use it to prove the fast path
    /// actually engaged.
    pub fn burst_retired(&self) -> u64 {
        self.burst_retired
    }

    /// Decoded-superblock cache counters so far (hits/builds/invalidations).
    ///
    /// Host-side engine metrics like [`burst_retired`](Machine::burst_retired):
    /// they vary with [`SimConfig::decode_cache`] while every simulated
    /// number stays bit-identical, so they are not part of [`MachineStats`]
    /// or its digest. Tests use the hit counter to prove the decoded
    /// executor actually engaged.
    pub fn decode_stats(&self) -> DecodeCacheStats {
        self.decode.stats()
    }

    /// Sharded-event-queue counters so far (per-lane push counts, head
    /// rescans). All zero when the machine runs the calendar queue
    /// ([`SimConfig::event_shards`] off) — which is what lets tests prove
    /// the knob actually switched implementations. Host-side engine
    /// metrics, not part of [`MachineStats`] or its digest.
    pub fn queue_stats(&self) -> EventQueueStats {
        self.events.stats()
    }

    /// Memory-op-fused executor counters so far (fused loads/stores, line-
    /// memo hits). All zero unless both [`SimConfig::decode_cache`] and
    /// [`SimConfig::fused_memory`] are on. Host-side engine metrics, not
    /// part of [`MachineStats`] or its digest.
    pub fn fused_stats(&self) -> FusedMemStats {
        self.fused
    }

    /// Stage a self-modifying-code patch: replace the instruction at `pc`
    /// with `instr`, effective at the next `icbi` broadcast covering that
    /// line. Until a running core executes `icbi` for the patched line,
    /// every fetch architecturally sees the old word (matching the stale
    /// window real weakly-ordered ISAs permit between a code store and the
    /// `icbi`/`isync` sequence), so runs are deterministic — and identical
    /// with the decode cache on or off — even when a core races the patch.
    /// Restaging the same pc before the `icbi` lands replaces the staged
    /// word.
    ///
    /// # Errors
    ///
    /// [`SimError::PatchOutsideCode`] if `pc` is outside the program image
    /// or misaligned.
    pub fn patch_code(&mut self, pc: u64, instr: Instr) -> Result<(), SimError> {
        if self.program.fetch(pc).is_none() {
            return Err(SimError::PatchOutsideCode { pc });
        }
        if let Some(slot) = self.pending_patches.iter_mut().find(|(p, _)| *p == pc) {
            slot.1 = instr;
        } else {
            self.pending_patches.push((pc, instr));
        }
        Ok(())
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Read a u64 from simulated memory (host-side, no timing effect).
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.mem.read_u64(addr)
    }

    /// Read an f64 from simulated memory (host-side, no timing effect).
    pub fn read_f64(&self, addr: u64) -> f64 {
        self.mem.read_f64(addr)
    }

    /// Read `n` consecutive f64 values (host-side).
    pub fn read_f64_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        self.mem.read_f64_slice(addr, n)
    }

    /// Read `n` consecutive u64 values (host-side).
    pub fn read_u64_slice(&self, addr: u64, n: usize) -> Vec<u64> {
        self.mem.read_u64_slice(addr, n)
    }

    /// Write a u64 to simulated memory (host-side, no timing effect).
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.mem.write_u64(addr, v);
    }

    /// An integer register of a core (debug/validation).
    pub fn core_reg(&self, core: usize, r: Reg) -> u64 {
        self.cores[core].reg(r)
    }

    /// Counter snapshot across the whole machine.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            cycles: self.now,
            cores: self.cores.iter().map(|c| c.stats).collect(),
            l1d: self.l1d.iter().map(Cache::stats).collect(),
            l1i: self.l1i.iter().map(Cache::stats).collect(),
            l2: self.l2.iter().map(Cache::stats).collect(),
            l3: self.l3.stats(),
            addr_bus: self.net.addr_stats(),
            data_bus: self.net.data_stats(),
            hook_ports: self.hook_ports.iter().map(Resource::stats).collect(),
            directory: self.dir.stats(),
            hw_network: self.hwnet.stats(),
            episodes: self.tracker.stats(),
        }
    }

    /// Events retained by the configured sink as `(cycle, event)` pairs,
    /// oldest first (empty unless [`SimConfig::trace`] selects a storing
    /// sink such as [`TraceConfig::Ring`](crate::TraceConfig::Ring)).
    /// Borrows the sink's storage — the old `trace_events()` cloned the
    /// whole buffer per call.
    pub fn trace_snapshot(&mut self) -> &[(u64, TraceEvent)] {
        self.sink.snapshot()
    }

    /// Event-count metrics from the configured sink (present for
    /// [`TraceConfig::Metrics`](crate::TraceConfig::Metrics)).
    pub fn trace_metrics(&self) -> Option<TraceMetrics> {
        self.sink.metrics()
    }

    /// Flush any buffered trace output (file sinks). Called automatically
    /// when the machine is dropped; call it earlier to inspect a trace
    /// file while the machine is still alive.
    pub fn flush_trace(&mut self) {
        self.sink.flush();
    }

    /// Borrow a bank hook for inspection (tests).
    pub fn hook(&self, bank: usize) -> Option<&dyn BankHook> {
        self.hooks[bank].as_deref()
    }

    /// Model the OS context-switching out a thread whose fill is parked at a
    /// bank hook (§3.3.3): the parked request is cancelled (its MSHR is
    /// released) and the core is marked switched-out. Returns `false` if the
    /// core was not parked.
    pub fn context_switch_out(&mut self, core: usize) -> bool {
        let Waiting::Fill {
            line,
            cont,
            parked: true,
        } = self.cores[core].waiting
        else {
            return false;
        };
        let Some(token) = self.parked.remove_by_core(core) else {
            return false;
        };
        let bank = self.config.bank_of(line);
        if let Some(hook) = self.hooks[bank].as_mut() {
            hook.on_cancel(token);
        }
        self.tracker.note_cancel();
        self.cores[core].mshr_used -= 1;
        self.cores[core].waiting = Waiting::SwitchedOut { cont, line };
        true
    }

    /// Model the OS rescheduling a switched-out thread: the blocked access
    /// re-issues its fill request. If the barrier opened while the thread
    /// was switched out, the filter services the request and the thread
    /// resumes; otherwise it parks again (§3.3.3).
    ///
    /// # Errors
    ///
    /// [`SimError::NotSwitchedOut`] if the core is not switched out
    /// (recoverable — fault injectors probe cores without panicking), and
    /// any [`SimError`] from the re-issued access.
    pub fn resume_thread(&mut self, core: usize) -> Result<(), SimError> {
        let Waiting::SwitchedOut { cont, line } = self.cores[core].waiting else {
            return Err(SimError::NotSwitchedOut { core });
        };
        let kind = match cont {
            Continuation::IFetch => AccessKind::IFetch,
            _ => AccessKind::DRead,
        };
        let now = self.now;
        let access = self.miss_path(core, line, kind, now, FillPurpose::Resume)?;
        let parked = matches!(access, Access::Parked);
        if parked {
            self.tracker.note_repark();
        } else {
            self.tracker.note_resume_after_release();
        }
        self.cores[core].waiting = Waiting::Fill { line, cont, parked };
        Ok(())
    }

    /// Cores currently parked at a bank hook — the §3.3.3 fault surface:
    /// these are the threads a context switch or migration can disturb.
    /// A core whose release is already in flight (the hook let it go but
    /// the response has not yet delivered) is no longer cancelable and is
    /// not listed — [`context_switch_out`](Machine::context_switch_out) is
    /// guaranteed to succeed for every returned core.
    pub fn parked_cores(&self) -> Vec<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|&(i, c)| {
                matches!(c.waiting, Waiting::Fill { parked: true, .. })
                    && self.parked.contains_core(i)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Cores currently context-switched out (awaiting
    /// [`resume_thread`](Machine::resume_thread)).
    pub fn switched_out_cores(&self) -> Vec<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.waiting, Waiting::SwitchedOut { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Model the OS migrating two switched-out threads across cores
    /// (§3.3.3): their architectural state — registers, program counter and
    /// the blocked arrival access — swaps between the physical cores, so
    /// each thread re-arrives at the barrier from the other core when
    /// resumed. LL/SC reservations and fetch windows do not survive a
    /// migration; in-flight posted stores stay with the physical core (the
    /// store buffer is a timing structure whose architectural effect has
    /// already happened).
    ///
    /// # Errors
    ///
    /// [`SimError::NotSwitchedOut`] if either core is not switched out.
    pub fn migrate_thread(&mut self, a: usize, b: usize) -> Result<(), SimError> {
        for core in [a, b] {
            if !matches!(self.cores[core].waiting, Waiting::SwitchedOut { .. }) {
                return Err(SimError::NotSwitchedOut { core });
            }
        }
        if a == b {
            return Ok(());
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (left, right) = self.cores.split_at_mut(hi);
        let (ca, cb) = (&mut left[lo], &mut right[0]);
        std::mem::swap(&mut ca.regs, &mut cb.regs);
        std::mem::swap(&mut ca.fregs, &mut cb.fregs);
        std::mem::swap(&mut ca.pc, &mut cb.pc);
        std::mem::swap(&mut ca.waiting, &mut cb.waiting);
        for c in [a, b] {
            if self.cores[c].link.take().is_some() {
                self.live_links -= 1;
            }
            self.cores[c].clear_ifetch_window();
        }
        Ok(())
    }

    /// Run bank `bank`'s hook through its OS reprogram path (§3.3.3 filter
    /// re-arm). Returns `None` if the bank has no hook; `Some(Err(_))` is
    /// the recoverable misprogramming case — the OS attempted a
    /// save/restore while the filter held parked fills.
    pub fn reprogram_bank(&mut self, bank: usize) -> Option<Result<(), HookViolation>> {
        self.hooks[bank].as_mut().map(|h| h.reprogram())
    }

    /// Whether every bank hook is quiescent: no fill parked in the engine
    /// and no park pending inside any hook. Chaos runs assert this after
    /// completion — a fault must never strand state in a filter table.
    pub fn hooks_quiescent(&self) -> bool {
        self.parked.is_empty() && self.hooks.iter().flatten().all(|h| h.pending_parks() == 0)
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: Ev) -> Result<(), SimError> {
        match ev {
            Ev::CoreReady(c) => self.step_once(c as usize),
            Ev::StoreRetire(c) => self.store_retire(c as usize),
            Ev::FillReady {
                core,
                line,
                kind,
                purpose,
            } => self.fill_ready(core as usize, line, kind, purpose),
            Ev::FillDone { core, line, error } => self.fill_done(core as usize, line, error),
            Ev::HookInvalidate { bank, line } => self.hook_invalidate(bank as usize, line),
            Ev::HookDeadline { bank } => self.hook_deadline(bank as usize),
        }
    }

    fn store_retire(&mut self, c: usize) -> Result<(), SimError> {
        let now = self.now;
        self.cores[c].store_buffer.pop_front();
        if let Some(&line) = self.cores[c].store_buffer.front() {
            match self.store_path(c, line, now, FillPurpose::StoreDrain)? {
                StoreOutcome::Done(t) => self.schedule(t, Ev::StoreRetire(c as u32)),
                StoreOutcome::Pending => {}
            }
        } else {
            self.cores[c].draining = false;
            if let Waiting::Fence { residual } = self.cores[c].waiting {
                self.cores[c].waiting = Waiting::None;
                self.schedule(now + residual, Ev::CoreReady(c as u32));
            }
        }
        if matches!(self.cores[c].waiting, Waiting::StoreSlot) {
            self.cores[c].waiting = Waiting::None;
            self.schedule(now, Ev::CoreReady(c as u32));
        }
        Ok(())
    }

    /// The data for a pending fill is ready at its source: move it across
    /// the bus now (response phase) and deliver.
    fn fill_ready(
        &mut self,
        c: usize,
        line: u64,
        kind: AccessKind,
        purpose: FillPurpose,
    ) -> Result<(), SimError> {
        let from = self.config.cluster_of_bank(self.config.bank_of(line));
        let to = self.config.cluster_of_core(c);
        let done = self.net.data(from, to, self.now) + 1;
        match purpose {
            FillPurpose::Resume => {
                self.schedule(
                    done,
                    Ev::FillDone {
                        core: c as u32,
                        line,
                        error: false,
                    },
                );
            }
            FillPurpose::StoreDrain => {
                self.fill_l1(c, line, kind, done);
                self.cores[c].mshr_used = self.cores[c].mshr_used.saturating_sub(1);
                self.schedule(done, Ev::StoreRetire(c as u32));
            }
        }
        Ok(())
    }

    fn fill_done(&mut self, c: usize, line: u64, error: bool) -> Result<(), SimError> {
        let now = self.now;
        self.cores[c].mshr_used = self.cores[c].mshr_used.saturating_sub(1);
        let Waiting::Fill { cont, .. } = self.cores[c].waiting else {
            debug_assert!(false, "FillDone for a core that is not waiting on a fill");
            return Ok(());
        };
        self.cores[c].waiting = Waiting::None;
        self.complete_continuation(c, cont, line, error, now)
    }

    fn complete_continuation(
        &mut self,
        c: usize,
        cont: Continuation,
        line: u64,
        error: bool,
        at: u64,
    ) -> Result<(), SimError> {
        match cont {
            Continuation::IFetch => {
                if error {
                    return Err(SimError::IFetchErrorReply { core: c, line });
                }
                self.fill_l1(c, line, AccessKind::IFetch, at);
                self.schedule(at, Ev::CoreReady(c as u32));
            }
            Continuation::Load {
                rd,
                addr,
                width,
                set_link,
            } => {
                // An error reply carries no data: nothing is installed, so
                // a §3.3.4 retry re-issues a real fill request.
                if !error {
                    self.fill_l1(c, line, AccessKind::DRead, at);
                }
                let value = if error {
                    FILL_ERROR_SENTINEL & mask_for(width)
                } else {
                    self.trace(TraceEvent::DataRead {
                        core: c,
                        addr,
                        bytes: width.bytes(),
                    });
                    self.mem.read_le(addr, width.bytes() as usize)
                };
                self.cores[c].set_reg(rd, value);
                if set_link {
                    self.set_link(c, line);
                }
                self.schedule(at, Ev::CoreReady(c as u32));
            }
            Continuation::FLoad { fd, addr } => {
                if !error {
                    self.fill_l1(c, line, AccessKind::DRead, at);
                }
                let value = if error {
                    f64::from_bits(FILL_ERROR_SENTINEL)
                } else {
                    self.trace(TraceEvent::DataRead {
                        core: c,
                        addr,
                        bytes: 8,
                    });
                    self.mem.read_f64(addr)
                };
                self.cores[c].set_freg(fd, value);
                self.schedule(at, Ev::CoreReady(c as u32));
            }
            Continuation::Sc { rd, src, addr } => {
                // The success of a store-conditional is decided when the
                // exclusive-ownership round trip completes: another core's
                // commit in the meantime has cleared our reservation.
                let ok = self.cores[c].link == Some(line) && !error;
                if ok {
                    self.fill_l1(c, line, AccessKind::DWrite, at);
                    self.mem.write_u64(addr, src);
                    self.clear_links(line);
                    self.cores[c].stats.stores += 1;
                    self.trace(TraceEvent::DataWrite {
                        core: c,
                        addr,
                        bytes: 8,
                    });
                }
                self.cores[c].set_reg(rd, ok as u64);
                self.schedule(at, Ev::CoreReady(c as u32));
            }
        }
        Ok(())
    }

    fn hook_invalidate(&mut self, bank: usize, line: u64) -> Result<(), SimError> {
        if self.hooks[bank].is_none() {
            return Ok(());
        }
        self.tracker.note_invalidate(bank);
        let now = self.now;
        let th = self.hook_ports[bank].acquire(now, self.config.hook_cycles_per_request);
        let mut out = HookOutcome::default();
        let result = self.hooks[bank]
            .as_mut()
            .expect("checked above")
            .on_invalidate(line, th, &mut out);
        if let Err(v) = result {
            return Err(SimError::Hook {
                cycle: now,
                line,
                violation: v,
            });
        }
        self.process_outcome(bank, th, out)?;
        self.refresh_deadline(bank);
        Ok(())
    }

    fn hook_deadline(&mut self, bank: usize) -> Result<(), SimError> {
        let Some(hook) = self.hooks[bank].as_mut() else {
            return Ok(());
        };
        let now = self.now;
        self.scheduled_deadlines[bank] = None;
        if hook.deadline().is_none_or(|d| d > now) {
            // Deadline was pushed back or satisfied; re-arm if needed.
            self.refresh_deadline(bank);
            return Ok(());
        }
        let mut out = HookOutcome::default();
        self.hooks[bank]
            .as_mut()
            .expect("checked above")
            .on_deadline(now, &mut out);
        self.process_outcome(bank, now, out)?;
        self.refresh_deadline(bank);
        Ok(())
    }

    fn refresh_deadline(&mut self, bank: usize) {
        let Some(hook) = self.hooks[bank].as_ref() else {
            return;
        };
        let Some(d) = hook.deadline() else {
            return;
        };
        let d = d.max(self.now);
        if self.scheduled_deadlines[bank].is_none_or(|s| s > d) {
            self.scheduled_deadlines[bank] = Some(d);
            self.schedule(d, Ev::HookDeadline { bank: bank as u32 });
        }
    }

    /// Service (or error) parked fills released by a hook. Responses leave
    /// the hook at one per [`hook_cycles_per_request`] (Table 2), then cross
    /// the bus.
    fn process_outcome(
        &mut self,
        bank: usize,
        base: u64,
        out: HookOutcome,
    ) -> Result<(), SimError> {
        let hc = self.config.hook_cycles_per_request;
        let bank_cluster = self.config.cluster_of_bank(bank);
        let mut slot = 0u64;
        let mut released = 0u32;
        let mut errored = 0u32;
        let mut last_delivery = base;
        for (tokens, error) in [(&out.released, false), (&out.errored, true)] {
            for &token in tokens.iter() {
                let Some(p) = self.parked.remove_by_token(token) else {
                    return Err(SimError::Hook {
                        cycle: self.now,
                        line: 0,
                        violation: crate::hook::HookViolation::new(format!(
                            "hook released unknown park token {token:?}"
                        )),
                    });
                };
                slot += 1;
                let t2 = base + slot * hc;
                let to = self.config.cluster_of_core(p.core);
                let done = self.net.data(bank_cluster, to, t2) + 1;
                last_delivery = last_delivery.max(done);
                if error {
                    errored += 1;
                    self.trace(TraceEvent::Errored {
                        core: p.core,
                        line: p.line,
                    });
                } else {
                    released += 1;
                    self.cores[p.core].stats.fills_released += 1;
                    self.trace(TraceEvent::Released {
                        core: p.core,
                        line: p.line,
                    });
                }
                self.schedule(
                    done,
                    Ev::FillDone {
                        core: p.core as u32,
                        line: p.line,
                        error,
                    },
                );
            }
        }
        if released + errored > 0 {
            // A non-empty burst closes the bank's barrier episode: the
            // hook observed its last arrival and opened the barrier.
            let ev = self
                .tracker
                .close_bank(bank, base, released, errored, last_delivery);
            self.trace(ev);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Memory-system paths
    // ------------------------------------------------------------------

    /// Fill `line` into the requester's L1, handling eviction bookkeeping.
    ///
    /// If the directory no longer registers the core for this line — a
    /// remote writer invalidated it while the fill was in flight — the data
    /// is delivered to the pipeline but no (stale) tag is installed, as in
    /// real protocols where an in-flight fill loses a race with an
    /// invalidation.
    fn fill_l1(&mut self, c: usize, line: u64, kind: AccessKind, t: u64) {
        match kind {
            AccessKind::IFetch => {
                self.l1i[c].insert(line, LineState::Shared);
            }
            AccessKind::DRead | AccessKind::DWrite => {
                let still_mine = match kind {
                    AccessKind::DWrite => self.dir.owner_of(line) == Some(c as u16),
                    _ => self.dir.is_sharer(c as u16, line),
                };
                if !still_mine {
                    return;
                }
                let state = match kind {
                    AccessKind::DWrite => LineState::Modified,
                    _ => LineState::Shared,
                };
                if let Some((victim, _)) = self.l1d[c].insert(line, state) {
                    let dirty = self.dir.evict(c as u16, victim);
                    if dirty {
                        // Writeback occupies the bus but is off the critical
                        // path of the fill: core's cluster to the victim's
                        // home bank.
                        let from = self.config.cluster_of_core(c);
                        let to = self.config.cluster_of_bank(self.config.bank_of(victim));
                        self.net.data(from, to, t);
                    }
                }
            }
        }
    }

    /// The request phase of the miss path for `line`, starting at cycle
    /// `start` (which already includes the L1 lookup that missed). The
    /// response phase runs in the `FillReady` event this schedules.
    fn miss_path(
        &mut self,
        c: usize,
        line: u64,
        kind: AccessKind,
        start: u64,
        purpose: FillPurpose,
    ) -> Result<Access, SimError> {
        let l2_lat = self.config.l2.latency;
        let hook_cy = self.config.hook_cycles_per_request;
        let l3_lat = self.config.l3.latency;
        let mem_lat = self.config.mem_latency;

        self.cores[c].mshr_used += 1;
        self.cores[c].note_mshr();
        if self.cores[c].mshr_used > self.config.mshrs_per_core {
            return Err(SimError::MshrOverflow { core: c });
        }

        let mut t = start;

        // Directory interaction (data side only).
        match kind {
            AccessKind::DRead => {
                self.trace(TraceEvent::DMiss { core: c, line });
                if let ReadOutcome::FromOwner(owner) = self.dir.read(c as u16, line) {
                    // Cache-to-cache transfer through the shared controller,
                    // serialized against other transfers of this line.
                    self.trace(TraceEvent::CacheToCache {
                        core: c,
                        owner: owner as usize,
                        line,
                    });
                    self.l1d[owner as usize].set_state(line, LineState::Shared);
                    let from = self.config.cluster_of_core(c);
                    let to = self.config.cluster_of_core(owner as usize);
                    let arrive = self.net.cmd(from, to, t);
                    let g = self.line_acquire(line, arrive, l2_lat);
                    let ready = g + l2_lat;
                    self.schedule(
                        ready,
                        Ev::FillReady {
                            core: c as u32,
                            line,
                            kind,
                            purpose,
                        },
                    );
                    return Ok(Access::Pending);
                }
            }
            AccessKind::DWrite => {
                self.trace(TraceEvent::DMiss { core: c, line });
                let w = self.dir.write(c as u16, line);
                if !w.invalidate.is_empty() {
                    for &s in &w.invalidate {
                        self.l1d[s as usize].invalidate(line);
                    }
                    self.trace(TraceEvent::Upgrade {
                        core: c,
                        line,
                        copies: w.invalidate.len() as u32,
                    });
                    // One broadcast invalidation command.
                    let cc = self.config.cluster_of_core(c);
                    t = self.net.broadcast_cmd(cc, t) + 1;
                }
                if let Some(owner) = w.dirty_owner {
                    self.l1d[owner as usize].invalidate(line);
                    let from = self.config.cluster_of_core(c);
                    let to = self.config.cluster_of_core(owner as usize);
                    let arrive = self.net.cmd(from, to, t);
                    let g = self.line_acquire(line, arrive, l2_lat);
                    let ready = g + l2_lat;
                    self.schedule(
                        ready,
                        Ev::FillReady {
                            core: c as u32,
                            line,
                            kind,
                            purpose,
                        },
                    );
                    return Ok(Access::Pending);
                }
            }
            AccessKind::IFetch => {
                self.trace(TraceEvent::IMiss { core: c, line });
            }
        }

        // Request crosses the interconnect to the home bank.
        let bank = self.config.bank_of(line);
        let from = self.config.cluster_of_core(c);
        let to = self.config.cluster_of_bank(bank);
        t = self.net.cmd(from, to, t);
        t = self.bank_ports[bank].acquire(t, 1) + 1;

        // Bank hook (barrier filter): its lookup runs in parallel with the
        // L2 access (§3.2), so a NotMine verdict adds no latency.
        if self.hooks[bank].is_some() {
            self.next_token += 1;
            let token = ParkToken(self.next_token);
            let mut out = HookOutcome::default();
            let decision = self.hooks[bank]
                .as_mut()
                .expect("checked above")
                .on_fill_request(line, token, t, &mut out);
            let decision = match decision {
                Ok(d) => d,
                Err(v) => {
                    return Err(SimError::Hook {
                        cycle: self.now,
                        line,
                        violation: v,
                    });
                }
            };
            self.process_outcome(bank, t, out)?;
            self.refresh_deadline(bank);
            match decision {
                FillDecision::NotMine => {}
                FillDecision::Service => {
                    // A barrier fill the hook answered without parking —
                    // the thread found its barrier already open (typically
                    // the episode's last arriver, released by its own
                    // invalidate an event earlier).
                    self.tracker.note_serviced();
                    self.trace(TraceEvent::Serviced { core: c, line });
                    let th = self.hook_ports[bank].acquire(t, hook_cy);
                    let ready = th + hook_cy + l2_lat;
                    self.schedule(
                        ready,
                        Ev::FillReady {
                            core: c as u32,
                            line,
                            kind,
                            purpose,
                        },
                    );
                    return Ok(Access::Pending);
                }
                FillDecision::Park => {
                    if matches!(kind, AccessKind::DWrite) {
                        return Err(SimError::Hook {
                            cycle: self.now,
                            line,
                            violation: crate::hook::HookViolation::new(
                                "a write-allocate fill was parked: stores must never target \
                                 barrier arrival addresses",
                            ),
                        });
                    }
                    self.hook_ports[bank].acquire(t, hook_cy);
                    self.parked.insert(token, c, line);
                    self.cores[c].stats.fills_parked += 1;
                    self.tracker.note_park(bank, t);
                    self.trace(TraceEvent::Parked { core: c, line });
                    return Ok(Access::Parked);
                }
            }
        }

        // L2 bank.
        let l2_hit = self.l2[bank].lookup(line).is_some();
        t += l2_lat;
        if !l2_hit {
            // L3.
            t = self.l3_port.acquire(t, 1) + 1;
            let l3_hit = self.l3.lookup(line).is_some();
            t += l3_lat;
            if !l3_hit {
                t += mem_lat;
                self.l3.insert(line, LineState::Shared);
            }
            self.l2[bank].insert(line, LineState::Shared);
        }
        self.schedule(
            t,
            Ev::FillReady {
                core: c as u32,
                line,
                kind,
                purpose,
            },
        );
        Ok(Access::Pending)
    }

    /// Perform a store to `line` (a drain from the store buffer, or a
    /// blocking store-conditional when `purpose` is `Resume`).
    fn store_path(
        &mut self,
        c: usize,
        line: u64,
        now: u64,
        purpose: FillPurpose,
    ) -> Result<StoreOutcome, SimError> {
        match self.l1d[c].lookup(line) {
            Some(LineState::Modified) => Ok(StoreOutcome::Done(now + self.config.l1d.latency)),
            Some(LineState::Shared) => {
                // Upgrade: invalidate remote sharers via one bus command.
                let w = self.dir.write(c as u16, line);
                for &s in &w.invalidate {
                    self.l1d[s as usize].invalidate(line);
                }
                if let Some(owner) = w.dirty_owner {
                    // Our Shared tag was stale (an in-flight-fill race):
                    // displace the true owner as well.
                    self.l1d[owner as usize].invalidate(line);
                }
                if !w.invalidate.is_empty() {
                    self.trace(TraceEvent::Upgrade {
                        core: c,
                        line,
                        copies: w.invalidate.len() as u32,
                    });
                }
                self.l1d[c].set_state(line, LineState::Modified);
                let cc = self.config.cluster_of_core(c);
                let arrive = self.net.broadcast_cmd(cc, now + self.config.l1d.latency);
                // The invalidation round trip serializes against other
                // transfers of this line at the directory.
                let busy = self.config.upgrade_busy;
                let g = self.line_acquire(line, arrive, busy);
                Ok(StoreOutcome::Done(g + busy))
            }
            None => {
                let start = now + self.config.l1d.latency;
                match self.miss_path(c, line, AccessKind::DWrite, start, purpose)? {
                    Access::Pending => Ok(StoreOutcome::Pending),
                    Access::Parked => unreachable!("DWrite park is rejected in miss_path"),
                }
            }
        }
    }

    /// FIFO-acquire the per-line coherence serialization point.
    fn line_acquire(&mut self, line: u64, t: u64, occupancy: u64) -> u64 {
        let cursor = self.line_busy.entry(line).or_insert(0);
        let grant = t.max(*cursor);
        *cursor = grant + occupancy;
        grant
    }

    fn clear_links(&mut self, line: u64) {
        if self.live_links == 0 {
            return;
        }
        for core in &mut self.cores {
            if core.link == Some(line) {
                core.link = None;
                self.live_links -= 1;
            }
        }
    }

    /// Establish core `c`'s LL reservation, keeping the live-link count in
    /// step (every `link` transition in the engine goes through this, the
    /// clear paths, or migration).
    #[inline]
    fn set_link(&mut self, c: usize, line: u64) {
        if self.cores[c].link.is_none() {
            self.live_links += 1;
        }
        self.cores[c].link = Some(line);
    }

    // ------------------------------------------------------------------
    // Instruction execution
    // ------------------------------------------------------------------

    #[inline]
    fn finish(&mut self, c: usize, cost: u64, next_pc: u64) {
        let core = &mut self.cores[c];
        core.pc = next_pc;
        core.stats.instructions += 1;
        let at = self.now + cost;
        if c == self.burst_core {
            // Burst fast path: defer the CoreReady — the burst loop either
            // executes the next instruction in place or flushes this to
            // the queue untouched.
            self.burst_ready = Some(at);
        } else {
            self.schedule(at, Ev::CoreReady(c as u32));
        }
    }

    /// Retire an instruction whose cost is divided by an issue width
    /// (superscalar approximation): costs accumulate in twelfths of a
    /// cycle ([`ScaledCosts`], precomputed at build), advancing the clock
    /// only when a whole cycle accrues.
    #[inline]
    fn finish_units(&mut self, c: usize, scaled_cost: u64, next_pc: u64) {
        let core = &mut self.cores[c];
        let units = core.issue_frac + scaled_cost;
        core.issue_frac = units % 12;
        core.pc = next_pc;
        core.stats.instructions += 1;
        let at = self.now + units / 12;
        if c == self.burst_core {
            self.burst_ready = Some(at);
        } else {
            self.schedule(at, Ev::CoreReady(c as u32));
        }
    }

    fn finish_at(&mut self, c: usize, at: u64, next_pc: u64) {
        self.cores[c].pc = next_pc;
        self.cores[c].stats.instructions += 1;
        self.schedule(at, Ev::CoreReady(c as u32));
    }

    /// Execute one instruction on core `c`, routed through the decoded
    /// executor or the reference interpreter per [`SimConfig::decode_cache`].
    /// Both produce identical simulated behaviour (see [`crate::decode`]).
    fn step_once(&mut self, c: usize) -> Result<(), SimError> {
        if self.decode_on {
            self.step_core_fast(c)
        } else {
            self.step_core(c)
        }
    }

    /// Shared I-fetch front end: ensure the ifetch window covers `pc`,
    /// going through the L1I (and on a miss, the fill machinery) exactly as
    /// before. Returns `false` when the core blocked on an instruction
    /// fill.
    fn ifetch_window(&mut self, c: usize, pc: u64) -> Result<bool, SimError> {
        if pc < self.cores[c].ifetch_lo || pc >= self.cores[c].ifetch_hi {
            let fetch_line = line_of(pc);
            if self.l1i[c].lookup(fetch_line).is_some() {
                self.cores[c].ifetch_lo = fetch_line;
                self.cores[c].ifetch_hi = fetch_line + sim_isa::LINE_BYTES;
            } else {
                let start = self.now + self.config.l1i.latency;
                let access = self.miss_path(
                    c,
                    fetch_line,
                    AccessKind::IFetch,
                    start,
                    FillPurpose::Resume,
                )?;
                self.cores[c].waiting = Waiting::Fill {
                    line: fetch_line,
                    cont: Continuation::IFetch,
                    parked: matches!(access, Access::Parked),
                };
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Reference interpreter step: fetch from the program image, compute
    /// the issue cost from the tables, execute.
    fn step_core(&mut self, c: usize) -> Result<(), SimError> {
        let core = &self.cores[c];
        if core.halted || !matches!(core.waiting, Waiting::None) {
            return Ok(());
        }
        let pc = core.pc;
        if !self.ifetch_window(c, pc)? {
            return Ok(());
        }
        let Some(instr) = self.program.fetch(pc) else {
            return Err(SimError::IllegalPc { core: c, pc });
        };
        let units = self.scaled.units_of(&instr);
        self.exec_instr(c, pc, instr, units)
    }

    /// Decoded-executor step: retire the next instruction straight out of
    /// the decoded-superblock cache. The per-core cursor makes the common
    /// case (straight-line code inside a block) a bounds-check and an
    /// arena read — no window math, no block-table probe, no
    /// `Program::fetch`, no cost lookup.
    fn step_core_fast(&mut self, c: usize) -> Result<(), SimError> {
        let core = &self.cores[c];
        if core.halted || !matches!(core.waiting, Waiting::None) {
            return Ok(());
        }
        let pc = core.pc;
        if core.dec_pos < core.dec_end && core.dec_pc == pc && core.dec_gen == self.decode.gen {
            // Cursor hit. A live cursor implies the ifetch window covers
            // `pc` (blocks never cross lines and window invalidations
            // clear the cursor), so the window check is skipped exactly
            // when it would have passed.
            let pos = core.dec_pos;
            return self.exec_decoded(c, pc, pos);
        }
        if !self.ifetch_window(c, pc)? {
            return Ok(());
        }
        let Some((start, end)) = self.decode.block_at(pc, &self.program, &self.scaled) else {
            return Err(SimError::IllegalPc { core: c, pc });
        };
        let core = &mut self.cores[c];
        core.dec_pos = start;
        core.dec_end = end;
        core.dec_pc = pc;
        core.dec_gen = self.decode.gen;
        self.exec_decoded(c, pc, start)
    }

    /// Execute the decoded op at arena position `pos`, advancing the
    /// cursor to the fall-through successor first. The optimistic advance
    /// is exact: ops that divert (branches, `jal`, `halt`) are always the
    /// last op of their block, so the advanced cursor is already invalid
    /// (`dec_pos == dec_end`); ops that block and later resume do so at
    /// the fall-through pc; and an op that re-executes at the same pc
    /// (store-buffer-full) misses the cursor and re-enters through the
    /// block table.
    fn exec_decoded(&mut self, c: usize, pc: u64, pos: u32) -> Result<(), SimError> {
        let op = self.decode.op(pos);
        let core = &mut self.cores[c];
        core.dec_pos = pos + 1;
        core.dec_pc = pc + sim_isa::INSTR_BYTES;
        // Memory-op-fused dispatch: the decode cache bakes `Other` for
        // every op when fusion is off, so this match *is* the knob — the
        // hot loop never tests the config. The fused arms perform exactly
        // the interpreter arms' simulated actions in the same order (see
        // each helper's digest argument); only the dispatch and the L1D
        // set walk are elided.
        let units = u64::from(op.units);
        match op.mem {
            MemClass::Other => self.exec_instr(c, pc, op.instr, units),
            MemClass::Load {
                rd,
                base,
                off,
                width,
                link,
            } => self.exec_load_fused(c, pc, rd, base, i64::from(off), width, link, units),
            MemClass::FLoad { fd, base, off } => {
                self.exec_fload_fused(c, pc, fd, base, i64::from(off), units)
            }
            MemClass::Store {
                src,
                base,
                off,
                width,
            } => {
                self.fused.stores += 1;
                let addr = self.cores[c].reg(base).wrapping_add(off as i64 as u64);
                let v = self.cores[c].reg(src);
                self.exec_store(c, pc, addr, width, v, units, pc + sim_isa::INSTR_BYTES)
            }
            MemClass::FStore { fs, base, off } => {
                self.fused.stores += 1;
                let addr = self.cores[c].reg(base).wrapping_add(off as i64 as u64);
                let bits = self.cores[c].freg(fs).to_bits();
                self.exec_store(
                    c,
                    pc,
                    addr,
                    MemWidth::D,
                    bits,
                    units,
                    pc + sim_isa::INSTR_BYTES,
                )
            }
        }
    }

    /// Execute one already-fetched instruction at `pc` on core `c`.
    /// `units` is the pre-scaled issue cost [`ScaledCosts::units_of`]
    /// assigns the instruction — passed in so the decoded executor can
    /// serve it from the block cache without a table lookup.
    fn exec_instr(&mut self, c: usize, pc: u64, instr: Instr, units: u64) -> Result<(), SimError> {
        let now = self.now;
        let t = &self.config.timing;
        let next = pc + sim_isa::INSTR_BYTES;

        macro_rules! alu {
            ($rd:expr, $val:expr) => {{
                let v = $val;
                self.cores[c].set_reg($rd, v);
                self.finish_units(c, units, next);
            }};
        }
        macro_rules! falu {
            ($fd:expr, $val:expr) => {{
                let v = $val;
                self.cores[c].set_freg($fd, v);
                self.finish_units(c, units, next);
            }};
        }

        let r = |r: Reg| self.cores[c].reg(r);
        let fr = |f| self.cores[c].freg(f);

        match instr {
            Instr::Add(d, a, b) => alu!(d, r(a).wrapping_add(r(b))),
            Instr::Sub(d, a, b) => alu!(d, r(a).wrapping_sub(r(b))),
            Instr::Mul(d, a, b) => alu!(d, r(a).wrapping_mul(r(b))),
            Instr::Div(d, a, b) => {
                if r(b) == 0 {
                    return Err(SimError::DivisionByZero { core: c, pc });
                }
                alu!(d, (r(a) as i64).wrapping_div(r(b) as i64) as u64)
            }
            Instr::Rem(d, a, b) => {
                if r(b) == 0 {
                    return Err(SimError::DivisionByZero { core: c, pc });
                }
                alu!(d, (r(a) as i64).wrapping_rem(r(b) as i64) as u64)
            }
            Instr::And(d, a, b) => alu!(d, r(a) & r(b)),
            Instr::Or(d, a, b) => alu!(d, r(a) | r(b)),
            Instr::Xor(d, a, b) => alu!(d, r(a) ^ r(b)),
            Instr::Sll(d, a, b) => alu!(d, r(a) << (r(b) & 63)),
            Instr::Srl(d, a, b) => alu!(d, r(a) >> (r(b) & 63)),
            Instr::Sra(d, a, b) => alu!(d, ((r(a) as i64) >> (r(b) & 63)) as u64),
            Instr::Slt(d, a, b) => alu!(d, ((r(a) as i64) < (r(b) as i64)) as u64),
            Instr::Sltu(d, a, b) => alu!(d, (r(a) < r(b)) as u64),
            Instr::Min(d, a, b) => alu!(d, (r(a) as i64).min(r(b) as i64) as u64),
            Instr::Max(d, a, b) => alu!(d, (r(a) as i64).max(r(b) as i64) as u64),
            Instr::Addi(d, a, i) => alu!(d, r(a).wrapping_add(i as u64)),
            Instr::Andi(d, a, i) => alu!(d, r(a) & i as u64),
            Instr::Ori(d, a, i) => alu!(d, r(a) | i as u64),
            Instr::Xori(d, a, i) => alu!(d, r(a) ^ i as u64),
            Instr::Slli(d, a, s) => alu!(d, r(a) << (s & 63)),
            Instr::Srli(d, a, s) => alu!(d, r(a) >> (s & 63)),
            Instr::Srai(d, a, s) => alu!(d, ((r(a) as i64) >> (s & 63)) as u64),
            Instr::Slti(d, a, i) => alu!(d, ((r(a) as i64) < i) as u64),
            Instr::Li(d, i) => alu!(d, i as u64),

            Instr::Fadd(d, a, b) => falu!(d, fr(a) + fr(b)),
            Instr::Fsub(d, a, b) => falu!(d, fr(a) - fr(b)),
            Instr::Fmul(d, a, b) => falu!(d, fr(a) * fr(b)),
            Instr::Fdiv(d, a, b) => falu!(d, fr(a) / fr(b)),
            Instr::Fmadd(d, a, b, e) => falu!(d, fr(a).mul_add(fr(b), fr(e))),
            Instr::Fneg(d, a) => falu!(d, -fr(a)),
            Instr::Fmov(d, a) => falu!(d, fr(a)),
            Instr::Fli(d, v) => falu!(d, v),
            Instr::Fcvtif(d, a) => falu!(d, r(a) as i64 as f64),
            Instr::Fcvtfi(d, a) => alu!(d, fr(a) as i64 as u64),
            Instr::Feq(d, a, b) => alu!(d, (fr(a) == fr(b)) as u64),
            Instr::Flt(d, a, b) => alu!(d, (fr(a) < fr(b)) as u64),
            Instr::Fle(d, a, b) => alu!(d, (fr(a) <= fr(b)) as u64),

            Instr::Ld(rd, base, off, width) => {
                self.exec_load(c, pc, rd, base, off, width, false, units, next)?;
            }
            Instr::Ll(rd, base, off) => {
                self.exec_load(c, pc, rd, base, off, MemWidth::D, true, units, next)?;
            }
            Instr::Fld(fd, base, off) => {
                let addr = r(base).wrapping_add(off as u64);
                self.check_aligned(c, pc, addr, 8)?;
                let line = line_of(addr);
                self.cores[c].stats.loads += 1;
                if self.l1d[c].lookup(line).is_some() {
                    let v = self.mem.read_f64(addr);
                    self.cores[c].set_freg(fd, v);
                    self.trace(TraceEvent::DataRead {
                        core: c,
                        addr,
                        bytes: 8,
                    });
                    self.finish_units(c, units, next);
                } else {
                    let access = self.miss_path(
                        c,
                        line,
                        AccessKind::DRead,
                        now + t.load,
                        FillPurpose::Resume,
                    )?;
                    self.cores[c].pc = next;
                    self.cores[c].stats.instructions += 1;
                    self.cores[c].waiting = Waiting::Fill {
                        line,
                        cont: Continuation::FLoad { fd, addr },
                        parked: matches!(access, Access::Parked),
                    };
                }
            }
            Instr::St(src, base, off, width) => {
                let addr = r(base).wrapping_add(off as u64);
                self.exec_store(c, pc, addr, width, r(src), units, next)?;
            }
            Instr::Fst(fs, base, off) => {
                let addr = r(base).wrapping_add(off as u64);
                let bits = fr(fs).to_bits();
                self.exec_store(c, pc, addr, MemWidth::D, bits, units, next)?;
            }
            Instr::Sc(rd, src, base, off) => {
                let addr = r(base).wrapping_add(off as u64);
                self.check_aligned(c, pc, addr, 8)?;
                if self.program.overlaps_code(addr, 8) {
                    return Err(SimError::CodeRegionWrite { core: c, pc, addr });
                }
                let line = line_of(addr);
                if self.cores[c].link != Some(line) {
                    // Fast fail: the reservation is already gone.
                    self.cores[c].set_reg(rd, 0);
                    self.finish(c, t.int_op, next);
                } else {
                    // The store-conditional blocks until it holds the line
                    // exclusively; success is decided then (see the `Sc`
                    // continuation).
                    let cont = Continuation::Sc {
                        rd,
                        src: r(src),
                        addr,
                    };
                    let start = now + t.store_issue;
                    match self.l1d[c].lookup(line) {
                        Some(LineState::Modified) => {
                            self.cores[c].mshr_used += 1;
                            self.cores[c].note_mshr();
                            self.schedule(
                                start + self.config.l1d.latency,
                                Ev::FillDone {
                                    core: c as u32,
                                    line,
                                    error: false,
                                },
                            );
                        }
                        Some(LineState::Shared) => {
                            let w = self.dir.write(c as u16, line);
                            for &sh in &w.invalidate {
                                self.l1d[sh as usize].invalidate(line);
                            }
                            if let Some(owner) = w.dirty_owner {
                                self.l1d[owner as usize].invalidate(line);
                            }
                            if !w.invalidate.is_empty() {
                                self.trace(TraceEvent::Upgrade {
                                    core: c,
                                    line,
                                    copies: w.invalidate.len() as u32,
                                });
                            }
                            self.l1d[c].set_state(line, LineState::Modified);
                            let cc = self.config.cluster_of_core(c);
                            let arrive = self.net.broadcast_cmd(cc, start);
                            let busy = self.config.upgrade_busy;
                            let g = self.line_acquire(line, arrive, busy);
                            self.cores[c].mshr_used += 1;
                            self.cores[c].note_mshr();
                            self.schedule(
                                g + busy,
                                Ev::FillDone {
                                    core: c as u32,
                                    line,
                                    error: false,
                                },
                            );
                        }
                        None => {
                            match self.miss_path(
                                c,
                                line,
                                AccessKind::DWrite,
                                start,
                                FillPurpose::Resume,
                            )? {
                                Access::Pending => {}
                                Access::Parked => {
                                    unreachable!("DWrite park is rejected in miss_path")
                                }
                            }
                        }
                    }
                    self.cores[c].pc = next;
                    self.cores[c].stats.instructions += 1;
                    self.cores[c].waiting = Waiting::Fill {
                        line,
                        cont,
                        parked: false,
                    };
                }
            }

            Instr::Beq(a, b, tg) => self.branch(c, r(a) == r(b), tg.0, next),
            Instr::Bne(a, b, tg) => self.branch(c, r(a) != r(b), tg.0, next),
            Instr::Blt(a, b, tg) => self.branch(c, (r(a) as i64) < (r(b) as i64), tg.0, next),
            Instr::Bge(a, b, tg) => self.branch(c, (r(a) as i64) >= (r(b) as i64), tg.0, next),
            Instr::Bltu(a, b, tg) => self.branch(c, r(a) < r(b), tg.0, next),
            Instr::Bgeu(a, b, tg) => self.branch(c, r(a) >= r(b), tg.0, next),
            Instr::Jal(rd, tg) => {
                self.cores[c].set_reg(rd, next);
                self.finish(c, t.branch + t.branch_taken_penalty, tg.0);
            }
            Instr::Jalr(rd, base, off) => {
                let target = r(base).wrapping_add(off as u64);
                self.cores[c].set_reg(rd, next);
                self.finish(c, t.branch + t.branch_taken_penalty, target);
            }

            Instr::Sync => {
                if self.cores[c].store_buffer.is_empty() {
                    self.finish(c, t.fence, next);
                } else {
                    self.cores[c].pc = next;
                    self.cores[c].stats.instructions += 1;
                    self.cores[c].waiting = Waiting::Fence { residual: t.fence };
                }
            }
            Instr::Isync => {
                self.cores[c].clear_ifetch_window();
                self.finish(c, t.isync, next);
            }
            Instr::Icbi(base, off) => {
                let addr = r(base).wrapping_add(off as u64);
                self.exec_invalidate(c, addr, true, next);
            }
            Instr::Dcbi(base, off) => {
                let addr = r(base).wrapping_add(off as u64);
                self.exec_invalidate(c, addr, false, next);
            }
            Instr::HwBar(id) => {
                if !self.hwnet.has_group(id) {
                    return Err(SimError::UnknownHwBarrier { core: c, id });
                }
                if !self.hwnet.is_member(id, c) {
                    return Err(SimError::HwBarrierWrongCore { core: c, id });
                }
                self.cores[c].pc = next;
                self.cores[c].stats.instructions += 1;
                self.tracker.note_hw_arrival(id, now);
                self.trace(TraceEvent::HwBarArrive { core: c, id });
                match self.hwnet.arrive(id, c, now) {
                    HwBarResult::Stall => {
                        self.cores[c].waiting = Waiting::HwBar;
                    }
                    HwBarResult::Release(list) => {
                        let resume = list.iter().map(|&(_, at)| at).max().unwrap_or(now);
                        for (core, at) in list {
                            self.cores[core].waiting = Waiting::None;
                            self.trace(TraceEvent::HwBarRelease { core, id });
                            self.schedule(at, Ev::CoreReady(core as u32));
                        }
                        let ev = self.tracker.close_hw(id, now, resume);
                        self.trace(ev);
                    }
                }
            }

            Instr::Halt => {
                self.cores[c].halted = true;
                self.live_cores -= 1;
                self.cores[c].stats.instructions += 1;
                self.cores[c].stats.halt_cycle = Some(now);
            }
            Instr::Nop => self.finish(c, t.int_op, next),
        }
        Ok(())
    }

    #[inline]
    fn branch(&mut self, c: usize, taken: bool, target: u64, next: u64) {
        let t = &self.config.timing;
        if taken {
            self.finish(c, t.branch + t.branch_taken_penalty, target);
        } else {
            self.finish(c, t.branch, next);
        }
    }

    fn check_aligned(&self, c: usize, pc: u64, addr: u64, width: u64) -> Result<(), SimError> {
        if !addr.is_multiple_of(width) {
            return Err(SimError::UnalignedAccess {
                core: c,
                pc,
                addr,
                width,
            });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_load(
        &mut self,
        c: usize,
        pc: u64,
        rd: Reg,
        base: Reg,
        off: i64,
        width: MemWidth,
        set_link: bool,
        units: u64,
        next: u64,
    ) -> Result<(), SimError> {
        let now = self.now;
        let addr = self.cores[c].reg(base).wrapping_add(off as u64);
        self.check_aligned(c, pc, addr, width.bytes())?;
        let line = line_of(addr);
        self.cores[c].stats.loads += 1;
        if self.l1d[c].lookup(line).is_some() {
            let v = self.mem.read_le(addr, width.bytes() as usize);
            self.cores[c].set_reg(rd, v);
            if set_link {
                self.set_link(c, line);
            }
            self.trace(TraceEvent::DataRead {
                core: c,
                addr,
                bytes: width.bytes(),
            });
            self.finish_units(c, units, next);
            return Ok(());
        }
        let access = self.miss_path(
            c,
            line,
            AccessKind::DRead,
            now + self.config.timing.load,
            FillPurpose::Resume,
        )?;
        self.cores[c].pc = next;
        self.cores[c].stats.instructions += 1;
        self.cores[c].waiting = Waiting::Fill {
            line,
            cont: Continuation::Load {
                rd,
                addr,
                width,
                set_link,
            },
            parked: matches!(access, Access::Parked),
        };
        Ok(())
    }

    /// Fused-executor integer load: [`exec_load`](Machine::exec_load) with
    /// the L1D set walk memoized per core. Digest argument: the memo is
    /// valid only while the L1D's generation is unchanged since it was
    /// taken, and only inserts/invalidations bump the generation, so a
    /// valid memo proves the line is still resident in the memoized slot —
    /// exactly the case where `Cache::lookup` would hit. [`Cache::touch`]
    /// then applies the identical tick/LRU/hit-counter mutations the
    /// lookup's hit arm would, after the identical `loads` increment, so
    /// every digest-covered number is bit-for-bit the interpreter's.
    #[allow(clippy::too_many_arguments)]
    fn exec_load_fused(
        &mut self,
        c: usize,
        pc: u64,
        rd: Reg,
        base: Reg,
        off: i64,
        width: MemWidth,
        set_link: bool,
        units: u64,
    ) -> Result<(), SimError> {
        let next = pc + sim_isa::INSTR_BYTES;
        let addr = self.cores[c].reg(base).wrapping_add(off as u64);
        self.check_aligned(c, pc, addr, width.bytes())?;
        let line = line_of(addr);
        self.fused.loads += 1;
        self.cores[c].stats.loads += 1;
        let hit = if self.cores[c].mem_line == line
            && self.cores[c].mem_gen == self.l1d[c].generation()
        {
            self.fused.memo_hits += 1;
            let slot = self.cores[c].mem_slot;
            self.l1d[c].touch(slot, line);
            true
        } else if let Some(slot) = self.l1d[c].lookup_slot(line) {
            let gen = self.l1d[c].generation();
            let core = &mut self.cores[c];
            core.mem_line = line;
            core.mem_slot = slot;
            core.mem_gen = gen;
            true
        } else {
            false
        };
        if hit {
            // Width-specialized read: `ldd`/`ll` dominate the kernels, and
            // the constant-width call lets the 8-byte copy compile to one
            // load instead of a variable-length move.
            let v = if width == MemWidth::D {
                self.mem.read_u64(addr)
            } else {
                self.mem.read_le(addr, width.bytes() as usize)
            };
            self.cores[c].set_reg(rd, v);
            if set_link {
                self.set_link(c, line);
            }
            self.trace(TraceEvent::DataRead {
                core: c,
                addr,
                bytes: width.bytes(),
            });
            self.finish_units(c, units, next);
            return Ok(());
        }
        let access = self.miss_path(
            c,
            line,
            AccessKind::DRead,
            self.now + self.config.timing.load,
            FillPurpose::Resume,
        )?;
        self.cores[c].pc = next;
        self.cores[c].stats.instructions += 1;
        self.cores[c].waiting = Waiting::Fill {
            line,
            cont: Continuation::Load {
                rd,
                addr,
                width,
                set_link,
            },
            parked: matches!(access, Access::Parked),
        };
        Ok(())
    }

    /// Fused-executor floating-point load: the `Fld` interpreter arm with
    /// the same per-core line memo as
    /// [`exec_load_fused`](Machine::exec_load_fused).
    fn exec_fload_fused(
        &mut self,
        c: usize,
        pc: u64,
        fd: FReg,
        base: Reg,
        off: i64,
        units: u64,
    ) -> Result<(), SimError> {
        let next = pc + sim_isa::INSTR_BYTES;
        let addr = self.cores[c].reg(base).wrapping_add(off as u64);
        self.check_aligned(c, pc, addr, 8)?;
        let line = line_of(addr);
        self.fused.loads += 1;
        self.cores[c].stats.loads += 1;
        let hit = if self.cores[c].mem_line == line
            && self.cores[c].mem_gen == self.l1d[c].generation()
        {
            self.fused.memo_hits += 1;
            let slot = self.cores[c].mem_slot;
            self.l1d[c].touch(slot, line);
            true
        } else if let Some(slot) = self.l1d[c].lookup_slot(line) {
            let gen = self.l1d[c].generation();
            let core = &mut self.cores[c];
            core.mem_line = line;
            core.mem_slot = slot;
            core.mem_gen = gen;
            true
        } else {
            false
        };
        if hit {
            let v = self.mem.read_f64(addr);
            self.cores[c].set_freg(fd, v);
            self.trace(TraceEvent::DataRead {
                core: c,
                addr,
                bytes: 8,
            });
            self.finish_units(c, units, next);
            return Ok(());
        }
        let access = self.miss_path(
            c,
            line,
            AccessKind::DRead,
            self.now + self.config.timing.load,
            FillPurpose::Resume,
        )?;
        self.cores[c].pc = next;
        self.cores[c].stats.instructions += 1;
        self.cores[c].waiting = Waiting::Fill {
            line,
            cont: Continuation::FLoad { fd, addr },
            parked: matches!(access, Access::Parked),
        };
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store(
        &mut self,
        c: usize,
        pc: u64,
        addr: u64,
        width: MemWidth,
        value: u64,
        units: u64,
        next: u64,
    ) -> Result<(), SimError> {
        let now = self.now;
        self.check_aligned(c, pc, addr, width.bytes())?;
        if self.program.overlaps_code(addr, width.bytes()) {
            return Err(SimError::CodeRegionWrite { core: c, pc, addr });
        }
        if self.cores[c].store_buffer.len() >= self.config.store_buffer_entries {
            // Re-execute once a slot frees.
            self.cores[c].waiting = Waiting::StoreSlot;
            return Ok(());
        }
        let line = line_of(addr);
        self.mem.write_le(addr, width.bytes() as usize, value);
        self.clear_links(line);
        self.cores[c].stats.stores += 1;
        self.trace(TraceEvent::DataWrite {
            core: c,
            addr,
            bytes: width.bytes(),
        });
        self.cores[c].store_buffer.push_back(line);
        if !self.cores[c].draining {
            self.cores[c].draining = true;
            let issue_at = now + self.config.timing.store_issue;
            match self.store_path(c, line, issue_at, FillPurpose::StoreDrain)? {
                StoreOutcome::Done(at) => self.schedule(at, Ev::StoreRetire(c as u32)),
                StoreOutcome::Pending => {}
            }
        }
        self.finish_units(c, units, next);
        Ok(())
    }

    fn exec_invalidate(&mut self, c: usize, addr: u64, icache: bool, next: u64) {
        let now = self.now;
        let line = line_of(addr);
        self.cores[c].stats.invalidates += 1;
        self.trace(TraceEvent::Invalidate {
            core: c,
            line,
            icache,
        });
        if icache {
            for i in 0..self.cores.len() {
                self.l1i[i].invalidate(line);
                if self.cores[i].ifetch_lo == line {
                    // Also resets the core's decoded-block cursor: a live
                    // cursor always lies inside the window's line.
                    self.cores[i].clear_ifetch_window();
                }
            }
            if self.program.overlaps_code(line, sim_isa::LINE_BYTES) {
                // The icbi broadcast is the architectural point where new
                // code becomes fetchable: land any staged patches for this
                // line, then drop the line's decoded blocks so they are
                // rebuilt from the patched image. Gated on the code region
                // so data-line icbis (the barrier-filter arrival protocol)
                // stay off this path.
                self.apply_patches(line);
            }
        }
        let bank = self.config.bank_of(line);
        if !icache {
            let (holders, dirty) = self.dir.invalidate_all(line);
            for h in holders {
                self.l1d[h as usize].invalidate(line);
            }
            if dirty {
                // Writeback of the dirty copy toward the home bank (bus
                // occupancy only).
                let from = self.config.cluster_of_core(c);
                let to = self.config.cluster_of_bank(bank);
                self.net.data(from, to, now);
            }
            self.clear_links(line);
        }
        self.l2[bank].invalidate(line);
        self.l3.invalidate(line);
        let cc = self.config.cluster_of_core(c);
        let done = self
            .net
            .broadcast_cmd(cc, now + self.config.timing.invalidate_issue);
        // The invalidation message reaches the bank controller one cycle
        // after leaving the bus — the same pipe fills traverse, preserving
        // invalidate-before-fill ordering per issuing core.
        self.schedule(
            done + 1,
            Ev::HookInvalidate {
                bank: bank as u32,
                line,
            },
        );
        self.finish_at(c, done, next);
    }

    /// Land every staged [`patch_code`](Machine::patch_code) patch on
    /// `line` in the program image and invalidate the line's decoded
    /// blocks. Called only from an `icbi` broadcast covering `line`, which
    /// has already reset the ifetch window (and with it the decoded-block
    /// cursor) of every core fetching from it.
    fn apply_patches(&mut self, line: u64) {
        let mut patched = false;
        let mut i = 0;
        while i < self.pending_patches.len() {
            let (pc, instr) = self.pending_patches[i];
            if line_of(pc) == line {
                self.pending_patches.swap_remove(i);
                let old = self.program.patch(pc, instr);
                debug_assert!(old.is_some(), "patch_code validated the pc");
                patched = true;
            } else {
                i += 1;
            }
        }
        // Only an actually-patched line invalidates decoded blocks: a
        // code-line icbi with nothing staged (the instruction-filter
        // barrier's arrival protocol fires one per arrival) leaves the
        // image unchanged, so its blocks are still exact. A disabled
        // cache is never consulted, so it also keeps its counters silent.
        if patched && self.decode_on {
            self.decode.note_patched_line(line, &self.program);
        }
    }
}

fn mask_for(width: MemWidth) -> u64 {
    match width {
        MemWidth::B => 0xff,
        MemWidth::H => 0xffff,
        MemWidth::W => 0xffff_ffff,
        MemWidth::D => u64::MAX,
    }
}
