//! Simulator error type.

use std::fmt;

use crate::hook::HookViolation;

/// Everything that can abort a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A core's program counter left the code image or became misaligned.
    IllegalPc {
        /// Core that faulted.
        core: usize,
        /// Offending program counter.
        pc: u64,
    },
    /// A data access was not naturally aligned for its width.
    UnalignedAccess {
        /// Core that faulted.
        core: usize,
        /// Program counter of the access.
        pc: u64,
        /// Target address.
        addr: u64,
        /// Access width in bytes.
        width: u64,
    },
    /// A store targeted the (read/execute-only) code region.
    CodeRegionWrite {
        /// Core that faulted.
        core: usize,
        /// Program counter of the store.
        pc: u64,
        /// Target address.
        addr: u64,
    },
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// Core that faulted.
        core: usize,
        /// Program counter of the divide.
        pc: u64,
    },
    /// Every unfinished core is blocked and no event can unblock them.
    /// Carries a human-readable description of each blocked core.
    Deadlock {
        /// Cycle at which forward progress stopped.
        cycle: u64,
        /// `(core, reason)` for each unfinished core.
        blocked: Vec<(usize, String)>,
    },
    /// The simulation exceeded [`SimConfig::cycle_limit`](crate::SimConfig).
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// An L2 bank hook (barrier filter) detected a protocol violation —
    /// the architectural exception of §3.3.4.
    Hook {
        /// Cycle of the violation.
        cycle: u64,
        /// Line address involved.
        line: u64,
        /// Violation detail.
        violation: HookViolation,
    },
    /// An instruction fetch's parked fill was completed with an embedded
    /// error code (hardware timeout); for instruction fills this is an
    /// exception, since there is no value in which to embed the code.
    IFetchErrorReply {
        /// Core that faulted.
        core: usize,
        /// The arrival line whose fill errored.
        line: u64,
    },
    /// A core ran out of miss-status holding registers. Cannot occur with
    /// the in-order model and default configuration; kept as a guard.
    MshrOverflow {
        /// Core that overflowed.
        core: usize,
    },
    /// A `hwbar` instruction named a barrier id with no configured group.
    UnknownHwBarrier {
        /// Core that executed the instruction.
        core: usize,
        /// The unknown barrier id.
        id: u16,
    },
    /// A `hwbar` instruction was executed by a core outside the barrier's
    /// configured group.
    HwBarrierWrongCore {
        /// Core that executed the instruction.
        core: usize,
        /// The barrier id.
        id: u16,
    },
    /// [`Machine::patch_code`](crate::Machine::patch_code) named an address
    /// outside the program image (or misaligned), so there is no
    /// instruction slot to patch.
    PatchOutsideCode {
        /// The offending address.
        pc: u64,
    },
    /// [`Machine::resume_thread`](crate::Machine::resume_thread) was called
    /// for a core that is not context-switched out. Recoverable: fault
    /// injectors and OS models get a typed error instead of a panic.
    NotSwitchedOut {
        /// The core that was not switched out.
        core: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalPc { core, pc } => {
                write!(f, "core {core}: illegal program counter {pc:#x}")
            }
            SimError::UnalignedAccess {
                core,
                pc,
                addr,
                width,
            } => write!(
                f,
                "core {core} at pc {pc:#x}: unaligned {width}-byte access to {addr:#x}"
            ),
            SimError::CodeRegionWrite { core, pc, addr } => {
                write!(
                    f,
                    "core {core} at pc {pc:#x}: store to code region at {addr:#x}"
                )
            }
            SimError::DivisionByZero { core, pc } => {
                write!(f, "core {core} at pc {pc:#x}: division by zero")
            }
            SimError::Deadlock { cycle, blocked } => {
                write!(f, "deadlock at cycle {cycle}: ")?;
                for (i, (core, why)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "core {core} {why}")?;
                }
                Ok(())
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            SimError::Hook {
                cycle,
                line,
                violation,
            } => write!(
                f,
                "barrier-filter protocol violation at cycle {cycle} on line {line:#x}: {violation}"
            ),
            SimError::IFetchErrorReply { core, line } => write!(
                f,
                "core {core}: instruction fill for {line:#x} completed with an error reply"
            ),
            SimError::MshrOverflow { core } => write!(f, "core {core}: MSHR overflow"),
            SimError::UnknownHwBarrier { core, id } => {
                write!(f, "core {core}: hwbar {id} has no configured barrier group")
            }
            SimError::HwBarrierWrongCore { core, id } => {
                write!(
                    f,
                    "core {core} is not a member of hardware barrier group {id}"
                )
            }
            SimError::PatchOutsideCode { pc } => {
                write!(f, "code patch targets {pc:#x}, outside the program image")
            }
            SimError::NotSwitchedOut { core } => {
                write!(f, "core {core} is not context-switched out")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::Deadlock {
            cycle: 100,
            blocked: vec![(0, "parked at barrier line 0x2000".into())],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("core 0"));

        let e = SimError::UnalignedAccess {
            core: 2,
            pc: 0x10004,
            addr: 0x1003,
            width: 8,
        };
        assert!(e.to_string().contains("unaligned"));
    }
}
