//! The engine's event queues: a calendar (bucketed) queue keyed by cycle,
//! and a sharded per-lane queue keyed by `(cycle, seq)` per lane.
//!
//! ## Ordering contract (shared by both implementations)
//!
//! A queue is a strict priority queue over `(cycle, seq)`, where `seq` is
//! a monotonically increasing sequence number assigned at push time: events
//! at the same cycle drain in the order they were scheduled. This is the
//! exact order the old `BinaryHeap<Reverse<Scheduled>>` produced, and the
//! barrier filter's invalidate-before-fill guarantee (machine.rs module
//! docs) depends on it. `seq` is unique per event, so the order is *total*:
//! there are no unstable ties at equal `(cycle, seq)`, and neither bucket
//! rotation nor lane sharding can reorder anything.
//!
//! ## Calendar structure ([`CalendarQueue`])
//!
//! Near-future events — the overwhelming majority: instruction retires a
//! handful of cycles out, bus grants, cache latencies — land in a ring of
//! `WINDOW` per-cycle buckets (`push` is an append + a bit set; `pop` is a
//! bitset scan + a front removal). Far-future events (deep bus backlogs,
//! hook deadlines, memory round trips past the window) go to a small
//! overflow heap and migrate into the ring as the cursor approaches:
//!
//! * every in-window event is in the ring, every event at
//!   `cycle >= base + WINDOW` is in the overflow heap;
//! * `base` never exceeds the earliest pending cycle, so a bucket holds
//!   events of exactly one cycle and append order within it is `seq` order;
//! * overflow events migrate via a binary insertion on `seq`, preserving
//!   the total order even though they arrive "late".
//!
//! ## Sharded structure ([`ShardedQueue`])
//!
//! One tiny sorted lane per core plus one shared lane for bank/hook
//! traffic. A core's lane is bounded by its outstanding work — at most one
//! `CoreReady`, one `StoreRetire`, and an MSHR's worth of fills — so a push
//! is almost always a back append and a pop a front removal. The cross-lane
//! drain order comes from a *cohort*: the `(seq, lane)` list, in `seq`
//! order, of every lane whose head sits at the cycle currently draining.
//! Rebuilding it costs one branchless min + gather over the flat lane-head
//! arrays (empty lanes hold `u64::MAX` sentinels), but happens once per
//! *simulated cycle with events*, not once per event — a busy machine
//! retires many events per cycle, so the scan amortizes to near zero and
//! every pop and `next_cycle`/`all_later_than` probe is O(1). Pushes keep
//! the cohort exact by construction: a push at the cohort cycle appends
//! (its fresh `seq` is the global maximum), a push below it — possible
//! only between `floor` and a cohort that has advanced past it — makes the
//! pushed lane the unique earliest head, so the cohort resets to exactly
//! that lane. [`EngineQueue`] dispatches between the two implementations
//! per [`SimConfig::event_shards`](crate::SimConfig::event_shards); both
//! drain in the identical `(cycle, seq)` total order, so the choice is
//! invisible to simulated behaviour.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Ring capacity in cycles. Power of two; sized so that common latencies
/// (L1/L2/L3 hits, bus grants, the 138-cycle memory round trip, short hook
/// deadlines) stay in-window even under queueing backlogs, while keeping
/// the bucket-header array small enough to live in cache (the engine
/// touches a bucket per event; 512 deque headers are 16 KiB).
const WINDOW: u64 = 512;
const WORDS: usize = (WINDOW as usize) / 64;

/// A far-future event parked in the overflow heap, ordered by
/// `(cycle, seq)` — the same total order the ring drains in.
#[derive(Debug, PartialEq, Eq)]
struct Far<T: Eq> {
    cycle: u64,
    seq: u64,
    item: T,
}

impl<T: Eq> Ord for Far<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

impl<T: Eq> PartialOrd for Far<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Calendar queue over `(cycle, seq)` with FIFO semantics per cycle.
#[derive(Debug)]
pub(crate) struct CalendarQueue<T: Eq> {
    /// `WINDOW` per-cycle buckets; bucket `cycle % WINDOW` holds the events
    /// of one in-window cycle, sorted by (and in practice appended in)
    /// `seq` order. Deques, because the engine drains each bucket from the
    /// front one event at a time (`Vec::remove(0)` would shift the tail on
    /// every pop).
    buckets: Vec<VecDeque<(u64, T)>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Lower edge of the ring window. Invariant: `base` never exceeds the
    /// earliest pending cycle, and only grows.
    base: u64,
    /// Events at `cycle >= base + WINDOW`.
    overflow: BinaryHeap<Reverse<Far<T>>>,
    /// Cycle of the earliest overflow event (`u64::MAX` when empty), so the
    /// per-pop migration check is a register compare instead of a heap
    /// peek.
    overflow_min: u64,
    /// Last assigned sequence number (0 = none yet).
    seq: u64,
    len: usize,
    /// Memoized [`next_cycle`](CalendarQueue::next_cycle) result (`None` =
    /// not computed). The engine peeks then pops every event; caching the
    /// scan halves the bitset walks. A push can only *lower* the minimum,
    /// so it folds into the memo; a pop invalidates it.
    next_memo: Cell<Option<u64>>,
}

impl<T: Eq> CalendarQueue<T> {
    pub fn new() -> CalendarQueue<T> {
        CalendarQueue {
            buckets: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            base: 0,
            overflow: BinaryHeap::new(),
            overflow_min: u64::MAX,
            seq: 0,
            len: 0,
            next_memo: Cell::new(None),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Schedule `item` at `cycle`, after everything already scheduled for
    /// that cycle. `cycle` must not precede an already-popped cycle.
    pub fn push(&mut self, cycle: u64, item: T) {
        assert!(
            cycle >= self.base,
            "event scheduled at cycle {cycle} behind the queue cursor {}",
            self.base
        );
        self.seq += 1;
        let seq = self.seq;
        if cycle - self.base < WINDOW {
            let b = (cycle % WINDOW) as usize;
            self.buckets[b].push_back((seq, item));
            self.occupied[b / 64] |= 1 << (b % 64);
        } else {
            self.overflow.push(Reverse(Far { cycle, seq, item }));
            self.overflow_min = self.overflow_min.min(cycle);
        }
        self.len += 1;
        if let Some(memo) = self.next_memo.get() {
            if cycle < memo {
                self.next_memo.set(Some(cycle));
            }
        }
    }

    /// True iff every pending event lies strictly after `cycle` (vacuously
    /// true when empty). This is the burst-fast-path precondition
    /// (machine.rs): an event the engine would push at `cycle` and
    /// immediately pop — it would be the unique minimum, and same-cycle
    /// FIFO order gives queued events at `cycle` priority only when they
    /// exist — may instead be consumed in place.
    pub fn all_later_than(&self, cycle: u64) -> bool {
        self.next_cycle().is_none_or(|head| head > cycle)
    }

    /// Cycle of the earliest pending event.
    pub fn next_cycle(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if let Some(memo) = self.next_memo.get() {
            return Some(memo);
        }
        let ring = self.scan().map(|(cycle, _)| cycle);
        let over = (self.overflow_min != u64::MAX).then_some(self.overflow_min);
        let min = match (ring, over) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, None) => r,
            (None, o) => o,
        };
        self.next_memo.set(min);
        min
    }

    /// Remove and return the earliest event *if* it is scheduled exactly
    /// at `cycle`; `None` once every pending event lies later (or the
    /// queue is empty). The run loop's same-cycle cohort drain:
    /// consecutive same-cycle pops ride the memoized minimum and the hot
    /// bucket, so a cohort costs one bitset scan total.
    pub fn pop_at(&mut self, cycle: u64) -> Option<T> {
        if self.next_cycle() != Some(cycle) {
            return None;
        }
        // The minimum is `cycle`; drain it directly instead of re-deriving
        // it through `pop` (one memoized peek per event, not two).
        self.base = cycle;
        if self.overflow_min < self.base + WINDOW {
            self.migrate_overflow();
        }
        let b = (cycle % WINDOW) as usize;
        let bucket = &mut self.buckets[b];
        let item = bucket.pop_front().map(|(_, item)| item);
        if bucket.is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
            self.next_memo.set(None);
        } else {
            self.next_memo.set(Some(cycle));
        }
        self.len -= 1;
        item
    }

    /// Remove and return the earliest event as `(cycle, item)`. The run
    /// loop drains through [`pop_at`](CalendarQueue::pop_at); this form
    /// remains for the queue-equivalence tests, which need the cycle back.
    #[cfg(test)]
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let target = self.next_cycle()?;
        // Advance the cursor and pull every newly in-window overflow event
        // into the ring before draining the target bucket: an overflow
        // event *at* the target cycle must interleave by `seq` with the
        // bucket's direct pushes.
        self.base = target;
        if self.overflow_min < self.base + WINDOW {
            self.migrate_overflow();
        }
        let b = (target % WINDOW) as usize;
        let bucket = &mut self.buckets[b];
        let Some((_, item)) = bucket.pop_front() else {
            unreachable!("target bucket holds the minimum");
        };
        if bucket.is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
            self.next_memo.set(None);
        } else {
            // Bucket still holds events at `target`: it stays the minimum.
            self.next_memo.set(Some(target));
        }
        self.len -= 1;
        Some((target, item))
    }

    /// Earliest `(cycle, bucket)` in the ring, scanning the occupancy
    /// bitset circularly from the cursor.
    fn scan(&self) -> Option<(u64, usize)> {
        let start = (self.base % WINDOW) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let hit = |word: usize, bits: u64| -> Option<(u64, usize)> {
            if bits == 0 {
                return None;
            }
            let b = word * 64 + bits.trailing_zeros() as usize;
            let delta = (b + WINDOW as usize - start) % WINDOW as usize;
            Some((self.base + delta as u64, b))
        };
        // The cursor's word, positions at/after the cursor.
        if let Some(found) = hit(sw, self.occupied[sw] & (!0u64 << sb)) {
            return Some(found);
        }
        // Remaining words, wrapping.
        for k in 1..WORDS {
            let w = (sw + k) % WORDS;
            if let Some(found) = hit(w, self.occupied[w]) {
                return Some(found);
            }
        }
        // The cursor's word, wrapped-around positions before the cursor.
        hit(sw, self.occupied[sw] & !(!0u64 << sb))
    }

    /// Move every overflow event that now fits the window into the ring,
    /// inserting by `seq` so late arrivals interleave correctly with the
    /// bucket's existing (seq-ordered) contents.
    fn migrate_overflow(&mut self) {
        while let Some(Reverse(head)) = self.overflow.peek() {
            if head.cycle - self.base >= WINDOW {
                break;
            }
            let Some(Reverse(f)) = self.overflow.pop() else {
                unreachable!("peeked above");
            };
            let b = (f.cycle % WINDOW) as usize;
            let bucket = &mut self.buckets[b];
            let pos = bucket.partition_point(|&(s, _)| s < f.seq);
            bucket.insert(pos, (f.seq, f.item));
            self.occupied[b / 64] |= 1 << (b % 64);
        }
        self.overflow_min = self.overflow.peek().map_or(u64::MAX, |Reverse(f)| f.cycle);
    }
}

/// Host-side counters for the sharded event queue.
///
/// Like [`DecodeCacheStats`](crate::DecodeCacheStats) and
/// `Machine::burst_retired`, these are engine metrics, not simulated
/// behaviour: they vary with
/// [`SimConfig::event_shards`](crate::SimConfig::event_shards) while every
/// simulated number stays bit-identical, so they are deliberately not part
/// of [`MachineStats`](crate::MachineStats) or its digest. The calendar
/// queue reports all-zero stats, which is what lets tests prove the knob
/// actually switched implementations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventQueueStats {
    /// Events pushed to per-core lanes (`CoreReady`, `StoreRetire`, fills).
    pub core_events: u64,
    /// Events pushed to the shared bank/hook lane.
    pub shared_events: u64,
    /// Cross-lane head rescans (cohort rebuilds): one per simulated cycle
    /// that drained events, not one per event. `head_rescans` far below
    /// `core_events + shared_events` is the cohort amortization working.
    pub head_rescans: u64,
}

/// Sharded `(cycle, seq)` priority queue: one sorted lane per core plus a
/// shared lane (see the module docs). Drains in the identical total order
/// as [`CalendarQueue`].
#[derive(Debug)]
pub(crate) struct ShardedQueue<T> {
    /// Per-lane event runs, sorted by `(cycle, seq)`. Within one lane,
    /// equal cycles appear in push (= `seq`) order because insertion
    /// places a new event after every event at `cycle' <= cycle` and its
    /// fresh `seq` exceeds all of theirs.
    lanes: Vec<VecDeque<(u64, u64, T)>>,
    /// `head_cycle[lane]` / `head_seq[lane]`: the lane's earliest pending
    /// `(cycle, seq)`, or `(u64::MAX, u64::MAX)` when empty. Flat arrays so
    /// the cohort rebuild's min + gather walk contiguous memory.
    head_cycle: Vec<u64>,
    head_seq: Vec<u64>,
    /// The cycle the current drain cohort belongs to.
    cohort_cycle: u64,
    /// `(seq, lane)` of every lane whose head sits at `cohort_cycle`, in
    /// `seq` order — the exact global drain order for that cycle. Kept
    /// exact by construction (see the module docs): rebuilt by
    /// [`rebuild_cohort`](ShardedQueue::rebuild_cohort) when it runs dry,
    /// folded into by pushes and head exposures otherwise.
    cohort: VecDeque<(u64, u32)>,
    /// Cycle of the last pop; pushes must not go behind it.
    floor: u64,
    /// Last assigned sequence number (0 = none yet).
    seq: u64,
    len: usize,
    /// Index of the shared (non-core) lane, for the push counters.
    shared_lane: usize,
    stats: EventQueueStats,
}

impl<T> ShardedQueue<T> {
    /// A queue with `cores` per-core lanes plus one shared lane (index
    /// `cores`).
    pub fn new(cores: usize) -> ShardedQueue<T> {
        let lanes = cores + 1;
        ShardedQueue {
            lanes: (0..lanes).map(|_| VecDeque::new()).collect(),
            head_cycle: vec![u64::MAX; lanes],
            head_seq: vec![u64::MAX; lanes],
            cohort_cycle: 0,
            cohort: VecDeque::new(),
            floor: 0,
            seq: 0,
            len: 0,
            shared_lane: cores,
            stats: EventQueueStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn stats(&self) -> EventQueueStats {
        self.stats
    }

    /// Schedule `item` at `cycle` on `lane`, after everything already
    /// scheduled for that cycle (any lane). `cycle` must not precede an
    /// already-popped cycle.
    pub fn push(&mut self, lane: usize, cycle: u64, item: T) {
        assert!(
            cycle >= self.floor,
            "event scheduled at cycle {cycle} behind the queue cursor {}",
            self.floor
        );
        self.seq += 1;
        let seq = self.seq;
        if lane == self.shared_lane {
            self.stats.shared_events += 1;
        } else {
            self.stats.core_events += 1;
        }
        let q = &mut self.lanes[lane];
        // Fast path: one core's schedules are usually non-decreasing in
        // cycle, so the new event belongs at the back. When not (e.g. a
        // store retire landing under an in-flight far-future fill), insert
        // after every event at `cycle' <= cycle` — the fresh `seq` is the
        // lane's largest, so this preserves `(cycle, seq)` order.
        if q.back().is_none_or(|&(bc, _, _)| bc <= cycle) {
            q.push_back((cycle, seq, item));
        } else {
            let pos = q.partition_point(|&(bc, _, _)| bc <= cycle);
            q.insert(pos, (cycle, seq, item));
        }
        self.len += 1;
        if cycle < self.head_cycle[lane] {
            // New lane head: fold into the head arrays and the cohort.
            self.head_cycle[lane] = cycle;
            self.head_seq[lane] = seq;
            if cycle == self.cohort_cycle {
                // Joins the cycle currently draining; the fresh `seq` is
                // the global maximum, so it drains last — append. (This
                // also covers a displaced head whose old entry sat in the
                // cohort: impossible, because the old head would be
                // `> cycle >= floor = cohort_cycle`.)
                self.cohort.push_back((seq, lane as u32));
            } else if cycle < self.cohort_cycle {
                // The cohort advanced past `cycle` before this push
                // arrived (only reachable with `floor <= cycle <
                // cohort_cycle`). Every other lane head was `>=
                // cohort_cycle` when the cohort was built and can only
                // have grown, so this push is the unique earliest head:
                // the cohort resets to exactly it.
                self.cohort_cycle = cycle;
                self.cohort.clear();
                self.cohort.push_back((seq, lane as u32));
            }
        }
    }

    /// True iff every pending event lies strictly after `cycle` (vacuously
    /// true when empty) — the burst-fast-path precondition, an O(1) probe
    /// of the cohort head.
    pub fn all_later_than(&mut self, cycle: u64) -> bool {
        self.next_cycle().is_none_or(|head| head > cycle)
    }

    /// Cycle of the earliest pending event. Takes `&mut self` because a
    /// dry cohort rebuilds here (the once-per-cycle rescan).
    pub fn next_cycle(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if self.cohort.is_empty() {
            self.rebuild_cohort();
        }
        Some(self.cohort_cycle)
    }

    /// Rebuild the cohort for the earliest pending cycle: one branchless
    /// min over the lane-head cycles (`u64::MAX` sentinels for empty
    /// lanes), one gather of the lanes at that minimum, one small sort by
    /// `seq`. Runs once per simulated cycle that drains events — the
    /// events of that cycle amortize it.
    fn rebuild_cohort(&mut self) {
        debug_assert!(self.len > 0 && self.cohort.is_empty());
        let mut min_cycle = u64::MAX;
        for &hc in &self.head_cycle {
            min_cycle = min_cycle.min(hc);
        }
        debug_assert_ne!(min_cycle, u64::MAX, "len > 0 implies an occupied lane");
        self.cohort_cycle = min_cycle;
        for (lane, &hc) in self.head_cycle.iter().enumerate() {
            if hc == min_cycle {
                self.cohort.push_back((self.head_seq[lane], lane as u32));
            }
        }
        self.cohort.make_contiguous().sort_unstable();
        self.stats.head_rescans += 1;
    }

    /// Remove and return the earliest event *if* it is scheduled exactly
    /// at `cycle`; `None` once every pending event lies later (or the
    /// queue is empty). The run loop's same-cycle cohort drain, served
    /// straight off the cohort head.
    pub fn pop_at(&mut self, cycle: u64) -> Option<T> {
        if self.next_cycle() != Some(cycle) {
            return None;
        }
        self.pop().map(|(_, item)| item)
    }

    /// Remove and return the earliest event as `(cycle, item)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.next_cycle()?;
        let cycle = self.cohort_cycle;
        let Some((seq, lane32)) = self.cohort.pop_front() else {
            unreachable!("next_cycle rebuilt a non-empty cohort");
        };
        let lane = lane32 as usize;
        let q = &mut self.lanes[lane];
        let Some((c, s, item)) = q.pop_front() else {
            unreachable!("cohort lanes hold their heads");
        };
        debug_assert_eq!((c, s), (cycle, seq), "head arrays track lane fronts");
        self.len -= 1;
        self.floor = cycle;
        match q.front() {
            Some(&(nc, ns, _)) => {
                self.head_cycle[lane] = nc;
                self.head_seq[lane] = ns;
                if nc == cycle {
                    // The pop exposed another same-cycle event behind the
                    // head: it joins the live cohort at its `seq` position
                    // (it may predate other cohort members' seqs).
                    let pos = self.cohort.partition_point(|&(s2, _)| s2 < ns);
                    self.cohort.insert(pos, (ns, lane32));
                }
            }
            None => {
                self.head_cycle[lane] = u64::MAX;
                self.head_seq[lane] = u64::MAX;
            }
        }
        Some((cycle, item))
    }
}

/// The engine's event queue, dispatching between the calendar and sharded
/// implementations per [`SimConfig::event_shards`](crate::SimConfig::event_shards).
/// Both drain in the identical `(cycle, seq)` total order; the calendar
/// variant ignores the push-time lane hint.
#[derive(Debug)]
pub(crate) enum EngineQueue<T: Eq> {
    Calendar(CalendarQueue<T>),
    Sharded(ShardedQueue<T>),
}

impl<T: Eq> EngineQueue<T> {
    /// A queue for `cores` cores: sharded (per-core lanes + a shared lane)
    /// when `sharded`, the single calendar queue otherwise.
    pub fn new(sharded: bool, cores: usize) -> EngineQueue<T> {
        if sharded {
            EngineQueue::Sharded(ShardedQueue::new(cores))
        } else {
            EngineQueue::Calendar(CalendarQueue::new())
        }
    }

    pub fn len(&self) -> usize {
        match self {
            EngineQueue::Calendar(q) => q.len(),
            EngineQueue::Sharded(q) => q.len(),
        }
    }

    /// Host-side queue counters (all zero on the calendar variant).
    pub fn stats(&self) -> EventQueueStats {
        match self {
            EngineQueue::Calendar(_) => EventQueueStats::default(),
            EngineQueue::Sharded(q) => q.stats(),
        }
    }

    #[inline]
    pub fn push(&mut self, lane: usize, cycle: u64, item: T) {
        match self {
            EngineQueue::Calendar(q) => q.push(cycle, item),
            EngineQueue::Sharded(q) => q.push(lane, cycle, item),
        }
    }

    /// Cycle of the earliest pending event. `&mut` because the sharded
    /// variant rebuilds a dry drain cohort here (once per cycle).
    #[inline]
    pub fn next_cycle(&mut self) -> Option<u64> {
        match self {
            EngineQueue::Calendar(q) => q.next_cycle(),
            EngineQueue::Sharded(q) => q.next_cycle(),
        }
    }

    /// True iff every pending event lies strictly after `cycle` (the
    /// burst-fast-path precondition).
    #[inline]
    pub fn all_later_than(&mut self, cycle: u64) -> bool {
        match self {
            EngineQueue::Calendar(q) => q.all_later_than(cycle),
            EngineQueue::Sharded(q) => q.all_later_than(cycle),
        }
    }

    /// Pop the earliest event only if it is at exactly `cycle` (the run
    /// loop's same-cycle cohort drain).
    #[inline]
    pub fn pop_at(&mut self, cycle: u64) -> Option<T> {
        match self {
            EngineQueue::Calendar(q) => q.pop_at(cycle),
            EngineQueue::Sharded(q) => q.pop_at(cycle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn same_cycle_drains_in_push_order() {
        let mut q = CalendarQueue::new();
        q.push(5, "a");
        q.push(5, "b");
        q.push(3, "c");
        q.push(5, "d");
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![(3, "c"), (5, "a"), (5, "b"), (5, "d")]);
    }

    #[test]
    fn overflow_events_interleave_by_push_order() {
        let mut q = CalendarQueue::new();
        // Scheduled while far future -> overflow heap.
        q.push(WINDOW + 10, 1u32);
        // Drain the queue forward so the window covers WINDOW + 10, then
        // schedule a same-cycle event directly into the ring.
        q.push(20, 0);
        assert_eq!(q.pop(), Some((20, 0)));
        q.push(WINDOW + 10, 2);
        assert_eq!(q.pop(), Some((WINDOW + 10, 1)), "earlier push first");
        assert_eq!(q.pop(), Some((WINDOW + 10, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_reference_heap_on_a_mixed_workload() {
        // Deterministic pseudo-random workload compared against the
        // reference semantics (a heap over (cycle, seq)).
        let mut q = CalendarQueue::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..5000u32 {
            // Mostly near-future pushes, occasionally far past the window.
            let delta = match rnd() % 10 {
                0 => WINDOW + rnd() % (4 * WINDOW),
                1..=3 => rnd() % 600,
                _ => rnd() % 8,
            };
            q.push(now + delta, i);
            seq += 1;
            reference.push(Reverse((now + delta, seq, i)));
            if rnd() % 3 != 0 {
                let got = q.pop();
                let Some(Reverse((cycle, _, item))) = reference.pop() else {
                    panic!("reference empty while queue was not");
                };
                assert_eq!(got, Some((cycle, item)));
                now = cycle;
            }
        }
        while let Some(Reverse((cycle, _, item))) = reference.pop() {
            assert_eq!(q.pop(), Some((cycle, item)));
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "behind the queue cursor")]
    fn pushing_behind_the_cursor_is_a_bug() {
        let mut q = CalendarQueue::new();
        q.push(100, ());
        q.pop();
        q.push(99, ());
    }

    #[test]
    fn sharded_same_cycle_drains_in_push_order_across_lanes() {
        let mut q = ShardedQueue::new(3);
        q.push(2, 5, "a");
        q.push(0, 5, "b");
        q.push(3, 3, "c"); // shared lane
        q.push(0, 5, "d");
        q.push(2, 4, "e");
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            vec![(3, "c"), (4, "e"), (5, "a"), (5, "b"), (5, "d")]
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn sharded_out_of_order_lane_insert_keeps_seq_order() {
        let mut q = ShardedQueue::new(1);
        // A far-future fill, then a near store retire on the same lane,
        // then another event at the fill's cycle: the late push must land
        // *between* them in cycle order and *after* the first at its cycle.
        q.push(0, 100, 1u32);
        q.push(0, 10, 2);
        q.push(0, 100, 3);
        assert_eq!(q.pop(), Some((10, 2)));
        assert_eq!(q.pop(), Some((100, 1)));
        assert_eq!(q.pop(), Some((100, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn sharded_matches_calendar_and_reference_heap() {
        // The two engine implementations and the reference heap must drain
        // the same deterministic pseudo-random workload identically,
        // including lane assignment patterns the engine produces (mostly
        // self-lane, occasional shared-lane pushes).
        const LANES: usize = 16;
        let mut sharded = ShardedQueue::new(LANES);
        let mut calendar = CalendarQueue::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut state = 0xfeed_beef_1234_5678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..5000u32 {
            let delta = match rnd() % 10 {
                0 => 600 + rnd() % 2048,
                1..=3 => rnd() % 600,
                _ => rnd() % 8,
            };
            let lane = if rnd() % 8 == 0 {
                LANES // shared lane
            } else {
                (rnd() % LANES as u64) as usize
            };
            sharded.push(lane, now + delta, i);
            calendar.push(now + delta, i);
            seq += 1;
            reference.push(Reverse((now + delta, seq, i)));
            if rnd() % 3 != 0 {
                let got_s = sharded.pop();
                let got_c = calendar.pop();
                let Some(Reverse((cycle, _, item))) = reference.pop() else {
                    panic!("reference empty while queues were not");
                };
                assert_eq!(got_s, Some((cycle, item)));
                assert_eq!(got_c, Some((cycle, item)));
                now = cycle;
            }
        }
        while let Some(Reverse((cycle, _, item))) = reference.pop() {
            assert_eq!(sharded.pop(), Some((cycle, item)));
            assert_eq!(calendar.pop(), Some((cycle, item)));
        }
        assert_eq!(sharded.pop(), None);
        assert_eq!(sharded.len(), 0);
        let stats = sharded.stats();
        assert!(stats.core_events > 0 && stats.shared_events > 0);
        assert_eq!(stats.core_events + stats.shared_events, 5000);
    }

    #[test]
    fn sharded_min_crosses_group_boundaries() {
        // 130 lanes -> 3 occupancy words; the cross-group reduce must pick
        // the true minimum wherever it lives.
        let mut q = ShardedQueue::new(129);
        q.push(5, 50, "w0");
        q.push(70, 40, "w1");
        q.push(128, 30, "w2");
        q.push(129, 35, "shared");
        assert_eq!(q.next_cycle(), Some(30));
        assert_eq!(q.pop(), Some((30, "w2")));
        assert_eq!(q.pop(), Some((35, "shared")));
        assert_eq!(q.pop(), Some((40, "w1")));
        assert_eq!(q.pop(), Some((50, "w0")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "behind the queue cursor")]
    fn sharded_pushing_behind_the_cursor_is_a_bug() {
        let mut q = ShardedQueue::new(2);
        q.push(0, 100, ());
        q.pop();
        q.push(1, 99, ());
    }

    // Scratch queue micro-timer (not part of the suite's assertions): run
    // with `cargo test --release -p cmp-sim qbench_scratch -- --ignored
    // --nocapture` to compare the two implementations on the fig4-shaped
    // workload (16 always-occupied lanes, events 1-3 cycles out).
    #[test]
    #[ignore]
    fn qbench_scratch() {
        const LANES: usize = 16;
        const OPS: u64 = 8_000_000;
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let deltas: Vec<u64> = (0..OPS).map(|_| 1 + rnd() % 3).collect();

        let t0 = std::time::Instant::now();
        let mut cal = CalendarQueue::new();
        for lane in 0..LANES {
            cal.push(0, lane as u32);
        }
        let mut sum = 0u64;
        for d in &deltas {
            let (cycle, lane) = cal.pop().unwrap();
            sum = sum.wrapping_add(cycle);
            cal.push(cycle + d, lane);
        }
        let cal_ns = t0.elapsed().as_secs_f64() * 1e9 / OPS as f64;

        let t0 = std::time::Instant::now();
        let mut sh = ShardedQueue::new(LANES);
        for lane in 0..LANES {
            sh.push(lane, 0, lane as u32);
        }
        let mut sum2 = 0u64;
        for d in &deltas {
            let (cycle, lane) = sh.pop().unwrap();
            sum2 = sum2.wrapping_add(cycle);
            sh.push(lane as usize, cycle + d, lane);
        }
        let sh_ns = t0.elapsed().as_secs_f64() * 1e9 / OPS as f64;
        assert_eq!(sum, sum2);
        println!("qbench: calendar {cal_ns:.1} ns/op  sharded {sh_ns:.1} ns/op");
    }
}
