//! The engine's event queue: a calendar (bucketed) queue keyed by cycle.
//!
//! ## Ordering contract
//!
//! The queue is a strict priority queue over `(cycle, seq)`, where `seq` is
//! a monotonically increasing sequence number assigned at push time: events
//! at the same cycle drain in the order they were scheduled. This is the
//! exact order the old `BinaryHeap<Reverse<Scheduled>>` produced, and the
//! barrier filter's invalidate-before-fill guarantee (machine.rs module
//! docs) depends on it. `seq` is unique per event, so the order is *total*:
//! there are no unstable ties at equal `(cycle, seq)`, and replacing the
//! (unstable-by-reputation, but here fully-keyed) heap with buckets cannot
//! reorder anything.
//!
//! ## Structure
//!
//! Near-future events — the overwhelming majority: instruction retires a
//! handful of cycles out, bus grants, cache latencies — land in a ring of
//! `WINDOW` per-cycle buckets (`push` is an append + a bit set; `pop` is a
//! bitset scan + a front removal). Far-future events (deep bus backlogs,
//! hook deadlines, memory round trips past the window) go to a small
//! overflow heap and migrate into the ring as the cursor approaches:
//!
//! * every in-window event is in the ring, every event at
//!   `cycle >= base + WINDOW` is in the overflow heap;
//! * `base` never exceeds the earliest pending cycle, so a bucket holds
//!   events of exactly one cycle and append order within it is `seq` order;
//! * overflow events migrate via a binary insertion on `seq`, preserving
//!   the total order even though they arrive "late".

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Ring capacity in cycles. Power of two; sized so that common latencies
/// (L1/L2/L3 hits, bus grants, the 138-cycle memory round trip, short hook
/// deadlines) stay in-window even under queueing backlogs, while keeping
/// the bucket-header array small enough to live in cache (the engine
/// touches a bucket per event; 512 deque headers are 16 KiB).
const WINDOW: u64 = 512;
const WORDS: usize = (WINDOW as usize) / 64;

/// A far-future event parked in the overflow heap, ordered by
/// `(cycle, seq)` — the same total order the ring drains in.
#[derive(Debug, PartialEq, Eq)]
struct Far<T: Eq> {
    cycle: u64,
    seq: u64,
    item: T,
}

impl<T: Eq> Ord for Far<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

impl<T: Eq> PartialOrd for Far<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Calendar queue over `(cycle, seq)` with FIFO semantics per cycle.
#[derive(Debug)]
pub(crate) struct CalendarQueue<T: Eq> {
    /// `WINDOW` per-cycle buckets; bucket `cycle % WINDOW` holds the events
    /// of one in-window cycle, sorted by (and in practice appended in)
    /// `seq` order. Deques, because the engine drains each bucket from the
    /// front one event at a time (`Vec::remove(0)` would shift the tail on
    /// every pop).
    buckets: Vec<VecDeque<(u64, T)>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Lower edge of the ring window. Invariant: `base` never exceeds the
    /// earliest pending cycle, and only grows.
    base: u64,
    /// Events at `cycle >= base + WINDOW`.
    overflow: BinaryHeap<Reverse<Far<T>>>,
    /// Cycle of the earliest overflow event (`u64::MAX` when empty), so the
    /// per-pop migration check is a register compare instead of a heap
    /// peek.
    overflow_min: u64,
    /// Last assigned sequence number (0 = none yet).
    seq: u64,
    len: usize,
    /// Memoized [`next_cycle`](CalendarQueue::next_cycle) result (`None` =
    /// not computed). The engine peeks then pops every event; caching the
    /// scan halves the bitset walks. A push can only *lower* the minimum,
    /// so it folds into the memo; a pop invalidates it.
    next_memo: Cell<Option<u64>>,
}

impl<T: Eq> CalendarQueue<T> {
    pub fn new() -> CalendarQueue<T> {
        CalendarQueue {
            buckets: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            base: 0,
            overflow: BinaryHeap::new(),
            overflow_min: u64::MAX,
            seq: 0,
            len: 0,
            next_memo: Cell::new(None),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Schedule `item` at `cycle`, after everything already scheduled for
    /// that cycle. `cycle` must not precede an already-popped cycle.
    pub fn push(&mut self, cycle: u64, item: T) {
        assert!(
            cycle >= self.base,
            "event scheduled at cycle {cycle} behind the queue cursor {}",
            self.base
        );
        self.seq += 1;
        let seq = self.seq;
        if cycle - self.base < WINDOW {
            let b = (cycle % WINDOW) as usize;
            self.buckets[b].push_back((seq, item));
            self.occupied[b / 64] |= 1 << (b % 64);
        } else {
            self.overflow.push(Reverse(Far { cycle, seq, item }));
            self.overflow_min = self.overflow_min.min(cycle);
        }
        self.len += 1;
        if let Some(memo) = self.next_memo.get() {
            if cycle < memo {
                self.next_memo.set(Some(cycle));
            }
        }
    }

    /// True iff every pending event lies strictly after `cycle` (vacuously
    /// true when empty). This is the burst-fast-path precondition
    /// (machine.rs): an event the engine would push at `cycle` and
    /// immediately pop — it would be the unique minimum, and same-cycle
    /// FIFO order gives queued events at `cycle` priority only when they
    /// exist — may instead be consumed in place.
    pub fn all_later_than(&self, cycle: u64) -> bool {
        self.next_cycle().is_none_or(|head| head > cycle)
    }

    /// Cycle of the earliest pending event.
    pub fn next_cycle(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if let Some(memo) = self.next_memo.get() {
            return Some(memo);
        }
        let ring = self.scan().map(|(cycle, _)| cycle);
        let over = (self.overflow_min != u64::MAX).then_some(self.overflow_min);
        let min = match (ring, over) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, None) => r,
            (None, o) => o,
        };
        self.next_memo.set(min);
        min
    }

    /// Remove and return the earliest event as `(cycle, item)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let target = self.next_cycle()?;
        // Advance the cursor and pull every newly in-window overflow event
        // into the ring before draining the target bucket: an overflow
        // event *at* the target cycle must interleave by `seq` with the
        // bucket's direct pushes.
        self.base = target;
        if self.overflow_min < self.base + WINDOW {
            self.migrate_overflow();
        }
        let b = (target % WINDOW) as usize;
        let bucket = &mut self.buckets[b];
        let Some((_, item)) = bucket.pop_front() else {
            unreachable!("target bucket holds the minimum");
        };
        if bucket.is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
            self.next_memo.set(None);
        } else {
            // Bucket still holds events at `target`: it stays the minimum.
            self.next_memo.set(Some(target));
        }
        self.len -= 1;
        Some((target, item))
    }

    /// Earliest `(cycle, bucket)` in the ring, scanning the occupancy
    /// bitset circularly from the cursor.
    fn scan(&self) -> Option<(u64, usize)> {
        let start = (self.base % WINDOW) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let hit = |word: usize, bits: u64| -> Option<(u64, usize)> {
            if bits == 0 {
                return None;
            }
            let b = word * 64 + bits.trailing_zeros() as usize;
            let delta = (b + WINDOW as usize - start) % WINDOW as usize;
            Some((self.base + delta as u64, b))
        };
        // The cursor's word, positions at/after the cursor.
        if let Some(found) = hit(sw, self.occupied[sw] & (!0u64 << sb)) {
            return Some(found);
        }
        // Remaining words, wrapping.
        for k in 1..WORDS {
            let w = (sw + k) % WORDS;
            if let Some(found) = hit(w, self.occupied[w]) {
                return Some(found);
            }
        }
        // The cursor's word, wrapped-around positions before the cursor.
        hit(sw, self.occupied[sw] & !(!0u64 << sb))
    }

    /// Move every overflow event that now fits the window into the ring,
    /// inserting by `seq` so late arrivals interleave correctly with the
    /// bucket's existing (seq-ordered) contents.
    fn migrate_overflow(&mut self) {
        while let Some(Reverse(head)) = self.overflow.peek() {
            if head.cycle - self.base >= WINDOW {
                break;
            }
            let Some(Reverse(f)) = self.overflow.pop() else {
                unreachable!("peeked above");
            };
            let b = (f.cycle % WINDOW) as usize;
            let bucket = &mut self.buckets[b];
            let pos = bucket.partition_point(|&(s, _)| s < f.seq);
            bucket.insert(pos, (f.seq, f.item));
            self.occupied[b / 64] |= 1 << (b % 64);
        }
        self.overflow_min = self.overflow.peek().map_or(u64::MAX, |Reverse(f)| f.cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn same_cycle_drains_in_push_order() {
        let mut q = CalendarQueue::new();
        q.push(5, "a");
        q.push(5, "b");
        q.push(3, "c");
        q.push(5, "d");
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![(3, "c"), (5, "a"), (5, "b"), (5, "d")]);
    }

    #[test]
    fn overflow_events_interleave_by_push_order() {
        let mut q = CalendarQueue::new();
        // Scheduled while far future -> overflow heap.
        q.push(WINDOW + 10, 1u32);
        // Drain the queue forward so the window covers WINDOW + 10, then
        // schedule a same-cycle event directly into the ring.
        q.push(20, 0);
        assert_eq!(q.pop(), Some((20, 0)));
        q.push(WINDOW + 10, 2);
        assert_eq!(q.pop(), Some((WINDOW + 10, 1)), "earlier push first");
        assert_eq!(q.pop(), Some((WINDOW + 10, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_reference_heap_on_a_mixed_workload() {
        // Deterministic pseudo-random workload compared against the
        // reference semantics (a heap over (cycle, seq)).
        let mut q = CalendarQueue::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for i in 0..5000u32 {
            // Mostly near-future pushes, occasionally far past the window.
            let delta = match rnd() % 10 {
                0 => WINDOW + rnd() % (4 * WINDOW),
                1..=3 => rnd() % 600,
                _ => rnd() % 8,
            };
            q.push(now + delta, i);
            seq += 1;
            reference.push(Reverse((now + delta, seq, i)));
            if rnd() % 3 != 0 {
                let got = q.pop();
                let Some(Reverse((cycle, _, item))) = reference.pop() else {
                    panic!("reference empty while queue was not");
                };
                assert_eq!(got, Some((cycle, item)));
                now = cycle;
            }
        }
        while let Some(Reverse((cycle, _, item))) = reference.pop() {
            assert_eq!(q.pop(), Some((cycle, item)));
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "behind the queue cursor")]
    fn pushing_behind_the_cursor_is_a_bug() {
        let mut q = CalendarQueue::new();
        q.push(100, ());
        q.pop();
        q.push(99, ());
    }
}
