//! Architectural and microarchitectural state of one core.

use std::collections::VecDeque;

use sim_isa::{FReg, MemWidth, Reg};

/// What a blocked core will do when its outstanding fill completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Continuation {
    /// An integer load: write the loaded value (or the error sentinel) to
    /// `rd`, optionally setting the LL link register.
    Load {
        rd: Reg,
        addr: u64,
        width: MemWidth,
        set_link: bool,
    },
    /// A floating-point load.
    FLoad { fd: FReg, addr: u64 },
    /// An instruction fetch: retry execution at the same pc (the line is in
    /// the L1I once the fill completes).
    IFetch,
    /// A store-conditional awaiting its exclusive-ownership round trip.
    /// Success is decided at completion: if the link survived until then,
    /// the store commits and `rd` receives 1, else `rd` receives 0.
    Sc { rd: Reg, src: u64, addr: u64 },
}

/// Why a core is not executing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Waiting {
    /// Runnable (a `CoreReady` event is pending or the core is halted).
    None,
    /// Blocked on an outstanding fill (possibly parked at a barrier filter).
    Fill {
        line: u64,
        cont: Continuation,
        /// True while the fill is parked at a bank hook.
        parked: bool,
    },
    /// `sync` waiting for the store buffer to drain; `residual` cycles of
    /// fence cost remain after the last store retires.
    Fence { residual: u64 },
    /// Stalled at the dedicated barrier network.
    HwBar,
    /// A store found the store buffer full; the instruction re-executes when
    /// a slot frees.
    StoreSlot,
    /// The OS context-switched this thread out while its barrier fill was
    /// parked (§3.3.3 model). `Machine::resume_thread` re-issues the fill.
    SwitchedOut { cont: Continuation, line: u64 },
}

/// Per-core retirement counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Data loads executed (including `ll`).
    pub loads: u64,
    /// Stores executed (including successful `sc`).
    pub stores: u64,
    /// `icbi`/`dcbi` instructions executed.
    pub invalidates: u64,
    /// Fills that were parked at a bank hook.
    pub fills_parked: u64,
    /// Parked fills later released with data (not errored). Not part of
    /// [`MachineStats::digest`](crate::MachineStats::digest).
    pub fills_released: u64,
    /// Cycle at which the core executed `halt`, if it has.
    pub halt_cycle: Option<u64>,
    /// Peak simultaneous MSHR occupancy observed.
    pub mshr_peak: usize,
}

/// One core: architectural registers plus the blocking state the engine
/// tracks for it.
///
/// `repr(C)` with the per-step scalars (`pc`, flags, decoded-block cursor,
/// fetch window, issue accumulator) declared first: every instruction the
/// engine steps touches exactly these, and clustering them keeps a step to
/// a couple of host cache lines instead of scattering hot fields between
/// the 512-byte register arrays. Purely a host-side layout choice.
#[derive(Debug)]
#[repr(C)]
pub(crate) struct Core {
    pub pc: u64,
    pub halted: bool,
    /// Whether a `StoreRetire` event is in flight for the buffer head.
    pub draining: bool,
    /// Decoded-block cursor: next arena position to execute when the cursor
    /// is live. Live iff `dec_pos < dec_end && dec_pc == pc && dec_gen`
    /// matches the decode cache's generation; a live cursor implies the
    /// ifetch window covers `pc` (blocks never cross lines), so
    /// [`Core::clear_ifetch_window`] also resets the cursor and every
    /// window invalidation (isync, icbi broadcast, migration) invalidates
    /// both together.
    pub dec_pos: u32,
    /// One past the last arena position of the cursor's block.
    pub dec_end: u32,
    /// The pc the op at `dec_pos` was decoded from.
    pub dec_pc: u64,
    /// Decode-cache generation the cursor was stamped with.
    pub dec_gen: u64,
    /// Fetch fast path: pcs in `ifetch_lo..ifetch_hi` (the bounds of the
    /// I-cache line the previous instruction decoded from) skip the L1I
    /// lookup. `(1, 0)` — an empty window — means no line is cached;
    /// `isync` and `icbi` broadcasts reset to it. When valid, `ifetch_lo`
    /// is the (64-byte-aligned) line address itself.
    pub ifetch_lo: u64,
    pub ifetch_hi: u64,
    /// Fractional-cycle accumulator (twelfths) for superscalar issue.
    pub issue_frac: u64,
    /// Fused-memory line memo: the L1D line the core's last fused load hit.
    /// `u64::MAX` (never a valid line address) means no memo.
    pub mem_line: u64,
    /// The L1D slot `mem_line` occupied when the memo was taken.
    pub mem_slot: u32,
    /// [`Cache::generation`](crate::cache::Cache) stamp the memo was taken
    /// at; the memo is valid only while the L1D's generation still matches
    /// (insert/invalidate bump it, so a valid memo proves the line is still
    /// resident in the same slot). Host-side only — the fused hit replays
    /// exactly the interpreter's lookup mutations.
    pub mem_gen: u64,
    pub waiting: Waiting,
    pub stats: CoreStats,
    pub regs: [u64; Reg::COUNT],
    pub fregs: [f64; FReg::COUNT],
    /// LL reservation: the line address of a valid load-linked, if any.
    pub link: Option<u64>,
    /// Lines of committed-but-undrained stores, oldest first.
    pub store_buffer: VecDeque<u64>,
    /// Outstanding misses (loads, store drains, parked fills).
    pub mshr_used: usize,
}

impl Core {
    pub fn new() -> Core {
        Core {
            regs: [0; Reg::COUNT],
            fregs: [0.0; FReg::COUNT],
            pc: 0,
            halted: true,
            link: None,
            store_buffer: VecDeque::new(),
            draining: false,
            waiting: Waiting::None,
            ifetch_lo: 1,
            ifetch_hi: 0,
            dec_pos: 0,
            dec_end: 0,
            dec_pc: 0,
            dec_gen: 0,
            mshr_used: 0,
            issue_frac: 0,
            mem_line: u64::MAX,
            mem_slot: 0,
            mem_gen: 0,
            stats: CoreStats::default(),
        }
    }

    /// Read an integer register (x0 reads zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Write an integer register (writes to x0 are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Read a floating-point register.
    #[inline]
    pub fn freg(&self, r: FReg) -> f64 {
        self.fregs[r.index()]
    }

    /// Write a floating-point register.
    #[inline]
    pub fn set_freg(&mut self, r: FReg, v: f64) {
        self.fregs[r.index()] = v;
    }

    /// Human-readable description of why the core is blocked, for deadlock
    /// reports.
    pub fn blocked_reason(&self) -> String {
        match self.waiting {
            Waiting::None => "runnable (no pending event)".to_owned(),
            Waiting::Fill { line, parked, .. } => {
                if parked {
                    format!("parked at a bank hook on fill of line {line:#x}")
                } else {
                    format!("waiting on fill of line {line:#x}")
                }
            }
            Waiting::Fence { .. } => "draining store buffer for a fence".to_owned(),
            Waiting::HwBar => "stalled at the dedicated barrier network".to_owned(),
            Waiting::StoreSlot => "waiting for a store-buffer slot".to_owned(),
            Waiting::SwitchedOut { line, .. } => {
                format!("context-switched out while parked on line {line:#x}")
            }
        }
    }

    pub fn note_mshr(&mut self) {
        self.stats.mshr_peak = self.stats.mshr_peak.max(self.mshr_used);
    }

    /// Invalidate the instruction-fetch fast-path window, and with it the
    /// decoded-block cursor (a live cursor always lies inside the window's
    /// line, so the two must drop together).
    pub fn clear_ifetch_window(&mut self) {
        self.ifetch_lo = 1;
        self.ifetch_hi = 0;
        self.dec_pos = 0;
        self.dec_end = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut c = Core::new();
        c.set_reg(Reg::ZERO, 42);
        assert_eq!(c.reg(Reg::ZERO), 0);
        c.set_reg(Reg::T0, 42);
        assert_eq!(c.reg(Reg::T0), 42);
    }

    #[test]
    fn fregs_read_back() {
        let mut c = Core::new();
        c.set_freg(FReg::F3, 2.5);
        assert_eq!(c.freg(FReg::F3), 2.5);
    }

    #[test]
    fn blocked_reason_mentions_parked_line() {
        let mut c = Core::new();
        c.waiting = Waiting::Fill {
            line: 0x2000_0040,
            cont: Continuation::IFetch,
            parked: true,
        };
        assert!(c.blocked_reason().contains("0x20000040"));
        assert!(c.blocked_reason().contains("parked"));
    }
}
