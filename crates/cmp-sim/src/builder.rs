//! Machine construction.

use std::fmt;

use sim_isa::{FReg, Program, Reg};

use crate::core::Core;
use crate::hook::BankHook;
use crate::hwnet::DedicatedNetwork;
use crate::machine::Machine;
use crate::mem::Memory;
use crate::trace::{build_sink, TraceSink};
use crate::SimConfig;

/// Errors detected while assembling a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// The trace sink could not be constructed (e.g. the Chrome-trace
    /// output file could not be created).
    TraceSink(String),
    /// More threads were added than the machine has cores.
    TooManyThreads {
        /// Threads requested.
        threads: usize,
        /// Cores available.
        cores: usize,
    },
    /// A hook was installed twice on the same bank.
    HookAlreadyInstalled {
        /// The contested bank.
        bank: usize,
    },
    /// A bank index was out of range.
    NoSuchBank {
        /// The offending index.
        bank: usize,
    },
    /// A thread entry point is outside the program image.
    BadEntry {
        /// The offending entry address.
        entry: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            BuildError::TraceSink(why) => write!(f, "cannot construct trace sink: {why}"),
            BuildError::TooManyThreads { threads, cores } => {
                write!(
                    f,
                    "{threads} threads requested but only {cores} cores exist"
                )
            }
            BuildError::HookAlreadyInstalled { bank } => {
                write!(f, "bank {bank} already has a hook installed")
            }
            BuildError::NoSuchBank { bank } => write!(f, "bank {bank} does not exist"),
            BuildError::BadEntry { entry } => {
                write!(f, "thread entry {entry:#x} is outside the program image")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Debug, Default)]
struct ThreadSpec {
    entry: u64,
    regs: Vec<(Reg, u64)>,
    fregs: Vec<(FReg, f64)>,
}

/// Builder for a [`Machine`]: program, initial memory image, threads, bank
/// hooks and hardware barrier groups.
///
/// The paper's setup maps one thread to each core, thread `t` on core `t`;
/// the builder automatically sets each thread's `tid` and `ntid` registers
/// at build time.
pub struct MachineBuilder {
    config: SimConfig,
    program: Program,
    mem: Memory,
    threads: Vec<ThreadSpec>,
    hooks: Vec<Option<Box<dyn BankHook>>>,
    hw_groups: Vec<(u16, Vec<usize>)>,
    sink_override: Option<Box<dyn TraceSink>>,
}

impl fmt::Debug for MachineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MachineBuilder")
            .field("threads", &self.threads.len())
            .field("cores", &self.config.num_cores)
            .finish_non_exhaustive()
    }
}

impl MachineBuilder {
    /// Start building a machine for `program` under `config`.
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidConfig`] if the configuration is inconsistent.
    pub fn new(config: SimConfig, program: Program) -> Result<MachineBuilder, BuildError> {
        config.validate().map_err(BuildError::InvalidConfig)?;
        let banks = config.l2_banks;
        Ok(MachineBuilder {
            config,
            program,
            mem: Memory::new(),
            threads: Vec::new(),
            hooks: (0..banks).map(|_| None).collect(),
            hw_groups: Vec::new(),
            sink_override: None,
        })
    }

    /// The configuration this machine is being built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of threads added so far.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Add a thread starting at `entry` (a label resolved through
    /// [`Program::require_symbol`] or a raw pc). Returns the thread id,
    /// which is also the core it runs on.
    pub fn add_thread(&mut self, entry: u64) -> usize {
        self.threads.push(ThreadSpec {
            entry,
            ..ThreadSpec::default()
        });
        self.threads.len() - 1
    }

    /// Preset an integer register of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` has not been added.
    pub fn set_thread_reg(&mut self, tid: usize, r: Reg, v: u64) -> &mut MachineBuilder {
        self.threads[tid].regs.push((r, v));
        self
    }

    /// Preset a floating-point register of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` has not been added.
    pub fn set_thread_freg(&mut self, tid: usize, r: FReg, v: f64) -> &mut MachineBuilder {
        self.threads[tid].fregs.push((r, v));
        self
    }

    /// Preset an integer register of *every* thread added so far (kernel
    /// parameters shared by the whole gang).
    pub fn set_all_threads_reg(&mut self, r: Reg, v: u64) -> &mut MachineBuilder {
        for t in &mut self.threads {
            t.regs.push((r, v));
        }
        self
    }

    /// Write a u64 into the initial memory image.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> &mut MachineBuilder {
        self.mem.write_u64(addr, v);
        self
    }

    /// Write an f64 into the initial memory image.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> &mut MachineBuilder {
        self.mem.write_f64(addr, v);
        self
    }

    /// Write consecutive f64 values into the initial memory image.
    pub fn write_f64_slice(&mut self, addr: u64, values: &[f64]) -> &mut MachineBuilder {
        self.mem.write_f64_slice(addr, values);
        self
    }

    /// Write consecutive u64 values into the initial memory image.
    pub fn write_u64_slice(&mut self, addr: u64, values: &[u64]) -> &mut MachineBuilder {
        self.mem.write_u64_slice(addr, values);
        self
    }

    /// Attach a hook (a barrier filter bank) to L2 bank `bank`.
    ///
    /// # Errors
    ///
    /// [`BuildError::NoSuchBank`] or [`BuildError::HookAlreadyInstalled`].
    pub fn install_hook(&mut self, bank: usize, hook: Box<dyn BankHook>) -> Result<(), BuildError> {
        let slot = self
            .hooks
            .get_mut(bank)
            .ok_or(BuildError::NoSuchBank { bank })?;
        if slot.is_some() {
            return Err(BuildError::HookAlreadyInstalled { bank });
        }
        *slot = Some(hook);
        Ok(())
    }

    /// Configure dedicated-network barrier `id` over the given member cores.
    pub fn configure_hw_barrier(&mut self, id: u16, members: Vec<usize>) -> &mut MachineBuilder {
        self.hw_groups.push((id, members));
        self
    }

    /// Install a custom trace sink, overriding whatever
    /// [`SimConfig::trace`](crate::SimConfig) selects. Sinks are pure
    /// observers; installing one never changes simulated behaviour.
    pub fn with_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> &mut MachineBuilder {
        self.sink_override = Some(sink);
        self
    }

    /// Finalize the machine.
    ///
    /// # Errors
    ///
    /// [`BuildError::TooManyThreads`] or [`BuildError::BadEntry`].
    pub fn build(self) -> Result<Machine, BuildError> {
        if self.threads.len() > self.config.num_cores {
            return Err(BuildError::TooManyThreads {
                threads: self.threads.len(),
                cores: self.config.num_cores,
            });
        }
        let ntid = self.threads.len() as u64;
        let mut cores: Vec<Core> = (0..self.config.num_cores).map(|_| Core::new()).collect();
        for (tid, spec) in self.threads.iter().enumerate() {
            if self.program.fetch(spec.entry).is_none() {
                return Err(BuildError::BadEntry { entry: spec.entry });
            }
            let core = &mut cores[tid];
            core.halted = false;
            core.pc = spec.entry;
            core.set_reg(Reg::TID, tid as u64);
            core.set_reg(Reg::NTID, ntid);
            for &(r, v) in &spec.regs {
                core.set_reg(r, v);
            }
            for &(r, v) in &spec.fregs {
                core.set_freg(r, v);
            }
        }
        let mut hwnet = DedicatedNetwork::new(self.config.hw_barrier);
        for (id, members) in self.hw_groups {
            hwnet.configure_group(id, members);
        }
        let (sink, trace_on) = match self.sink_override {
            Some(s) => (s, true),
            None => (
                build_sink(&self.config.trace).map_err(|e| BuildError::TraceSink(e.to_string()))?,
                !self.config.trace.is_off(),
            ),
        };
        Ok(Machine::from_builder(
            self.config,
            self.program,
            self.mem,
            cores,
            self.hooks,
            hwnet,
            sink,
            trace_on,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Asm;

    fn halt_program() -> Program {
        let mut a = Asm::new();
        a.label("entry").unwrap();
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = SimConfig {
            num_cores: 0,
            ..SimConfig::default()
        };
        assert!(matches!(
            MachineBuilder::new(cfg, halt_program()),
            Err(BuildError::InvalidConfig(_))
        ));
    }

    #[test]
    fn rejects_too_many_threads() {
        let cfg = SimConfig::with_cores(1);
        let p = halt_program();
        let entry = p.require_symbol("entry").unwrap();
        let mut b = MachineBuilder::new(cfg, p).unwrap();
        b.add_thread(entry);
        b.add_thread(entry);
        assert!(matches!(
            b.build(),
            Err(BuildError::TooManyThreads {
                threads: 2,
                cores: 1
            })
        ));
    }

    #[test]
    fn rejects_bad_entry() {
        let cfg = SimConfig::with_cores(1);
        let mut b = MachineBuilder::new(cfg, halt_program()).unwrap();
        b.add_thread(0xdead_0000);
        assert!(matches!(b.build(), Err(BuildError::BadEntry { .. })));
    }

    #[test]
    fn duplicate_hook_rejected() {
        struct NullHook;
        impl crate::hook::BankHook for NullHook {
            fn on_invalidate(
                &mut self,
                _: u64,
                _: u64,
                _: &mut crate::hook::HookOutcome,
            ) -> Result<(), crate::hook::HookViolation> {
                Ok(())
            }
            fn on_fill_request(
                &mut self,
                _: u64,
                _: crate::hook::ParkToken,
                _: u64,
                _: &mut crate::hook::HookOutcome,
            ) -> Result<crate::hook::FillDecision, crate::hook::HookViolation> {
                Ok(crate::hook::FillDecision::NotMine)
            }
            fn on_cancel(&mut self, _: crate::hook::ParkToken) {}
        }
        let cfg = SimConfig::with_cores(1);
        let mut b = MachineBuilder::new(cfg, halt_program()).unwrap();
        b.install_hook(0, Box::new(NullHook)).unwrap();
        assert!(matches!(
            b.install_hook(0, Box::new(NullHook)),
            Err(BuildError::HookAlreadyInstalled { bank: 0 })
        ));
        assert!(matches!(
            b.install_hook(99, Box::new(NullHook)),
            Err(BuildError::NoSuchBank { bank: 99 })
        ));
    }

    #[test]
    fn tid_and_ntid_are_set() {
        let cfg = SimConfig::with_cores(4);
        let p = halt_program();
        let entry = p.require_symbol("entry").unwrap();
        let mut b = MachineBuilder::new(cfg, p).unwrap();
        for _ in 0..3 {
            b.add_thread(entry);
        }
        let m = b.build().unwrap();
        for t in 0..3 {
            assert_eq!(m.core_reg(t, Reg::TID), t as u64);
            assert_eq!(m.core_reg(t, Reg::NTID), 3);
        }
    }
}
