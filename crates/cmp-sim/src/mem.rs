//! Functional (value-carrying) memory.
//!
//! The caches in this simulator are timing-only: data always lives here, in
//! a sparse paged byte store, so that every kernel's numeric output can be
//! checked against a host reference regardless of how the timing model
//! reorders misses and fills.
//!
//! Every simulated load and store lands here, which made the old
//! `HashMap<page, …>` layout the single hottest spot in the engine (a
//! SipHash per *byte* of every access). Pages in the low address space —
//! everything the layout allocator hands out — now live in a flat
//! `Vec`-indexed table, and multi-byte accesses touch their page once
//! instead of once per byte. Pages above [`FLAT_PAGES`] (stray test
//! addresses) fall back to a hashed map with the engine's fast hasher.

use crate::fastmap::FxHashMap;

const PAGE_BYTES: usize = 4096;
const PAGE_SHIFT: u32 = 12;

/// Page numbers below this are indexed directly (first 4 GiB of the
/// simulated address space — the table grows only to the highest page
/// actually touched).
const FLAT_PAGES: u64 = 1 << 20;

type Page = Box<[u8; PAGE_BYTES]>;

/// Sparse, paged, byte-addressable memory.
#[derive(Default)]
pub struct Memory {
    /// Flat page table for the low address space, indexed by page number.
    flat: Vec<Option<Page>>,
    /// Sparse fallback for pages at or above [`FLAT_PAGES`].
    high: FxHashMap<u64, Page>,
    resident: usize,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("resident_pages", &self.resident)
            .finish_non_exhaustive()
    }
}

impl Memory {
    /// Create an empty memory; pages materialize (zero-filled) on first
    /// write, and reads of untouched pages return zero.
    pub fn new() -> Memory {
        Memory::default()
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_BYTES]> {
        let pn = addr >> PAGE_SHIFT;
        if pn < FLAT_PAGES {
            self.flat.get(pn as usize)?.as_deref()
        } else {
            self.high.get(&pn).map(|p| &**p)
        }
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES] {
        let pn = addr >> PAGE_SHIFT;
        if pn < FLAT_PAGES {
            let i = pn as usize;
            if i >= self.flat.len() {
                self.flat.resize_with(i + 1, || None);
            }
            let slot = &mut self.flat[i];
            if slot.is_none() {
                *slot = Some(Box::new([0u8; PAGE_BYTES]));
                self.resident += 1;
            }
            slot.as_deref_mut().expect("just materialized")
        } else {
            match self.high.entry(pn) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    self.resident += 1;
                    v.insert(Box::new([0u8; PAGE_BYTES]))
                }
            }
        }
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_BYTES - 1)])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let p = self.page_mut(addr);
        p[(addr as usize) & (PAGE_BYTES - 1)] = value;
    }

    /// Read `n <= 8` bytes little-endian, zero-extended to u64.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    #[inline]
    pub fn read_le(&self, addr: u64, n: usize) -> u64 {
        assert!(n <= 8, "read wider than 8 bytes");
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + n <= PAGE_BYTES {
            // Within one page: touch the page table once.
            match self.page(addr) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..n].copy_from_slice(&p[off..off + n]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            }
        } else {
            let mut v = 0u64;
            for i in 0..n {
                v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
            }
            v
        }
    }

    /// Write the low `n <= 8` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    #[inline]
    pub fn write_le(&mut self, addr: u64, n: usize, value: u64) {
        assert!(n <= 8, "write wider than 8 bytes");
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + n <= PAGE_BYTES {
            let p = self.page_mut(addr);
            let bytes = value.to_le_bytes();
            p[off..off + n].copy_from_slice(&bytes[..n]);
        } else {
            for i in 0..n {
                self.write_u8(addr + i as u64, (value >> (8 * i)) as u8);
            }
        }
    }

    /// Read a u64.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Write a u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_le(addr, 8, value);
    }

    /// Read an f64 (bit pattern).
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write an f64 (bit pattern).
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Read `n` consecutive f64 values starting at `addr`.
    pub fn read_f64_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.read_f64(addr + 8 * i as u64)).collect()
    }

    /// Write consecutive f64 values starting at `addr`.
    pub fn write_f64_slice(&mut self, addr: u64, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, v);
        }
    }

    /// Read `n` consecutive u64 values starting at `addr`.
    pub fn read_u64_slice(&self, addr: u64, n: usize) -> Vec<u64> {
        (0..n).map(|i| self.read_u64(addr + 8 * i as u64)).collect()
    }

    /// Write consecutive u64 values starting at `addr`.
    pub fn write_u64_slice(&mut self, addr: u64, values: &[u64]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, v);
        }
    }

    /// Number of pages materialized so far (diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0xdead_b000), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(0x1000), 0xef, "little endian");
        assert_eq!(m.read_le(0x1000, 4), 0x89ab_cdef);
    }

    #[test]
    fn partial_width_write_preserves_neighbours() {
        let mut m = Memory::new();
        m.write_u64(0x40, u64::MAX);
        m.write_le(0x42, 2, 0);
        assert_eq!(m.read_u64(0x40), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        // straddles the 4 KiB page boundary
        m.write_u64(0x0fff_fffc, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x0fff_fffc), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn high_address_space_round_trips_through_the_fallback_map() {
        let mut m = Memory::new();
        // Above FLAT_PAGES (>= 4 GiB): lands in the hashed fallback.
        let hi = (FLAT_PAGES << PAGE_SHIFT) + 0x123_4560;
        assert_eq!(m.read_u64(hi), 0);
        m.write_u64(hi, 77);
        assert_eq!(m.read_u64(hi), 77);
        assert_eq!(m.resident_pages(), 1);
        // A straddle across the flat/high boundary.
        let edge = (FLAT_PAGES << PAGE_SHIFT) - 4;
        m.write_u64(edge, 0xaabb_ccdd_1122_3344);
        assert_eq!(m.read_u64(edge), 0xaabb_ccdd_1122_3344);
        assert_eq!(m.resident_pages(), 3);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = Memory::new();
        m.write_f64(0x100, -1234.5e-6);
        assert_eq!(m.read_f64(0x100), -1234.5e-6);
        let vals = [1.0, 2.5, -3.75];
        m.write_f64_slice(0x200, &vals);
        assert_eq!(m.read_f64_slice(0x200, 3), vals);
    }

    #[test]
    fn u64_slice_round_trip() {
        let mut m = Memory::new();
        m.write_u64_slice(0x300, &[1, 2, 3]);
        assert_eq!(m.read_u64_slice(0x300, 3), vec![1, 2, 3]);
    }
}
