//! Functional (value-carrying) memory.
//!
//! The caches in this simulator are timing-only: data always lives here, in
//! a sparse paged byte store, so that every kernel's numeric output can be
//! checked against a host reference regardless of how the timing model
//! reorders misses and fills.

use std::collections::HashMap;

const PAGE_BYTES: usize = 4096;
const PAGE_SHIFT: u32 = 12;

/// Sparse, paged, byte-addressable memory.
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl Memory {
    /// Create an empty memory; pages materialize (zero-filled) on first
    /// write, and reads of untouched pages return zero.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_BYTES]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]))
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_BYTES - 1)])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let p = self.page_mut(addr);
        p[(addr as usize) & (PAGE_BYTES - 1)] = value;
    }

    /// Read `n <= 8` bytes little-endian, zero-extended to u64.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn read_le(&self, addr: u64, n: usize) -> u64 {
        assert!(n <= 8, "read wider than 8 bytes");
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
        }
        v
    }

    /// Write the low `n <= 8` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn write_le(&mut self, addr: u64, n: usize, value: u64) {
        assert!(n <= 8, "write wider than 8 bytes");
        for i in 0..n {
            self.write_u8(addr + i as u64, (value >> (8 * i)) as u8);
        }
    }

    /// Read a u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Write a u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_le(addr, 8, value);
    }

    /// Read an f64 (bit pattern).
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write an f64 (bit pattern).
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Read `n` consecutive f64 values starting at `addr`.
    pub fn read_f64_slice(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.read_f64(addr + 8 * i as u64)).collect()
    }

    /// Write consecutive f64 values starting at `addr`.
    pub fn write_f64_slice(&mut self, addr: u64, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, v);
        }
    }

    /// Read `n` consecutive u64 values starting at `addr`.
    pub fn read_u64_slice(&self, addr: u64, n: usize) -> Vec<u64> {
        (0..n).map(|i| self.read_u64(addr + 8 * i as u64)).collect()
    }

    /// Write consecutive u64 values starting at `addr`.
    pub fn write_u64_slice(&mut self, addr: u64, values: &[u64]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, v);
        }
    }

    /// Number of pages materialized so far (diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0xdead_b000), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(0x1000), 0xef, "little endian");
        assert_eq!(m.read_le(0x1000, 4), 0x89ab_cdef);
    }

    #[test]
    fn partial_width_write_preserves_neighbours() {
        let mut m = Memory::new();
        m.write_u64(0x40, u64::MAX);
        m.write_le(0x42, 2, 0);
        assert_eq!(m.read_u64(0x40), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        // straddles the 4 KiB page boundary
        m.write_u64(0x0fff_fffc, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x0fff_fffc), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = Memory::new();
        m.write_f64(0x100, -1234.5e-6);
        assert_eq!(m.read_f64(0x100), -1234.5e-6);
        let vals = [1.0, 2.5, -3.75];
        m.write_f64_slice(0x200, &vals);
        assert_eq!(m.read_f64_slice(0x200, 3), vals);
    }

    #[test]
    fn u64_slice_round_trip() {
        let mut m = Memory::new();
        m.write_u64_slice(0x300, &[1, 2, 3]);
        assert_eq!(m.read_u64_slice(0x300, 3), vec![1, 2, 3]);
    }
}
