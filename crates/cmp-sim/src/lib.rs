//! `cmp-sim`: an event-driven, cycle-level chip-multiprocessor simulator.
//!
//! This is the evaluation substrate for the barrier-filter paper
//! reproduction (see the repository's DESIGN.md): the equivalent of the
//! modified SMTSim the authors used. It models:
//!
//! * N identical in-order cores executing [MiniRISC](sim_isa) programs, one
//!   thread per core;
//! * private L1 instruction and data caches, a shared banked L2, a shared
//!   L3, and main memory, with Table 2 latencies by default
//!   ([`SimConfig::default`]);
//! * an MSI directory over the L1 data caches (invalidations, upgrades and
//!   cache-to-cache transfers — the coherence traffic software barriers pay
//!   for);
//! * a single shared bus between the L1s and the L2 banks whose saturation
//!   reproduces the paper's Figure 4 behaviour beyond 16 cores;
//! * per-core store buffers, MSHR accounting (§3.2.1), `sync`/`isync`
//!   fences, `ll`/`sc`, and the user-mode `icbi`/`dcbi` cache-block
//!   invalidate instructions;
//! * [`BankHook`]: the extension point in each L2 bank controller where the
//!   `barrier-filter` crate attaches the paper's contribution; and
//! * a [dedicated barrier network](DedicatedNetwork) baseline
//!   (`hwbar`), the aggressive hardware model the paper compares against.
//!
//! # Example
//!
//! Assemble a two-thread program in which each thread writes its id, then
//! run it:
//!
//! ```
//! use cmp_sim::{MachineBuilder, SimConfig, AddressSpace};
//! use sim_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SimConfig::with_cores(2);
//! let mut space = AddressSpace::new(&config);
//! let out = space.alloc_u64(2)?;
//!
//! let mut a = Asm::new();
//! a.label("entry")?;
//! a.li(Reg::T0, out as i64);
//! a.slli(Reg::T1, Reg::TID, 3);
//! a.add(Reg::T0, Reg::T0, Reg::T1);
//! a.std(Reg::TID, Reg::T0, 0);
//! a.halt();
//! let program = a.assemble()?;
//!
//! let entry = program.require_symbol("entry").unwrap();
//! let mut b = MachineBuilder::new(config, program)?;
//! b.add_thread(entry);
//! b.add_thread(entry);
//! let mut machine = b.build()?;
//! machine.run()?;
//! assert_eq!(machine.read_u64_slice(out, 2), vec![0, 1]);
//! # Ok(())
//! # }
//! ```

mod builder;
mod bus;
mod cache;
mod coherence;
mod config;
mod core;
mod decode;
mod error;
mod event_queue;
mod fastmap;
mod faults;
mod hook;
mod hwnet;
pub mod json;
mod layout;
mod machine;
mod mem;
mod stats;
mod trace;

pub use builder::{BuildError, MachineBuilder};
pub use bus::{Interconnect, Resource, ResourceStats};
pub use cache::{Cache, CacheStats, LineState};
pub use coherence::{DirEntry, Directory, DirectoryStats, ReadOutcome, SharerSet, WriteOutcome};
pub use config::{
    BusConfig, CacheConfig, CoreTiming, HopLatency, HwBarrierConfig, SimConfig, Topology, MAX_CORES,
};
pub use core::CoreStats;
pub use decode::{DecodeCacheStats, FusedMemStats};
pub use error::SimError;
pub use event_queue::EventQueueStats;
pub use faults::{run_with_faults, FaultEvent, FaultKind, FaultPlan, FaultReport, Lcg};
pub use hook::{
    BankHook, FillDecision, HookOutcome, HookViolation, ParkToken, FILL_ERROR_SENTINEL,
};
pub use hwnet::{DedicatedNetwork, HwBarResult, HwNetStats};
pub use json::{fnv64, parse_u64_flex, Json, JsonError};
pub use layout::{AddressSpace, LayoutError, BARRIER_BASE, BARRIER_END, DATA_BASE};
pub use machine::{Machine, RunState};
pub use mem::Memory;
pub use stats::{MachineStats, Measurement, RunSummary};
pub use trace::{
    json_escape, ChromeTraceSink, EpisodeStats, MetricsSink, NullSink, RingSink, TraceConfig,
    TraceEvent, TraceMetrics, TraceSink,
};
