//! Deterministic fault injection for barrier recovery (§3.3.3).
//!
//! The paper argues the barrier filter survives OS interference: a parked
//! thread can be context-switched out (its fill cancelled), rescheduled
//! later (the access re-issues and either re-parks or is serviced because
//! the barrier opened in the meantime), or migrated to another core with
//! the filter re-armed through the OS save/restore path. This module turns
//! those claims into a *measured* property: a [`FaultPlan`] is a schedule
//! of disturbances generated from a seeded [`Lcg`], and
//! [`run_with_faults`] drives a [`Machine`] through the plan — so every
//! chaos run replays bit-identically from `(seed, plan)`.
//!
//! Faults are modelled strictly through the machine's public OS surface
//! ([`Machine::context_switch_out`], [`Machine::resume_thread`],
//! [`Machine::migrate_thread`], [`Machine::reprogram_bank`]): the injector
//! holds no back door into simulated state, and a plan with no events is
//! exactly [`Machine::run`].

use crate::error::SimError;
use crate::machine::{Machine, RunState};
use crate::stats::RunSummary;

/// Minimal in-repo pseudo-random generator (the workspace builds offline,
/// so there is no `rand`): a 64-bit multiplicative-congruential step with
/// an output mix. Not cryptographic — it only needs to be deterministic
/// and well-spread across the fault dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let mut z = self.state;
        z ^= z >> 33;
        z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
        z ^= z >> 33;
        z
    }

    /// A value uniform-ish in `0..n` (modulo bias is irrelevant here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Lcg::below(0)");
        self.next_u64() % n
    }
}

/// One kind of OS disturbance the injector can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Context-switch out one currently parked core; schedule its resume
    /// `delay` cycles later.
    SwitchOut {
        /// Cycles until the thread is rescheduled (min 1).
        delay: u64,
    },
    /// Push one pending resume back by `extra` cycles (the OS ran
    /// something else first).
    DelayResume {
        /// Additional cycles before the delayed thread resumes.
        extra: u64,
    },
    /// Migrate two parked threads across cores: both are switched out,
    /// their architectural state swaps, every filter is re-armed through
    /// the OS reprogram path, and both resume (staggered) `delay` cycles
    /// later — each re-arriving at the barrier from the other core.
    /// Degrades to [`FaultKind::SwitchOut`] when only one core is parked.
    Migrate {
        /// Cycles until the first migrated thread resumes (min 1).
        delay: u64,
    },
    /// Probe one bank's OS reprogram path directly. Against a filter that
    /// holds parked fills this is deliberate misprogramming: it surfaces
    /// as a recoverable [`HookViolation`](crate::HookViolation) counted in
    /// [`FaultReport::violations`], never a panic.
    Reprogram,
}

/// One scheduled disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation cycle at (or after) which the fault fires.
    pub at: u64,
    /// Raw random value used to pick the fault's target (core, resume
    /// slot, or bank) among whatever is eligible when it fires.
    pub pick: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// A replayable schedule of disturbances: the full input of a chaos run is
/// `(machine, plan)`, and [`FaultPlan::generate`] makes the plan itself a
/// pure function of `(seed, faults, horizon)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Events in non-decreasing `at` order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: [`run_with_faults`] degenerates to [`Machine::run`].
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Generate `faults` events spread over cycles `0..horizon`, with
    /// kinds and targets drawn from an [`Lcg`] seeded with `seed`. Delays
    /// are drawn from `1..=400` cycles — long enough to overlap whole
    /// barrier episodes, short enough to keep chaos runs fast.
    pub fn generate(seed: u64, faults: usize, horizon: u64) -> FaultPlan {
        let mut rng = Lcg::new(seed);
        let mut events: Vec<FaultEvent> = (0..faults)
            .map(|_| {
                let at = rng.below(horizon.max(1));
                let pick = rng.next_u64();
                let kind = match rng.below(4) {
                    0 => FaultKind::SwitchOut {
                        delay: 1 + rng.below(400),
                    },
                    1 => FaultKind::DelayResume {
                        extra: 1 + rng.below(400),
                    },
                    2 => FaultKind::Migrate {
                        delay: 1 + rng.below(400),
                    },
                    _ => FaultKind::Reprogram,
                };
                FaultEvent { at, pick, kind }
            })
            .collect();
        // Stable: ties keep generation order, so the plan is deterministic.
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// What a chaos run actually did, next to what the plan asked for.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Events that found an eligible target and were applied.
    pub injected: usize,
    /// Events skipped because nothing was eligible when they fired (no
    /// core parked, no resume pending, no hook on the picked bank) or
    /// because the run finished first.
    pub skipped: usize,
    /// Recoverable [`HookViolation`](crate::HookViolation)s surfaced by
    /// reprogram probes against busy filters.
    pub violations: usize,
    /// Threads resumed by the injector (switch-outs and migrations that
    /// ran to their scheduled resume).
    pub resumed: usize,
}

/// Drive `m` to completion while applying `plan`.
///
/// The driver alternates [`Machine::run_until`] with fault application:
/// it pauses at each event's cycle (or immediately, if the machine went
/// quiescent because every unfinished thread is switched out), resolves
/// the event's target among what is eligible *at that moment* using the
/// plan's recorded `pick`, and keeps a deterministic pending-resume list
/// for switched-out threads. Every decision is a pure function of
/// `(machine state, plan)`, so a rerun from the same seed is
/// bit-identical.
///
/// # Errors
///
/// Any [`SimError`] from the underlying run. Reprogram misfires are *not*
/// errors — they are counted in [`FaultReport::violations`].
pub fn run_with_faults(
    m: &mut Machine,
    plan: &FaultPlan,
) -> Result<(RunSummary, FaultReport), SimError> {
    let mut report = FaultReport::default();
    let mut resumes: Vec<(u64, usize)> = Vec::new();
    let mut idx = 0usize;
    loop {
        let next_fault = plan.events.get(idx).map(|e| e.at);
        let next_resume = resumes.iter().map(|&(at, _)| at).min();
        let Some(stop) = [next_fault, next_resume].into_iter().flatten().min() else {
            let s = m.run()?;
            return Ok((s, report));
        };
        // Always move the pause point forward so each iteration makes
        // progress even when an event's nominal cycle is already past.
        let stop = stop.max(m.now().saturating_add(1));
        match m.run_until(stop)? {
            RunState::Finished(s) => {
                report.skipped += plan.events.len() - idx;
                return Ok((s, report));
            }
            RunState::Paused => {}
        }
        // If the machine paused *before* `stop`, every unfinished thread
        // is switched out and time cannot advance on its own: act now.
        // Either way, everything scheduled up to `stop` is due.
        resumes.sort_unstable();
        while let Some(&(at, core)) = resumes.first() {
            if at > stop {
                break;
            }
            resumes.remove(0);
            m.resume_thread(core)?;
            report.resumed += 1;
        }
        while idx < plan.events.len() && plan.events[idx].at <= stop {
            let ev = plan.events[idx];
            idx += 1;
            apply_fault(m, &ev, &mut resumes, &mut report)?;
        }
    }
}

fn apply_fault(
    m: &mut Machine,
    ev: &FaultEvent,
    resumes: &mut Vec<(u64, usize)>,
    report: &mut FaultReport,
) -> Result<(), SimError> {
    match ev.kind {
        FaultKind::SwitchOut { delay } => {
            let eligible = m.parked_cores();
            if eligible.is_empty() {
                report.skipped += 1;
                return Ok(());
            }
            let core = eligible[(ev.pick % eligible.len() as u64) as usize];
            let switched = m.context_switch_out(core);
            debug_assert!(switched, "parked_cores() returned a non-parked core");
            resumes.push((m.now().saturating_add(delay.max(1)), core));
            report.injected += 1;
        }
        FaultKind::DelayResume { extra } => {
            if resumes.is_empty() {
                report.skipped += 1;
                return Ok(());
            }
            resumes.sort_unstable();
            let i = (ev.pick % resumes.len() as u64) as usize;
            resumes[i].0 = resumes[i].0.saturating_add(extra);
            report.injected += 1;
        }
        FaultKind::Migrate { delay } => {
            let eligible = m.parked_cores();
            match eligible.len() {
                0 => report.skipped += 1,
                1 => {
                    // One parked thread cannot swap with anyone: degrade
                    // to a plain switch-out so the plan still perturbs.
                    let core = eligible[0];
                    m.context_switch_out(core);
                    resumes.push((m.now().saturating_add(delay.max(1)), core));
                    report.injected += 1;
                }
                n => {
                    let i = (ev.pick % n as u64) as usize;
                    let step = 1 + (ev.pick / n as u64 % (n as u64 - 1)) as usize;
                    let j = (i + step) % n;
                    let (a, b) = (eligible[i], eligible[j]);
                    m.context_switch_out(a);
                    m.context_switch_out(b);
                    m.migrate_thread(a, b)?;
                    // §3.3.3: migration re-arms every filter through the
                    // OS save/restore path. A filter still holding other
                    // threads' parks refuses — recoverable, counted.
                    for bank in 0..m.config().l2_banks {
                        if let Some(Err(_)) = m.reprogram_bank(bank) {
                            report.violations += 1;
                        }
                    }
                    let t = m.now().saturating_add(delay.max(1));
                    resumes.push((t, a));
                    resumes.push((t + 1, b));
                    report.injected += 1;
                }
            }
        }
        FaultKind::Reprogram => {
            let bank = (ev.pick % m.config().l2_banks as u64) as usize;
            match m.reprogram_bank(bank) {
                None => report.skipped += 1,
                Some(Ok(())) => report.injected += 1,
                Some(Err(_)) => {
                    report.injected += 1;
                    report.violations += 1;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_spread() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
        let mut c = Lcg::new(43);
        assert_ne!(c.next_u64(), xs[0], "seeds must diverge");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Lcg::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn generate_is_pure_and_sorted() {
        let p1 = FaultPlan::generate(0xfeed, 32, 100_000);
        let p2 = FaultPlan::generate(0xfeed, 32, 100_000);
        assert_eq!(p1, p2);
        assert_eq!(p1.events.len(), 32);
        assert!(p1.events.windows(2).all(|w| w[0].at <= w[1].at));
        let p3 = FaultPlan::generate(0xbeef, 32, 100_000);
        assert_ne!(p1, p3, "different seeds give different plans");
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::generate(1, 4, 100).is_empty());
    }
}
