//! The L2 bank hook interface.
//!
//! The paper's barrier filter is "a hardware structure consisting of a state
//! table and associated state machines … placed in the controller for some
//! shared level of memory" (§3.1). `cmp-sim` itself knows nothing about
//! barriers: it exposes this trait, called for every invalidation message and
//! every fill request that reaches an L2 bank, and the `barrier-filter` crate
//! implements it. The hook port accepts one request per cycle
//! ([`SimConfig::hook_cycles_per_request`](crate::SimConfig)), matching
//! Table 2.

use std::fmt;

/// Identifies one parked fill request. Allocated by the engine when a fill
/// reaches a bank; the hook hands tokens back to release (or error) the
/// parked fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParkToken(pub u64);

/// Hook verdict on a fill request that reached its L2 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillDecision {
    /// The hook does not track this line; proceed down the normal
    /// L2 → L3 → memory path.
    NotMine,
    /// The hook tracks this line and services the fill itself (the filter
    /// replies directly from the controller).
    Service,
    /// Starve the request: the requester stalls until the hook releases the
    /// token via [`HookOutcome::released`] (or errors it).
    Park,
}

/// Results a hook pushes back to the engine from an invalidation or
/// deadline callback.
#[derive(Debug, Default)]
pub struct HookOutcome {
    /// Parked fills to service now. The engine staggers their responses by
    /// the hook port's throughput (one per cycle).
    pub released: Vec<ParkToken>,
    /// Parked fills to complete with an error code embedded in the reply
    /// (§3.3.4 hardware-timeout path). A data load receives
    /// [`FILL_ERROR_SENTINEL`]; an instruction fetch raises a simulator
    /// exception.
    pub errored: Vec<ParkToken>,
}

impl HookOutcome {
    /// Whether the hook produced nothing.
    pub fn is_empty(&self) -> bool {
        self.released.is_empty() && self.errored.is_empty()
    }
}

/// Value returned by a data load whose fill was completed with an embedded
/// error code rather than data.
pub const FILL_ERROR_SENTINEL: u64 = 0xbad0_bad0_bad0_bad0;

/// A protocol violation detected by the hook (§3.3.4: "an exception/fault
/// should occur to tell the operating system that it has an incorrect
/// implementation or use of the barrier filter").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HookViolation {
    /// Human-readable description of the invalid transition.
    pub message: String,
}

impl HookViolation {
    /// Create a violation with the given description.
    pub fn new(message: impl Into<String>) -> HookViolation {
        HookViolation {
            message: message.into(),
        }
    }
}

impl fmt::Display for HookViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for HookViolation {}

/// Hardware attached to an L2 bank controller, observing the bank's
/// invalidation and fill traffic.
///
/// All addresses are line-aligned byte addresses. Implementations must be
/// deterministic: the engine replays callbacks in a fixed global order.
pub trait BankHook {
    /// An invalidation message for `line` reached this bank at cycle `now`.
    /// Push any fills to release (or error) into `out`.
    ///
    /// # Errors
    ///
    /// Returns a [`HookViolation`] to model the exception the filter raises
    /// on an invalid FSM transition.
    fn on_invalidate(
        &mut self,
        line: u64,
        now: u64,
        out: &mut HookOutcome,
    ) -> Result<(), HookViolation>;

    /// A fill request for `line` reached this bank at cycle `now`. `token`
    /// identifies the request if the hook decides to park it.
    ///
    /// # Errors
    ///
    /// Returns a [`HookViolation`] on an invalid FSM transition (e.g. a fill
    /// for an arrival address whose thread is in the Waiting state).
    fn on_fill_request(
        &mut self,
        line: u64,
        token: ParkToken,
        now: u64,
        out: &mut HookOutcome,
    ) -> Result<FillDecision, HookViolation>;

    /// A previously parked fill was cancelled by the requester (the OS
    /// context-switched the blocked thread out, §3.3.3). The hook must
    /// forget `token`; the thread will re-issue a fresh fill request when
    /// rescheduled.
    fn on_cancel(&mut self, token: ParkToken);

    /// The earliest cycle at which the hook wants an [`on_deadline`]
    /// callback (hardware-timeout support), or `None`.
    ///
    /// [`on_deadline`]: BankHook::on_deadline
    fn deadline(&self) -> Option<u64> {
        None
    }

    /// Called when the cycle returned by [`deadline`](BankHook::deadline)
    /// arrives.
    fn on_deadline(&mut self, _now: u64, _out: &mut HookOutcome) {}

    /// Reprogram the hook through its OS save/restore path (§3.3.3: the
    /// handler that re-arms filters after a thread migration). The default
    /// is a no-op for hooks with no reprogrammable state.
    ///
    /// # Errors
    ///
    /// Returns a [`HookViolation`] when the hook cannot be reprogrammed in
    /// its current state (e.g. the OS attempted a save while fills were
    /// still parked) — recoverable misprogramming, not a panic.
    fn reprogram(&mut self) -> Result<(), HookViolation> {
        Ok(())
    }

    /// Number of fills the hook currently holds parked. Used by the fault
    /// harness to assert filter tables are quiescent after a chaos run.
    fn pending_parks(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_emptiness() {
        let mut o = HookOutcome::default();
        assert!(o.is_empty());
        o.released.push(ParkToken(1));
        assert!(!o.is_empty());
    }

    #[test]
    fn violation_displays_message() {
        let v = HookViolation::new("fill while Waiting");
        assert_eq!(v.to_string(), "fill while Waiting");
    }
}
