//! Dedicated barrier-network baseline.
//!
//! Models the "very aggressive implementation of a barrier relying on
//! specialized hardware mechanisms based upon the work of Polychronopolous
//! et al." that the paper compares against (§4): a global bit-vector with
//! zero-detect (wired-NOR) logic reached over dedicated wires. The paper's
//! timing assumptions, reproduced by
//! [`HwBarrierConfig`](crate::config::HwBarrierConfig):
//!
//! * two-cycle latency to and from the global logic,
//! * the core stalls immediately after signalling,
//! * restart costs only a local status-register check and reset.

use crate::config::HwBarrierConfig;

/// State of one hardware barrier group.
#[derive(Debug)]
struct Group {
    members: Vec<usize>,
    arrived: Vec<usize>,
}

/// Outcome of a core signalling the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwBarResult {
    /// Not everyone has arrived; the core stalls.
    Stall,
    /// Everyone has arrived: each listed core (including the caller) resumes
    /// at the paired cycle.
    Release(Vec<(usize, u64)>),
}

/// Counters for the dedicated network.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HwNetStats {
    /// Total arrival signals received.
    pub arrivals: u64,
    /// Barrier episodes completed.
    pub episodes: u64,
}

/// The dedicated barrier network: a set of independently configured barrier
/// groups, each a wired-AND over its member cores.
#[derive(Debug)]
pub struct DedicatedNetwork {
    config: HwBarrierConfig,
    groups: Vec<Option<Group>>,
    stats: HwNetStats,
}

impl DedicatedNetwork {
    /// An empty network with the given wire timing.
    pub fn new(config: HwBarrierConfig) -> DedicatedNetwork {
        DedicatedNetwork {
            config,
            groups: Vec::new(),
            stats: HwNetStats::default(),
        }
    }

    /// Configure barrier `id` over `members` (core indices). Replaces any
    /// previous group with that id.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn configure_group(&mut self, id: u16, members: Vec<usize>) {
        assert!(
            !members.is_empty(),
            "hardware barrier group must be nonempty"
        );
        let idx = id as usize;
        if self.groups.len() <= idx {
            self.groups.resize_with(idx + 1, || None);
        }
        self.groups[idx] = Some(Group {
            members,
            arrived: Vec::new(),
        });
    }

    /// Whether group `id` exists.
    pub fn has_group(&self, id: u16) -> bool {
        self.groups.get(id as usize).is_some_and(Option::is_some)
    }

    /// Whether `core` belongs to group `id`.
    pub fn is_member(&self, id: u16, core: usize) -> bool {
        self.groups
            .get(id as usize)
            .and_then(Option::as_ref)
            .is_some_and(|g| g.members.contains(&core))
    }

    /// Core `core` executes `hwbar id` at cycle `now`. The arrival reaches
    /// the global logic `wire_to` cycles later; when the last member
    /// arrives, every member resumes `wire_from + local_check` cycles after
    /// that.
    ///
    /// # Panics
    ///
    /// Panics if the group does not exist or `core` is not a member (the
    /// engine validates both before calling).
    pub fn arrive(&mut self, id: u16, core: usize, now: u64) -> HwBarResult {
        let g = self.groups[id as usize]
            .as_mut()
            .expect("group existence checked by engine");
        assert!(g.members.contains(&core), "membership checked by engine");
        debug_assert!(!g.arrived.contains(&core), "double arrival without release");
        self.stats.arrivals += 1;
        g.arrived.push(core);
        if g.arrived.len() < g.members.len() {
            return HwBarResult::Stall;
        }
        // Last arrival: its signal reaches the global logic at
        // now + wire_to; the release propagates back from there.
        self.stats.episodes += 1;
        let fire = now + self.config.wire_to;
        let resume = fire + self.config.wire_from + self.config.local_check;
        let released = g.arrived.drain(..).map(|c| (c, resume)).collect();
        HwBarResult::Release(released)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HwNetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> DedicatedNetwork {
        DedicatedNetwork::new(HwBarrierConfig::default())
    }

    #[test]
    fn stalls_until_last_then_releases_all() {
        let mut n = net();
        n.configure_group(0, vec![0, 1, 2]);
        assert_eq!(n.arrive(0, 0, 10), HwBarResult::Stall);
        assert_eq!(n.arrive(0, 2, 12), HwBarResult::Stall);
        match n.arrive(0, 1, 20) {
            HwBarResult::Release(r) => {
                // fire at 22, resume at 22 + 2 + 1 = 25 for everyone
                assert_eq!(r.len(), 3);
                assert!(r.iter().all(|&(_, t)| t == 25));
                let cores: Vec<usize> = r.iter().map(|&(c, _)| c).collect();
                assert_eq!(cores, vec![0, 2, 1]);
            }
            other => panic!("expected release, got {other:?}"),
        }
        assert_eq!(n.stats().episodes, 1);
        assert_eq!(n.stats().arrivals, 3);
    }

    #[test]
    fn reusable_across_episodes() {
        let mut n = net();
        n.configure_group(1, vec![0, 1]);
        assert_eq!(n.arrive(1, 0, 0), HwBarResult::Stall);
        assert!(matches!(n.arrive(1, 1, 5), HwBarResult::Release(_)));
        assert_eq!(n.arrive(1, 1, 30), HwBarResult::Stall);
        assert!(matches!(n.arrive(1, 0, 40), HwBarResult::Release(_)));
        assert_eq!(n.stats().episodes, 2);
    }

    #[test]
    fn single_member_group_releases_immediately() {
        let mut n = net();
        n.configure_group(0, vec![7]);
        match n.arrive(0, 7, 100) {
            HwBarResult::Release(r) => assert_eq!(r, vec![(7, 105)]),
            other => panic!("expected release, got {other:?}"),
        }
    }

    #[test]
    fn membership_queries() {
        let mut n = net();
        assert!(!n.has_group(0));
        n.configure_group(0, vec![1, 2]);
        assert!(n.has_group(0));
        assert!(n.is_member(0, 1));
        assert!(!n.is_member(0, 0));
        assert!(!n.is_member(9, 1));
    }

    #[test]
    fn independent_groups() {
        let mut n = net();
        n.configure_group(0, vec![0, 1]);
        n.configure_group(1, vec![2, 3]);
        assert_eq!(n.arrive(0, 0, 0), HwBarResult::Stall);
        assert!(matches!(n.arrive(1, 2, 0), HwBarResult::Stall));
        assert!(matches!(n.arrive(1, 3, 0), HwBarResult::Release(_)));
        // group 0 still waiting
        assert!(matches!(n.arrive(0, 1, 9), HwBarResult::Release(_)));
    }
}
